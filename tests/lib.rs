//! # bh-integration — shared builders for the cross-crate tests
//!
//! The actual tests live in `tests/`; this small library holds the
//! hand-built Fig. 3 scenario used by several of them.

use std::collections::BTreeMap;

use bh_bgp_types::asn::Asn;
use bh_bgp_types::community::Community;
use bh_topology::{
    AsInfo, BlackholeAuth, BlackholeOffering, DocumentationChannel, Ixp, IxpId, NetworkType,
    Relationship, Tier, Topology,
};

/// The cast of Figure 3, by name.
#[derive(Debug, Clone, Copy)]
pub struct Fig3Cast {
    /// Blackholing user announcing per-provider (targeted).
    pub asc1: Asn,
    /// Blackholing user announcing bundled to everyone.
    pub asc2: Asn,
    /// Blackholing provider P1 (suppresses propagation).
    pub p1: Asn,
    /// Blackholing provider P2 (suppresses propagation).
    pub p2: Asn,
    /// A peer of ASC2 that offers no blackholing but has a collector feed.
    pub as_peer: Asn,
    /// The IXP's route server.
    pub route_server: Asn,
}

/// Build the Figure 3 topology: two users, two providers, one IXP, one
/// innocent peer. Both providers honor NO_EXPORT semantics (they never
/// propagate accepted blackhole routes), so only bundling and the IXP
/// route server make the activity visible — exactly the figure's point.
pub fn fig3_topology() -> (Topology, Fig3Cast) {
    let cast = Fig3Cast {
        asc1: Asn::new(61_101),
        asc2: Asn::new(61_102),
        p1: Asn::new(61_201),
        p2: Asn::new(61_202),
        as_peer: Asn::new(61_301),
        route_server: Asn::new(61_400),
    };
    let mk = |asn: Asn, ty: NetworkType, tier: Tier, prefixes: Vec<&str>, offering| AsInfo {
        asn,
        tier,
        network_type: ty,
        country: "DE",
        prefixes: prefixes.iter().map(|p| p.parse().unwrap()).collect(),
        blackhole_offering: offering,
        tag_communities: vec![],
        tag_classes: vec![],
        tag_large_communities: vec![],
        in_peeringdb: true,
    };
    let provider_offering = |asn: Asn| BlackholeOffering {
        communities: vec![Community::from_parts((asn.value() & 0x7FFF) as u16, 666)],
        large_community: None,
        min_accepted_length: 25,
        documentation: DocumentationChannel::Irr,
        auth: BlackholeAuth::OriginOrCone,
        blackhole_ip: None,
        strips_community: false,
        honors_no_export: true, // never propagates: the invisible case
    };
    let ixp_offering = BlackholeOffering {
        communities: vec![Community::BLACKHOLE],
        large_community: None,
        min_accepted_length: 25,
        documentation: DocumentationChannel::Irr,
        auth: BlackholeAuth::IrrRegistered,
        blackhole_ip: Some("185.99.0.66".parse().unwrap()),
        strips_community: false,
        honors_no_export: false,
    };

    let mut ases = BTreeMap::new();
    ases.insert(
        cast.asc1,
        mk(cast.asc1, NetworkType::Content, Tier::Stub, vec!["80.10.0.0/16"], None),
    );
    ases.insert(
        cast.asc2,
        mk(cast.asc2, NetworkType::Content, Tier::Stub, vec!["80.20.0.0/16"], None),
    );
    ases.insert(
        cast.p1,
        mk(
            cast.p1,
            NetworkType::TransitAccess,
            Tier::Transit,
            vec!["80.30.0.0/16"],
            Some(provider_offering(cast.p1)),
        ),
    );
    ases.insert(
        cast.p2,
        mk(
            cast.p2,
            NetworkType::TransitAccess,
            Tier::Transit,
            vec!["80.40.0.0/16"],
            Some(provider_offering(cast.p2)),
        ),
    );
    ases.insert(
        cast.as_peer,
        mk(cast.as_peer, NetworkType::TransitAccess, Tier::Transit, vec!["80.50.0.0/16"], None),
    );
    ases.insert(
        cast.route_server,
        mk(cast.route_server, NetworkType::Ixp, Tier::Stub, vec![], Some(ixp_offering)),
    );

    let edges = vec![
        (cast.p1, cast.asc1, Relationship::Customer),
        (cast.p1, cast.asc2, Relationship::Customer),
        (cast.p2, cast.asc2, Relationship::Customer),
        (cast.asc2, cast.as_peer, Relationship::Peer),
        (cast.asc1, cast.route_server, Relationship::RouteServer),
        (cast.as_peer, cast.route_server, Relationship::RouteServer),
    ];
    let ixp = Ixp {
        id: IxpId(0),
        name: "FIG3-IX".into(),
        route_server_asn: cast.route_server,
        route_server_in_path: true,
        peering_lan: "185.99.0.0/24".parse().unwrap(),
        members: vec![cast.asc1, cast.as_peer],
        country: "DE",
    };
    (Topology::assemble(ases, edges, vec![ixp]), cast)
}

/// The trigger community of a Fig. 3 provider.
pub fn trigger_of(topology: &Topology, asn: Asn) -> Community {
    topology
        .as_info(asn)
        .and_then(|i| i.blackhole_offering.as_ref())
        .map(|o| o.primary_community())
        .expect("provider has an offering")
}
