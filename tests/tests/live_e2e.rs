//! Live-service end-to-end: boot the whole node — replayed archive
//! fleet, virtual clock, tailing daemon, query surface — and prove the
//! three service guarantees on a Small-scale workload:
//!
//! 1. **Freshness**: every closed event is published within
//!    `max_latency` of its closing update (and nothing closed is held
//!    back to the final drain).
//! 2. **Crash recovery**: killing the daemon mid-stream and resuming
//!    from its last checkpoint yields one gapless event stream — dedup
//!    by sequence number reconstructs exactly the uninterrupted run.
//! 3. **Batch equivalence**: the drained `AnalyticsReport` and
//!    `StreamSummary` are bit-identical to the batch streaming run over
//!    the same archives.
//!
//! The batch reference is computed from the archives' *read-back*
//! streams, not the pre-serialization elems: `write_updates` normalizes
//! a `None` next-hop to the peer address, so only the decoded bytes are
//! the stream the daemon actually sees.

use std::collections::BTreeMap;
use std::sync::OnceLock;

use proptest::prelude::*;

use bh_bench::{Study, StudyRun, StudyScale};
use bh_bgp_types::time::{SimDuration, SimTime};
use bh_core::{AnalyticsReport, SequencedEvent, StreamSummary};
use bh_live::{handle_command, serve_connection, LiveFleetConfig, LiveNode, QueryRunner};
use bh_routing::{merge_streams, read_updates};
use bh_workloads::CollectorArchive;

/// One prebuilt world per scale: the study, a scenario run, its
/// per-collector archives, and the batch reference the live node must
/// reproduce bit for bit.
struct LiveWorld {
    study: Study,
    run: StudyRun,
    archives: Vec<CollectorArchive>,
    batch_summary: StreamSummary,
    batch_report: AnalyticsReport,
    /// Replay clock origin: the first record's timestamp.
    start: SimTime,
    /// Elements across all archives (== the scenario stream length).
    total_elems: u64,
}

fn build_world(scale: StudyScale, seed: u64, days: u64, rate: f64) -> LiveWorld {
    let study = Study::build(scale, seed);
    let run = study.visibility_run(days, rate);
    let archives = run.output.fleet_archives().expect("archives serialize");
    let streams: Vec<_> = archives
        .iter()
        .map(|a| read_updates(&a.bytes[..], a.dataset, a.collector).expect("archive decodes"))
        .collect();
    let merged = merge_streams(streams);
    assert_eq!(merged.len(), run.output.elems.len(), "archives lost elements");
    let (batch_summary, batch_report) =
        study.infer_streaming_analytics(&run.refdata, &merged, run.analytics, 1_000);
    let start = merged.first().expect("non-empty scenario").time;
    let total_elems = merged.len() as u64;
    LiveWorld { study, run, archives, batch_summary, batch_report, start, total_elems }
}

/// The Small-scale acceptance world (the ~230-AS build dominates; share
/// it across tests like the other e2e suites do).
fn small_world() -> &'static LiveWorld {
    static WORLD: OnceLock<LiveWorld> = OnceLock::new();
    WORLD.get_or_init(|| build_world(StudyScale::Small, 42, 2, 6.0))
}

/// The Tiny-scale world for the crash-recovery property (full replay
/// per proptest case).
fn tiny_world() -> &'static LiveWorld {
    static WORLD: OnceLock<LiveWorld> = OnceLock::new();
    WORLD.get_or_init(|| build_world(StudyScale::Tiny, 7, 2, 5.0))
}

fn boot(w: &LiveWorld, quantum: SimDuration, config: LiveFleetConfig) -> LiveNode {
    LiveNode::boot(
        w.study.session(&w.run.refdata),
        w.study.analytics_pipeline(&w.run.refdata, w.run.analytics),
        &w.archives,
        w.start,
        quantum,
        config,
    )
}

/// Fold every retained event into `seen`, keeping the FIRST emission of
/// each sequence number (re-emissions after a resume may carry a later
/// `emitted_at`; the payload must still be identical — asserted by the
/// callers that exercise resume).
fn observe_into(query: &QueryRunner, seen: &mut BTreeMap<u64, SequencedEvent>) {
    for se in query.events_since(0) {
        seen.entry(se.seq).or_insert(se);
    }
}

// ---- 1. full replay: freshness + wire protocol + batch equivalence --------

#[test]
fn live_node_full_replay_meets_latency_and_matches_batch() {
    let w = small_world();
    let quantum = SimDuration::mins(1);
    let config = LiveFleetConfig {
        max_latency: SimDuration::mins(5),
        checkpoint_every: 2_048,
        ..LiveFleetConfig::default()
    };
    let mut node = boot(w, quantum, config);
    let query = node.query();

    // A live consumer polling every quantum: each new event must be
    // sequenced contiguously, closed, and within the latency budget.
    let mut cursor = 0u64;
    while !node.done() {
        node.tick();
        for se in query.events_since(cursor) {
            assert_eq!(se.seq, cursor, "sequence gap in the live stream");
            cursor += 1;
            let end = se.event.end.expect("live-emitted events are closed");
            assert!(se.event.start <= end, "event {} ends before it starts", se.seq);
            assert!(
                se.latency() <= config.max_latency,
                "event {} exceeded the latency budget: {}s > {}s",
                se.seq,
                se.latency().as_secs(),
                config.max_latency.as_secs(),
            );
        }
    }
    assert!(cursor > 0, "degenerate replay: no events closed live");

    let status = query.status();
    assert_eq!(status.elems, w.total_elems, "every element must stream through");
    assert_eq!(status.events_emitted, cursor);
    assert!(status.checkpoints >= 1, "the cadence never checkpointed");
    assert!(status.drained);
    assert!(
        status.max_latency_seen <= config.max_latency,
        "daemon-observed worst latency {}s above budget",
        status.max_latency_seen.as_secs()
    );

    // Wire front-end over the same query surface: direct dispatch and a
    // full in-memory connection.
    assert!(handle_command(&query, "status").starts_with("ok status elems="));
    assert!(handle_command(&query, "report").starts_with("ok report events="));
    assert!(handle_command(&query, "bogus").starts_with("err unknown command"));
    let input = b"status\nevents-since 0\nreport\nquit\n";
    let mut out = Vec::new();
    serve_connection(&query, &input[..], &mut out).expect("in-memory serve");
    let reply = String::from_utf8(out).expect("utf8 reply");
    assert!(reply.contains("ok status "), "{reply}");
    assert!(reply.contains(&format!("ok events {cursor}")), "{reply}");
    assert!(reply.ends_with("ok bye\n"), "{reply}");

    // Drain: the final report/summary equal the batch run bit for bit.
    let (summary, report) = node.finish();
    assert_eq!(summary.stats, w.batch_summary.stats);
    assert_eq!(summary.census, w.batch_summary.census);
    assert_eq!(summary.per_dataset, w.batch_summary.per_dataset);
    assert_eq!(report, w.batch_report, "drained live report diverged from the batch run");
    assert_eq!(query.report(), Some(report), "query snapshot lags the drained report");

    // Everything sequenced after the live loop is a still-open event
    // (possibly none): nothing *closed* waited for the final drain.
    let tail = query.events_since(cursor);
    for se in &tail {
        assert_eq!(se.event.end, None, "closed event {} was held to the drain", se.seq);
        assert_eq!(se.latency(), SimDuration::ZERO);
    }
}

// ---- 2. kill mid-stream, resume from the last checkpoint ------------------

#[test]
fn killed_node_resumes_from_checkpoint_without_gaps_or_divergence() {
    let w = small_world();
    let quantum = SimDuration::mins(1);
    let config = LiveFleetConfig { checkpoint_every: 512, ..LiveFleetConfig::default() };

    let mut node = boot(w, quantum, config);
    let query = node.query();
    let mut first_seen: BTreeMap<u64, SequencedEvent> = BTreeMap::new();
    while query.status().elems < w.total_elems / 2 {
        assert!(!node.done(), "replay drained before the kill point");
        node.tick();
        observe_into(&query, &mut first_seen);
    }
    let kill_now = node.now();
    let checkpoint = node.kill().expect("cadence checkpoint before the kill");
    assert!(checkpoint.total_elems() > 0, "checkpoint captured no progress");
    assert!(checkpoint.total_elems() < w.total_elems, "kill point was not mid-stream");

    // A supervisor restart: same archives, the predecessor's time of
    // death, the persisted checkpoint.
    let mut node = LiveNode::resume(
        w.study.session(&w.run.refdata),
        &w.archives,
        kill_now,
        quantum,
        config,
        checkpoint,
    );
    let query = node.query();
    let mut replayed: BTreeMap<u64, SequencedEvent> = BTreeMap::new();
    while !node.done() {
        node.tick();
        observe_into(&query, &mut replayed);
    }

    // Re-emissions (closed after the checkpoint, before the crash) keep
    // their original numbers and payloads — consumers dedup by seq.
    for (seq, se) in &replayed {
        if let Some(original) = first_seen.get(seq) {
            assert_eq!(original.event, se.event, "re-emitted event {seq} diverged");
        }
    }

    // The deduped union is one gapless stream 0..n.
    let emitted = query.status().events_emitted;
    let mut union = first_seen;
    for (seq, se) in replayed {
        union.entry(seq).or_insert(se);
    }
    assert!(emitted > 0, "degenerate run: no events");
    assert_eq!(union.len() as u64, emitted, "gaps in the deduped stream");
    assert_eq!(*union.keys().next_back().expect("non-empty") + 1, emitted);

    // And the resumed node drains to the exact batch result.
    let (summary, report) = node.finish();
    assert_eq!(summary.stats, w.batch_summary.stats);
    assert_eq!(summary.census, w.batch_summary.census);
    assert_eq!(summary.per_dataset, w.batch_summary.per_dataset);
    assert_eq!(report, w.batch_report, "resumed live report diverged from the batch run");
}

// ---- 3. crash-recovery property: any kill point, any cadence --------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 6 })] // full replay per case

    /// Satellite: checkpoint at an arbitrary cadence, kill at an
    /// arbitrary record index, resume — the event stream keyed by seq
    /// has no gaps and no conflicting duplicates, and the drained
    /// report still equals the batch run. A kill before the first
    /// checkpoint restarts from scratch, which must converge too.
    #[test]
    fn crash_recovery_preserves_the_event_stream(
        kill_frac in 0.05f64..0.95,
        checkpoint_every in 32u64..512,
    ) {
        let w = tiny_world();
        let quantum = SimDuration::mins(1);
        let config = LiveFleetConfig { checkpoint_every, ..LiveFleetConfig::default() };

        let mut node = boot(w, quantum, config);
        let query = node.query();
        let target = ((w.total_elems as f64) * kill_frac) as u64;
        let mut first_seen: BTreeMap<u64, SequencedEvent> = BTreeMap::new();
        while query.status().elems < target && !node.done() {
            node.tick();
            observe_into(&query, &mut first_seen);
        }
        let kill_now = node.now();
        let mut node = match node.kill() {
            Some(checkpoint) => LiveNode::resume(
                w.study.session(&w.run.refdata),
                &w.archives,
                kill_now,
                quantum,
                config,
                checkpoint,
            ),
            // Crashed before any checkpoint: the supervisor boots fresh.
            None => boot(w, quantum, config),
        };
        let query = node.query();
        let mut replayed: BTreeMap<u64, SequencedEvent> = BTreeMap::new();
        while !node.done() {
            node.tick();
            observe_into(&query, &mut replayed);
        }

        for (seq, se) in &replayed {
            if let Some(original) = first_seen.get(seq) {
                prop_assert_eq!(&original.event, &se.event);
            }
        }
        let emitted = query.status().events_emitted;
        let mut union = first_seen;
        for (seq, se) in replayed {
            union.entry(seq).or_insert(se);
        }
        prop_assert_eq!(union.len() as u64, emitted);
        if emitted > 0 {
            prop_assert_eq!(*union.keys().next_back().expect("non-empty") + 1, emitted);
        }

        let (_, report) = node.finish();
        prop_assert_eq!(&report, &w.batch_report);
    }
}
