//! The general community classifier and its negative controls, scored
//! end to end.
//!
//! The headline claim: a dictionary-only baseline poisoned by weak
//! `discard` trap phrasing flags stolen-tag hijacks as blackholing;
//! installing the classifier's negative controls strictly reduces those
//! false positives while leaving cooperative recall untouched. The
//! property tests pin the safety side: the controls-off path is
//! bit-identical to the pre-classifier session, per-class dictionary
//! maps never overlap, and controls never suppress a genuine RTBH
//! event.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;

use bh_bench::{Study, StudyScale};
use bh_core::LabelKind;
use bh_irr::{
    BlackholeDictionary, CommunityClass, CommunityClassifier, CommunityPrefixCensus,
    CorpusGenerator, NegativeControls,
};
use bh_topology::{TopologyBuilder, TopologyConfig};
use bh_workloads::AdversarialConfig;

fn study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| Study::build(StudyScale::Tiny, 1234))
}

/// Negative controls from the class-aware dictionary's documentation
/// (no census: the documented location/informational tags alone).
fn documented_controls(study: &Study) -> Arc<NegativeControls> {
    let controls = CommunityClassifier::default()
        .negative_controls(&study.dict, &CommunityPrefixCensus::new());
    assert!(!controls.is_empty(), "no documented tags became controls");
    Arc::new(controls)
}

#[test]
fn golden_per_class_validation_at_small_scale() {
    let study = Study::build(StudyScale::Small, 7);
    let v = study.dict.validate_classes(&study.topology);
    for class in [CommunityClass::Action, CommunityClass::Location, CommunityClass::Informational] {
        let s = v.score(class);
        assert!(s.true_positives > 0, "{class:?} never validated a documented tag ({s:?})");
        assert!(s.precision() >= 0.95, "{class:?} precision {} ({s:?})", s.precision());
        assert!(s.recall() >= 0.9, "{class:?} recall {} ({s:?})", s.recall());
    }
}

#[test]
fn negative_controls_cut_stolen_tag_false_positives() {
    let study = study();
    let naive = study.naive_dict();
    let controls = documented_controls(study);
    let config = AdversarialConfig::stolen_tag_hijack(46, 3, 4.0);

    let base = study.adversarial_run_with(naive.clone(), None, &config);
    let controlled = study.adversarial_run_with(naive, Some(controls), &config);

    assert!(
        base.report.fp_by_kind.get(&LabelKind::Tagged).copied().unwrap_or(0) > 0,
        "the trap-poisoned dictionary was never fooled by stolen tags:\n{}",
        base.report
    );
    assert!(
        controlled.report.false_positives < base.report.false_positives,
        "controls did not reduce false positives:\nbase {}\ncontrolled {}",
        base.report,
        controlled.report
    );
    assert!(controlled.result.stats.control_suppressed > 0, "nothing was counted as suppressed");
    // Cooperative recall is untouched on both sides.
    assert_eq!(base.report.recall(), 1.0, "\n{}", base.report);
    assert_eq!(controlled.report.recall(), 1.0, "\n{}", controlled.report);
}

#[test]
fn controls_strictly_reduce_false_positives_across_the_catalog() {
    let study = study();
    let naive = study.naive_dict();
    let controls = documented_controls(study);
    let catalog = [
        AdversarialConfig::baseline(41, 3, 4.0),
        AdversarialConfig::subprefix_hijack(42, 3, 4.0),
        AdversarialConfig::route_leak(&study.topology, 43, 3, 4.0),
        AdversarialConfig::prepend_reroute(44, 3, 4.0),
        AdversarialConfig::stolen_tag_hijack(46, 3, 4.0),
    ];
    let mut base_fps = 0;
    let mut controlled_fps = 0;
    for config in &catalog {
        let base = study.adversarial_run_with(naive.clone(), None, config);
        let controlled = study.adversarial_run_with(naive.clone(), Some(controls.clone()), config);
        // Recall must be identical scenario by scenario: controls only
        // ever remove false positives, never true detections.
        assert_eq!(
            base.report.recall(),
            controlled.report.recall(),
            "recall moved under controls on {}:\nbase {}\ncontrolled {}",
            config.name,
            base.report,
            controlled.report
        );
        assert!(
            controlled.report.false_positives <= base.report.false_positives,
            "controls added false positives on {}",
            config.name
        );
        base_fps += base.report.false_positives;
        controlled_fps += controlled.report.false_positives;
    }
    assert!(
        controlled_fps < base_fps,
        "catalog-wide false positives did not strictly drop: {base_fps} -> {controlled_fps}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, // each case builds a topology and mines a corpus
    })]

    #[test]
    fn class_maps_are_always_disjoint(seed in 0u64..500) {
        let t = TopologyBuilder::new(TopologyConfig::tiny(seed)).build();
        let corpus = CorpusGenerator::new(&t, seed ^ 0x5151).generate();
        let dict = BlackholeDictionary::build(&corpus);
        // Each (provider, community) pair resolves to exactly one class:
        // the per-class maps and the blackhole map never overlap.
        for class in CommunityClass::ALL.into_iter().skip(1) {
            for entry in dict.class_entries(class) {
                for p in &entry.providers {
                    prop_assert!(
                        !dict.providers_for(entry.community).contains(p),
                        "{} is both blackhole and {class:?} for {p}",
                        entry.community
                    );
                    for other in CommunityClass::ALL.into_iter().skip(1) {
                        if other == class { continue; }
                        let dup = dict
                            .class_entries(other)
                            .any(|e| e.community == entry.community && e.providers.contains(p));
                        prop_assert!(
                            !dup,
                            "{} is both {class:?} and {other:?} for {p}",
                            entry.community
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn controls_off_path_is_bit_identical(seed in 0u64..500, days in 2u64..4, rate in 2.0f64..6.0) {
        let study = Study::build(StudyScale::Tiny, seed);
        let config = AdversarialConfig::baseline(seed ^ 0x77, days, rate);
        let without = study.adversarial_run_with(study.dict.clone(), None, &config);
        let with_empty = study.adversarial_run_with(
            study.dict.clone(),
            Some(Arc::new(NegativeControls::default())),
            &config,
        );
        prop_assert_eq!(without.result, with_empty.result);
    }

    #[test]
    fn controls_never_suppress_a_genuine_blackhole(seed in 0u64..500, days in 2u64..4) {
        let study = Study::build(StudyScale::Tiny, seed);
        let controls = Arc::new(
            CommunityClassifier::default()
                .negative_controls(&study.dict, &CommunityPrefixCensus::new()),
        );
        let config = AdversarialConfig::baseline(seed ^ 0x99, days, 4.0);
        let run = study.adversarial_run_with(study.dict.clone(), Some(controls), &config);
        prop_assert!(
            run.report.recall() == 1.0,
            "controls ate a genuine event:\n{}",
            run.report
        );
        prop_assert_eq!(run.report.false_negatives, 0);
    }
}
