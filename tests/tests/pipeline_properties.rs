//! Property-based cross-crate invariants: random short scenarios must
//! always satisfy the structural guarantees the analyses rely on.

use std::collections::BTreeSet;
use std::sync::OnceLock;

use proptest::prelude::*;

use bh_bench::{Study, StudyRun, StudyScale};
use bh_bgp_types::time::SimDuration;
use bh_core::group_events;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, // each case runs a full pipeline; keep the count low
    })]

    #[test]
    fn pipeline_invariants_hold(seed in 0u64..500, days in 2u64..5, rate in 2.0f64..8.0) {
        let study = Study::build(StudyScale::Tiny, seed);
        let StudyRun { output, result, .. } = study.visibility_run(days, rate);

        // 1. No false-positive prefixes.
        let truth: BTreeSet<_> = output.ground_truth.iter().map(|t| t.prefix).collect();
        for e in &result.events {
            prop_assert!(truth.contains(&e.prefix), "false positive {}", e.prefix);
        }

        // 2. Time sanity: start <= end, events within the window.
        for e in &result.events {
            if let Some(end) = e.end {
                prop_assert!(e.start <= end);
            }
            prop_assert!(!e.providers.is_empty(), "event without providers");
            prop_assert!(e.peer_count >= 1);
        }

        // 3. Grouping invariants at any timeout.
        for timeout in [0u64, 60, 300, 3600] {
            let periods = group_events(&result.events, SimDuration::secs(timeout));
            prop_assert!(periods.len() <= result.events.len());
            let period_events: usize = periods.iter().map(|p| p.event_count).sum();
            prop_assert_eq!(period_events, result.events.len());
            for p in &periods {
                prop_assert!(p.event_count >= 1);
            }
        }

        // 4. Dataset visibility unions equal event prefixes.
        let mut union = BTreeSet::new();
        for vis in result.per_dataset.values() {
            union.extend(vis.prefixes.iter().copied());
        }
        let event_prefixes: BTreeSet<_> = result.events.iter().map(|e| e.prefix).collect();
        prop_assert_eq!(union, event_prefixes);

        // 5. Census totals are bounded by processed announcements.
        prop_assert!(result.census.total_observations() <= result.stats.elems);
    }

    #[test]
    fn session_is_deterministic(seed in 0u64..200) {
        let study = Study::build(StudyScale::Tiny, seed);
        let refdata = study.refdata();
        let StudyRun { output, .. } = study.visibility_run(2, 4.0);
        let a = study.infer(&refdata, &output.elems);
        let b = study.infer(&refdata, &output.elems);
        prop_assert_eq!(a, b);
    }
}

/// One Small-scale environment shared by every sharding case: building
/// the ~230-AS topology and corpus dominates the test's wall-clock, and
/// the property varies the scenario, not the Internet.
fn small_study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| Study::build(StudyScale::Small, 42))
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 3, // each case simulates days of BGP at Small scale
    })]

    /// The acceptance property of the sharded runner: hash-partitioning
    /// a `StudyScale::Small` visibility run across N >= 4 worker threads
    /// produces a bit-identical `InferenceResult` — same events in the
    /// same order, same census, same counters, same per-dataset
    /// visibility — as the single-threaded session.
    #[test]
    fn sharded_session_is_bit_identical_to_single_threaded(
        days in 2u64..4,
        rate in 2.0f64..6.0,
        shards in 4usize..9,
    ) {
        let study = small_study();
        let StudyRun { output, result, refdata, .. } = study.visibility_run(days, rate);
        prop_assert!(!result.events.is_empty(), "degenerate run: nothing inferred");

        let sharded = study.infer_sharded(&refdata, &output.elems, shards);
        prop_assert_eq!(&sharded.events, &result.events);
        prop_assert_eq!(&sharded.census, &result.census);
        prop_assert_eq!(sharded.stats, result.stats);
        prop_assert_eq!(&sharded.per_dataset, &result.per_dataset);
        // And the whole-result comparison, in case fields are added.
        prop_assert_eq!(sharded, result);
    }

    /// The policy-extension no-op guarantee: installing an *empty*
    /// `PolicyTable` compiles to nothing, so a Small-scale run with it
    /// is bit-identical — element for element, event for event — to
    /// the pre-extension baseline path.
    #[test]
    fn empty_policy_table_is_bit_identical_to_baseline(
        days in 2u64..4,
        rate in 2.0f64..6.0,
    ) {
        let study = small_study();
        let baseline = study.visibility_run(days, rate);
        let with_table =
            study.visibility_run_with_policies(days, rate, &bh_topology::PolicyTable::new());

        prop_assert_eq!(&with_table.output.elems, &baseline.output.elems);
        prop_assert_eq!(
            with_table.output.ground_truth.len(),
            baseline.output.ground_truth.len()
        );
        prop_assert_eq!(&with_table.output.run_stats, &baseline.output.run_stats);
        prop_assert_eq!(&with_table.result, &baseline.result);
    }
}
