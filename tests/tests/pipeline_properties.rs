//! Property-based cross-crate invariants: random short scenarios must
//! always satisfy the structural guarantees the analyses rely on.

use std::collections::BTreeSet;

use proptest::prelude::*;

use bh_bench::{Study, StudyScale};
use bh_bgp_types::time::SimDuration;
use bh_core::group_events;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, // each case runs a full pipeline; keep the count low
        .. ProptestConfig::default()
    })]

    #[test]
    fn pipeline_invariants_hold(seed in 0u64..500, days in 2u64..5, rate in 2.0f64..8.0) {
        let study = Study::build(StudyScale::Tiny, seed);
        let (output, result) = study.visibility_run(days, rate);

        // 1. No false-positive prefixes.
        let truth: BTreeSet<_> = output.ground_truth.iter().map(|t| t.prefix).collect();
        for e in &result.events {
            prop_assert!(truth.contains(&e.prefix), "false positive {}", e.prefix);
        }

        // 2. Time sanity: start <= end, events within the window.
        for e in &result.events {
            if let Some(end) = e.end {
                prop_assert!(e.start <= end);
            }
            prop_assert!(!e.providers.is_empty(), "event without providers");
            prop_assert!(e.peer_count >= 1);
        }

        // 3. Grouping invariants at any timeout.
        for timeout in [0u64, 60, 300, 3600] {
            let periods = group_events(&result.events, SimDuration::secs(timeout));
            prop_assert!(periods.len() <= result.events.len());
            let period_events: usize = periods.iter().map(|p| p.event_count).sum();
            prop_assert_eq!(period_events, result.events.len());
            for p in &periods {
                prop_assert!(p.event_count >= 1);
            }
        }

        // 4. Dataset visibility unions equal event prefixes.
        let mut union = BTreeSet::new();
        for vis in result.per_dataset.values() {
            union.extend(vis.prefixes.iter().copied());
        }
        let event_prefixes: BTreeSet<_> = result.events.iter().map(|e| e.prefix).collect();
        prop_assert_eq!(union, event_prefixes);

        // 5. Census totals are bounded by processed announcements.
        prop_assert!(result.census.total_observations() <= result.stats.elems);
    }

    #[test]
    fn engine_is_deterministic(seed in 0u64..200) {
        let study = Study::build(StudyScale::Tiny, seed);
        let refdata = study.refdata();
        let (output, _) = study.visibility_run(2, 4.0);
        let a = study.infer(&refdata, &output.elems);
        let b = study.infer(&refdata, &output.elems);
        prop_assert_eq!(a.events.len(), b.events.len());
        for (x, y) in a.events.iter().zip(&b.events) {
            prop_assert_eq!(x.prefix, y.prefix);
            prop_assert_eq!(x.start, y.start);
            prop_assert_eq!(x.end, y.end);
            prop_assert_eq!(&x.providers, &y.providers);
        }
    }
}
