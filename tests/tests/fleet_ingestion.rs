//! Multi-collector fleet ingestion: golden equivalence of the k-way
//! merge against `merge_streams`, bit-identical inference over merged
//! and fleet-ingested streams, checkpoint/resume taken mid-fleet, and
//! the Small-scale end-to-end archive → fleet → sharded-analytics run.

use std::io::Cursor;
use std::sync::OnceLock;

use proptest::prelude::*;

use bh_bench::{Study, StudyRun, StudyScale};
use bh_bgp_types::as_path::AsPath;
use bh_bgp_types::asn::Asn;
use bh_bgp_types::community::{Community, CommunitySet};
use bh_bgp_types::time::SimTime;
use bh_core::EventAccumulator;
use bh_routing::archive::write_updates;
use bh_routing::{
    collect_source, merge_streams, split_by_collector, BgpElem, CollectorFleet, DataSource,
    ElemSource, ElemType, FleetConfig, MergedSource, SliceSource,
};
use bh_workloads::{fleet_archives_for, fleet_of};

// ---- arbitrary collector streams ------------------------------------------

/// The collector labels an arbitrary elem set is split across.
const LABELS: [(DataSource, u16); 6] = [
    (DataSource::Ris, 0),
    (DataSource::Ris, 3),
    (DataSource::RouteViews, 1),
    (DataSource::Pch, 0),
    (DataSource::Cdn, 2),
    (DataSource::Cdn, 9),
];

type ElemFields = (u64, u32, bool, u32, u8, Vec<u32>, Vec<u32>);

/// Raw draws for one element; [`mk_elem`] stamps the collector label.
fn arb_fields() -> impl Strategy<Value = ElemFields> {
    (
        0u64..5_000,
        1u32..100_000,
        any::<bool>(),
        any::<u32>(),
        1u8..=32,
        prop::collection::vec(1u32..50_000, 1..4),
        prop::collection::vec(any::<u32>(), 0..3),
    )
}

/// Build one element under a `(dataset, collector)` label, in a shape
/// that survives the MRT round trip verbatim (announces carry an
/// explicit NEXT_HOP; withdrawals carry no attributes).
fn mk_elem(fields: ElemFields, dataset: DataSource, collector: u16) -> BgpElem {
    let (t, peer, announce, net, len, hops, comms) = fields;
    BgpElem {
        time: SimTime::from_unix(t),
        dataset,
        collector,
        peer_asn: Asn::new(peer),
        peer_ip: "198.51.100.7".parse().unwrap(),
        elem_type: if announce { ElemType::Announce } else { ElemType::Withdraw },
        prefix: bh_bgp_types::prefix::Ipv4Prefix::from_raw(net, len),
        as_path: if announce {
            AsPath::from_sequence(hops.into_iter().map(Asn::new).collect::<Vec<_>>())
        } else {
            AsPath::empty()
        },
        communities: if announce {
            CommunitySet::from_classic(comms.into_iter().map(Community).collect())
        } else {
            CommunitySet::new()
        },
        next_hop: announce.then(|| "203.0.113.66".parse().unwrap()),
    }
}

/// An arbitrary elem set split across the [`LABELS`] collector streams,
/// each stream time-sorted (the per-collector arrival order every real
/// archive has). Some streams come out empty — that is part of the
/// property.
fn arb_streams() -> impl Strategy<Value = Vec<Vec<BgpElem>>> {
    prop::collection::vec((0usize..LABELS.len(), arb_fields()), 0..240).prop_map(|pairs| {
        let mut streams: Vec<Vec<BgpElem>> = vec![Vec::new(); LABELS.len()];
        for (pick, fields) in pairs {
            let (dataset, collector) = LABELS[pick];
            streams[pick].push(mk_elem(fields, dataset, collector));
        }
        for stream in &mut streams {
            stream.sort_by_key(|e| e.time);
        }
        streams
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    /// Golden order: for arbitrary elem sets split across arbitrary
    /// collector streams, the k-way `MergedSource` yields exactly the
    /// `merge_streams` order.
    #[test]
    fn merged_source_yields_exact_merge_streams_order(streams in arb_streams()) {
        let expected = merge_streams(streams.clone());
        let sources: Vec<SliceSource<'_>> = streams.iter().map(SliceSource::from).collect();
        let merged = collect_source(MergedSource::new(sources));
        prop_assert_eq!(merged, expected);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8 })] // spawns threads per case

    /// Golden order, parallel: the `CollectorFleet` (MRT write → one
    /// reader thread per archive → bounded channels → k-way merge)
    /// yields the same `merge_streams` order, element for element.
    #[test]
    fn collector_fleet_yields_exact_merge_streams_order(streams in arb_streams()) {
        let expected = merge_streams(streams.clone());

        let mut fleet = CollectorFleet::with_config(FleetConfig {
            batch_elems: 16, // small batches: exercise multi-batch channels
            channel_batches: 2,
        });
        for (index, stream) in streams.iter().enumerate() {
            let mut bytes = Vec::new();
            write_updates(&mut bytes, stream).expect("archive serializes");
            let (dataset, collector) = LABELS[index];
            fleet.add_archive(Cursor::new(bytes), dataset, collector);
        }
        let mut merged_stream = fleet.start();
        let streamed = collect_source(&mut merged_stream);
        let report = merged_stream.finish();
        prop_assert!(report.is_clean());
        prop_assert_eq!(report.total_elems() as usize, expected.len());
        // The MRT round trip preserves every elem verbatim (announces
        // carry explicit NEXT_HOPs by construction), so exact equality.
        prop_assert_eq!(streamed, expected);
    }
}

// ---- bit-identical inference ----------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 4 })] // full pipeline per case

    /// The `InferenceResult` over a fleet-ingested scenario is
    /// bit-identical to single-source ingestion of the materialized
    /// merged stream — for both the sequential `MergedSource` and the
    /// parallel `CollectorFleet`.
    #[test]
    fn fleet_inference_is_bit_identical_to_single_source(seed in 0u64..200) {
        let study = Study::build(StudyScale::Tiny, seed);
        let StudyRun { output, refdata, .. } = study.visibility_run(2, 5.0);

        let streams: Vec<Vec<BgpElem>> =
            split_by_collector(&output.elems).into_values().collect();
        let merged = merge_streams(streams.clone());
        let expected = study.infer(&refdata, &merged);

        // Sequential k-way merge over in-memory sources.
        let sources: Vec<SliceSource<'_>> = streams.iter().map(SliceSource::from).collect();
        let via_merge = study.infer_source(&refdata, &mut MergedSource::new(sources));
        prop_assert_eq!(&via_merge, &expected);

        // Parallel fleet over MRT archives.
        let archives = output.fleet_archives().expect("archives serialize");
        let via_fleet = study.infer_fleet(&refdata, &archives);
        prop_assert_eq!(&via_fleet, &expected);
    }
}

// ---- checkpoint/resume mid-fleet ------------------------------------------

#[test]
fn checkpoint_resume_mid_fleet_ingest_equals_uninterrupted_run() {
    let study = Study::build(StudyScale::Tiny, 91);
    let StudyRun { output, refdata, .. } = study.visibility_run(3, 6.0);
    let archives = output.fleet_archives().expect("archives serialize");

    // Uninterrupted fleet run.
    let expected = study.infer_fleet(&refdata, &archives);

    // Same fleet stream, suspended mid-ingest: checkpoint the session,
    // drop it, resume in a fresh one, and drain the *same* live stream.
    let mut stream = fleet_of(&archives).start();
    let mut first = study.session(&refdata).build();
    let mut consumed = 0u64;
    let pause_at = (output.elems.len() / 2) as u64;
    while consumed < pause_at {
        let Some(elem) = stream.next_elem() else { break };
        first.push(elem);
        consumed += 1;
    }
    assert_eq!(consumed, pause_at, "stream ended before the pause point");
    let checkpoint = first.checkpoint();
    assert!(
        checkpoint.open_events() + checkpoint.pending_closed() > 0 || first.stats().elems > 0,
        "degenerate: the checkpoint captured no progress"
    );
    drop(first);

    let mut resumed = study.session(&refdata).resume(checkpoint);
    let rest = resumed.ingest(&mut stream);
    let report = stream.finish();
    assert!(report.is_clean());
    assert_eq!(consumed + rest, report.total_elems());
    assert_eq!(resumed.finish(), expected);
}

// ---- Small-scale end-to-end -----------------------------------------------

/// One Small-scale environment for the end-to-end acceptance test (the
/// ~230-AS build cost dominates; see pipeline_properties.rs).
fn small_study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| Study::build(StudyScale::Small, 42))
}

/// The acceptance run: scenario → per-collector MRT archives (including
/// the deployment's silent collectors) → `CollectorFleet` →
/// `ShardedSession` with inline analytics produces the same
/// `AnalyticsReport` as the materialized path.
#[test]
fn small_scale_fleet_to_sharded_analytics_matches_materialized_path() {
    let study = small_study();
    let StudyRun { output, refdata, analytics, .. } = study.visibility_run(3, 5.0);
    let archives =
        fleet_archives_for(&study.deployment(), &output.elems).expect("archives serialize");
    assert!(archives.len() > 8, "expected a real fleet, got {}", archives.len());

    // Materialized path: decode-merge into a Vec, sharded inference with
    // inline analytics.
    let merged = merge_streams(split_by_collector(&output.elems).into_values().collect());
    let (batch_summary, batch_report) =
        study.infer_sharded_analytics(&refdata, &merged, analytics, 4);

    // Fleet path: archive readers → merge → sharded session, per-shard
    // pipelines merged at the barrier. No stream-sized Vec anywhere.
    let pipeline = study.analytics_pipeline(&refdata, analytics);
    let mut sharded = study.session(&refdata).build_sharded_with(4, pipeline);
    let mut stream = fleet_of(&archives).start();
    let ingested = sharded.ingest(&mut stream);
    let report = stream.finish();
    assert!(report.is_clean(), "fleet error: {:?}", report.first_error());
    assert_eq!(ingested, output.elems.len() as u64, "every element must stream through");
    let (fleet_summary, merged_pipeline) = sharded.finish_parts();
    let fleet_report = merged_pipeline.finalize();

    assert_eq!(fleet_summary.stats, batch_summary.stats);
    assert_eq!(fleet_summary.census, batch_summary.census);
    assert_eq!(fleet_summary.per_dataset, batch_summary.per_dataset);
    assert_eq!(fleet_report, batch_report, "fleet AnalyticsReport diverged");
    assert!(!fleet_report.table3.is_empty());
}
