//! Streaming-session semantics on real scenario streams: incremental
//! draining, checkpoint/resume, and source-agnostic ingestion must all
//! be observationally identical to one-shot batch processing.

use std::collections::BTreeSet;

use bh_bench::{Study, StudyRun, StudyScale};
use bh_bgp_types::prefix::Ipv4Prefix;
use bh_core::{BlackholeEvent, InferenceResult};
use bh_routing::archive::{split_by_dataset, write_updates};
use bh_routing::{ElemSource, MrtElemSource, SliceSource};

/// Canonical comparison key: the full event payload.
fn sort_events(mut events: Vec<BlackholeEvent>) -> Vec<BlackholeEvent> {
    events.sort_by_key(|e| (e.start, e.prefix, e.end));
    events
}

#[test]
fn drain_closed_plus_finish_equals_batch() {
    let study = Study::build(StudyScale::Tiny, 71);
    let StudyRun { output, result: batch, refdata, .. } = study.visibility_run(5, 8.0);
    assert!(!batch.events.is_empty());
    let open_in_batch = batch.events.iter().filter(|e| e.end.is_none()).count();

    // Stream the same elements, draining finished events every 512
    // elements — the constant-memory consumer pattern.
    let mut session = study.session(&refdata).build();
    let mut drained: Vec<BlackholeEvent> = Vec::new();
    let mut drain_rounds_with_events = 0;
    for (k, elem) in output.elems.iter().enumerate() {
        session.push(elem);
        if k % 512 == 511 {
            let batch = session.drain_closed();
            if !batch.is_empty() {
                drain_rounds_with_events += 1;
            }
            drained.extend(batch);
        }
    }
    let tail = session.finish();

    // Mid-stream draining must actually have handed events out (the
    // stream has thousands of closes), and the final result must hold
    // only the remainder.
    assert!(drain_rounds_with_events > 0, "no events were drained mid-stream");
    assert!(!drained.is_empty());
    assert_eq!(tail.events.iter().filter(|e| e.end.is_none()).count(), open_in_batch);

    // Union of drained + finish == the one-shot batch result, exactly.
    let mut combined = drained;
    combined.extend(tail.events.iter().cloned());
    assert_eq!(sort_events(combined), sort_events(batch.events.clone()));

    // Census/stats/visibility are unaffected by draining.
    assert_eq!(tail.census, batch.census);
    assert_eq!(tail.stats, batch.stats);
    assert_eq!(tail.per_dataset, batch.per_dataset);
}

#[test]
fn rib_initialization_streams_like_batch() {
    let study = Study::build(StudyScale::Tiny, 72);
    let StudyRun { output, refdata, .. } = study.visibility_run(3, 8.0);

    // Treat the first announcements as a RIB dump, the rest as updates.
    let split = output.elems.len() / 3;
    let (rib, updates) = output.elems.split_at(split);

    let mut batch = study.session(&refdata).build();
    batch.initialize_from_rib(rib);
    batch.ingest(&mut SliceSource::new(updates));
    let expected = batch.finish();

    // Same, but with mid-stream draining between and after phases.
    let mut streaming = study.session(&refdata).build();
    for elem in rib {
        streaming.push_rib(elem);
    }
    let mut events = streaming.drain_closed();
    for elem in updates {
        streaming.push(elem);
    }
    events.extend(streaming.drain_closed());
    let tail = streaming.finish();
    events.extend(tail.events.iter().cloned());

    assert_eq!(sort_events(events), sort_events(expected.events.clone()));
    assert_eq!(tail.stats, expected.stats);
    // RIB-seeded events start at time zero.
    assert!(expected.events.iter().any(|e| e.start == bh_bgp_types::time::SimTime::ZERO));
}

#[test]
fn checkpoint_resume_mid_scenario_equals_one_shot() {
    let study = Study::build(StudyScale::Tiny, 73);
    let StudyRun { output, result: expected, refdata, .. } = study.visibility_run(3, 6.0);

    let mid = output.elems.len() / 2;
    let mut first = study.session(&refdata).build();
    first.ingest(&mut SliceSource::new(&output.elems[..mid]));
    let checkpoint = first.checkpoint();
    drop(first);

    let mut resumed = study.session(&refdata).resume(checkpoint);
    resumed.ingest(&mut SliceSource::new(&output.elems[mid..]));
    assert_eq!(resumed.finish(), expected);
}

#[test]
fn mrt_streaming_source_feeds_inference_identically() {
    let study = Study::build(StudyScale::Tiny, 74);
    let StudyRun { output, result: live, refdata, .. } = study.visibility_run(3, 6.0);

    // Write per-platform archives (the shape real archives come in),
    // then stream each back through a constant-memory MRT source into
    // one session — platform by platform, no materialized Vec<BgpElem>.
    let mut per_platform: Vec<InferenceResult> = Vec::new();
    for (dataset, elems) in split_by_dataset(output.elems.clone()) {
        let mut archive = Vec::new();
        write_updates(&mut archive, &elems).expect("mrt write");
        let mut source = MrtElemSource::new(&archive[..], dataset, 0);
        let mut session = study.session(&refdata).build();
        let n = session.ingest(&mut source);
        assert!(source.error().is_none(), "archive must stream cleanly");
        assert_eq!(n, elems.len() as u64, "every element streams through");
        per_platform.push(session.finish());
    }

    // Each platform alone sees a subset of the live events' prefixes.
    let live_prefixes: BTreeSet<Ipv4Prefix> = live.events.iter().map(|e| e.prefix).collect();
    let mut union: BTreeSet<Ipv4Prefix> = BTreeSet::new();
    for result in &per_platform {
        for e in &result.events {
            union.insert(e.prefix);
        }
    }
    assert_eq!(union, live_prefixes, "platform-split streams must cover the live view");
}

#[test]
fn scenario_output_is_an_elem_source() {
    let study = Study::build(StudyScale::Tiny, 75);
    let StudyRun { output, result: expected, refdata, .. } = study.visibility_run(2, 6.0);
    let mut session = study.session(&refdata).build();
    let mut source = output.elem_source();
    assert_eq!(source.size_hint().0, output.elems.len());
    session.ingest(&mut source);
    assert_eq!(session.finish(), expected);
}
