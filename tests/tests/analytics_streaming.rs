//! Streaming-analytics equivalence: every paper table/figure computed
//! by a mergeable [`EventAccumulator`] — fed mid-stream, out of order,
//! split across accumulators and merged in any grouping, or run per
//! shard with a barrier merge — equals the batch function over the
//! materialized event list.

use std::collections::BTreeSet;
use std::sync::{Arc, OnceLock};

use proptest::prelude::*;

use bh_bench::{Study, StudyRun, StudyScale};
use bh_bgp_types::asn::Asn;
use bh_bgp_types::time::{SimDuration, SimTime};
use bh_core::prelude::*;
use bh_routing::DataSource;

/// One Small-scale environment shared by the golden tests: building the
/// ~230-AS topology and corpus dominates wall-clock.
fn small_study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| Study::build(StudyScale::Small, 42))
}

/// The golden acceptance test: on a Small-scale scenario, the streamed
/// single-session report and the 4- and 8-shard barrier-merged reports
/// are field-for-field equal to every batch function.
#[test]
fn streamed_and_sharded_reports_equal_batch_functions() {
    let study = small_study();
    let StudyRun { output, result, refdata, analytics, report } = study.visibility_run(4, 6.0);
    assert!(!result.events.is_empty(), "degenerate run: nothing inferred");

    // The report (computed by the accumulators) against each batch fn.
    assert_eq!(report.table3, table3(&result, &refdata));
    assert_eq!(report.table4, table4(&result.events, &refdata));
    assert_eq!(
        report.daily,
        daily_series(&result.events, analytics.window_start, analytics.window_end)
    );
    assert_eq!(report.prefixes_per_provider, prefixes_per_provider(&result.events, &refdata));
    assert_eq!(report.prefixes_per_user, prefixes_per_user(&result.events, &refdata));
    let (provider_countries, user_countries) = per_country(&result.events, &refdata);
    assert_eq!(report.provider_countries, provider_countries);
    assert_eq!(report.user_countries, user_countries);
    assert_eq!(report.providers_per_event, providers_per_event(&result.events));
    assert_eq!(report.distance_histogram, distance_histogram(&result.events));
    assert_eq!(report.durations, durations(&result.events, analytics.now));
    assert_eq!(report.periods, group_events(&result.events, analytics.grouping_timeout));
    assert_eq!(report.blackholed_prefixes, blackholed_prefixes(&result.events));

    // One-pass streaming (drain mid-stream, finish into the pipeline,
    // never materializing the event Vec) produces the identical report.
    let (summary, streamed) =
        study.infer_streaming_analytics(&refdata, &output.elems, analytics, 1_000);
    assert_eq!(summary.stats, result.stats);
    assert_eq!(summary.census, result.census);
    assert_eq!(summary.per_dataset, result.per_dataset);
    assert_eq!(streamed, report);

    // Sharded with per-worker pipelines merged at the barrier.
    for shards in [4usize, 8] {
        let (sharded_summary, sharded) =
            study.infer_sharded_analytics(&refdata, &output.elems, analytics, shards);
        assert_eq!(sharded_summary.stats, result.stats);
        assert_eq!(sharded_summary.per_dataset, result.per_dataset);
        assert_eq!(sharded, report, "{shards} shards diverged");
    }
}

/// Reference data for the synthetic-event property tests.
fn tiny_refdata() -> Arc<ReferenceData> {
    static REFDATA: OnceLock<Arc<ReferenceData>> = OnceLock::new();
    REFDATA.get_or_init(|| Study::build(StudyScale::Tiny, 5).refdata()).clone()
}

/// A synthetic event from small generator components.
#[allow(clippy::type_complexity)]
fn build_event(
    (prefix_sel, start, dur): (u8, u32, Option<u32>),
    (providers, users, distances, bundled): (BTreeSet<u8>, BTreeSet<u8>, BTreeSet<u8>, bool),
) -> BlackholeEvent {
    let prefix = format!("198.51.{}.{}/32", prefix_sel % 4, prefix_sel).parse().unwrap();
    let providers: BTreeSet<ProviderId> = providers
        .into_iter()
        .map(|p| {
            if p == 0 {
                ProviderId::Ixp(bh_topology::IxpId(0))
            } else {
                ProviderId::As(Asn::new(64_000 + p as u32))
            }
        })
        .collect();
    let distances: BTreeSet<DetectionDistance> = distances
        .into_iter()
        .map(|d| if d == 0 { DetectionDistance::NoPath } else { DetectionDistance::Hops(d) })
        .collect();
    BlackholeEvent {
        prefix,
        providers,
        users: users.into_iter().map(|u| Asn::new(65_000 + u as u32)).collect(),
        start: SimTime::from_unix(start as u64),
        end: dur.map(|d| SimTime::from_unix(start as u64 + d as u64)),
        peer_count: 1,
        datasets: BTreeSet::from([DataSource::Ris]),
        distances,
        bundled_detection: bundled,
    }
}

fn arb_events() -> impl Strategy<Value = Vec<BlackholeEvent>> {
    prop::collection::vec(
        (
            (0u8..8, 0u32..5_000, prop::option::of(0u32..2_000)),
            (
                prop::collection::btree_set(0u8..5, 1..4),
                prop::collection::btree_set(0u8..5, 0..4),
                prop::collection::btree_set(0u8..4, 1..3),
                any::<bool>(),
            ),
        )
            .prop_map(|(timing, content)| build_event(timing, content)),
        1..40,
    )
}

fn pipeline_over(events: &[BlackholeEvent]) -> AnalyticsPipeline {
    let config = AnalyticsConfig::window(SimTime::ZERO, SimTime::ZERO + SimDuration::days(1));
    let mut pipeline = AnalyticsPipeline::new(tiny_refdata(), config);
    for event in events {
        pipeline.observe(event);
    }
    pipeline
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32,
    })]

    /// Every registered accumulator is merge-associative and
    /// commutative: splitting an arbitrary event multiset three ways
    /// and folding the parts in any grouping or order finalizes to the
    /// same report as one accumulator fed everything.
    #[test]
    fn every_accumulator_is_merge_associative(
        events in arb_events(),
        split_a in 0usize..40,
        split_b in 0usize..40,
    ) {
        let cut_a = split_a % (events.len() + 1);
        let cut_b = cut_a + (split_b % (events.len() - cut_a + 1));
        let (ab, c) = events.split_at(cut_b);
        let (a, b) = ab.split_at(cut_a);

        let reference = pipeline_over(&events).finalize();

        // (A + B) + C
        let mut left = pipeline_over(a);
        left.merge(pipeline_over(b));
        left.merge(pipeline_over(c));
        prop_assert_eq!(left.finalize(), reference.clone());

        // A + (B + C)
        let mut right_tail = pipeline_over(b);
        right_tail.merge(pipeline_over(c));
        let mut right = pipeline_over(a);
        right.merge(right_tail);
        prop_assert_eq!(right.finalize(), reference.clone());

        // (C + B) + A — commutativity of the same fold.
        let mut rev = pipeline_over(c);
        rev.merge(pipeline_over(b));
        rev.merge(pipeline_over(a));
        prop_assert_eq!(rev.finalize(), reference.clone());

        // Observation order within one accumulator is irrelevant too.
        let mut reversed_events = events.clone();
        reversed_events.reverse();
        prop_assert_eq!(pipeline_over(&reversed_events).finalize(), reference);
    }

    /// The period accumulator (the trickiest merge: gap-tolerant
    /// interval coalescing) independently agrees with the batch sweep
    /// under arbitrary splits.
    #[test]
    fn period_accumulator_matches_batch_grouping(
        events in arb_events(),
        timeout_secs in 0u64..1_200,
        split in 0usize..40,
    ) {
        let timeout = SimDuration::secs(timeout_secs);
        let batch = group_events(&events, timeout);

        let cut = split % (events.len() + 1);
        let (a, b) = events.split_at(cut);
        let mut left = PeriodAccumulator::new(timeout);
        for e in a {
            left.observe(e);
        }
        let mut right = PeriodAccumulator::new(timeout);
        for e in b {
            right.observe(e);
        }
        right.merge(left);
        prop_assert_eq!(right.finalize(), batch);
    }
}
