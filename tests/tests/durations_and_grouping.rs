//! Duration and grouping shapes (Fig. 8) on a generated scenario, checked
//! against ground truth.

use bh_bench::{Study, StudyRun, StudyScale};
use bh_bgp_types::time::{SimDuration, SimTime};
use bh_core::group_events;

#[test]
fn grouping_collapses_probing_pulses() {
    let study = Study::build(StudyScale::Tiny, 41);
    let StudyRun { output, result, .. } = study.visibility_run(4, 8.0);

    let periods = group_events(&result.events, SimDuration::mins(5));
    assert!(periods.len() <= result.events.len(), "grouping must never create periods");
    // The probing pattern dominates the reaction model, so grouping must
    // shrink the count substantially when multi-phase truths exist.
    let multi_phase_truths = output.ground_truth.iter().filter(|t| t.phases.len() > 1).count();
    if multi_phase_truths > 5 {
        assert!(
            periods.len() < result.events.len(),
            "{} periods from {} events with {} multi-phase truths",
            periods.len(),
            result.events.len(),
            multi_phase_truths
        );
    }

    // Every period's span covers its constituent events.
    for p in &periods {
        for e in result.events.iter().filter(|e| e.prefix == p.prefix) {
            if e.start >= p.start {
                if let (Some(pe), Some(ee)) = (p.end, e.end) {
                    if e.start <= pe {
                        assert!(ee <= pe, "event escapes its period");
                    }
                }
            }
        }
    }
}

#[test]
fn ungrouped_durations_reflect_probing_pulse_lengths() {
    let study = Study::build(StudyScale::Tiny, 43);
    let StudyRun { output, result, .. } = study.visibility_run(4, 8.0);
    let now = SimTime::from_unix(u64::MAX / 2);

    // Ground truth pulse lengths are 20–100s; inferred closed events for
    // multi-phase prefixes should be in that ballpark (within BGP-echo
    // tolerance of a few minutes for correlated closes).
    let probing_prefixes: std::collections::BTreeSet<_> =
        output.ground_truth.iter().filter(|t| t.phases.len() > 2).map(|t| t.prefix).collect();
    let mut short = 0usize;
    let mut total = 0usize;
    for e in &result.events {
        if !probing_prefixes.contains(&e.prefix) || e.end.is_none() {
            continue;
        }
        total += 1;
        if e.duration(now) <= SimDuration::mins(3) {
            short += 1;
        }
    }
    if total >= 10 {
        assert!(short * 3 >= total * 2, "only {short}/{total} probing events are short");
    }
}

#[test]
fn grouped_period_counts_match_ground_truth_reactions() {
    let study = Study::build(StudyScale::Tiny, 47);
    let StudyRun { output, result, .. } = study.visibility_run(3, 6.0);
    let periods = group_events(&result.events, SimDuration::mins(5));

    // Each visible ground-truth reaction (prefix) produces at least one
    // period and no more periods than distinct reactions + 1 (reactions
    // to the same prefix hours apart stay distinct periods).
    let mut truth_reactions: std::collections::BTreeMap<_, usize> = Default::default();
    for t in &output.ground_truth {
        *truth_reactions.entry(t.prefix).or_default() += 1;
    }
    for p in &periods {
        let reactions = truth_reactions.get(&p.prefix).copied().unwrap_or(0);
        assert!(reactions > 0, "period without ground truth: {}", p.prefix);
    }
}
