//! Zero-copy decode equivalence: the sliced [`MrtBytesReader`] path
//! (with its attribute-block memo cache and Arc-shared handles) must be
//! observationally identical to the copying [`MrtReader`] path — same
//! records, same [`BgpElem`] streams, same [`InferenceResult`]s — on
//! arbitrary round-tripped archives. Interning is checked the same way:
//! tables built in any order or merged across shards are set-equal, and
//! absorb keeps already-issued ids stable.

use std::sync::OnceLock;

use proptest::prelude::*;

use bh_bench::{Study, StudyScale};
use bh_bgp_types::as_path::AsPath;
use bh_bgp_types::asn::Asn;
use bh_bgp_types::attrs::{Origin, PathAttributes};
use bh_bgp_types::community::{Community, CommunitySet, LargeCommunity};
use bh_bgp_types::intern::{InternTable, PathTable};
use bh_bgp_types::prefix::Ipv4Prefix;
use bh_bgp_types::time::SimTime;
use bh_bgp_types::update::BgpUpdate;
use bh_mrt::{MrtBytesReader, MrtReader, MrtWriter};
use bh_routing::archive::MrtElemSource;
use bh_routing::{DataSource, ElemSource, MergedSource};

const PEER_IP: &str = "198.51.100.44";
const LOCAL_IP: &str = "192.0.2.254";

/// Serialized-update generator: a plausible mix of tagged announcements,
/// repeated attribute blocks (the cache's hot case), and withdrawals.
type UpdateFields =
    (u64, u32, Vec<u32>, Vec<u32>, Vec<(u32, u32, u32)>, Vec<(u32, u8)>, Vec<(u32, u8)>);

fn arb_update_fields() -> impl Strategy<Value = Vec<UpdateFields>> {
    prop::collection::vec(
        (
            0u64..4_000_000_000,
            1u32..65_000,
            prop::collection::vec(1u32..64, 0..4), // small ASN pool: repeats
            prop::collection::vec(1u32..16, 0..3), // small community pool
            prop::collection::vec((1u32..8, 1u32..8, 1u32..8), 0..2),
            prop::collection::vec((any::<u32>(), 8u8..=32), 0..3),
            prop::collection::vec((any::<u32>(), 8u8..=32), 0..3),
        ),
        0..24,
    )
}

fn write_archive(draws: &[UpdateFields]) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut writer = MrtWriter::new(&mut buf);
    for (t, peer, hops, comms, large, announced, withdrawn) in draws {
        let attrs = if announced.is_empty() {
            PathAttributes::default()
        } else {
            let mut communities =
                CommunitySet::from_classic(comms.iter().map(|&c| Community(c)).collect::<Vec<_>>());
            for &(a, b, c) in large {
                communities.insert_large(LargeCommunity::new(a, b, c));
            }
            PathAttributes {
                origin: Origin::Igp,
                as_path: AsPath::from_sequence(
                    hops.iter().map(|&a| Asn::new(a)).collect::<Vec<_>>(),
                ),
                next_hop: Some("203.0.113.66".parse().unwrap()),
                communities,
                ..Default::default()
            }
        };
        let mut update = BgpUpdate::new(attrs);
        for &(net, len) in announced {
            update.announce_v4(Ipv4Prefix::from_raw(net, len));
        }
        for &(net, len) in withdrawn {
            update.withdraw_v4(Ipv4Prefix::from_raw(net, len));
        }
        writer
            .write_update(
                SimTime::from_unix(*t),
                Asn::new(*peer),
                PEER_IP.parse().unwrap(),
                Asn::new(64_512),
                LOCAL_IP.parse().unwrap(),
                &update,
            )
            .expect("update writes");
    }
    buf
}

fn drain<S: ElemSource>(mut source: S) -> Vec<bh_routing::BgpElem> {
    let mut out = Vec::new();
    while let Some(elem) = source.next_elem() {
        out.push(elem.clone());
    }
    out
}

proptest! {
    /// Record-level equivalence: both readers decode the same archive to
    /// the same record sequence.
    #[test]
    fn bytes_reader_equals_read_reader(draws in arb_update_fields()) {
        let archive = write_archive(&draws);
        let copied: Vec<_> = MrtReader::new(&archive[..])
            .collect::<Result<_, _>>()
            .expect("valid archive");
        let sliced: Vec<_> = MrtBytesReader::new(archive)
            .collect::<Result<_, _>>()
            .expect("valid archive");
        prop_assert_eq!(copied, sliced);
    }

    /// Elem-level equivalence: the zero-copy source streams the same
    /// `BgpElem`s as the copying source, in the same order — including
    /// when two sources over the same archive share one attribute cache.
    #[test]
    fn bytes_source_equals_read_source(draws in arb_update_fields()) {
        let archive = write_archive(&draws);
        let via_read =
            drain(MrtElemSource::new(&archive[..], DataSource::Ris, 7));
        let via_bytes =
            drain(MrtElemSource::from_bytes(archive.clone(), DataSource::Ris, 7));
        prop_assert_eq!(&via_read, &via_bytes);

        let cache = bh_mrt::shared_attr_cache();
        let first = drain(MrtElemSource::from_bytes_shared(
            archive.clone(),
            DataSource::Ris,
            7,
            cache.clone(),
        ));
        // The second pass decodes entirely from the sibling's cache fills.
        let second =
            drain(MrtElemSource::from_bytes_shared(archive, DataSource::Ris, 7, cache));
        prop_assert_eq!(&via_read, &first);
        prop_assert_eq!(&via_read, &second);
    }

    /// Intern tables are order-insensitive sets with stable ids: interning
    /// the same values in any order yields equal tables, resolving an id
    /// issued before an absorb still returns the same value after it, and
    /// the absorb remap points every absorbed value at its canonical entry.
    #[test]
    fn intern_tables_dedup_and_keep_ids_stable(
        a in prop::collection::vec(prop::collection::vec(1u32..32, 0..5), 0..12),
        b in prop::collection::vec(prop::collection::vec(1u32..32, 0..5), 0..12),
    ) {
        let paths_of = |draws: &[Vec<u32>]| -> Vec<AsPath> {
            draws
                .iter()
                .map(|hops| {
                    AsPath::from_sequence(hops.iter().map(|&h| Asn::new(h)).collect::<Vec<_>>())
                })
                .collect()
        };
        let (left, right) = (paths_of(&a), paths_of(&b));

        // Order-insensitivity.
        let mut fwd = PathTable::new();
        let mut rev = PathTable::new();
        for p in &left {
            fwd.intern(p);
        }
        for p in left.iter().rev() {
            rev.intern(p);
        }
        prop_assert_eq!(&fwd, &rev);

        // Id stability across a shard-style merge.
        let issued: Vec<_> = left.iter().map(|p| fwd.intern(p)).collect();
        let mut other = PathTable::new();
        for p in &right {
            other.intern(p);
        }
        let remap = fwd.absorb(&other);
        for (p, id) in left.iter().zip(&issued) {
            prop_assert_eq!(fwd.resolve(*id), p); // absorb must not move an issued id
        }
        prop_assert_eq!(remap.len(), other.len()); // one remap entry per absorbed id
        for (value, id) in other.iter().zip(&remap) {
            prop_assert_eq!(fwd.resolve(*id), value); // remap resolves to the absorbed value
        }
        // The merged table is the set union.
        let mut expect = InternTable::new();
        for p in left.iter().chain(&right) {
            expect.intern(p);
        }
        prop_assert_eq!(&fwd, &expect);
    }
}

/// One Small-scale environment shared by the golden tests below.
fn small_study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| Study::build(StudyScale::Small, 42))
}

/// The golden end-to-end check: a realistic multi-collector archive set
/// run through the copying merged stream, the zero-copy merged stream,
/// and the zero-copy parallel fleet produces bit-identical
/// `InferenceResult`s.
#[test]
fn zero_copy_inference_equals_read_path_inference() {
    let study = small_study();
    let run = study.visibility_run(4, 6.0);
    let refdata = run.refdata;
    let archives = run.output.fleet_archives().expect("archives serialize");
    assert!(archives.len() >= 2, "need a real fleet");

    let read_sources: Vec<_> =
        archives.iter().map(|a| MrtElemSource::new(&a.bytes[..], a.dataset, a.collector)).collect();
    let via_read = study.infer_source(&refdata, &mut MergedSource::new(read_sources));

    let bytes_sources: Vec<_> = archives
        .iter()
        .map(|a| MrtElemSource::from_bytes(a.bytes.clone(), a.dataset, a.collector))
        .collect();
    let via_bytes = study.infer_source(&refdata, &mut MergedSource::new(bytes_sources));
    assert_eq!(via_read, via_bytes, "zero-copy merged stream diverged");

    let via_fleet = study.infer_fleet(&refdata, &archives);
    assert_eq!(via_read, via_fleet, "zero-copy fleet diverged");

    assert!(!via_read.events.is_empty(), "degenerate run: nothing inferred");
}
