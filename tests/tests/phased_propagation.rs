//! Engine-equivalence properties: the three-phase rank-parallel
//! propagation engine must be *bit-identical* to the sequential queue
//! engine — same collector elements, same ground truth, same
//! announcement counts — on any scenario, with or without a policy
//! table installed, and regardless of worker count. These properties
//! are what lets `Massive`-scale runs switch engines for speed without
//! re-validating any analysis downstream.

use std::collections::BTreeSet;
use std::sync::OnceLock;

use proptest::prelude::*;

use bh_bench::StudyScale;
use bh_routing::{deploy, CollectorConfig, EngineMode};
use bh_topology::{
    PolicyTable, Relationship, Roa, RoaTable, Topology, TopologyBuilder, TopologyConfig,
};
use bh_workloads::{run_with_engine, ScenarioConfig, ScenarioOutput};

/// Full ROA coverage of every originated prefix at its exact length:
/// the announcements themselves validate `Valid`, while the /32
/// blackhole routes come out `Invalid` (too specific) — so an ROV
/// deployment actually drops routes in these runs.
fn roas_for(topology: &Topology) -> RoaTable {
    let mut roas = RoaTable::new();
    for info in topology.ases() {
        for &prefix in &info.prefixes {
            roas.insert(Roa { prefix, origin: info.asn, max_length: prefix.length() });
        }
    }
    roas
}

/// ROV at half the transit candidates, with real ROAs loaded.
fn rov_table(topology: &Topology) -> PolicyTable {
    let mut table = PolicyTable::new();
    table.set_roas(roas_for(topology));
    table.deploy_rov_fraction(topology, 0.5);
    table
}

/// RFC 9234 Only-to-Customers on the Tier-1 clique plus one deliberate
/// route leaker — the adversarial pairing the policy workloads use.
fn otc_leaker_table(topology: &Topology) -> PolicyTable {
    let mut table = PolicyTable::new();
    let mut leaker_picked = false;
    for info in topology.ases() {
        match info.tier {
            bh_topology::Tier::Tier1 => table.entry(info.asn).only_to_customers = true,
            bh_topology::Tier::Transit if !leaker_picked => {
                table.entry(info.asn).leaker = true;
                leaker_picked = true;
            }
            _ => {}
        }
    }
    table
}

fn run_tiny(seed: u64, policies: Option<&PolicyTable>, engine: EngineMode) -> ScenarioOutput {
    let topology = TopologyBuilder::new(TopologyConfig::tiny(55)).build();
    let deployment = deploy(&topology, &CollectorConfig::tiny(6));
    run_with_engine(&topology, deployment, &ScenarioConfig::short(seed, 2, 5.0), policies, engine)
}

fn assert_identical(a: &ScenarioOutput, b: &ScenarioOutput) {
    assert_eq!(a.elems, b.elems, "collector element streams diverge");
    assert_eq!(a.announcements, b.announcements);
    assert_eq!(a.ground_truth.len(), b.ground_truth.len());
    for (x, y) in a.ground_truth.iter().zip(&b.ground_truth) {
        assert_eq!(x.prefix, y.prefix);
        assert_eq!(x.phases, y.phases);
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6, // each case runs four full Tiny scenarios
    })]

    /// Queue and phased engines are bit-identical on random Tiny
    /// scenarios, bare and under an ROV deployment.
    #[test]
    fn engines_agree_on_tiny_scenarios(seed in 0u64..500) {
        let queue = run_tiny(seed, None, EngineMode::Queue);
        let phased = run_tiny(seed, None, EngineMode::Phased { threads: 4 });
        assert_identical(&queue, &phased);
        prop_assert!(!queue.elems.is_empty(), "scenario produced no elems");

        let topology = TopologyBuilder::new(TopologyConfig::tiny(55)).build();
        let rov = rov_table(&topology);
        let queue = run_tiny(seed, Some(&rov), EngineMode::Queue);
        let phased = run_tiny(seed, Some(&rov), EngineMode::Phased { threads: 4 });
        assert_identical(&queue, &phased);
    }

    /// The phased schedule is deterministic in the worker count: one
    /// worker and four workers produce the same stream.
    #[test]
    fn phased_is_thread_count_invariant(seed in 0u64..500) {
        let one = run_tiny(seed, None, EngineMode::Phased { threads: 1 });
        let four = run_tiny(seed, None, EngineMode::Phased { threads: 4 });
        assert_identical(&one, &four);
    }
}

/// One Small-scale topology shared across the expensive cases below.
fn small_env() -> &'static (Topology, CollectorConfig) {
    static ENV: OnceLock<(Topology, CollectorConfig)> = OnceLock::new();
    ENV.get_or_init(|| {
        let topology = TopologyBuilder::new(StudyScale::Small.topology_config(42)).build();
        (topology, StudyScale::Small.collector_config(42 ^ 0x3434))
    })
}

fn run_small(policies: Option<&PolicyTable>, engine: EngineMode) -> ScenarioOutput {
    let (topology, collector_config) = small_env();
    let deployment = deploy(topology, collector_config);
    run_with_engine(topology, deployment, &ScenarioConfig::short(42, 2, 5.0), policies, engine)
}

#[test]
fn engines_agree_at_small_scale() {
    let queue = run_small(None, EngineMode::Queue);
    let phased = run_small(None, EngineMode::Phased { threads: 4 });
    assert_identical(&queue, &phased);
    assert!(!queue.elems.is_empty());
}

#[test]
fn engines_agree_at_small_scale_with_rov() {
    let (topology, _) = small_env();
    let rov = rov_table(topology);
    assert!(rov.deployed_count() > 0, "ROV table deployed nowhere");
    let queue = run_small(Some(&rov), EngineMode::Queue);
    let phased = run_small(Some(&rov), EngineMode::Phased { threads: 4 });
    assert_identical(&queue, &phased);
    // The policy actually bit: the ROV extension rejected imports.
    let extension_rejects: u64 = queue.run_stats.extension_rejects.values().sum();
    assert!(extension_rejects > 0, "ROV never rejected anything");
}

#[test]
fn engines_agree_at_small_scale_with_otc_and_leaker() {
    let (topology, _) = small_env();
    let table = otc_leaker_table(topology);
    assert!(table.deployed_count() >= 2, "need OTC deployers and a leaker");
    let queue = run_small(Some(&table), EngineMode::Queue);
    let phased = run_small(Some(&table), EngineMode::Phased { threads: 4 });
    assert_identical(&queue, &phased);
}

/// The rank order the phased schedule relies on: a provider always
/// ranks strictly above each of its customers (customer-cone depth),
/// and every AS is ranked.
#[test]
fn provider_ranks_exceed_customer_ranks() {
    for config in [TopologyConfig::tiny(55), StudyScale::Small.topology_config(42)] {
        let topology = TopologyBuilder::new(config).build();
        let ranks = topology.propagation_ranks();
        let mut checked = 0usize;
        let mut seen = BTreeSet::new();
        for info in topology.ases() {
            let mine = ranks.rank_of(info.asn).expect("every AS is ranked");
            seen.insert(info.asn);
            for &(neighbor, rel) in topology.neighbors(info.asn) {
                if rel == Relationship::Customer {
                    let theirs = ranks.rank_of(neighbor).expect("every AS is ranked");
                    assert!(
                        mine > theirs,
                        "provider {} rank {mine} <= customer {neighbor} rank {theirs}",
                        info.asn
                    );
                    checked += 1;
                }
            }
        }
        assert!(checked > 0, "topology has no provider/customer pairs");
        assert_eq!(seen.len(), ranks.len(), "rank table and topology disagree on AS count");
    }
}
