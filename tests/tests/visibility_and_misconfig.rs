//! Visibility-bias and misconfiguration scenarios (§5.2 and §10).

use std::collections::BTreeSet;
use std::sync::Arc;

use bh_bgp_types::community::{Community, CommunitySet};
use bh_bgp_types::time::SimTime;
use bh_core::{InferenceSession, ReferenceData};
use bh_dataplane::{classify_no_drop, NoDropCause};
use bh_integration::{fig3_topology, trigger_of};
use bh_irr::BlackholeDictionary;
use bh_routing::{
    AnnounceScope, Announcement, BgpSimulator, CollectorDeployment, CollectorSession, DataSource,
    FeedKind,
};
use bh_topology::IxpId;

fn output_source(elems: &[bh_routing::BgpElem]) -> bh_routing::SliceSource<'_> {
    bh_routing::SliceSource::new(elems)
}

fn dictionary(topology: &bh_topology::Topology) -> Arc<BlackholeDictionary> {
    let corpus = bh_irr::CorpusGenerator::new(topology, 1).generate();
    Arc::new(BlackholeDictionary::build(&corpus))
}

#[test]
fn no_export_blackholing_is_cdn_only() {
    // A NO_EXPORT-tagged request is invisible to RIS even with a direct
    // provider feed — only the CDN's internal session sees it (§5.2's
    // "unique view of the CDN").
    let (topology, cast) = fig3_topology();
    let dict = dictionary(&topology);
    let mut deployment = CollectorDeployment::default();
    deployment.add_session(CollectorSession {
        dataset: DataSource::Ris,
        collector: 0,
        peer_asn: cast.p1,
        peer_ip: "198.51.100.9".parse().unwrap(),
        feed: FeedKind::Full,
    });
    deployment.add_session(CollectorSession {
        dataset: DataSource::Cdn,
        collector: 0,
        peer_asn: cast.p1,
        peer_ip: "198.18.0.9".parse().unwrap(),
        feed: FeedKind::Internal,
    });
    let mut sim = BgpSimulator::new(&topology, deployment.clone(), 1);
    let mut communities = CommunitySet::from_classic(vec![trigger_of(&topology, cast.p1)]);
    communities.insert(Community::NO_EXPORT);
    sim.announce(
        SimTime::from_unix(10),
        &Announcement {
            origin: cast.asc1,
            prefix: "80.10.0.1/32".parse().unwrap(),
            communities,
            scope: AnnounceScope::Neighbors(vec![cast.p1]),
            irr_registered: true,
            prepend: 1,
        },
    );
    let elems = sim.drain_elems();
    assert!(elems.iter().all(|e| e.dataset == DataSource::Cdn));
    assert!(!elems.is_empty(), "CDN must see the internal route");

    let refdata = Arc::new(ReferenceData::build(&topology, &deployment));
    let mut session = InferenceSession::new(dict, refdata);
    session.ingest(&mut output_source(&elems));
    let result = session.finish();
    assert_eq!(result.events.len(), 1);
    let datasets: Vec<_> = result.events[0].datasets.iter().collect();
    assert_eq!(datasets, vec![&DataSource::Cdn], "CDN-only visibility");
}

#[test]
fn unregistered_user_is_refused_by_route_server() {
    // §10: "the route servers will only redistribute prefixes to other
    // peers if the advertising AS is authorized" — a missing IRR entry
    // means control-plane intent with zero data-plane effect.
    let (topology, cast) = fig3_topology();
    let mut deployment = CollectorDeployment::default();
    deployment.add_session(CollectorSession {
        dataset: DataSource::Pch,
        collector: 0,
        peer_asn: cast.route_server,
        peer_ip: "185.99.0.1".parse().unwrap(),
        feed: FeedKind::RouteServerView(IxpId(0)),
    });
    let mut sim = BgpSimulator::new(&topology, deployment, 1);
    let outcome = sim.announce(
        SimTime::from_unix(10),
        &Announcement {
            origin: cast.asc1,
            prefix: "80.10.0.1/32".parse().unwrap(),
            communities: CommunitySet::from_classic(vec![Community::BLACKHOLE]),
            scope: AnnounceScope::Neighbors(vec![cast.route_server]),
            irr_registered: false, // the misconfiguration
            prepend: 1,
        },
    );
    assert!(outcome.accepted_by.is_empty());
    assert!(!outcome.rejected_by.is_empty());
    assert!(sim.drain_elems().is_empty(), "nothing redistributed");

    // The §10 classifier labels this case.
    let accepted: BTreeSet<_> = outcome.accepted_by.iter().copied().collect();
    assert_eq!(classify_no_drop(false, &accepted), Some(NoDropCause::NotRedistributed));
    assert_eq!(classify_no_drop(true, &accepted), Some(NoDropCause::BrokenAnnouncement));
}

#[test]
fn registered_user_is_redistributed_and_members_drop() {
    let (topology, cast) = fig3_topology();
    let mut deployment = CollectorDeployment::default();
    deployment.add_session(CollectorSession {
        dataset: DataSource::Pch,
        collector: 0,
        peer_asn: cast.route_server,
        peer_ip: "185.99.0.1".parse().unwrap(),
        feed: FeedKind::RouteServerView(IxpId(0)),
    });
    let mut sim = BgpSimulator::new(&topology, deployment, 1);
    // The innocent peer (an IXP member) accepts host routes from the RS.
    sim.set_behavior(
        cast.as_peer,
        bh_routing::SessionBehavior {
            host_routes_from_customers: true,
            host_routes_from_peers: true,
        },
    );
    let prefix = "80.10.0.1/32".parse().unwrap();
    let outcome = sim.announce(
        SimTime::from_unix(10),
        &Announcement {
            origin: cast.asc1,
            prefix,
            communities: CommunitySet::from_classic(vec![Community::BLACKHOLE]),
            scope: AnnounceScope::Neighbors(vec![cast.route_server]),
            irr_registered: true,
            prepend: 1,
        },
    );
    assert_eq!(outcome.accepted_by, vec![cast.route_server]);
    // The honoring member holds a blackhole (null next-hop) route.
    assert!(sim.is_blackholed_at(cast.as_peer, &prefix));
    let elems = sim.drain_elems();
    assert!(elems.iter().any(|e| e.dataset == DataSource::Pch && e.prefix == prefix));
}

#[test]
fn visibility_is_a_lower_bound() {
    // A provider with no collector session anywhere, a user who targets
    // only that provider: the activity is real but invisible — the
    // paper's "this study provides a lower bound" caveat.
    let (topology, cast) = fig3_topology();
    let dict = dictionary(&topology);
    let deployment = CollectorDeployment::default();
    let refdata = Arc::new(ReferenceData::build(&topology, &deployment));
    let mut sim = BgpSimulator::new(&topology, deployment, 1);
    let outcome = sim.announce(
        SimTime::from_unix(10),
        &Announcement {
            origin: cast.asc2,
            prefix: "80.20.0.9/32".parse().unwrap(),
            communities: CommunitySet::from_classic(vec![trigger_of(&topology, cast.p2)]),
            scope: AnnounceScope::Neighbors(vec![cast.p2]),
            irr_registered: true,
            prepend: 1,
        },
    );
    assert_eq!(outcome.accepted_by, vec![cast.p2]); // really blackholed
    let elems = sim.drain_elems();
    assert!(elems.is_empty()); // nothing observable
    let mut session = InferenceSession::new(dict, refdata);
    session.ingest(&mut output_source(&elems));
    assert!(session.finish().events.is_empty()); // inference sees nothing
}
