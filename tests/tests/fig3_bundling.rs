//! The Figure 3 scenario, end to end: targeted vs bundled blackholing
//! and what each makes visible to the inference.

use std::sync::Arc;

use bh_bgp_types::community::{Community, CommunitySet};
use bh_bgp_types::time::SimTime;
use bh_core::{InferenceSession, ProviderId, ReferenceData};
use bh_integration::{fig3_topology, trigger_of};
use bh_irr::BlackholeDictionary;
use bh_routing::{
    AnnounceScope, Announcement, BgpSimulator, CollectorDeployment, CollectorSession, DataSource,
    FeedKind, SessionBehavior,
};
use bh_topology::IxpId;

fn dictionary(topology: &bh_topology::Topology) -> Arc<BlackholeDictionary> {
    let corpus = bh_irr::CorpusGenerator::new(topology, 1).generate();
    Arc::new(BlackholeDictionary::build(&corpus))
}

#[test]
fn fig3_detection_matches_the_papers_reading() {
    let (topology, cast) = fig3_topology();
    let dict = dictionary(&topology);

    // Collectors: a PCH-style session at the IXP route server, and a
    // Route-Views-style session at the innocent peer.
    let mut deployment = CollectorDeployment::default();
    deployment.add_session(CollectorSession {
        dataset: DataSource::Pch,
        collector: 0,
        peer_asn: cast.route_server,
        peer_ip: "185.99.0.1".parse().unwrap(),
        feed: FeedKind::RouteServerView(IxpId(0)),
    });
    deployment.add_session(CollectorSession {
        dataset: DataSource::RouteViews,
        collector: 0,
        peer_asn: cast.as_peer,
        peer_ip: "203.0.113.5".parse().unwrap(),
        feed: FeedKind::Full,
    });

    let mut sim = BgpSimulator::new(&topology, deployment.clone(), 1);
    // The innocent peer accepts /32s from its peers (it must, for the
    // bundle to be visible — §4.2's premise).
    sim.set_behavior(
        cast.as_peer,
        SessionBehavior { host_routes_from_customers: true, host_routes_from_peers: true },
    );

    let t = SimTime::from_unix(1_000);

    // ASC1: targeted announcements — IXP:666 to the route server and
    // P1:666 to P1, separately.
    sim.announce(
        t,
        &Announcement {
            origin: cast.asc1,
            prefix: "80.10.0.1/32".parse().unwrap(),
            communities: CommunitySet::from_classic(vec![Community::BLACKHOLE]),
            scope: AnnounceScope::Neighbors(vec![cast.route_server]),
            irr_registered: true,
            prepend: 1,
        },
    );
    sim.announce(
        t,
        &Announcement {
            origin: cast.asc1,
            prefix: "80.10.0.1/32".parse().unwrap(),
            communities: CommunitySet::from_classic(vec![trigger_of(&topology, cast.p1)]),
            scope: AnnounceScope::Neighbors(vec![cast.p1]),
            irr_registered: true,
            prepend: 1,
        },
    );

    // ASC2: bundled announcement — P1:666 + P2:666 to every neighbor,
    // including the innocent peer.
    let mut bundle = CommunitySet::from_classic(vec![
        trigger_of(&topology, cast.p1),
        trigger_of(&topology, cast.p2),
    ]);
    bundle.insert(Community::from_parts(0, 0)); // harmless noise tag
    sim.announce(
        t,
        &Announcement {
            origin: cast.asc2,
            prefix: "80.20.0.2/32".parse().unwrap(),
            communities: bundle,
            scope: AnnounceScope::AllNeighbors,
            irr_registered: true,
            prepend: 1,
        },
    );

    let elems = sim.drain_elems();
    assert!(!elems.is_empty());

    let refdata = Arc::new(ReferenceData::build(&topology, &deployment));
    let mut session = InferenceSession::new(dict, refdata);
    session.ingest(&mut bh_routing::SliceSource::new(&elems));
    let result = session.finish();

    // Two events: one per blackholed prefix.
    assert_eq!(result.events.len(), 2, "{:#?}", result.events);

    let asc1_event = result
        .events
        .iter()
        .find(|e| e.prefix == "80.10.0.1/32".parse().unwrap())
        .expect("ASC1 event");
    // Paper: "we can infer only the IXP blackholing provider but not
    // ASP1, since ASP1 does not propagate the announcement".
    assert_eq!(asc1_event.providers.iter().collect::<Vec<_>>(), vec![&ProviderId::Ixp(IxpId(0))]);
    assert_eq!(asc1_event.users.iter().collect::<Vec<_>>(), vec![&cast.asc1]);

    let asc2_event = result
        .events
        .iter()
        .find(|e| e.prefix == "80.20.0.2/32".parse().unwrap())
        .expect("ASC2 event");
    // Paper: "we are able to infer the blackholing at both providers by
    // getting the BGP feed from ASpeer", despite neither propagating.
    let mut providers: Vec<ProviderId> = asc2_event.providers.iter().copied().collect();
    providers.sort();
    assert_eq!(
        providers,
        vec![ProviderId::As(cast.p1), ProviderId::As(cast.p2)],
        "bundled detection must find both providers"
    );
    assert!(asc2_event.bundled_detection);
    assert_eq!(asc2_event.users.iter().collect::<Vec<_>>(), vec![&cast.asc2]);
}

#[test]
fn fig3_ground_truth_acceptance_matches_detection_gap() {
    // P1 accepts ASC1's targeted request even though no collector can see
    // it — the inference under-counts exactly as the paper warns.
    let (topology, cast) = fig3_topology();
    let deployment = CollectorDeployment::default();
    let mut sim = BgpSimulator::new(&topology, deployment, 1);
    let outcome = sim.announce(
        SimTime::from_unix(5),
        &Announcement {
            origin: cast.asc1,
            prefix: "80.10.0.1/32".parse().unwrap(),
            communities: CommunitySet::from_classic(vec![trigger_of(&topology, cast.p1)]),
            scope: AnnounceScope::Neighbors(vec![cast.p1]),
            irr_registered: true,
            prepend: 1,
        },
    );
    assert_eq!(outcome.accepted_by, vec![cast.p1]);
    assert!(sim.is_blackholed_at(cast.p1, &"80.10.0.1/32".parse().unwrap()));
    // And no collector elems exist at all.
    assert!(sim.drain_elems().is_empty());
}
