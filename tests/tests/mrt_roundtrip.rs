//! MRT codec round-trip properties: arbitrary update, withdrawal, and
//! state-change records must survive `MrtWriter` → `MrtReader`
//! **byte-exactly** (decode to equal values, and re-encode to the exact
//! same archive bytes), and tolerant-mode readers must account for
//! every skipped record without misaligning the stream.

use proptest::prelude::*;

use bh_bgp_types::as_path::AsPath;
use bh_bgp_types::asn::Asn;
use bh_bgp_types::attrs::{Origin, PathAttributes};
use bh_bgp_types::community::{Community, CommunitySet, LargeCommunity};
use bh_bgp_types::prefix::Ipv4Prefix;
use bh_bgp_types::time::SimTime;
use bh_bgp_types::update::BgpUpdate;
use bh_mrt::{BgpState, MrtError, MrtReader, MrtRecordBody, MrtWriter};

/// One archive record in writable form.
#[derive(Debug, Clone)]
enum Rec {
    Update { time: SimTime, peer_asn: Asn, update: Box<BgpUpdate> },
    StateChange { time: SimTime, peer_asn: Asn, old: BgpState, new: BgpState },
}

const PEER_IP: &str = "198.51.100.44";
const LOCAL_IP: &str = "192.0.2.254";
const LOCAL_ASN: u32 = 64_512;

fn write_all(records: &[Rec]) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut writer = MrtWriter::new(&mut buf);
    for rec in records {
        match rec {
            Rec::Update { time, peer_asn, update } => writer
                .write_update(
                    *time,
                    *peer_asn,
                    PEER_IP.parse().unwrap(),
                    Asn::new(LOCAL_ASN),
                    LOCAL_IP.parse().unwrap(),
                    update,
                )
                .expect("update writes"),
            Rec::StateChange { time, peer_asn, old, new } => writer
                .write_state_change(
                    *time,
                    *peer_asn,
                    PEER_IP.parse().unwrap(),
                    Asn::new(LOCAL_ASN),
                    LOCAL_IP.parse().unwrap(),
                    *old,
                    *new,
                )
                .expect("state change writes"),
        }
    }
    buf
}

type UpdateFields =
    (u64, u32, Vec<u32>, Vec<u32>, Vec<(u32, u32, u32)>, Vec<(u32, u8)>, Vec<(u32, u8)>, u8);

fn arb_update_fields() -> impl Strategy<Value = UpdateFields> {
    (
        0u64..4_000_000_000,
        1u32..4_000_000_000,
        prop::collection::vec(1u32..100_000, 0..5),
        prop::collection::vec(any::<u32>(), 0..4),
        prop::collection::vec((any::<u32>(), any::<u32>(), any::<u32>()), 0..3),
        prop::collection::vec((any::<u32>(), 8u8..=32), 0..3),
        prop::collection::vec((any::<u32>(), 8u8..=32), 0..3),
        0u8..6,
    )
}

/// Announcements, withdrawals, or both in one UPDATE. The wire codec
/// only carries path attributes alongside announcements (a withdraw has
/// no attributes to speak of), so the generator does the same — that is
/// the canonical form byte-exactness is defined over.
fn mk_update(fields: UpdateFields) -> Rec {
    let (t, peer, hops, comms, large, announced, withdrawn, state_pick) = fields;
    let _ = state_pick;
    let attrs = if announced.is_empty() {
        PathAttributes::default()
    } else {
        let mut communities =
            CommunitySet::from_classic(comms.into_iter().map(Community).collect::<Vec<_>>());
        for (a, b, c) in large {
            communities.insert_large(LargeCommunity::new(a, b, c));
        }
        PathAttributes {
            origin: Origin::Igp,
            as_path: AsPath::from_sequence(hops.into_iter().map(Asn::new).collect::<Vec<_>>()),
            next_hop: Some("203.0.113.66".parse().unwrap()),
            communities,
            ..Default::default()
        }
    };
    let mut update = BgpUpdate::new(attrs);
    for (net, len) in announced {
        update.announce_v4(Ipv4Prefix::from_raw(net, len));
    }
    for (net, len) in withdrawn {
        update.withdraw_v4(Ipv4Prefix::from_raw(net, len));
    }
    Rec::Update { time: SimTime::from_unix(t), peer_asn: Asn::new(peer), update: Box::new(update) }
}

fn mk_state_change(fields: UpdateFields) -> Rec {
    let (t, peer, _, _, _, _, _, pick) = fields;
    const STATES: [BgpState; 6] = [
        BgpState::Idle,
        BgpState::Connect,
        BgpState::Active,
        BgpState::OpenSent,
        BgpState::OpenConfirm,
        BgpState::Established,
    ];
    Rec::StateChange {
        time: SimTime::from_unix(t),
        peer_asn: Asn::new(peer),
        old: STATES[pick as usize],
        new: STATES[(pick as usize + 3) % STATES.len()],
    }
}

/// A mixed record stream: updates, withdrawals, and state changes.
fn arb_records() -> impl Strategy<Value = Vec<Rec>> {
    prop::collection::vec((any::<bool>(), arb_update_fields()), 0..24).prop_map(|draws| {
        draws
            .into_iter()
            .map(
                |(is_update, fields)| {
                    if is_update {
                        mk_update(fields)
                    } else {
                        mk_state_change(fields)
                    }
                },
            )
            .collect()
    })
}

/// Re-serialize decoded records through the writer.
fn rewrite(records: &[(SimTime, MrtRecordBody)]) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut writer = MrtWriter::new(&mut buf);
    for (time, body) in records {
        match body {
            MrtRecordBody::Message(msg) => writer
                .write_update(
                    *time,
                    msg.peer_asn,
                    msg.peer_ip,
                    msg.local_asn,
                    msg.local_ip,
                    msg.update.as_ref().expect("writer only emits update messages"),
                )
                .expect("rewrite update"),
            MrtRecordBody::StateChange(sc) => writer
                .write_state_change(
                    *time,
                    sc.peer_asn,
                    sc.peer_ip,
                    sc.local_asn,
                    sc.local_ip,
                    sc.old_state,
                    sc.new_state,
                )
                .expect("rewrite state change"),
            other => panic!("unexpected record body: {other:?}"),
        }
    }
    buf
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48 })]

    /// Decode-equality plus byte-exactness: every field survives the
    /// round trip, and re-encoding the decoded records reproduces the
    /// original archive bytes exactly.
    #[test]
    fn records_round_trip_byte_exactly(records in arb_records()) {
        let bytes = write_all(&records);
        let decoded: Vec<(SimTime, MrtRecordBody)> = MrtReader::new(&bytes[..])
            .map(|r| r.map(|rec| (rec.timestamp, rec.body)))
            .collect::<Result<_, _>>()
            .expect("own archives decode cleanly");
        prop_assert_eq!(decoded.len(), records.len());

        // Field-level equality against the inputs.
        for (rec, (time, body)) in records.iter().zip(&decoded) {
            match (rec, body) {
                (Rec::Update { time: t, peer_asn, update }, MrtRecordBody::Message(msg)) => {
                    prop_assert_eq!(t, time);
                    prop_assert_eq!(*peer_asn, msg.peer_asn);
                    prop_assert_eq!(Asn::new(LOCAL_ASN), msg.local_asn);
                    prop_assert_eq!(
                        update.as_ref(),
                        msg.update.as_ref().expect("update survives")
                    );
                }
                (
                    Rec::StateChange { time: t, peer_asn, old, new },
                    MrtRecordBody::StateChange(sc),
                ) => {
                    prop_assert_eq!(t, time);
                    prop_assert_eq!(*peer_asn, sc.peer_asn);
                    prop_assert_eq!(*old, sc.old_state);
                    prop_assert_eq!(*new, sc.new_state);
                }
                (rec, body) => prop_assert!(false, "kind mismatch: {:?} vs {:?}", rec, body),
            }
        }

        // Byte-exactness: decoded → writer → identical archive.
        prop_assert_eq!(rewrite(&decoded), bytes);
    }

    /// A truncated tail in both modes: a cut landing *on* a record
    /// boundary is a shorter-but-clean archive (every remaining record
    /// decodes, no error); a cut landing *inside* a record is a framing
    /// error (never silently skipped — that would desynchronize the
    /// stream). Either way the records before the cut decode and
    /// nothing is counted skipped.
    #[test]
    fn truncated_tail_loses_records_or_errors_in_both_modes(
        records in arb_records(),
        cut in 1usize..40,
    ) {
        let bytes = write_all(&records);
        if bytes.is_empty() {
            return Ok(());
        }
        let cut = cut.min(bytes.len() - 1).max(1);
        let torn = &bytes[..bytes.len() - cut];

        // Record boundaries of the clean archive, from the length
        // fields: a cut is only a *tear* when it lands inside a record.
        let mut boundaries = Vec::new();
        let mut offset = 0usize;
        while offset < bytes.len() {
            boundaries.push(offset);
            let len = u32::from_be_bytes(bytes[offset + 8..offset + 12].try_into().unwrap());
            offset += 12 + len as usize;
        }
        let intact = boundaries.iter().filter(|b| **b + 12 <= torn.len()).count();
        let clean_cut = boundaries.binary_search(&torn.len()).is_ok();

        for mut reader in [MrtReader::new(torn), MrtReader::tolerant(torn)] {
            let mut decoded = 0u64;
            let error = loop {
                match reader.next_record() {
                    Ok(Some(_)) => decoded += 1,
                    Ok(None) => break None,
                    Err(e) => break Some(e),
                }
            };
            if clean_cut {
                prop_assert!(error.is_none(), "a boundary cut is a clean (shorter) archive");
                prop_assert_eq!(decoded, boundaries.len() as u64 - 1);
            } else {
                prop_assert!(error.is_some(), "a mid-record tear must surface an error");
                prop_assert!(matches!(error, Some(MrtError::Codec(_))));
                prop_assert!(decoded < intact as u64 + 1);
            }
            prop_assert!(decoded < records.len() as u64);
            prop_assert_eq!(reader.records_read(), decoded);
            prop_assert_eq!(reader.records_skipped(), 0);
        }
    }

    /// Corrupted-length records (length field inflated into the next
    /// record's bytes) are never *invisible*: in both modes the read
    /// either surfaces an error, counts a skip, or decodes a record
    /// stream observably different from the clean decode — corruption
    /// can desynchronize framing (later records may resurface as
    /// `Unknown` garbage), but it can never reproduce the original
    /// stream while claiming a clean read.
    #[test]
    fn corrupted_length_field_never_reads_back_as_the_clean_stream(
        records in arb_records(),
        extra in 1u32..64,
    ) {
        if records.is_empty() {
            return Ok(());
        }
        let bytes = write_all(&records);
        let clean: Vec<_> = MrtReader::new(&bytes[..])
            .collect::<Result<_, _>>()
            .expect("clean archive decodes");

        // Inflate the first record's length field (bytes 8..12).
        let mut corrupted = bytes.clone();
        let len = u32::from_be_bytes(corrupted[8..12].try_into().unwrap());
        corrupted[8..12].copy_from_slice(&(len + extra).to_be_bytes());

        for mut reader in [MrtReader::new(&corrupted[..]), MrtReader::tolerant(&corrupted[..])] {
            let mut decoded = Vec::new();
            let error = loop {
                match reader.next_record() {
                    Ok(Some(rec)) => decoded.push(rec),
                    Ok(None) => break None,
                    Err(e) => break Some(e),
                }
            };
            prop_assert!(
                error.is_some() || reader.records_skipped() > 0 || decoded != clean,
                "corruption read back as the clean stream"
            );
        }
    }
}

/// Tolerant-mode skip accounting on a deterministically noisy archive:
/// corrupt payloads with intact framing are skipped and counted; the
/// valid records around them all decode.
#[test]
fn tolerant_mode_accounts_for_skips_between_valid_records() {
    let records = vec![
        mk_update((
            5,
            6939,
            vec![6939, 64_500],
            vec![0x0666],
            vec![],
            vec![(0x0A00_0000, 24)],
            vec![],
            0,
        )),
        mk_update((9, 6939, vec![6939], vec![], vec![], vec![], vec![(0x0B00_0000, 16)], 0)),
    ];
    let valid = write_all(&records);

    let corrupt_record = |buf: &mut Vec<u8>| {
        buf.extend_from_slice(&3u32.to_be_bytes()); // timestamp
        buf.extend_from_slice(&16u16.to_be_bytes()); // BGP4MP
        buf.extend_from_slice(&4u16.to_be_bytes()); // MESSAGE_AS4
        buf.extend_from_slice(&6u32.to_be_bytes()); // plausible length
        buf.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]);
    };

    let mut noisy = Vec::new();
    corrupt_record(&mut noisy);
    noisy.extend_from_slice(&valid);
    corrupt_record(&mut noisy);
    corrupt_record(&mut noisy);

    let mut reader = MrtReader::tolerant(&noisy[..]);
    let mut decoded = 0;
    while reader.next_record().expect("tolerant reader survives noise").is_some() {
        decoded += 1;
    }
    assert_eq!(decoded, 2, "both valid records decode");
    assert_eq!(reader.records_read(), 2);
    assert_eq!(reader.records_skipped(), 3, "every corrupt record is counted");

    // Strict mode refuses at the first corrupt record.
    let mut strict = MrtReader::new(&noisy[..]);
    assert!(strict.next_record().is_err());
    assert_eq!(strict.records_skipped(), 0);
}
