//! Golden adversarial-workload tests: the inference scored against
//! simulator-side ground truth.
//!
//! The cooperative baseline must score perfectly — every RTBH event
//! detected, nothing else flagged. The adversarial workloads then
//! demonstrate the detector's *known* failure modes with exact
//! attribution: stolen-community hijacks and leak-shaped tagged routes
//! show up as false positives of their own kind, prepend-based
//! re-routing never triggers, and deploying ROV over strict ROAs
//! monotonically destroys blackhole visibility (the RPKI-vs-RTBH
//! tension: a /32 host route is Invalid under an allocation-length
//! ROA).

use std::sync::OnceLock;

use bh_bench::{Study, StudyScale};
use bh_core::LabelKind;
use bh_routing::RejectReason;
use bh_workloads::AdversarialConfig;

fn study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| Study::build(StudyScale::Tiny, 1234))
}

#[test]
fn cooperative_baseline_scores_perfectly() {
    let run = study().adversarial_run(&AdversarialConfig::baseline(41, 3, 4.0));
    let r = &run.report;
    assert!(r.expected > 0, "no cooperative events scheduled:\n{r}");
    assert_eq!(r.false_positives, 0, "\n{r}");
    assert_eq!(r.false_negatives, 0, "\n{r}");
    assert!(r.is_perfect(), "\n{r}");
    assert_eq!(r.precision(), 1.0);
    assert_eq!(r.recall(), 1.0);
}

#[test]
fn subprefix_hijacks_degrade_precision_with_hijack_attribution() {
    let run = study().adversarial_run(&AdversarialConfig::subprefix_hijack(42, 3, 4.0));
    let r = &run.report;
    assert!(r.false_positives > 0, "hijacks went undetected as FPs:\n{r}");
    assert!(r.precision() < 1.0, "\n{r}");
    assert!(
        r.fp_by_kind.get(&LabelKind::Hijack).copied().unwrap_or(0) > 0,
        "false positives not attributed to hijacks:\n{r}"
    );
    // The cooperative population is still being found.
    assert_eq!(r.recall(), 1.0, "\n{r}");
}

#[test]
fn route_leaks_are_misclassified_as_blackholes() {
    let config = AdversarialConfig::route_leak(&study().topology, 43, 3, 4.0);
    let run = study().adversarial_run(&config);
    let r = &run.report;
    assert!(r.false_positives > 0, "leak-shaped routes never flagged:\n{r}");
    assert!(
        r.fp_by_kind.get(&LabelKind::RouteLeak).copied().unwrap_or(0) > 0,
        "false positives not attributed to leaks:\n{r}"
    );
    assert!(r.precision() < 1.0, "\n{r}");
    // The leaker ASes really did export past the valley-free rule, and
    // the inert triggers were length-rejected, not silently dropped.
    assert!(run.output.run_stats.exports_forced > 0);
    assert!(run.output.run_stats.trigger_rejects.contains_key(&RejectReason::LengthRejected));
}

#[test]
fn prepend_reroutes_are_a_clean_negative_control() {
    let run = study().adversarial_run(&AdversarialConfig::prepend_reroute(44, 3, 4.0));
    let r = &run.report;
    let reroutes = run.output.labels.iter().filter(|l| l.kind == LabelKind::Reroute).count();
    assert!(reroutes > 0, "no reroutes scheduled");
    assert_eq!(r.false_positives, 0, "a community-free reroute triggered detection:\n{r}");
    assert!(r.is_perfect(), "\n{r}");
}

#[test]
fn rov_deployment_monotonically_suppresses_detection() {
    let topology = &study().topology;
    let mut detected = Vec::new();
    for fraction in [0.0, 0.25, 0.5, 1.0] {
        let config = AdversarialConfig::rov_sweep(topology, 45, 3, 4.0, fraction);
        let run = study().adversarial_run(&config);
        if fraction > 0.0 {
            assert!(
                run.output.run_stats.import_rejects_for(RejectReason::RovInvalid) > 0,
                "ROV at fraction {fraction} rejected nothing"
            );
        }
        detected.push(run.report.detected_events);
    }
    // Same seed, same schedule: deployments are nested, so visibility
    // (and the detected-event count) can only shrink.
    assert!(detected[0] > 0, "baseline sweep point detected nothing: {detected:?}");
    for w in detected.windows(2) {
        assert!(w[1] <= w[0], "detection count increased along the sweep: {detected:?}");
    }
    assert!(
        *detected.last().unwrap() < detected[0],
        "full ROV deployment did not suppress anything: {detected:?}"
    );
}
