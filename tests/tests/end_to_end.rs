//! Full-pipeline integration: topology → corpus → dictionary → scenario →
//! collectors → (MRT round trip) → inference → validation against ground
//! truth.

use std::collections::BTreeSet;

use bh_bench::{Study, StudyRun, StudyScale};
use bh_bgp_types::prefix::Ipv4Prefix;
use bh_routing::archive::{read_updates, write_updates};
use bh_routing::{merge_streams, split_by_collector, MergedSource, MrtElemSource};

#[test]
fn inference_finds_most_visible_ground_truth_events() {
    let study = Study::build(StudyScale::Tiny, 31);
    let StudyRun { output, result, .. } = study.visibility_run(6, 8.0);
    assert!(!output.ground_truth.is_empty());

    // Ground truth prefixes that were *visible* (some elems carried them
    // tagged) — visibility limits recall, exactly as §5.2 documents.
    let truth_prefixes: BTreeSet<Ipv4Prefix> =
        output.ground_truth.iter().map(|t| t.prefix).collect();
    let inferred_prefixes: BTreeSet<Ipv4Prefix> = result.events.iter().map(|e| e.prefix).collect();

    // Precision on prefixes: everything inferred is real ground truth.
    for p in &inferred_prefixes {
        assert!(truth_prefixes.contains(p), "false positive prefix {p}");
    }
    // Recall: a solid majority of ground-truth prefixes is recovered
    // (the remainder is the paper's "lower bound" visibility gap).
    let recovered = truth_prefixes.intersection(&inferred_prefixes).count();
    assert!(
        recovered * 2 > truth_prefixes.len(),
        "recovered only {recovered}/{}",
        truth_prefixes.len()
    );
}

#[test]
fn inferred_users_and_providers_match_ground_truth() {
    let study = Study::build(StudyScale::Tiny, 32);
    let StudyRun { output, result, .. } = study.visibility_run(5, 8.0);

    for event in &result.events {
        let truths: Vec<_> =
            output.ground_truth.iter().filter(|t| t.prefix == event.prefix).collect();
        assert!(!truths.is_empty(), "event without ground truth: {event:?}");
        // The inferred user must be the real announcer — or an upstream
        // that *relayed* the tagged route toward the provider (customer
        // routes export everywhere, so an upstream carrying its
        // customer's tagged /32 to a route server legitimately appears
        // as the AS before the provider; the paper's §2 explicitly
        // allows providers to request blackholing for their cone).
        for u in &event.users {
            let ok =
                truths.iter().any(|t| t.user == *u || study.topology.in_customer_cone(*u, t.user));
            assert!(ok, "user {u} unrelated to truths for {}", event.prefix);
        }
        // Every inferred AS-provider was actually requested.
        for provider in &event.providers {
            if let Some(asn) = provider.as_asn() {
                assert!(
                    truths.iter().any(|t| t.requested.contains(&asn)),
                    "provider {asn} never requested for {}",
                    event.prefix
                );
            }
        }
    }
}

#[test]
fn mrt_archive_round_trip_preserves_inference() {
    let study = Study::build(StudyScale::Tiny, 33);
    let StudyRun { output, result: live_result, refdata, .. } = study.visibility_run(4, 6.0);

    // Split per collector (the shape real archives come in), write MRT,
    // and re-run inference over the constant-memory k-way merged stream
    // — one MrtElemSource per archive under a MergedSource, with no
    // materialized Vec<BgpElem> on the read side.
    let split = split_by_collector(&output.elems);
    let mut archives = Vec::new();
    for ((dataset, collector), elems) in &split {
        let mut buf = Vec::new();
        write_updates(&mut buf, elems).expect("mrt write");
        assert_eq!(
            read_updates(&buf[..], *dataset, *collector).expect("mrt read").len(),
            elems.len()
        );
        archives.push((*dataset, *collector, buf));
    }
    let sources: Vec<_> = archives
        .iter()
        .map(|(dataset, collector, buf)| MrtElemSource::new(&buf[..], *dataset, *collector))
        .collect();
    let mrt_result = study.infer_source(&refdata, &mut MergedSource::new(sources));

    // Against the same merged order materialized, the round trip is
    // bit-identical (MRT only normalizes NEXT_HOP, which the inference
    // ignores).
    let merged = merge_streams(split.into_values().collect());
    assert_eq!(mrt_result, study.infer(&refdata, &merged), "MRT round trip changed the inference");
    // Against the live arrival order, same-timestamp ties across
    // collectors may segment on/off events differently, but the set of
    // inferred prefixes is order-independent.
    let live: BTreeSet<Ipv4Prefix> = live_result.events.iter().map(|e| e.prefix).collect();
    let mrt: BTreeSet<Ipv4Prefix> = mrt_result.events.iter().map(|e| e.prefix).collect();
    assert_eq!(live, mrt);
}

#[test]
fn event_time_bounds_are_consistent_with_ground_truth() {
    let study = Study::build(StudyScale::Tiny, 34);
    let StudyRun { output, result, .. } = study.visibility_run(4, 6.0);
    for event in &result.events {
        if let Some(end) = event.end {
            assert!(event.start <= end, "negative duration: {event:?}");
        }
        // Inferred start must not precede the earliest ground-truth phase
        // for that prefix (collectors cannot see the future).
        let earliest = output
            .ground_truth
            .iter()
            .filter(|t| t.prefix == event.prefix)
            .map(|t| t.start())
            .min();
        if let Some(earliest) = earliest {
            assert!(
                event.start >= earliest,
                "event starts {} before ground truth {}",
                event.start,
                earliest
            );
        }
    }
}

#[test]
fn dataset_visibility_is_subset_of_all() {
    let study = Study::build(StudyScale::Tiny, 35);
    let StudyRun { result, .. } = study.visibility_run(4, 6.0);
    let mut all_prefixes = BTreeSet::new();
    for vis in result.per_dataset.values() {
        all_prefixes.extend(vis.prefixes.iter().copied());
    }
    let event_prefixes: BTreeSet<Ipv4Prefix> = result.events.iter().map(|e| e.prefix).collect();
    assert_eq!(all_prefixes, event_prefixes);
}
