//! Quickstart: the whole pipeline in one screen.
//!
//! ```text
//! cargo run --release -p bh-examples --example quickstart
//! ```
//!
//! Builds a synthetic Internet, mines the blackhole-community dictionary
//! from its IRR/web corpus, simulates one week of DDoS attacks and
//! operator reactions, runs the inference engine over the collector
//! streams, and prints the headline numbers.

use bh_analysis::{pct, Table};
use bh_bench::{Study, StudyRun, StudyScale};
use bh_core::prelude::*;
use bh_examples::section;

fn main() {
    section("1. build the Internet + mine the dictionary");
    let study = Study::build(StudyScale::Small, 7);
    println!(
        "topology: {} ASes, {} IXPs, {} ground-truth blackholing providers",
        study.topology.as_count(),
        study.topology.ixps().len(),
        study.topology.blackholing_providers().len()
    );
    let v = study.dict.validate_against(&study.topology);
    println!(
        "dictionary: {} communities for {} providers (precision {:.3}, recall {:.3})",
        study.dict.community_count(),
        study.dict.provider_count(),
        v.precision(),
        v.recall()
    );

    section("2. one week of attacks and reactions");
    let StudyRun { output, result, refdata, report, .. } = study.visibility_run(7, 10.0);
    println!(
        "scenario: {} announcements over {} days; {} ground-truth reactions",
        output.announcements,
        output.days,
        output.ground_truth.len()
    );
    println!(
        "collectors observed {} BGP elements across {} sessions",
        output.elems.len(),
        study.deployment().session_count()
    );

    section("3. inference");
    println!(
        "events: {} inferred ({} via community bundling, {} ambiguous skipped)",
        result.events.len(),
        result.stats.bundled_detections,
        result.stats.ambiguous_unresolved
    );

    section("4. visibility (Table 3 shape)");
    // The run's report was computed by the one-pass accumulators; it is
    // field-for-field equal to the batch functions over the result.
    let rows = &report.table3;
    assert_eq!(*rows, table3(&result, &refdata));
    let mut table = Table::new(
        "per-platform blackholing visibility",
        &["Source", "Providers", "Users", "Prefixes", "Direct feeds"],
    );
    for row in rows {
        table.row(vec![
            row.source.clone(),
            row.providers.to_string(),
            row.users.to_string(),
            row.prefixes.to_string(),
            pct(row.direct_feed_fraction),
        ]);
    }
    println!("{}", table.render());
    println!("run `cargo bench` to regenerate every table and figure of the paper.");
}
