//! Blackholing efficacy on the data plane (Fig. 9a/9b): traceroutes to a
//! blackholed host during and after the event.
//!
//! ```text
//! cargo run --release -p bh-examples --example efficacy_traceroute
//! ```

use std::collections::BTreeSet;

use bh_bench::{Study, StudyScale};
use bh_dataplane::{run_experiment, EfficacyInput, TracerouteSim};
use bh_examples::section;
use bh_workloads::capable_providers;

fn main() {
    let study = Study::build(StudyScale::Small, 13);

    // Pick a victim with capable providers and blackhole at all upstreams.
    let victim = study
        .topology
        .ases()
        .find(|i| !i.prefixes.is_empty() && !capable_providers(&study.topology, i.asn).is_empty())
        .expect("victim exists");
    let host = victim.prefixes[0].nth_addr(42).expect("allocation has hosts");
    let dropping: BTreeSet<_> = study.topology.providers_of(victim.asn).into_iter().collect();

    section(&format!("one traceroute to {host} (victim {})", victim.asn));
    let probe = study
        .topology
        .ases()
        .find(|i| {
            i.asn != victim.asn
                && i.tier == bh_topology::Tier::Stub
                && i.network_type != bh_topology::NetworkType::Ixp
                && !dropping.contains(&i.asn)
        })
        .expect("probe exists")
        .asn;
    let mut tracer = TracerouteSim::new(&study.topology, 99);
    let during = tracer.trace(probe, victim.asn, host, &dropping, true);
    let after = tracer.trace(probe, victim.asn, host, &BTreeSet::new(), true);
    println!("during blackholing (providers {dropping:?} discard):");
    for (i, hop) in during.hops.iter().enumerate() {
        println!(
            "  {:>2}  {}  {}",
            i + 1,
            if hop.responded { hop.address.to_string() } else { "*".into() },
            hop.asn
        );
    }
    println!("  -> destination reached: {}", during.reached);
    println!("after withdrawal:");
    for (i, hop) in after.hops.iter().enumerate() {
        println!(
            "  {:>2}  {}  {}",
            i + 1,
            if hop.responded { hop.address.to_string() } else { "*".into() },
            hop.asn
        );
    }
    println!("  -> destination reached: {}", after.reached);

    section("the full Fig. 9 experiment (Atlas-style probes, many events)");
    let inputs: Vec<EfficacyInput> = study
        .topology
        .ases()
        .filter(|i| !i.prefixes.is_empty())
        .filter(|i| !capable_providers(&study.topology, i.asn).is_empty())
        .take(60)
        .map(|i| {
            let mut dropping: BTreeSet<_> =
                study.topology.providers_of(i.asn).into_iter().collect();
            for ixp in study.topology.ixps() {
                if ixp.has_member(i.asn) {
                    dropping.extend(ixp.members.iter().copied().filter(|m| *m != i.asn));
                }
            }
            EfficacyInput {
                prefix: bh_bgp_types::prefix::Ipv4Prefix::host(
                    i.prefixes[0].nth_addr(7).expect("host exists"),
                ),
                user: i.asn,
                dropping,
            }
        })
        .collect();
    let report = run_experiment(&study.topology, &inputs, 17);
    println!(
        "{} probe measurements over {} events ({} skipped)",
        report.measurements.len(),
        report.measured_events,
        report.skipped_events
    );
    println!(
        "paths terminating earlier during blackholing: {:.1}% (paper: >80%)",
        report.fraction_terminated_earlier() * 100.0
    );
    println!(
        "mean shortening: {:.1} IP hops (paper ~5.9), {:.1} AS hops (paper 2-4)",
        report.mean_ip_shortening(),
        report.mean_as_shortening()
    );
    println!(
        "dropped at destination AS or direct upstream: {:.1}% (paper: 16%)",
        report.fraction_dropped_at_edge() * 100.0
    );
}
