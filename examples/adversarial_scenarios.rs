//! Adversarial workloads scored against simulator-side ground truth:
//! the question the original study could never answer — what does the
//! inference get *wrong*, and why?
//!
//! ```text
//! cargo run --release -p bh-examples --example adversarial_scenarios
//! ```
//!
//! Runs five labelled workloads end to end (simulate → infer → score):
//! the cooperative baseline, stolen-community subprefix hijacks,
//! leak-shaped tagged routes over misbehaving transits, prepend-based
//! re-routing as a negative control, and an ROV deployment sweep over
//! strict ROAs, then prints each confusion report.

use bh_bench::{AdversarialRun, Study, StudyScale};
use bh_examples::section;
use bh_routing::RejectReason;
use bh_workloads::AdversarialConfig;

fn main() {
    let study = Study::build(StudyScale::Tiny, 1234);
    let days = 4;
    let rate = 4.0;

    section("cooperative baseline (expect: perfect)");
    let run = study.adversarial_run(&AdversarialConfig::baseline(41, days, rate));
    println!("{}", run.report);

    section("subprefix hijacks with stolen trigger communities");
    let run = study.adversarial_run(&AdversarialConfig::subprefix_hijack(42, days, rate));
    println!("{}", run.report);

    section("route leaks: too-coarse tagged routes, leaker transits");
    let config = AdversarialConfig::route_leak(&study.topology, 43, days, rate);
    let run = study.adversarial_run(&config);
    println!("{}", run.report);
    println!(
        "  simulator: {} exports forced past valley-free, {} triggers length-rejected",
        run.output.run_stats.exports_forced,
        run.output.run_stats.trigger_rejects.get(&RejectReason::LengthRejected).unwrap_or(&0),
    );

    section("prepend re-routing (negative control, expect: silent)");
    let run = study.adversarial_run(&AdversarialConfig::prepend_reroute(44, days, rate));
    println!("{}", run.report);

    section("ROV deployment sweep under strict ROAs");
    println!(
        "{:>9} {:>9} {:>9} {:>7} {:>12}",
        "fraction", "expected", "detected", "recall", "rov-rejects"
    );
    for fraction in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let config = AdversarialConfig::rov_sweep(&study.topology, 45, days, rate, fraction);
        let AdversarialRun { output, report, .. } = study.adversarial_run(&config);
        println!(
            "{fraction:>9.2} {:>9} {:>9} {:>7.3} {:>12}",
            report.expected,
            report.detected_events,
            report.recall(),
            output.run_stats.import_rejects_for(RejectReason::RovInvalid),
        );
    }
    println!("\nstrict ROAs pin max_length to the allocation: every /32 RTBH route");
    println!("is RPKI-Invalid at a deploying AS, so ROV eats blackhole visibility.");
}
