//! Live service: the paper's pipeline as a near-real-time daemon.
//!
//! ```text
//! cargo run --release -p bh-examples --example live_service
//! ```
//!
//! Boots the whole node on a virtual clock: a `ReplayFeed` paces a
//! recorded per-collector archive fleet as *growing* files, a
//! `LiveFleet` daemon tails them through a watermark-gated merge and
//! emits sequence-numbered `BlackholeEvent`s as the closing updates
//! arrive, a `QueryRunner` + line protocol answer `status` / `report` /
//! `events-since`, and a mid-stream kill/resume shows checkpointed
//! crash recovery. The drained report is checked bit-for-bit against
//! the batch run over the same archives.

use bh_bench::{Study, StudyRun, StudyScale};
use bh_bgp_types::time::SimDuration;
use bh_examples::section;
use bh_live::{handle_command, LiveFleetConfig, LiveNode};
use bh_routing::{merge_streams, read_updates};

fn main() {
    section("1. record a workload: per-collector MRT archives");
    let study = Study::build(StudyScale::Small, 11);
    let StudyRun { output, refdata, analytics, .. } = study.visibility_run(3, 8.0);
    let archives = output.fleet_archives().expect("archives serialize");
    let start = output.elems.iter().map(|e| e.time).min().expect("non-empty scenario");
    println!(
        "{} elems across {} archives; replay origin t={}",
        output.elems.len(),
        archives.len(),
        start.unix()
    );

    section("2. boot the node: replay feed + virtual clock + daemon");
    let quantum = SimDuration::mins(1);
    let config = LiveFleetConfig {
        max_latency: SimDuration::mins(5),
        checkpoint_every: 1_024,
        ..LiveFleetConfig::default()
    };
    let mut node = LiveNode::boot(
        study.session(&refdata),
        study.analytics_pipeline(&refdata, analytics),
        &archives,
        start,
        quantum,
        config,
    );
    let query = node.query();
    let total = output.elems.len() as u64;

    // Run to roughly mid-stream, polling like a live consumer.
    let mut cursor = 0u64;
    while query.status().elems < total / 2 {
        node.tick();
        for se in query.events_since(cursor) {
            cursor = se.seq + 1;
            if se.seq < 3 {
                println!(
                    "  event seq={} prefix={} latency={}s",
                    se.seq,
                    se.event.prefix,
                    se.latency().as_secs()
                );
            }
        }
    }
    let mid = query.status();
    println!(
        "mid-stream: {} elems ingested, {} events emitted, {} checkpoints, worst latency {}s",
        mid.elems,
        mid.events_emitted,
        mid.checkpoints,
        mid.max_latency_seen.as_secs()
    );

    section("3. kill the daemon, resume from its last checkpoint");
    let died_at = node.now();
    let checkpoint = node.kill().expect("a cadence checkpoint was taken");
    println!(
        "crash at t={}: checkpoint holds {} elems, next seq {}, {} open events",
        died_at.unix(),
        checkpoint.total_elems(),
        checkpoint.next_seq(),
        checkpoint.open_events()
    );
    let mut node =
        LiveNode::resume(study.session(&refdata), &archives, died_at, quantum, config, checkpoint);
    node.run_to_completion();
    let query = node.query();

    section("4. query the drained node over the line protocol");
    for command in ["status", "report", "events-since 0"] {
        let reply = handle_command(&query, command);
        let first = reply.lines().next().unwrap_or_default();
        println!("  -> {command}\n  <- {first}");
    }

    section("5. golden check vs the batch run over the same archives");
    let streams: Vec<_> = archives
        .iter()
        .map(|a| read_updates(&a.bytes[..], a.dataset, a.collector).expect("archive decodes"))
        .collect();
    let merged = merge_streams(streams);
    let (batch_summary, batch_report) =
        study.infer_streaming_analytics(&refdata, &merged, analytics, 1_000);
    let (summary, report) = node.finish();
    assert_eq!(summary.stats, batch_summary.stats, "stats diverged");
    assert_eq!(report, batch_report, "analytics diverged");
    println!("live AnalyticsReport == batch AnalyticsReport ✓");
    println!(
        "{} blackholed prefixes, {} grouped periods, {} table-3 rows",
        report.blackholed_prefixes.len(),
        report.periods.len(),
        report.table3.len()
    );
}
