//! Fleet ingestion: the multi-collector historical path, end to end.
//!
//! ```text
//! cargo run --release -p bh-examples --example fleet_ingestion
//! ```
//!
//! Simulates a scenario, partitions the collector stream into one MRT
//! updates archive per `(platform, collector)` — the shape real
//! pipelines download from RIS/Route Views/PCH — then re-ingests the
//! whole archive set through a `CollectorFleet`: one reader thread per
//! archive, bounded channels with backpressure, a k-way timestamp merge,
//! and a sharded inference session with inline analytics. No
//! `Vec<BgpElem>` of the stream ever exists on the fleet path, and the
//! result is bit-identical to the materialized baseline.

use bh_bench::{Study, StudyRun, StudyScale};
use bh_core::prelude::*;
use bh_examples::section;
use bh_routing::{merge_streams, split_by_collector};
use bh_workloads::fleet_of;

fn main() {
    section("1. simulate and partition into per-collector archives");
    let study = Study::build(StudyScale::Small, 7);
    let StudyRun { output, refdata, analytics, .. } = study.visibility_run(7, 10.0);
    let archives = output.fleet_archives().expect("archives serialize");
    let total_bytes: usize = archives.iter().map(|a| a.bytes.len()).sum();
    println!(
        "{} elems partitioned into {} archives ({} KiB total), e.g.:",
        output.elems.len(),
        archives.len(),
        total_bytes / 1024
    );
    for archive in archives.iter().take(4) {
        println!("  {:<40} {:>7} elems", archive.name, archive.elems);
    }

    section("2. fleet → k-way merge → sharded session + inline analytics");
    let pipeline = study.analytics_pipeline(&refdata, analytics);
    let mut sharded = study.session(&refdata).build_sharded_with(4, pipeline);
    let mut stream = fleet_of(&archives).start();
    let ingested = sharded.ingest(&mut stream);
    let report = stream.finish();
    assert!(report.is_clean(), "fleet error: {:?}", report.first_error());
    let (summary, merged_pipeline) = sharded.finish_parts();
    let fleet_report = merged_pipeline.finalize();
    println!(
        "{} readers decoded {} records, shipped {} elems; {} ingested by 4 shards",
        report.archives.len(),
        report.archives.iter().map(|a| a.records_read).sum::<u64>(),
        report.total_elems(),
        ingested
    );
    println!(
        "inference: {} elems, {} tagged announcements, {} blackholed prefixes",
        summary.stats.elems,
        summary.stats.tagged_announcements,
        fleet_report.blackholed_prefixes.len()
    );

    section("3. golden check vs the materialized baseline");
    let merged = merge_streams(split_by_collector(&output.elems).into_values().collect());
    let (batch_summary, batch_report) =
        study.infer_sharded_analytics(&refdata, &merged, analytics, 4);
    assert_eq!(batch_summary.stats, summary.stats, "stats diverged");
    assert_eq!(batch_report, fleet_report, "analytics diverged");
    println!("fleet AnalyticsReport == materialized AnalyticsReport ✓");
    println!(
        "table 3 rows: {} | daily series days: {} | grouped periods: {}",
        fleet_report.table3.len(),
        fleet_report.daily.len(),
        fleet_report.periods.len()
    );
}
