//! Shared helpers for the example binaries.

/// Print a section header.
pub fn section(title: &str) {
    println!("\n==== {title} ====");
}
