//! Dictionary mining walkthrough (§4.1 of the paper).
//!
//! ```text
//! cargo run --release -p bh-examples --example dictionary_mining
//! ```
//!
//! Shows a raw IRR object from the corpus, the mined dictionary, the
//! decoy handling (the Level3-style `ASN:666` peering tag), and the
//! validation against ground truth.

use bh_bench::{Study, StudyScale};
use bh_examples::section;
use bh_irr::{CorpusGenerator, MinedKind};
use bh_topology::DocumentationChannel;

fn main() {
    let study = Study::build(StudyScale::Small, 7);
    let corpus = CorpusGenerator::new(&study.topology, 7 ^ 0x1212).generate();

    section("a sample aut-num object from the synthetic RADb");
    let sample = corpus
        .irr_objects
        .iter()
        .find(|o| o.text().to_lowercase().contains("blackhol"))
        .expect("corpus documents blackholing");
    println!("{}", sample.text());

    section("mining");
    let mined = bh_irr::DictionaryMiner.mine(&corpus);
    let blackhole = mined.iter().filter(|m| m.kind == MinedKind::Blackhole).count();
    let other = mined.iter().filter(|m| m.kind == MinedKind::Other).count();
    println!(
        "{} community observations mined: {blackhole} blackhole-tagged, {other} other",
        mined.len()
    );

    section("the documented dictionary");
    println!(
        "{} communities across {} providers",
        study.dict.community_count(),
        study.dict.provider_count()
    );
    let shared: Vec<_> = study.dict.entries().filter(|e| e.is_ambiguous()).collect();
    println!(
        "{} shared/ambiguous communities (resolved via AS path at inference time):",
        shared.len()
    );
    for entry in shared.iter().take(5) {
        println!("  {} -> {} candidate providers", entry.community, entry.providers.len());
    }

    section("decoy handling");
    let decoy = study
        .topology
        .ases()
        .find(|i| {
            i.blackhole_offering
                .as_ref()
                .is_some_and(|o| o.primary_community().value_part() == 9999)
        })
        .expect("Level3-style decoy exists");
    let tag =
        bh_bgp_types::community::Community::from_parts((decoy.asn.value() & 0xFFFF) as u16, 666);
    println!(
        "{} blackholes with {} but tags peering routes with {tag}",
        decoy.asn,
        decoy.blackhole_offering.as_ref().unwrap().primary_community()
    );
    println!(
        "dictionary lists {tag} as blackhole for {:?} (must NOT include {})",
        study.dict.providers_for(tag),
        decoy.asn
    );

    section("validation against ground truth");
    let v = study.dict.validate_against(&study.topology);
    println!(
        "precision {:.3}  recall {:.3}  undocumented leaks {}",
        v.precision(),
        v.recall(),
        v.undocumented_leaks
    );
    let undocumented = study
        .topology
        .ases()
        .filter(|i| {
            i.blackhole_offering
                .as_ref()
                .is_some_and(|o| o.documentation == DocumentationChannel::Undocumented)
        })
        .count();
    println!(
        "{undocumented} providers are undocumented — only discoverable via the Fig. 2 \
         prefix-length inference (see `cargo bench --bench fig2_prefix_length`)"
    );
}
