//! IXP blackholing end to end (Fig. 1b, Fig. 9c, §10): a member triggers
//! RFC 7999 blackholing at the route server, PCH observes it, honoring
//! members drop, non-honoring members leak.
//!
//! ```text
//! cargo run --release -p bh-examples --example ixp_blackholing
//! ```

use bh_bench::{Study, StudyScale};
use bh_bgp_types::community::{Community, CommunitySet};
use bh_bgp_types::prefix::Ipv4Prefix;
use bh_bgp_types::time::SimTime;
use bh_core::prelude::*;
use bh_dataplane::FlowSim;
use bh_examples::section;
use bh_routing::{AnnounceScope, Announcement, BgpSimulator, DataSource};

fn main() {
    let study = Study::build(StudyScale::Small, 19);
    let ixp = study
        .topology
        .ixps()
        .iter()
        .filter(|ixp| {
            study
                .topology
                .as_info(ixp.route_server_asn)
                .is_some_and(|i| i.blackhole_offering.is_some())
        })
        .max_by_key(|ixp| ixp.members.len())
        .expect("blackholing IXP exists")
        .clone();
    let offering = study
        .topology
        .as_info(ixp.route_server_asn)
        .and_then(|i| i.blackhole_offering.clone())
        .expect("offering exists");

    section(&format!("the IXP: {} ({} members)", ixp.name, ixp.members.len()));
    println!("route server: {}", ixp.route_server_asn);
    println!("peering LAN:  {} (published via PeeringDB)", ixp.peering_lan);
    println!(
        "trigger:      {} (RFC 7999: {})",
        offering.primary_community(),
        offering.primary_community() == Community::BLACKHOLE
    );
    println!("blackhole IP: {:?}", offering.blackhole_ip);

    section("a member blackholes a host route");
    let member = *ixp
        .members
        .iter()
        .find(|m| !study.topology.as_info(**m).expect("member exists").prefixes.is_empty())
        .expect("member with prefixes");
    let victim: Ipv4Prefix = Ipv4Prefix::host(
        study.topology.as_info(member).unwrap().prefixes[0].nth_addr(66).expect("host exists"),
    );
    let deployment = study.deployment();
    let mut sim = BgpSimulator::new(&study.topology, deployment.clone(), 19);
    let outcome = sim.announce(
        SimTime::from_ymd(2017, 3, 20),
        &Announcement {
            origin: member,
            prefix: victim,
            communities: CommunitySet::from_classic(vec![offering.primary_community()]),
            scope: AnnounceScope::Neighbors(vec![ixp.route_server_asn]),
            irr_registered: true,
            prepend: 1,
        },
    );
    println!("member {member} announces {victim} to the route server");
    println!("accepted by: {:?}", outcome.accepted_by);
    let honoring = ixp.members.iter().filter(|m| sim.is_blackholed_at(**m, &victim)).count();
    println!("{honoring}/{} members installed the null route", ixp.members.len());

    section("what PCH sees, and what the inference concludes");
    let elems = sim.drain_elems();
    let pch = elems.iter().filter(|e| e.dataset == DataSource::Pch).count();
    println!("{} elems total, {pch} at PCH route-server views", elems.len());
    let refdata = study.refdata();
    let mut session = study.session(&refdata).build();
    session.ingest(&mut bh_routing::SliceSource::new(&elems));
    let result = session.finish();
    for event in &result.events {
        println!(
            "inferred: prefix {} provider {:?} user {:?} datasets {:?}",
            event.prefix,
            event.providers.iter().collect::<Vec<_>>(),
            event.users.iter().collect::<Vec<_>>(),
            event.datasets.iter().collect::<Vec<_>>()
        );
        assert!(event.providers.contains(&ProviderId::Ixp(ixp.id)));
    }

    section("one week of IXP traffic to the blackholed prefix (Fig. 9c)");
    let mut flows = FlowSim::new(&ixp, 0.34, 19);
    let series = flows.week_series(SimTime::from_ymd(2017, 3, 20), 12);
    let dropped: u64 = series.iter().map(|p| p.dropped).sum();
    let forwarded: u64 = series.iter().map(|p| p.forwarded).sum();
    println!(
        "sampled packets over the week: {dropped} dropped at member ingress, \
         {forwarded} still forwarded"
    );
    println!(
        "dropped share {:.1}% (paper: >50%); {:.0}% of members drop (paper: ~1/3)",
        dropped as f64 / (dropped + forwarded).max(1) as f64 * 100.0,
        flows.dropping_member_fraction() * 100.0
    );
    let leak = flows.leak_concentration();
    let top: f64 = leak.iter().take(10).map(|(_, s)| s).sum();
    println!(
        "top-10 leaking members carry {:.0}% of the leak (paper: ~80% from <10 members)",
        top * 100.0
    );
}
