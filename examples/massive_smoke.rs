//! Bounded-time smoke test of the `Massive` scale path: build the
//! CAIDA-shaped ~75k-AS topology, compute propagation ranks, and run one
//! announce/withdraw propagation step through both engines, checking
//! they agree. CI runs this under a hard timeout so the scale path
//! cannot silently rot; `MASSIVE_AS_COUNT` shrinks it for quick local
//! runs.

use std::sync::Arc;
use std::time::Instant;

use bh_bgp_types::community::CommunitySet;
use bh_bgp_types::time::SimTime;
use bh_routing::{deploy, Announcement, BgpSimulator, CollectorConfig, EngineMode};
use bh_topology::{Tier, TopologyBuilder, TopologyConfig};

fn main() {
    let as_count: usize =
        std::env::var("MASSIVE_AS_COUNT").ok().and_then(|v| v.parse().ok()).unwrap_or(75_000);
    let t0 = Instant::now();
    let topology = TopologyBuilder::new(TopologyConfig::massive_scaled(7, as_count)).build();
    println!(
        "topology: {} ASes, {} IXPs in {:?}",
        topology.as_count(),
        topology.ixps().len(),
        t0.elapsed()
    );
    let t1 = Instant::now();
    let ranks = Arc::new(topology.propagation_ranks());
    println!("ranks: max_rank {} in {:?}", ranks.max_rank(), t1.elapsed());
    let edges: usize = topology.ases().map(|i| topology.neighbors(i.asn).len()).sum();
    println!("adjacency entries: {edges}");

    // One announce/withdraw flood through both engines from a stub
    // origin; the element streams must be bit-identical.
    let (origin, prefix) = topology
        .ases()
        .find(|i| i.tier == Tier::Stub && !i.prefixes.is_empty())
        .map(|i| (i.asn, i.prefixes[0]))
        .expect("massive topology has a stub origin with a prefix");
    let collector_config = CollectorConfig { seed: 7, ..Default::default() };
    let flood = |mode: EngineMode| {
        let t = Instant::now();
        let mut sim = BgpSimulator::new(&topology, deploy(&topology, &collector_config), 7);
        sim.set_engine_mode(mode);
        sim.set_propagation_ranks(Arc::clone(&ranks));
        sim.announce(
            SimTime::from_unix(1_000),
            &Announcement::simple(origin, prefix, CommunitySet::new()),
        );
        sim.withdraw(SimTime::from_unix(2_000), origin, prefix);
        let elems = sim.drain_elems();
        println!("{mode:?}: {} elems in {:?}", elems.len(), t.elapsed());
        elems
    };
    let queue = flood(EngineMode::Queue);
    let phased = flood(EngineMode::Phased { threads: 4 });
    assert_eq!(queue, phased, "queue and phased engines must emit identically");
    assert!(!queue.is_empty(), "flood produced no collector elements");
    println!("engines agree on {} elems", queue.len());
}
