//! The longitudinal story (Fig. 4): blackholing adoption from December
//! 2014 to March 2017 with the headline DDoS spikes.
//!
//! ```text
//! cargo run --release -p bh-examples --example ddos_timeline
//! ```

use bh_bench::{Study, StudyRun, StudyScale};
use bh_bgp_types::time::study as window;
use bh_core::daily_series;
use bh_examples::section;
use bh_workloads::SPIKES;

fn main() {
    section("simulating Dec 2014 - Mar 2017 (scaled)");
    let study = Study::build(StudyScale::Tiny, 11);
    let StudyRun { output, result, report, .. } = study.longitudinal_run(2.0);
    println!(
        "{} ground-truth reactions, {} inferred events over {} days",
        output.ground_truth.len(),
        result.events.len(),
        output.days
    );

    section("monthly activity (mean per day)");
    // The run's report already carries the daily series, computed by the
    // one-pass accumulator — identical to the batch fold.
    let series = &report.daily;
    assert_eq!(
        *series,
        daily_series(&result.events, window::longitudinal_start(), window::longitudinal_end())
    );
    println!("{:<9} {:>10} {:>8} {:>10}", "month", "providers", "users", "prefixes");
    let mut month_key = (0i64, 0u32);
    let mut acc = (0usize, 0usize, 0usize, 0usize);
    for p in series {
        let (y, m, _) = p.day.ymd();
        if (y, m) != month_key {
            if acc.3 > 0 {
                println!(
                    "{:04}-{:02}   {:>10.1} {:>8.1} {:>10.1}",
                    month_key.0,
                    month_key.1,
                    acc.0 as f64 / acc.3 as f64,
                    acc.1 as f64 / acc.3 as f64,
                    acc.2 as f64 / acc.3 as f64
                );
            }
            month_key = (y, m);
            acc = (0, 0, 0, 0);
        }
        acc = (acc.0 + p.providers, acc.1 + p.users, acc.2 + p.prefixes, acc.3 + 1);
    }

    section("the named spikes (Fig. 4c annotations)");
    for spike in SPIKES {
        let t = bh_bgp_types::time::SimTime::from_ymd(spike.year, spike.month, spike.day);
        let idx = (t.day_index() - window::longitudinal_start().day_index()) as usize;
        let (baseline, on_day) = if idx >= 7 && idx < series.len() {
            let b: f64 = series[idx - 7..idx].iter().map(|p| p.prefixes as f64).sum::<f64>() / 7.0;
            (b, series[idx].prefixes as f64)
        } else {
            (0.0, 0.0)
        };
        println!(
            "  ({}) {:04}-{:02}-{:02}  x{:>4.1}  {}",
            spike.label,
            spike.year,
            spike.month,
            spike.day,
            if baseline > 0.0 { on_day / baseline } else { 0.0 },
            spike.description
        );
    }
}
