//! Offline stand-in for [`serde`](https://docs.rs/serde).
//!
//! The build container has no access to crates.io. The workspace uses
//! serde only as `#[derive(Serialize, Deserialize)]` markers on its data
//! model (no code actually serializes through serde — rendering is done
//! by `bh_analysis::render`), so this shim provides:
//!
//! * empty [`Serialize`] / [`Deserialize`] marker traits with blanket
//!   implementations, satisfying any `T: Serialize` bound, and
//! * no-op derive macros (re-exported from `serde_derive`) that accept
//!   and ignore `#[serde(...)]` attributes such as
//!   `#[serde(transparent)]`.
//!
//! If a future PR needs real serialization, replace this shim with a
//! hand-rolled format writer or extend it with genuine trait methods —
//! see `docs/VENDORING.md`.

/// Marker standing in for `serde::Serialize`; blanket-implemented for
/// every type.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker standing in for `serde::Deserialize`; blanket-implemented for
/// every sized type.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

/// Marker standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};
