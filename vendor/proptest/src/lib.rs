//! Offline stand-in for [`proptest`](https://docs.rs/proptest).
//!
//! The build container has no access to crates.io, so this workspace
//! vendors a small property-testing harness exposing the proptest
//! surface the test suites use: the [`proptest!`] macro (including
//! `#![proptest_config(...)]`), [`strategy::Strategy`] with `prop_map`,
//! `any::<T>()`, range strategies, tuple strategies,
//! [`collection::vec`], [`collection::btree_set`], [`option::of`], and
//! the `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its inputs (via the
//!   assertion message) and panics immediately.
//! * **Deterministic.** Each test derives its RNG seed from the test
//!   name and case index, so failures reproduce exactly on re-run.
//! * **64 cases per property** by default (the real crate runs 256);
//!   override per-block with `#![proptest_config(ProptestConfig {
//!   cases: N, ..ProptestConfig::default() })]`.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

pub use test_runner::{ProptestConfig, TestCaseError};

/// Prelude mirroring `proptest::prelude`: glob-import this in tests.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Define property tests: each `#[test] fn name(arg in strategy, ...)`
/// runs the body against `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    // Internal: fully parsed form.
    (@run ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        stringify!($name),
                        case as u64,
                    );
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        ::std::panic!(
                            "property '{}' failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
    // Entry with an explicit config.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    // Entry with the default config.
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fail the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current property case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        left,
                        right
                    )));
                }
            }
        }
    };
}

/// Fail the current property case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if *left == *right {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} != {}`\n  both: {:?}",
                        stringify!($left),
                        stringify!($right),
                        left
                    )));
                }
            }
        }
    };
}
