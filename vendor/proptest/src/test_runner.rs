//! Test configuration, failure type, and the deterministic RNG.

/// Per-block configuration, mirroring `proptest::test_runner::Config`.
///
/// Construct with struct-update syntax:
/// `ProptestConfig { cases: 8, ..ProptestConfig::default() }`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled inputs to run each property against.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case (carries the assertion message).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure from a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic SplitMix64 generator seeded from the test name and
/// case index, so every failure reproduces on re-run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the property named `name`.
    pub fn for_case(name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_0000_01b3);
        }
        let mut rng = TestRng { state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15) };
        // One warm-up step decorrelates adjacent case indices.
        rng.next_u64();
        rng
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        let hi = ((self.next_u64() as u128 * bound as u128) >> 64) as usize;
        hi.min(bound - 1)
    }

    /// Uniform float in `[0, 1)` with 53-bit precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
