//! Option strategies: [`of`].

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Option<S::Value>`: `None` for roughly a quarter of
/// samples (matching the real crate's default weighting).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// Strategy returned by [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.next_u64() & 3 == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
