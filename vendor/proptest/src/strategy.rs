//! The [`Strategy`] trait and its combinators (ranges, tuples, map).

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of type `Value`.
///
/// Unlike the real crate there is no value tree / shrinking: `generate`
/// directly samples one value.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Sample one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + draw as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+),)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
);
