//! `any::<T>()`: full-domain strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Sample one value from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only: uniform on [-1e9, 1e9] rather than raw
        // bit patterns, which is what the tests here actually want.
        (rng.unit_f64() - 0.5) * 2e9
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Full-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
