//! Collection strategies: [`vec()`] and [`btree_set`].

use std::collections::BTreeSet;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// Strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.end - self.size.start;
        let len = self.size.start + if span == 0 { 0 } else { rng.below(span) };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` with a target size drawn from
/// `size`; duplicates are retried a bounded number of times, so the
/// resulting set can be smaller than the minimum only when the element
/// domain itself is too small.
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size }
}

/// Strategy returned by [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let span = self.size.end - self.size.start;
        let target = self.size.start + if span == 0 { 0 } else { rng.below(span) };
        let mut set = BTreeSet::new();
        let mut attempts = 0usize;
        while set.len() < target && attempts < target * 20 + 100 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}
