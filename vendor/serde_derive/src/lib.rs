//! No-op derive macros backing the offline `serde` shim.
//!
//! The shim's `Serialize`/`Deserialize` traits are blanket-implemented
//! marker traits, so the derives have nothing to generate — they exist
//! so `#[derive(Serialize, Deserialize)]` and `#[serde(...)]` attributes
//! compile unchanged against the vendored stand-in.

use proc_macro::TokenStream;

/// Accept `#[derive(Serialize)]` (and `#[serde(...)]` attributes) and
/// emit nothing; the shim's blanket impl already covers the type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accept `#[derive(Deserialize)]` (and `#[serde(...)]` attributes) and
/// emit nothing; the shim's blanket impl already covers the type.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
