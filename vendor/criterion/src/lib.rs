//! Offline stand-in for [`criterion`](https://docs.rs/criterion).
//!
//! The build container has no access to crates.io, so this workspace
//! vendors a small bench harness exposing the criterion surface the
//! benches use: [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`Throughput`], and the `criterion_group!` / `criterion_main!`
//! macros. Measurements are real (monotonic-clock samples with batching
//! for sub-millisecond bodies); statistics are a median over
//! `sample_size` samples rather than criterion's full bootstrap.
//!
//! Runtime knobs (environment variables read at bench startup):
//!
//! * `CRITERION_SAMPLE_SIZE` — override every bench's sample count.
//! * `CRITERION_JSON` — append one JSON line per benchmark to this file.
//! * a non-flag CLI argument filters benchmarks by substring, and
//!   `--test` runs each benchmark once (what `cargo test` expects).

use std::fmt::Write as _;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher {
    /// Measure `f`, recording `sample_size` samples (batched so that
    /// one sample lasts at least ~1 ms even for nanosecond bodies).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + batch-size estimate.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        if self.test_mode {
            self.samples = vec![once];
            return;
        }
        let batch = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 1_000_000);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }

    fn median(&self) -> Duration {
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        sorted.get(sorted.len() / 2).copied().unwrap_or_default()
    }
}

/// Benchmark registry and configuration (subset of `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10, filter: None, test_mode: false }
    }
}

impl Criterion {
    /// Set the number of samples per benchmark (builder style).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; this stand-in sizes measurement
    /// by sample count only.
    pub fn measurement_time(self, _dur: Duration) -> Self {
        self
    }

    /// Apply CLI arguments (`--test`, name filters) and environment
    /// overrides (`CRITERION_SAMPLE_SIZE`).
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                "--bench" => {}
                a if a.starts_with('-') => {}
                a => self.filter = Some(a.to_string()),
            }
        }
        if let Ok(n) = std::env::var("CRITERION_SAMPLE_SIZE") {
            if let Ok(n) = n.parse::<usize>() {
                self.sample_size = n.max(1);
            }
        }
        self
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        self.run_one(id, None, sample_size, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: None,
        }
    }

    fn run_one<F>(&mut self, id: &str, throughput: Option<Throughput>, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher { samples: Vec::new(), sample_size, test_mode: self.test_mode };
        f(&mut bencher);
        let median = bencher.median();
        let mut line = format!("{id:<50} time: {}", fmt_duration(median));
        let per_sec = |count: u64| {
            let secs = median.as_secs_f64();
            if secs > 0.0 {
                count as f64 / secs
            } else {
                f64::INFINITY
            }
        };
        match throughput {
            Some(Throughput::Elements(n)) => {
                let _ = write!(line, "  thrpt: {:.3e} elem/s", per_sec(n));
            }
            Some(Throughput::Bytes(n)) => {
                let _ = write!(line, "  thrpt: {:.3e} B/s", per_sec(n));
            }
            None => {}
        }
        println!("{line}");
        self.write_json(id, median, throughput, bencher.samples.len());
    }

    fn write_json(
        &self,
        id: &str,
        median: Duration,
        throughput: Option<Throughput>,
        samples: usize,
    ) {
        let Ok(path) = std::env::var("CRITERION_JSON") else {
            return;
        };
        let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(&path) else {
            eprintln!("warning: cannot open CRITERION_JSON={path}");
            return;
        };
        let (kind, count) = match throughput {
            Some(Throughput::Elements(n)) => ("elements", n),
            Some(Throughput::Bytes(n)) => ("bytes", n),
            None => ("none", 0),
        };
        // Per-second throughput, guarded so the JSON never contains a
        // non-finite literal (`inf` would poison downstream parsers).
        let secs = median.as_secs_f64();
        let per_sec = if secs > 0.0 && count > 0 { count as f64 / secs } else { 0.0 };
        let _ = writeln!(
            file,
            "{{\"id\":\"{id}\",\"median_ns\":{},\"throughput_kind\":\"{kind}\",\
             \"throughput_per_iter\":{count},\"per_sec\":{per_sec:.3},\"samples\":{samples}}}",
            median.as_nanos(),
        );
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Annotate per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Accepted for API compatibility (see [`Criterion::measurement_time`]).
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{id}", self.name);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&full_id, self.throughput, sample_size, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.4} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.4} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.4} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Define a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        #[allow(missing_docs)]
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_filters() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u32;
        c.bench_function("smoke/fast", |b| b.iter(|| runs += 1));
        assert!(runs > 0);

        c.filter = Some("no-such-bench".to_string());
        let mut skipped = true;
        c.bench_function("smoke/other", |b| {
            skipped = false;
            b.iter(|| ())
        });
        assert!(skipped, "filtered bench must not run");
    }

    #[test]
    fn group_applies_throughput_and_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(100));
        group.sample_size(2);
        group.bench_function("one", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(50)), "50 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.5000 ms");
    }
}
