//! Slice sampling helpers ([`SliceRandom`]).

use crate::{index_below, RngCore};

/// Random selection from slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type of the underlying slice.
    type Item;

    /// Pick one element uniformly at random (`None` on an empty slice).
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Pick `amount` *distinct* elements (fewer if the slice is shorter),
    /// in random order.
    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> SliceChooseIter<'_, Self::Item>;

    /// Shuffle the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[index_below(rng, self.len())])
        }
    }

    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> SliceChooseIter<'_, T> {
        let amount = amount.min(self.len());
        // Partial Fisher–Yates over an index vector: O(len) setup,
        // exactly `amount` distinct indices out.
        let mut indices: Vec<usize> = (0..self.len()).collect();
        for i in 0..amount {
            let j = i + index_below(rng, indices.len() - i);
            indices.swap(i, j);
        }
        indices.truncate(amount);
        SliceChooseIter { slice: self, indices: indices.into_iter() }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, index_below(rng, i + 1));
        }
    }
}

/// Iterator returned by [`SliceRandom::choose_multiple`].
#[derive(Debug)]
pub struct SliceChooseIter<'a, T> {
    slice: &'a [T],
    indices: std::vec::IntoIter<usize>,
}

impl<'a, T> Iterator for SliceChooseIter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        self.indices.next().map(|i| &self.slice[i])
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.indices.size_hint()
    }
}

impl<T> ExactSizeIterator for SliceChooseIter<'_, T> {}
