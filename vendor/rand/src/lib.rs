//! Offline stand-in for [`rand`](https://docs.rs/rand) 0.8.
//!
//! The build container has no access to crates.io, so this workspace
//! vendors a small deterministic PRNG exposing the rand surface the
//! crates use: [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! (`seed_from_u64`, `from_seed`), [`rngs::StdRng`],
//! [`seq::SliceRandom`] (`choose`, `choose_multiple`, `shuffle`), and
//! [`distributions::WeightedIndex`].
//!
//! The generator is SplitMix64 — not cryptographic, but statistically
//! solid for the simulation workloads here, and `seed_from_u64` stays
//! deterministic across platforms, which the reproduction pipeline
//! relies on for reproducible figures.

use std::ops::{Range, RangeInclusive};

pub mod distributions;
pub mod rngs;
pub mod seq;

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Produce the next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution as _;
        distributions::Standard.sample(self)
    }

    /// Sample uniformly from `range` (`a..b` or `a..=b`, integer or float).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`. Out-of-range values behave as
    /// if clamped to `[0, 1]` (`p >= 1` is always true, `p <= 0` or NaN
    /// never); upstream rand panics instead, so don't rely on this.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }

    /// Sample a value from an explicit [`distributions::Distribution`].
    fn sample<T, D>(&mut self, distr: D) -> T
    where
        D: distributions::Distribution<T>,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a seed, with a convenience
/// path from a bare `u64`.
pub trait SeedableRng: Sized {
    /// The raw seed type (byte array for [`rngs::StdRng`]).
    type Seed: Default + AsMut<[u8]>;

    /// Build a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build a generator by expanding a `u64` through SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Advance a SplitMix64 state and return the next output.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map 64 random bits onto `[0, 1)` with 53-bit precision.
pub(crate) fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Sample a uniform index in `[0, bound)`.
pub(crate) fn index_below<R: RngCore + ?Sized>(rng: &mut R, bound: usize) -> usize {
    debug_assert!(bound > 0);
    // Multiply-shift (Lemire) keeps bias negligible for any sane bound.
    let hi = ((rng.next_u64() as u128 * bound as u128) >> 64) as usize;
    hi.min(bound - 1)
}

impl<T: distributions::uniform::SampleUniform> distributions::uniform::SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: distributions::uniform::SampleUniform> distributions::uniform::SampleRange<T>
    for RangeInclusive<T>
{
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_in(rng, start, end, true)
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, WeightedIndex};
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3u8..=5);
            assert!((3..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn choose_and_choose_multiple_cover_slice() {
        let mut rng = StdRng::seed_from_u64(9);
        let items = [1, 2, 3, 4, 5];
        assert!(items.choose(&mut rng).is_some());
        let picked: Vec<_> = items.choose_multiple(&mut rng, 3).copied().collect();
        assert_eq!(picked.len(), 3);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "choose_multiple must be distinct");
    }

    #[test]
    fn weighted_index_prefers_heavy_items() {
        let mut rng = StdRng::seed_from_u64(3);
        let dist = WeightedIndex::new([1.0f64, 0.0, 9.0]).unwrap();
        let mut counts = [0u32; 3];
        for _ in 0..10_000 {
            counts[dist.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5);
    }

    #[test]
    fn empty_weights_error() {
        assert!(WeightedIndex::<f64>::new(Vec::<f64>::new()).is_err());
        assert!(WeightedIndex::new([0.0f64, 0.0]).is_err());
    }
}
