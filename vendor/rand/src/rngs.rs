//! Concrete generators ([`StdRng`]).

use crate::{splitmix64, RngCore, SeedableRng};

/// Deterministic SplitMix64 generator standing in for rand's `StdRng`.
///
/// Unlike the real `StdRng` (ChaCha-based), this one is *documented* to
/// be reproducible across releases — the whole pipeline seeds it via
/// [`SeedableRng::seed_from_u64`] to regenerate identical figures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut first = [0u8; 8];
        first.copy_from_slice(&seed[..8]);
        StdRng { state: u64::from_le_bytes(first) }
    }
}
