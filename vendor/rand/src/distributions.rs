//! Distributions: [`Standard`], [`WeightedIndex`], and the
//! [`uniform::SampleRange`] plumbing behind `Rng::gen_range`.

use std::marker::PhantomData;

use crate::{unit_f64, RngCore};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draw one value using `rng`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The "natural" distribution for a type: uniform over the full domain
/// for integers, uniform on `[0, 1)` for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Error cases for [`WeightedIndex::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightedError {
    /// The weight iterator was empty.
    NoItem,
    /// A weight was negative or not finite.
    InvalidWeight,
    /// Every weight was zero.
    AllWeightsZero,
}

impl std::fmt::Display for WeightedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeightedError::NoItem => write!(f, "no items to sample from"),
            WeightedError::InvalidWeight => write!(f, "a weight was invalid"),
            WeightedError::AllWeightsZero => write!(f, "all weights were zero"),
        }
    }
}

impl std::error::Error for WeightedError {}

/// Borrow-or-own plumbing for [`WeightedIndex::new`], mirroring
/// `rand::distributions::uniform::SampleBorrow`: only `X` and `&X`
/// implement it, which keeps the weight type inferable.
pub trait SampleBorrow<X> {
    /// The weight value.
    fn borrow_weight(&self) -> X;
}

impl<X: Weight> SampleBorrow<X> for X {
    fn borrow_weight(&self) -> X {
        *self
    }
}

impl<X: Weight> SampleBorrow<X> for &X {
    fn borrow_weight(&self) -> X {
        **self
    }
}

/// Weight types accepted by [`WeightedIndex`].
pub trait Weight: Copy {
    /// Convert to `f64` for cumulative bookkeeping.
    fn to_f64(self) -> f64;
}

macro_rules! impl_weight {
    ($($t:ty),*) => {$(
        impl Weight for $t {
            fn to_f64(self) -> f64 {
                self as f64
            }
        }
    )*};
}

impl_weight!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Distribution over `0..n` with per-index weights, as in
/// `rand::distributions::WeightedIndex`.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedIndex<X> {
    cumulative: Vec<f64>,
    total: f64,
    _weight: PhantomData<X>,
}

impl<X: Weight> WeightedIndex<X> {
    /// Build from any iterator of weights (owned values or references).
    pub fn new<I>(weights: I) -> Result<Self, WeightedError>
    where
        I: IntoIterator,
        I::Item: SampleBorrow<X>,
    {
        let mut cumulative = Vec::new();
        let mut total = 0.0f64;
        for w in weights {
            let w = w.borrow_weight().to_f64();
            if !w.is_finite() || w < 0.0 {
                return Err(WeightedError::InvalidWeight);
            }
            total += w;
            cumulative.push(total);
        }
        if cumulative.is_empty() {
            return Err(WeightedError::NoItem);
        }
        if total <= 0.0 {
            return Err(WeightedError::AllWeightsZero);
        }
        Ok(WeightedIndex { cumulative, total, _weight: PhantomData })
    }
}

impl<X: Weight> Distribution<usize> for WeightedIndex<X> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        let target = unit_f64(rng.next_u64()) * self.total;
        // First cumulative weight strictly above the target; zero-weight
        // indices have cumulative == previous and are never selected.
        let i = self.cumulative.partition_point(|&c| c <= target);
        i.min(self.cumulative.len() - 1)
    }
}

/// Uniform-range plumbing behind `Rng::gen_range`.
pub mod uniform {
    use crate::{unit_f64, RngCore};

    /// Types usable as the argument of `Rng::gen_range` (implemented for
    /// `Range` and `RangeInclusive` of every [`SampleUniform`] type).
    pub trait SampleRange<T> {
        /// Draw one value uniformly from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Primitive types that support uniform range sampling. A single
    /// blanket `SampleRange` impl hangs off this trait so integer
    /// literal inference works exactly as with the real crate.
    pub trait SampleUniform: Sized + Copy + PartialOrd {
        /// Uniform draw from `[start, end)` (or `[start, end]` when
        /// `inclusive`).
        fn sample_in<R: RngCore + ?Sized>(
            rng: &mut R,
            start: Self,
            end: Self,
            inclusive: bool,
        ) -> Self;
    }

    macro_rules! impl_sample_uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_in<R: RngCore + ?Sized>(
                    rng: &mut R,
                    start: Self,
                    end: Self,
                    inclusive: bool,
                ) -> Self {
                    let span = (end as i128 - start as i128) as u128 + inclusive as u128;
                    assert!(span > 0, "gen_range: empty range");
                    let draw = (rng.next_u64() as u128 * span) >> 64;
                    (start as i128 + draw as i128) as $t
                }
            }
        )*};
    }

    impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_sample_uniform_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_in<R: RngCore + ?Sized>(
                    rng: &mut R,
                    start: Self,
                    end: Self,
                    _inclusive: bool,
                ) -> Self {
                    assert!(start <= end, "gen_range: empty range");
                    start + (unit_f64(rng.next_u64()) as $t) * (end - start)
                }
            }
        )*};
    }

    impl_sample_uniform_float!(f32, f64);
}
