//! Offline stand-in for [`bytes`](https://docs.rs/bytes).
//!
//! The build container has no access to crates.io, so this workspace
//! vendors a small buffer library exposing the surface the BGP/MRT
//! codecs use: [`Bytes`] (cheaply cloneable, sliceable, consumed via
//! [`Buf`]), [`BytesMut`] (growable, consumed via [`Buf`], filled via
//! [`BufMut`], frozen into [`Bytes`]), and the big-endian
//! `get_*`/`put_*` accessors. `Bytes` shares its backing storage
//! through an [`Arc`], so `clone`/`split_to`/`slice` are O(1) and
//! allocation-free, like the real crate.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Read-side of a buffer: a cursor over bytes, in big-endian order.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes as a slice.
    fn chunk(&self) -> &[u8];

    /// Consume `cnt` bytes.
    ///
    /// # Panics
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Consume one signed byte.
    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    /// Consume a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        self.copy_to_slice(&mut raw);
        u16::from_be_bytes(raw)
    }

    /// Consume a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_be_bytes(raw)
    }

    /// Consume a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_be_bytes(raw)
    }

    /// Consume a big-endian `i32`.
    fn get_i32(&mut self) -> i32 {
        self.get_u32() as i32
    }

    /// Consume `dst.len()` bytes into `dst`.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "copy_to_slice: not enough bytes ({} < {})",
            self.remaining(),
            dst.len()
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

/// Write-side of a buffer: appends values in big-endian order.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `i32`.
    fn put_i32(&mut self, v: i32) {
        self.put_u32(v as u32);
    }
}

/// Immutable, cheaply cloneable byte buffer (shared backing storage).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wrap a static byte slice (copied; the real crate borrows).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Unconsumed length.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is exhausted.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest.
    /// O(1) — both halves share storage.
    ///
    /// # Panics
    /// Panics if `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes { data: Arc::clone(&self.data), start: self.start, end: self.start + at };
        self.start += at;
        head
    }

    /// A sub-buffer over `range` of the unconsumed bytes, O(1).
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }

    /// Copy the unconsumed bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.chunk().to_vec()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes { data: Arc::new(data), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }
}

impl From<BytesMut> for Bytes {
    fn from(buf: BytesMut) -> Self {
        buf.freeze()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.chunk() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.chunk() == other.chunk()
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.chunk().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.chunk() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.chunk() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.chunk() == other.as_slice()
    }
}

/// Growable byte buffer with a read cursor; freeze into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
    read: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes pre-reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { inner: Vec::with_capacity(cap), read: 0 }
    }

    /// Unconsumed length.
    pub fn len(&self) -> usize {
        self.inner.len() - self.read
    }

    /// Whether the buffer is exhausted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all contents.
    pub fn clear(&mut self) {
        self.inner.clear();
        self.read = 0;
    }

    /// Reserve space for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }

    /// Append raw bytes (alias of [`BufMut::put_slice`], as on `Vec`).
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    /// Split off and return the first `at` unconsumed bytes.
    ///
    /// # Panics
    /// Panics if `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self.inner[self.read..self.read + at].to_vec();
        self.read += at;
        BytesMut { inner: head, read: 0 }
    }

    /// Convert the unconsumed bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        if self.read == 0 {
            Bytes::from(self.inner)
        } else {
            Bytes::from(self.inner[self.read..].to_vec())
        }
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.inner[self.read..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.read += cnt;
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let read = self.read;
        &mut self.inner[read..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        BytesMut { inner: src.to_vec(), read: 0 }
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.chunk() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut buf = BytesMut::new();
        buf.put_u8(0xAB);
        buf.put_u16(0x1234);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_slice(b"xyz");
        let mut frozen = buf.freeze();
        assert_eq!(frozen.len(), 10);
        assert_eq!(frozen.get_u8(), 0xAB);
        assert_eq!(frozen.get_u16(), 0x1234);
        assert_eq!(frozen.get_u32(), 0xDEAD_BEEF);
        let mut rest = [0u8; 3];
        frozen.copy_to_slice(&mut rest);
        assert_eq!(&rest, b"xyz");
        assert!(!frozen.has_remaining());
    }

    #[test]
    fn split_to_shares_storage() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(head, [1u8, 2][..]);
        assert_eq!(b, [3u8, 4, 5][..]);
        let tail = b.slice(1..3);
        assert_eq!(tail, [4u8, 5][..]);
    }

    #[test]
    #[should_panic(expected = "copy_to_slice")]
    fn copy_past_end_panics() {
        let mut b = Bytes::from(vec![1u8]);
        let mut dst = [0u8; 2];
        b.copy_to_slice(&mut dst);
    }
}
