//! Text mining: the NLTK substitute.
//!
//! The paper "appl\[ies\] natural language processing techniques … to extract
//! all community values relevant for BGP blackholing by searching for
//! lemmas of certain text patterns, and certain keywords e.g. 'blackhole',
//! or 'null route'". This module implements the same idea from scratch:
//! tokenization, keyword stemming, community-token extraction, and
//! line-scoped association.

use bh_bgp_types::asn::Asn;
use bh_bgp_types::community::{Community, LargeCommunity};

use crate::corpus::{Corpus, IrrObject, WebPage};

/// What a mined community appears to be used for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MinedKind {
    /// Associated with blackhole/null-route/RTBH phrasing.
    Blackhole,
    /// Documented, but for some other purpose (TE, tags, location).
    Other,
}

/// Usage class of a documented community — the Krenc et al. taxonomy
/// refining [`MinedKind::Other`] into actionable classes.
///
/// The declaration order is the resolution precedence: when one
/// (provider, community) pair is observed under several classes, the
/// *smallest* (strongest) class wins, so `Blackhole` beats `Action`
/// beats `Location` beats `Informational`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CommunityClass {
    /// Blackhole trigger (RTBH).
    Blackhole,
    /// Actionable traffic engineering: prepend, preference, export
    /// control.
    Action,
    /// Geographic/ingress location tagging.
    Location,
    /// Informational marking (relationship tags, provenance).
    Informational,
}

impl CommunityClass {
    /// All classes in precedence order.
    pub const ALL: [CommunityClass; 4] = [
        CommunityClass::Blackhole,
        CommunityClass::Action,
        CommunityClass::Location,
        CommunityClass::Informational,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            CommunityClass::Blackhole => "blackhole",
            CommunityClass::Action => "action",
            CommunityClass::Location => "location",
            CommunityClass::Informational => "informational",
        }
    }
}

/// One mined community observation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinedCommunity {
    /// The network whose document mentioned it.
    pub asn: Asn,
    /// The classic community, if the token was `A:B`.
    pub community: Option<Community>,
    /// The large community, if the token was `A:B:C`.
    pub large: Option<LargeCommunity>,
    /// Mined semantics (binary; derived from `class`).
    pub kind: MinedKind,
    /// Mined usage class.
    pub class: CommunityClass,
    /// Minimum accepted prefix length, when the surrounding text
    /// documents one (e.g. "/25-/32 accepted").
    pub min_accepted_length: Option<u8>,
}

/// The miner.
#[derive(Debug, Clone, Copy, Default)]
pub struct DictionaryMiner;

/// Keyword stems whose presence marks a line as blackhole-related.
/// Stem matching subsumes "blackhole", "blackholing", "black-hole",
/// "null-route", "null route", "nullroute", "RTBH", "discard(s|ed|ing)".
const BLACKHOLE_STEMS: &[&str] = &["blackhol", "nullrout", "rtbh", "discard"];

/// Bigram stems: consecutive token pairs that together mark blackholing.
const BLACKHOLE_BIGRAMS: &[(&str, &str)] = &[("black", "hol"), ("null", "rout")];

/// Tokenize a line: lowercase, split on everything that is not
/// alphanumeric or ':' (kept so community tokens survive), dropping
/// empty tokens.
pub fn tokenize(line: &str) -> Vec<String> {
    line.to_lowercase()
        .split(|ch: char| !(ch.is_ascii_alphanumeric() || ch == ':'))
        .map(|t| t.trim_matches(':').to_string())
        .filter(|t| !t.is_empty())
        .collect()
}

/// Strong blackhole stems: unambiguous even when class keywords appear
/// on the same line. `discard` is deliberately excluded — it is the weak
/// stem that non-blackhole prose ("we discard the MED on export") also
/// uses, which is exactly what the class-aware pass disambiguates.
const STRONG_BLACKHOLE_STEMS: &[&str] = &["blackhol", "nullrout", "rtbh"];

/// Does the token start with any blackhole stem?
fn is_blackhole_token(token: &str) -> bool {
    BLACKHOLE_STEMS.iter().any(|stem| token.starts_with(stem))
}

/// Does the token list contain blackhole phrasing (stems or bigrams)?
pub fn line_is_blackhole(tokens: &[String]) -> bool {
    if tokens.iter().any(|t| is_blackhole_token(t)) {
        return true;
    }
    line_has_blackhole_bigram(tokens)
}

fn line_has_blackhole_bigram(tokens: &[String]) -> bool {
    tokens
        .windows(2)
        .any(|w| BLACKHOLE_BIGRAMS.iter().any(|(a, b)| w[0].starts_with(a) && w[1].starts_with(b)))
}

/// Class hint carried by a single token, if any.
fn class_hint(token: &str) -> Option<CommunityClass> {
    if token.starts_with("prepend")
        || token == "preference"
        || token.starts_with("export")
        || token.starts_with("engineer")
    {
        return Some(CommunityClass::Action);
    }
    if token.starts_with("location")
        || token.starts_with("region")
        || token.starts_with("learn")
        || token.starts_with("ingress")
        || token.starts_with("presence")
    {
        return Some(CommunityClass::Location);
    }
    if token.starts_with("peering")
        || token.starts_with("customer")
        || token == "marks"
        || token.starts_with("tagged")
        || token.starts_with("informational")
    {
        return Some(CommunityClass::Informational);
    }
    None
}

/// Classify one line of documentation prose.
///
/// Strong blackhole stems win outright; otherwise the strongest class
/// keyword on the line decides; a lone weak `discard` still reads as
/// blackholing; anything left is informational.
pub fn classify_line(tokens: &[String]) -> CommunityClass {
    let strong =
        tokens.iter().any(|t| STRONG_BLACKHOLE_STEMS.iter().any(|stem| t.starts_with(stem)))
            || line_has_blackhole_bigram(tokens);
    if strong {
        return CommunityClass::Blackhole;
    }
    if let Some(best) = tokens.iter().filter_map(|t| class_hint(t)).min() {
        return best;
    }
    if tokens.iter().any(|t| t.starts_with("discard")) {
        return CommunityClass::Blackhole;
    }
    CommunityClass::Informational
}

/// Parse a community token: `A:B` (classic) or `A:B:C` (large).
pub fn parse_community_token(token: &str) -> (Option<Community>, Option<LargeCommunity>) {
    let parts: Vec<&str> = token.split(':').collect();
    match parts.as_slice() {
        [a, b] => {
            if let (Ok(a), Ok(b)) = (a.parse::<u16>(), b.parse::<u16>()) {
                return (Some(Community::from_parts(a, b)), None);
            }
            (None, None)
        }
        [a, b, c] => {
            if let (Ok(a), Ok(b), Ok(c)) = (a.parse::<u32>(), b.parse::<u32>(), c.parse::<u32>()) {
                return (None, Some(LargeCommunity::new(a, b, c)));
            }
            (None, None)
        }
        _ => (None, None),
    }
}

/// Extract a documented minimum accepted prefix length from tokens like
/// `25` in "/25-/32 accepted" (tokenizer strips '/'; we look for the
/// pattern `N` followed within the line by `32`).
fn extract_min_length(line: &str) -> Option<u8> {
    // Look for "/NN" occurrences; the smallest in 8..32 is the minimum
    // accepted length when the line also mentions 32 or "more specific".
    let mut lengths: Vec<u8> = Vec::new();
    let bytes = line.as_bytes();
    for (i, _) in line.match_indices('/') {
        let rest = &bytes[i + 1..];
        let digits: String =
            rest.iter().take_while(|b| b.is_ascii_digit()).map(|&b| b as char).collect();
        if let Ok(v) = digits.parse::<u8>() {
            if (8..=32).contains(&v) {
                lengths.push(v);
            }
        }
    }
    let min = lengths.iter().copied().min()?;
    if min < 32 && (lengths.contains(&32) || line.contains("more specific")) {
        Some(if line.contains("more specific than") { min + 1 } else { min })
    } else {
        None
    }
}

impl DictionaryMiner {
    /// Mine every document in the corpus with the class-aware pass.
    pub fn mine(&self, corpus: &Corpus) -> Vec<MinedCommunity> {
        self.mine_with(corpus, false)
    }

    /// Mine with the legacy stem-only pass: any line containing a
    /// blackhole stem — including the weak `discard` — is a blackhole
    /// line, everything else is informational. This is the
    /// dictionary-only baseline that class-aware mining and negative
    /// controls are scored against.
    pub fn mine_naive(&self, corpus: &Corpus) -> Vec<MinedCommunity> {
        self.mine_with(corpus, true)
    }

    fn mine_with(&self, corpus: &Corpus, naive: bool) -> Vec<MinedCommunity> {
        let mut out = Vec::new();
        for obj in &corpus.irr_objects {
            let remarks =
                obj.lines.iter().filter_map(|l| l.strip_prefix("remarks:")).map(str::trim);
            self.mine_lines(obj.asn, remarks, naive, &mut out);
        }
        for page in &corpus.web_pages {
            self.mine_lines(page.asn, page.paragraphs.iter().map(String::as_str), naive, &mut out);
        }
        // Private notes are structured and pre-validated.
        for note in &corpus.private_notes {
            for &community in &note.communities {
                out.push(MinedCommunity {
                    asn: note.asn,
                    community: Some(community),
                    large: None,
                    kind: MinedKind::Blackhole,
                    class: CommunityClass::Blackhole,
                    min_accepted_length: None,
                });
            }
            if let Some(large) = note.large {
                out.push(MinedCommunity {
                    asn: note.asn,
                    community: None,
                    large: Some(large),
                    kind: MinedKind::Blackhole,
                    class: CommunityClass::Blackhole,
                    min_accepted_length: None,
                });
            }
        }
        out
    }

    /// Mine one IRR object (only `remarks:` lines carry policy prose).
    pub fn mine_irr(&self, obj: &IrrObject, out: &mut Vec<MinedCommunity>) {
        let remarks = obj.lines.iter().filter_map(|l| l.strip_prefix("remarks:")).map(str::trim);
        self.mine_lines(obj.asn, remarks, false, out);
    }

    /// Mine one web page.
    pub fn mine_web(&self, page: &WebPage, out: &mut Vec<MinedCommunity>) {
        self.mine_lines(page.asn, page.paragraphs.iter().map(String::as_str), false, out);
    }

    fn mine_lines<'a>(
        &self,
        asn: Asn,
        lines: impl Iterator<Item = &'a str>,
        naive: bool,
        out: &mut Vec<MinedCommunity>,
    ) {
        for line in lines {
            let tokens = tokenize(line);
            let class = if naive {
                if line_is_blackhole(&tokens) {
                    CommunityClass::Blackhole
                } else {
                    CommunityClass::Informational
                }
            } else {
                classify_line(&tokens)
            };
            let blackhole = class == CommunityClass::Blackhole;
            let min_len = extract_min_length(line);
            for token in &tokens {
                let (community, large) = parse_community_token(token);
                if community.is_none() && large.is_none() {
                    continue;
                }
                out.push(MinedCommunity {
                    asn,
                    community,
                    large,
                    kind: if blackhole { MinedKind::Blackhole } else { MinedKind::Other },
                    class,
                    min_accepted_length: if blackhole { min_len } else { None },
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mine_line(line: &str) -> Vec<MinedCommunity> {
        let obj = IrrObject { asn: Asn::new(3356), lines: vec![format!("remarks:     {line}")] };
        let mut out = Vec::new();
        DictionaryMiner.mine_irr(&obj, &mut out);
        out
    }

    #[test]
    fn tokenizer_keeps_communities() {
        let tokens = tokenize("use 3356:9999 to null-route attack traffic!");
        assert!(tokens.contains(&"3356:9999".to_string()));
        assert!(tokens.contains(&"null".to_string()));
        assert!(tokens.contains(&"rout".to_string()) || tokens.contains(&"route".to_string()));
    }

    #[test]
    fn stems_cover_keyword_family() {
        for line in [
            "blackhole community",
            "blackholing service",
            "black-hole filtering",
            "black hole trigger",
            "null route the prefix",
            "null-route attack traffic",
            "nullroute via 65535:666",
            "RTBH supported",
            "provider discards traffic",
        ] {
            assert!(line_is_blackhole(&tokenize(line)), "{line} should match");
        }
        for line in [
            "set local-preference 80",
            "prepend 3x to peers",
            "tagged on peering routes",
            "routes learned at FRA",
        ] {
            assert!(!line_is_blackhole(&tokenize(line)), "{line} must not match");
        }
    }

    #[test]
    fn community_token_parsing() {
        assert_eq!(parse_community_token("3356:9999").0, Some(Community::from_parts(3356, 9999)));
        assert_eq!(
            parse_community_token("196608:666:0").1,
            Some(LargeCommunity::new(196_608, 666, 0))
        );
        assert_eq!(parse_community_token("70000:1"), (None, None)); // >16-bit half
        assert_eq!(parse_community_token("foo:bar"), (None, None));
        assert_eq!(parse_community_token("80"), (None, None));
    }

    #[test]
    fn blackhole_line_mines_blackhole_kind() {
        let mined = mine_line("3356:9999 - remotely triggered black hole filtering");
        assert_eq!(mined.len(), 1);
        assert_eq!(mined[0].kind, MinedKind::Blackhole);
        assert_eq!(mined[0].community, Some(Community::from_parts(3356, 9999)));
    }

    #[test]
    fn decoy_line_mines_other_kind() {
        // The Level3 case: ASN:666 on a peering-tag line must be Other.
        let mined = mine_line("3356:666 tagged on peering routes");
        assert_eq!(mined.len(), 1);
        assert_eq!(mined[0].kind, MinedKind::Other);
        assert_eq!(mined[0].class, CommunityClass::Informational);
    }

    #[test]
    fn classify_line_covers_all_classes() {
        for (line, class) in [
            ("3356:9999 - remotely triggered black hole filtering", CommunityClass::Blackhole),
            ("3356:666 => discard all traffic toward the prefix", CommunityClass::Blackhole),
            ("3356:3001: prepend 3x towards all upstreams", CommunityClass::Action),
            ("do not export to peers when tagged 3356:3002", CommunityClass::Action),
            ("3356:2001 - route learned at FRA location", CommunityClass::Location),
            ("3356:2002 marks routes received in the US region", CommunityClass::Location),
            ("3356:101 marks customer routes", CommunityClass::Informational),
            ("3356:102: informational tag, no routing action", CommunityClass::Informational),
        ] {
            assert_eq!(classify_line(&tokenize(line)), class, "{line}");
        }
    }

    #[test]
    fn weak_discard_traps_fool_only_the_naive_pass() {
        // Class prose that borrows the weak "discard" stem: the naive
        // stem-only pass mislabels these as blackhole triggers, the
        // class-aware pass does not.
        for (line, class) in [
            ("3356:3001: lower preference and discard the MED on export", CommunityClass::Action),
            (
                "3356:2001 - learned at the FRA location; discarded from our public view",
                CommunityClass::Location,
            ),
            (
                "3356:101 marks peering routes; unwanted prefixes are discarded from the \
                 looking glass",
                CommunityClass::Informational,
            ),
        ] {
            assert!(line_is_blackhole(&tokenize(line)), "naive pass should bite on: {line}");
            assert_eq!(classify_line(&tokenize(line)), class, "{line}");
        }
    }

    #[test]
    fn naive_mining_keeps_the_legacy_stem_behavior() {
        let obj = IrrObject {
            asn: Asn::new(3356),
            lines: vec![
                "remarks:     3356:3001: lower preference and discard the MED on export".into()
            ],
        };
        let corpus = crate::corpus::Corpus {
            irr_objects: vec![obj],
            web_pages: vec![],
            private_notes: vec![],
        };
        let naive = DictionaryMiner.mine_naive(&corpus);
        assert_eq!(naive.len(), 1);
        assert_eq!(naive[0].class, CommunityClass::Blackhole);
        let aware = DictionaryMiner.mine(&corpus);
        assert_eq!(aware.len(), 1);
        assert_eq!(aware[0].class, CommunityClass::Action);
    }

    #[test]
    fn min_length_extraction() {
        let mined = mine_line("65535:666 blackhole accepted for /25-/32 announcements");
        assert_eq!(mined[0].min_accepted_length, Some(25));
        let mined = mine_line("65535:666 blackholing, only prefixes more specific than /24");
        assert_eq!(mined[0].min_accepted_length, Some(25));
        let mined = mine_line("65535:666 blackhole community");
        assert_eq!(mined[0].min_accepted_length, None);
    }

    #[test]
    fn numbers_that_look_like_lengths_do_not_confuse_parsing() {
        let mined = mine_line("blackhole: drop traffic, see RFC 7999 and 65535:666");
        assert_eq!(mined.len(), 1);
        assert_eq!(mined[0].community, Some(Community::BLACKHOLE));
    }

    #[test]
    fn large_community_blackhole_is_mined() {
        let mined = mine_line("large community 196608:666:0 triggers blackholing (RFC 8092)");
        assert_eq!(mined.len(), 1);
        assert_eq!(mined[0].large, Some(LargeCommunity::new(196_608, 666, 0)));
        assert_eq!(mined[0].kind, MinedKind::Blackhole);
    }

    #[test]
    fn non_remarks_lines_are_ignored_in_irr() {
        let obj = IrrObject {
            asn: Asn::new(1),
            lines: vec![
                "aut-num:     AS1".into(),
                "descr:       blackhole 1:666 in descr must be ignored".into(),
            ],
        };
        let mut out = Vec::new();
        DictionaryMiner.mine_irr(&obj, &mut out);
        assert!(out.is_empty());
    }
}
