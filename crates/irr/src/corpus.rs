//! Synthetic documentation corpus: IRR objects, web pages, private notes.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use bh_bgp_types::asn::Asn;
use bh_bgp_types::community::{Community, LargeCommunity};
use bh_topology::{DocumentationChannel, TagClass, Topology};

/// A RADb-style `aut-num` object: header lines plus `remarks:` lines.
#[derive(Debug, Clone)]
pub struct IrrObject {
    /// The documented AS.
    pub asn: Asn,
    /// Full object text, one line per element.
    pub lines: Vec<String>,
}

impl IrrObject {
    /// The object rendered as a single text blob.
    pub fn text(&self) -> String {
        self.lines.join("\n")
    }
}

/// An operator web page (noisier free text).
#[derive(Debug, Clone)]
pub struct WebPage {
    /// The operator.
    pub asn: Asn,
    /// Page paragraphs.
    pub paragraphs: Vec<String>,
}

impl WebPage {
    /// The page rendered as a single text blob.
    pub fn text(&self) -> String {
        self.paragraphs.join("\n")
    }
}

/// A private communication: already-structured (the paper validated these
/// 5 networks by direct exchange with operators).
#[derive(Debug, Clone)]
pub struct PrivateNote {
    /// The provider.
    pub asn: Asn,
    /// Its blackhole communities.
    pub communities: Vec<Community>,
    /// Its RFC 8092 large-community trigger, if the operator uses one.
    pub large: Option<LargeCommunity>,
}

/// The full corpus.
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    /// IRR objects (RADb substitute).
    pub irr_objects: Vec<IrrObject>,
    /// Operator web pages.
    pub web_pages: Vec<WebPage>,
    /// Private communications.
    pub private_notes: Vec<PrivateNote>,
}

impl Corpus {
    /// Total number of documents.
    pub fn len(&self) -> usize {
        self.irr_objects.len() + self.web_pages.len() + self.private_notes.len()
    }

    /// Is the corpus empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

const BLACKHOLE_PHRASES: &[&str] = &[
    "{c} - blackhole: provider discards traffic to tagged prefixes",
    "{c}   blackhole community, announcements up to /32 accepted",
    "use {c} to null-route attack traffic at our border",
    "RTBH: tag announcement with {c} to trigger remote blackholing",
    "{c} - remotely triggered black hole filtering",
    "{c}: blackholing, only prefixes more specific than /24",
    "DDoS mitigation: send {c} and we will null route the prefix",
    "{c} => discard all traffic (blackhole) toward the prefix",
];

const REGIONAL_SUFFIXES: &[&str] = &[" (Europe only)", " (US region)", " (Asia-Pacific scope)"];

const ACTION_PHRASES: &[&str] = &[
    "{c} - set local-preference 80 inside our network",
    "{c}: prepend 3x towards all upstreams",
    "do not export to peers when tagged {c}",
    "{c}: traffic engineering, lower preference",
];

const LOCATION_PHRASES: &[&str] = &[
    "{c} - route learned at FRA location",
    "{c} marks routes received in the US region",
    "{c}: ingress point of presence tag (AMS)",
];

const INFO_PHRASES: &[&str] = &[
    "{c} tagged on peering routes",
    "{c} marks customer routes",
    "{c}: informational tag, no routing action",
];

/// Trap phrasing: class prose that borrows the weak `discard` stem. The
/// naive stem-only miner mislabels these tags as blackhole triggers;
/// the class-aware pass reads the class keywords and does not. Every
/// third documented tag line is a trap.
const ACTION_TRAP: &str = "{c}: lower preference and discard the MED on export";
const LOCATION_TRAP: &str = "{c} - learned at the FRA location; discarded from our public view";
const INFO_TRAP: &str =
    "{c} marks peering routes; unwanted prefixes are discarded from the looking glass";

const NOISE_LINES: &[&str] = &[
    "maintained by NOC, contact noc@example.net",
    "peering requests via peering@example.net",
    "MD5 on request",
    "see https://example.net/routing-policy for details",
    "AS-SET: AS-EXAMPLE-CUSTOMERS",
    "we operate an open peering policy",
];

/// Renders ground-truth offerings into the text corpus.
pub struct CorpusGenerator<'a> {
    topology: &'a Topology,
    rng: StdRng,
    tag_lines: usize,
}

impl<'a> CorpusGenerator<'a> {
    /// A generator with its own seed (independent of the topology seed so
    /// documentation noise can be varied while holding the Internet
    /// fixed).
    pub fn new(topology: &'a Topology, seed: u64) -> Self {
        CorpusGenerator { topology, rng: StdRng::seed_from_u64(seed), tag_lines: 0 }
    }

    /// One documented tag line: class-keyed phrasing, with every third
    /// line a weak-`discard` trap for the naive miner.
    fn tag_line(&mut self, community: &str, class: TagClass) -> String {
        self.tag_lines += 1;
        let template = if self.tag_lines.is_multiple_of(3) {
            match class {
                TagClass::Action => ACTION_TRAP,
                TagClass::Location => LOCATION_TRAP,
                TagClass::Informational => INFO_TRAP,
            }
        } else {
            let pool = match class {
                TagClass::Action => ACTION_PHRASES,
                TagClass::Location => LOCATION_PHRASES,
                TagClass::Informational => INFO_PHRASES,
            };
            pool.choose(&mut self.rng).unwrap()
        };
        template.replace("{c}", community)
    }

    /// Generate the corpus.
    pub fn generate(mut self) -> Corpus {
        let mut corpus = Corpus::default();
        for info in self.topology.ases() {
            let offering = info.blackhole_offering.as_ref();
            let channel = offering.map(|o| o.documentation);

            match channel {
                Some(DocumentationChannel::Irr) => {
                    let object = self.render_irr(info.asn, true);
                    corpus.irr_objects.push(object);
                }
                Some(DocumentationChannel::WebPage) => {
                    let page = self.render_web(info.asn);
                    corpus.web_pages.push(page);
                    // Operators who document on the web often still have a
                    // bare IRR object without the blackhole remarks.
                    if self.rng.gen_bool(0.5) {
                        corpus.irr_objects.push(self.render_irr(info.asn, false));
                    }
                }
                Some(DocumentationChannel::Private) => {
                    let offering = offering.expect("channel implies offering");
                    corpus.private_notes.push(PrivateNote {
                        asn: info.asn,
                        communities: offering.communities.clone(),
                        large: offering.large_community,
                    });
                }
                Some(DocumentationChannel::Undocumented) | None => {
                    // Tag communities may still be documented (they feed the
                    // non-blackhole dictionary for Fig. 2).
                    let has_tags =
                        !info.tag_communities.is_empty() || !info.tag_large_communities.is_empty();
                    if has_tags && self.rng.gen_bool(0.6) {
                        corpus.irr_objects.push(self.render_irr(info.asn, false));
                    }
                }
            }
        }
        corpus
    }

    /// Render an `aut-num` for `asn`; when `with_blackhole` the offering's
    /// communities are documented with blackhole phrasing.
    fn render_irr(&mut self, asn: Asn, with_blackhole: bool) -> IrrObject {
        let info = self.topology.as_info(asn).expect("AS exists");
        let mut lines = vec![
            format!("aut-num:     AS{}", asn.value()),
            format!("as-name:     NET-{}", asn.value()),
            format!("descr:       synthetic operator, {}", info.country),
        ];
        // Noise up front sometimes.
        if self.rng.gen_bool(0.5) {
            lines.push(format!("remarks:     {}", NOISE_LINES.choose(&mut self.rng).unwrap()));
        }
        lines.push("remarks:     ---- BGP communities ----".to_string());
        // Non-blackhole tag documentation (class-keyed phrasing).
        for (c, class) in info.classed_tags().collect::<Vec<_>>() {
            let line = self.tag_line(&c.to_string(), class);
            lines.push(format!("remarks:     {line}"));
        }
        // 32-bit-ASN tags travel as RFC 8092 large communities.
        for tag in info.tag_large_communities.clone() {
            let line = self.tag_line(&tag.community.to_string(), tag.class);
            lines.push(format!("remarks:     {line}"));
        }
        if with_blackhole {
            if let Some(offering) = &info.blackhole_offering {
                for (i, c) in offering.communities.iter().enumerate() {
                    let template = BLACKHOLE_PHRASES.choose(&mut self.rng).unwrap();
                    let mut line = template.replace("{c}", &c.to_string());
                    if i > 0 {
                        // Regional variants get a scope marker.
                        line.push_str(REGIONAL_SUFFIXES.choose(&mut self.rng).unwrap());
                    }
                    lines.push(format!("remarks:     {line}"));
                }
                if let Some(large) = offering.large_community {
                    lines.push(format!(
                        "remarks:     large community {large} triggers blackholing (RFC 8092)"
                    ));
                }
                if let Some(ip) = offering.blackhole_ip {
                    lines.push(format!("remarks:     blackhole next-hop {ip} / IPv6 ::dead:beef"));
                }
                lines.push(format!(
                    "remarks:     blackhole accepted for /{}-/32 announcements",
                    offering.min_accepted_length
                ));
            }
        }
        if self.rng.gen_bool(0.6) {
            lines.push(format!("remarks:     {}", NOISE_LINES.choose(&mut self.rng).unwrap()));
        }
        lines.push("source:      SYNTH-RADB".to_string());
        IrrObject { asn, lines }
    }

    fn render_web(&mut self, asn: Asn) -> WebPage {
        let info = self.topology.as_info(asn).expect("AS exists");
        let offering = info.blackhole_offering.as_ref().expect("web channel implies offering");
        let mut paragraphs = vec![format!(
            "AS{} routing policy. We provide IP transit and related services. \
                 Our looking glass is available to customers.",
            asn.value()
        )];
        // 32-bit providers have no classic trigger; their RFC 8092 large
        // community is documented below instead.
        if let Some(&c) = offering.communities.first() {
            paragraphs.push(format!(
                "DDoS protection: our blackholing service lets customers mitigate attacks. \
                 Announce the attacked prefix with community {c} and we will drop all traffic \
                 at our network edge. Prefixes more specific than /24 up to /32 are accepted \
                 when tagged for blackholing."
            ));
        }
        for extra in offering.communities.iter().skip(1) {
            paragraphs.push(format!(
                "Regional blackhole: community {extra} limits the null-route to a single region."
            ));
        }
        if let Some(large) = offering.large_community {
            paragraphs.push(format!(
                "RFC 8092 users: the large community {large} also triggers blackholing."
            ));
        }
        if let Some(ip) = offering.blackhole_ip {
            paragraphs.push(format!("The blackhole next-hop address is {ip}."));
        }
        // Unrelated commercial filler.
        paragraphs.push(
            "For peering information, colocation and support contacts see our contact page."
                .to_string(),
        );
        // Some pages also document non-blackhole communities, with
        // class-true phrasing.
        for (c, class) in info.classed_tags().take(2) {
            paragraphs.push(match class {
                TagClass::Action => {
                    format!("Community {c} is used for traffic engineering towards peers.")
                }
                TagClass::Location => {
                    format!("Community {c} marks the location where the route entered our network.")
                }
                TagClass::Informational => {
                    format!("Community {c} is attached to customer routes as an informational tag.")
                }
            });
        }
        WebPage { asn, paragraphs }
    }
}

#[cfg(test)]
mod tests {
    use bh_topology::{TopologyBuilder, TopologyConfig};

    use super::*;

    fn corpus() -> (Topology, Corpus) {
        let t = TopologyBuilder::new(TopologyConfig::tiny(11)).build();
        let c = CorpusGenerator::new(&t, 5).generate();
        (t, c)
    }

    #[test]
    fn corpus_covers_documented_channels() {
        let (t, c) = corpus();
        assert!(!c.is_empty());
        // Every IRR-documented offering has an object with blackhole text.
        for info in t.ases() {
            if let Some(o) = &info.blackhole_offering {
                if o.documentation == DocumentationChannel::Irr {
                    let obj = c.irr_objects.iter().find(|obj| obj.asn == info.asn);
                    assert!(obj.is_some(), "missing IRR object for {}", info.asn);
                    let text = obj.unwrap().text().to_lowercase();
                    let mentions = text.contains("blackhol")
                        || text.contains("null route")
                        || text.contains("null-route")
                        || text.contains("null rout")
                        || text.contains("rtbh")
                        || text.contains("black hole")
                        || text.contains("discard");
                    assert!(mentions, "no blackhole phrasing for {}: {text}", info.asn);
                }
                if o.documentation == DocumentationChannel::WebPage {
                    assert!(
                        c.web_pages.iter().any(|p| p.asn == info.asn),
                        "missing web page for {}",
                        info.asn
                    );
                }
            }
        }
    }

    #[test]
    fn undocumented_offerings_never_appear_in_text() {
        let (t, c) = corpus();
        for info in t.ases() {
            let Some(o) = &info.blackhole_offering else { continue };
            if o.documentation != DocumentationChannel::Undocumented {
                continue;
            }
            for community in &o.communities {
                let needle = community.to_string();
                for obj in &c.irr_objects {
                    if obj.asn == info.asn {
                        assert!(
                            !obj.text().contains(&needle),
                            "undocumented community {needle} leaked into IRR"
                        );
                    }
                }
                assert!(!c
                    .web_pages
                    .iter()
                    .any(|p| p.asn == info.asn && p.text().contains(&needle)));
            }
        }
    }

    #[test]
    fn communities_appear_verbatim_in_documents() {
        let (t, c) = corpus();
        for obj in &c.irr_objects {
            let info = t.as_info(obj.asn).unwrap();
            if let Some(o) = &info.blackhole_offering {
                if o.documentation == DocumentationChannel::Irr {
                    if let Some(c) = o.communities.first() {
                        assert!(obj.text().contains(&c.to_string()));
                    }
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let t = TopologyBuilder::new(TopologyConfig::tiny(11)).build();
        let a = CorpusGenerator::new(&t, 5).generate();
        let b = CorpusGenerator::new(&t, 5).generate();
        assert_eq!(a.irr_objects.len(), b.irr_objects.len());
        for (x, y) in a.irr_objects.iter().zip(&b.irr_objects) {
            assert_eq!(x.text(), y.text());
        }
    }

    #[test]
    fn private_notes_match_private_channel() {
        let (t, c) = corpus();
        let expected = t
            .ases()
            .filter(|i| {
                i.blackhole_offering
                    .as_ref()
                    .is_some_and(|o| o.documentation == DocumentationChannel::Private)
            })
            .count();
        assert_eq!(c.private_notes.len(), expected);
    }
}
