//! Extended-dictionary inference (Fig. 2 and the "Possibilities for
//! Extended Dictionary" analysis, §4.1).
//!
//! The observation: non-blackhole communities ride on /24-or-coarser
//! prefixes, while blackhole communities ride almost exclusively on /32s.
//! Communities used *exclusively* on prefixes more specific than /24 that
//! also co-occur with a documented blackhole community at least once are
//! inferred blackhole communities — kept out of the documented dictionary
//! (the paper's choice: "we decided not to include them") but quantified
//! (111 communities on 102 ASes).

use std::collections::{BTreeMap, BTreeSet};

use bh_bgp_types::community::Community;

use crate::dictionary::BlackholeDictionary;

/// Census of community usage across BGP announcements: per community, a
/// histogram over announced prefix lengths, plus co-occurrence with other
/// communities on the same announcement.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommunityPrefixCensus {
    counts: BTreeMap<Community, [u64; 33]>,
    cooccur: BTreeMap<Community, BTreeSet<Community>>,
    total_observations: u64,
}

impl CommunityPrefixCensus {
    /// Empty census.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one announcement: all its communities, at this prefix length.
    pub fn record(&mut self, communities: &[Community], length: u8) {
        self.record_repeated(communities, length, 1);
    }

    /// Record `count` announcements that all carried exactly this
    /// community set at this prefix length — the bulk form sessions use
    /// to replay per-(set, length) tallies accumulated off to the side.
    pub fn record_repeated(&mut self, communities: &[Community], length: u8, count: u64) {
        let bucket = length.min(32) as usize;
        for &c in communities {
            self.counts.entry(c).or_insert([0u64; 33])[bucket] += count;
            let set = self.cooccur.entry(c).or_default();
            for &other in communities {
                if other != c {
                    set.insert(other);
                }
            }
        }
        self.total_observations += count;
    }

    /// Merge another census into this one.
    pub fn merge(&mut self, other: &CommunityPrefixCensus) {
        for (c, hist) in &other.counts {
            let entry = self.counts.entry(*c).or_insert([0u64; 33]);
            for (i, v) in hist.iter().enumerate() {
                entry[i] += v;
            }
        }
        for (c, set) in &other.cooccur {
            self.cooccur.entry(*c).or_default().extend(set.iter().copied());
        }
        self.total_observations += other.total_observations;
    }

    /// Number of distinct communities observed.
    pub fn community_count(&self) -> usize {
        self.counts.len()
    }

    /// Iterate all observed communities in deterministic (sorted) order.
    pub fn communities(&self) -> impl Iterator<Item = Community> + '_ {
        self.counts.keys().copied()
    }

    /// Total announcements recorded.
    pub fn total_observations(&self) -> u64 {
        self.total_observations
    }

    /// Total occurrences of one community.
    pub fn occurrences(&self, c: Community) -> u64 {
        self.counts.get(&c).map(|h| h.iter().sum()).unwrap_or(0)
    }

    /// Fraction of a community's occurrences on prefixes more specific
    /// than /24.
    pub fn fraction_more_specific_than_24(&self, c: Community) -> f64 {
        let Some(hist) = self.counts.get(&c) else { return 0.0 };
        let total: u64 = hist.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let specific: u64 = hist[25..=32].iter().sum();
        specific as f64 / total as f64
    }

    /// Did `a` ever appear together with `b` on one announcement?
    pub fn cooccurs(&self, a: Community, b: Community) -> bool {
        self.cooccur.get(&a).is_some_and(|set| set.contains(&b))
    }

    /// Did `c` ever co-occur with any *documented* blackhole community?
    pub fn cooccurs_with_blackhole(&self, c: Community, dict: &BlackholeDictionary) -> bool {
        self.cooccur
            .get(&c)
            .is_some_and(|set| set.iter().any(|other| dict.is_blackhole_community(*other)))
    }

    /// The Fig. 2 surface: for each community, the fraction of occurrences
    /// at each prefix length, labeled blackhole (documented dictionary) or
    /// other.
    pub fn fig2_series(&self, dict: &BlackholeDictionary) -> Vec<Fig2Point> {
        let mut out = Vec::new();
        for (tag_index, (c, hist)) in self.counts.iter().enumerate() {
            let total: u64 = hist.iter().sum();
            if total == 0 {
                continue;
            }
            let is_blackhole = dict.is_blackhole_community(*c);
            for (length, &count) in hist.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                out.push(Fig2Point {
                    tag_index,
                    community: *c,
                    prefix_length: length as u8,
                    fraction: count as f64 / total as f64,
                    is_blackhole,
                });
            }
        }
        out
    }

    /// The inferred-community extraction. Criteria (§4.1):
    /// * used exclusively on prefixes more specific than /24,
    /// * co-occurs with a documented blackhole community at least once,
    /// * high 16 bits encode a public ASN (otherwise the provider cannot
    ///   be identified without documentation),
    /// * not already in the documented dictionary,
    /// * observed at least `min_occurrences` times (guards against noise).
    pub fn infer_candidates(
        &self,
        dict: &BlackholeDictionary,
        min_occurrences: u64,
    ) -> Vec<InferredCommunity> {
        let mut out = Vec::new();
        for (&c, hist) in &self.counts {
            if dict.is_blackhole_community(c) {
                continue;
            }
            let total: u64 = hist.iter().sum();
            if total < min_occurrences {
                continue;
            }
            let coarse: u64 = hist[..=24].iter().sum();
            if coarse > 0 {
                continue; // not exclusive to more-specifics
            }
            if !c.has_public_asn() {
                continue;
            }
            if !self.cooccurs_with_blackhole(c, dict) {
                continue;
            }
            out.push(InferredCommunity { community: c, occurrences: total, asn: c.asn() });
        }
        out
    }
}

/// One point of the Fig. 2 surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig2Point {
    /// Dense index of the community tag (the figure's x axis).
    pub tag_index: usize,
    /// The community.
    pub community: Community,
    /// Prefix length (y axis).
    pub prefix_length: u8,
    /// Fraction of this tag's occurrences at this length (z axis).
    pub fraction: f64,
    /// Whether the tag is in the documented blackhole dictionary
    /// (blue dots vs. red crosses in the paper's figure).
    pub is_blackhole: bool,
}

/// An inferred (undocumented) blackhole community.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InferredCommunity {
    /// The community value.
    pub community: Community,
    /// How many announcements carried it.
    pub occurrences: u64,
    /// The provider implied by the high 16 bits.
    pub asn: bh_bgp_types::asn::Asn,
}

#[cfg(test)]
mod tests {
    use bh_bgp_types::asn::Asn;

    use super::*;

    fn dict_with(entries: &[(u32, Community)]) -> BlackholeDictionary {
        let mut d = BlackholeDictionary::default();
        for (asn, c) in entries {
            d.insert_validated(Asn::new(*asn), *c);
        }
        d
    }

    #[test]
    fn census_records_and_counts() {
        let mut census = CommunityPrefixCensus::new();
        let bh = Community::from_parts(100, 666);
        let te = Community::from_parts(100, 80);
        census.record(&[bh, te], 32);
        census.record(&[te], 16);
        assert_eq!(census.community_count(), 2);
        assert_eq!(census.occurrences(bh), 1);
        assert_eq!(census.occurrences(te), 2);
        assert_eq!(census.total_observations(), 2);
        assert!(census.cooccurs(bh, te));
        assert!(census.cooccurs(te, bh));
        assert!(!census.cooccurs(bh, Community::from_parts(1, 1)));
    }

    #[test]
    fn fraction_more_specific() {
        let mut census = CommunityPrefixCensus::new();
        let c = Community::from_parts(100, 666);
        census.record(&[c], 32);
        census.record(&[c], 32);
        census.record(&[c], 24);
        census.record(&[c], 16);
        assert!((census.fraction_more_specific_than_24(c) - 0.5).abs() < 1e-9);
        assert_eq!(census.fraction_more_specific_than_24(Community::from_parts(9, 9)), 0.0);
    }

    #[test]
    fn fig2_shape_blackhole_vs_other() {
        // Blackhole tags mass at /32, other tags at /16-/24 — the figure's
        // two clusters.
        let bh = Community::from_parts(100, 666);
        let te = Community::from_parts(200, 80);
        let dict = dict_with(&[(100, bh)]);
        let mut census = CommunityPrefixCensus::new();
        for _ in 0..50 {
            census.record(&[bh], 32);
        }
        census.record(&[bh], 30);
        for _ in 0..40 {
            census.record(&[te], 24);
        }
        for _ in 0..10 {
            census.record(&[te], 16);
        }
        let series = census.fig2_series(&dict);
        let bh_at_32 = series.iter().find(|p| p.community == bh && p.prefix_length == 32).unwrap();
        assert!(bh_at_32.is_blackhole);
        assert!(bh_at_32.fraction > 0.9);
        let te_at_24 = series.iter().find(|p| p.community == te && p.prefix_length == 24).unwrap();
        assert!(!te_at_24.is_blackhole);
        assert!(te_at_24.fraction > 0.7);
    }

    #[test]
    fn inference_requires_all_criteria() {
        let documented = Community::from_parts(100, 666);
        let dict = dict_with(&[(100, documented)]);
        let mut census = CommunityPrefixCensus::new();

        let good = Community::from_parts(555, 666); // public ASN, bundled
        let no_cooccur = Community::from_parts(556, 666);
        let not_exclusive = Community::from_parts(557, 666);
        let non_public = Community::from_parts(65_534, 666);
        let rare = Community::from_parts(558, 666);

        for _ in 0..10 {
            census.record(&[good, documented], 32);
            census.record(&[no_cooccur], 32);
            census.record(&[not_exclusive, documented], 32);
            census.record(&[non_public, documented], 32);
        }
        census.record(&[not_exclusive], 24); // poisons exclusivity
        census.record(&[rare, documented], 32); // below min occurrences

        let inferred = census.infer_candidates(&dict, 5);
        let values: Vec<Community> = inferred.iter().map(|i| i.community).collect();
        assert_eq!(values, vec![good]);
        assert_eq!(inferred[0].asn, Asn::new(555));
        assert_eq!(inferred[0].occurrences, 10);
    }

    #[test]
    fn documented_communities_are_not_reinferred() {
        let documented = Community::from_parts(100, 666);
        let dict = dict_with(&[(100, documented)]);
        let mut census = CommunityPrefixCensus::new();
        for _ in 0..10 {
            census.record(&[documented], 32);
        }
        assert!(census.infer_candidates(&dict, 1).is_empty());
    }

    #[test]
    fn fig2_series_is_deterministic_under_insertion_order() {
        // Regression: the figure's tag indices must not depend on the
        // order announcements arrived, only on the community values.
        let a = Community::from_parts(100, 666);
        let b = Community::from_parts(200, 80);
        let c = Community::from_parts(300, 12);
        let dict = dict_with(&[(100, a)]);

        let mut forward = CommunityPrefixCensus::new();
        for tag in [a, b, c] {
            forward.record(&[tag], 32);
            forward.record(&[tag], 24);
        }
        let mut reverse = CommunityPrefixCensus::new();
        for tag in [c, b, a] {
            reverse.record(&[tag], 24);
            reverse.record(&[tag], 32);
        }

        let fwd = forward.fig2_series(&dict);
        let rev = reverse.fig2_series(&dict);
        assert_eq!(fwd.len(), rev.len());
        for (x, y) in fwd.iter().zip(&rev) {
            assert_eq!(x.tag_index, y.tag_index, "tag index order diverged");
            assert_eq!(x.community, y.community);
            assert_eq!(x.prefix_length, y.prefix_length);
            assert_eq!(x.fraction, y.fraction);
            assert_eq!(x.is_blackhole, y.is_blackhole);
        }
    }

    #[test]
    fn census_saturates_overlong_prefix_lengths_at_32() {
        // A corrupt MRT record can claim a length > 32; the census must
        // clamp into the /32 bucket instead of indexing out of bounds.
        let c = Community::from_parts(100, 666);
        let mut census = CommunityPrefixCensus::new();
        census.record(&[c], 128);
        census.record_repeated(&[c], 200, 3);
        census.record(&[c], 32);
        assert_eq!(census.occurrences(c), 5);
        assert!((census.fraction_more_specific_than_24(c) - 1.0).abs() < 1e-12);
        let dict = BlackholeDictionary::default();
        let series = census.fig2_series(&dict);
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].prefix_length, 32);
        assert!((series[0].fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_combines_counts_and_cooccurrence() {
        let a_c = Community::from_parts(1, 1);
        let b_c = Community::from_parts(2, 2);
        let mut a = CommunityPrefixCensus::new();
        a.record(&[a_c], 32);
        let mut b = CommunityPrefixCensus::new();
        b.record(&[a_c, b_c], 24);
        a.merge(&b);
        assert_eq!(a.occurrences(a_c), 2);
        assert_eq!(a.occurrences(b_c), 1);
        assert!(a.cooccurs(a_c, b_c));
        assert_eq!(a.total_observations(), 2);
    }
}
