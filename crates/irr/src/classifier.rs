//! General community classification and negative controls.
//!
//! The dictionary ([`crate::dictionary`]) answers "is this a documented
//! blackhole trigger, and whose?". This module answers the broader
//! question the Krenc et al. taxonomy poses: *what is this community
//! for?* — combining documentation (the per-class dictionary maps) with
//! usage features from the [`CommunityPrefixCensus`] (prefix-length
//! profile, co-occurrence with documented communities, public-ASN high
//! bits) to classify communities the documentation never mentions.
//!
//! The classifier's practical payoff is the **negative control** set:
//! communities confidently classified as location or informational
//! cannot be blackhole triggers, so a candidate event whose *only*
//! trigger community sits in the control set is suppressed. Stolen-tag
//! hijacks — attacker announcements decorated with a victim provider's
//! harmless tag communities — are the headline beneficiary.

use std::collections::BTreeSet;

use bh_bgp_types::community::Community;

use crate::dictionary::BlackholeDictionary;
use crate::inference::CommunityPrefixCensus;
use crate::mining::CommunityClass;

/// Classifier thresholds.
#[derive(Debug, Clone, Copy)]
pub struct ClassifierConfig {
    /// Minimum observations before an undocumented community is
    /// classified at all (guards against noise).
    pub min_occurrences: u64,
    /// Fraction of occurrences on /24-or-coarser prefixes above which a
    /// community counts as "coarse" (ordinary routing, not blackholing).
    pub coarse_fraction: f64,
}

impl Default for ClassifierConfig {
    fn default() -> Self {
        ClassifierConfig { min_occurrences: 5, coarse_fraction: 0.5 }
    }
}

/// One classified community.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassifiedCommunity {
    /// The community value.
    pub community: Community,
    /// Its inferred (or documented) usage class.
    pub class: CommunityClass,
    /// Whether the class came from documentation (dictionary) rather
    /// than usage features.
    pub documented: bool,
    /// Total observations in the census.
    pub occurrences: u64,
}

/// Classifies census communities by documentation-first, usage-second.
#[derive(Debug, Clone, Copy, Default)]
pub struct CommunityClassifier {
    /// Thresholds.
    pub config: ClassifierConfig,
}

impl CommunityClassifier {
    /// A classifier with explicit thresholds.
    pub fn new(config: ClassifierConfig) -> Self {
        CommunityClassifier { config }
    }

    /// Classify every community the census observed.
    ///
    /// Documentation wins outright. Undocumented communities are
    /// classified from usage:
    /// * exclusively-more-specific-than-/24 usage with a public high-16
    ///   ASN and blackhole co-occurrence → [`CommunityClass::Blackhole`]
    ///   (the §4.1 extended-dictionary criteria);
    /// * mostly-coarse usage → the class of the documented communities it
    ///   co-occurs with (strongest class wins), defaulting to
    ///   informational;
    /// * mixed usage → informational (no confident signal).
    pub fn classify_census(
        &self,
        dict: &BlackholeDictionary,
        census: &CommunityPrefixCensus,
    ) -> Vec<ClassifiedCommunity> {
        let mut out = Vec::new();
        for c in census.communities() {
            let occurrences = census.occurrences(c);
            if let Some(class) = dict.class_of(c) {
                out.push(ClassifiedCommunity {
                    community: c,
                    class,
                    documented: true,
                    occurrences,
                });
                continue;
            }
            if occurrences < self.config.min_occurrences {
                continue;
            }
            let specific = census.fraction_more_specific_than_24(c);
            let class = if specific >= 1.0 - f64::EPSILON {
                if c.has_public_asn() && census.cooccurs_with_blackhole(c, dict) {
                    CommunityClass::Blackhole
                } else {
                    // Specific-only but unattributable: no provider to
                    // pin the trigger on, so it stays informational.
                    CommunityClass::Informational
                }
            } else if specific <= 1.0 - self.config.coarse_fraction {
                self.class_by_cooccurrence(dict, census, c)
            } else {
                CommunityClass::Informational
            };
            out.push(ClassifiedCommunity { community: c, class, documented: false, occurrences });
        }
        out
    }

    /// The strongest non-blackhole class among documented communities
    /// this one co-occurs with (a community riding alongside documented
    /// location tags is itself location-flavored).
    fn class_by_cooccurrence(
        &self,
        dict: &BlackholeDictionary,
        census: &CommunityPrefixCensus,
        c: Community,
    ) -> CommunityClass {
        for class in [CommunityClass::Action, CommunityClass::Location] {
            for entry in dict.class_entries(class) {
                if census.cooccurs(c, entry.community) {
                    return class;
                }
            }
        }
        CommunityClass::Informational
    }

    /// Build the negative-control set: communities that are confidently
    /// *not* blackhole triggers — documented location/informational tags
    /// plus census communities classified as such. Anything the
    /// dictionary lists as a blackhole trigger is excluded defensively.
    pub fn negative_controls(
        &self,
        dict: &BlackholeDictionary,
        census: &CommunityPrefixCensus,
    ) -> NegativeControls {
        let mut set = BTreeSet::new();
        for class in [CommunityClass::Location, CommunityClass::Informational] {
            for entry in dict.class_entries(class) {
                set.insert(entry.community);
            }
        }
        for classified in self.classify_census(dict, census) {
            if matches!(classified.class, CommunityClass::Location | CommunityClass::Informational)
            {
                set.insert(classified.community);
            }
        }
        set.retain(|c| !dict.is_blackhole_community(*c));
        NegativeControls { set }
    }
}

/// Communities known *not* to trigger blackholing. Plugged into the
/// inference session, they suppress candidate events whose only trigger
/// is a control — the false-positive reduction knob.
///
/// Classic communities only: RFC 8092 large-community triggers are
/// always provider-documented and never filtered.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NegativeControls {
    set: BTreeSet<Community>,
}

impl NegativeControls {
    /// Controls from an explicit set.
    pub fn from_set(set: BTreeSet<Community>) -> Self {
        NegativeControls { set }
    }

    /// Is this community a negative control?
    pub fn contains(&self, c: Community) -> bool {
        self.set.contains(&c)
    }

    /// Number of controls.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Iterate the controls in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = Community> + '_ {
        self.set.iter().copied()
    }

    /// Add one control.
    pub fn insert(&mut self, c: Community) {
        self.set.insert(c);
    }
}

#[cfg(test)]
mod tests {
    use bh_topology::{TopologyBuilder, TopologyConfig};

    use crate::corpus::CorpusGenerator;

    use super::*;

    fn fixture() -> (BlackholeDictionary, CommunityPrefixCensus) {
        let t = TopologyBuilder::new(TopologyConfig::tiny(11)).build();
        let corpus = CorpusGenerator::new(&t, 5).generate();
        let dict = BlackholeDictionary::build(&corpus);
        let mut census = CommunityPrefixCensus::new();
        // Documented blackhole usage: /32-only.
        let documented_bh =
            dict.entries().next().expect("tiny topology mines at least one trigger").community;
        for _ in 0..20 {
            census.record(&[documented_bh], 32);
        }
        // Documented location tag used coarsely.
        if let Some(entry) = dict.class_entries(CommunityClass::Location).next() {
            for _ in 0..10 {
                census.record(&[entry.community], 20);
            }
        }
        (dict, census)
    }

    #[test]
    fn documented_classes_win_over_usage() {
        let (dict, mut census) = fixture();
        // Use a documented location tag exclusively on /32s — the
        // documentation must still win.
        let loc = dict
            .class_entries(CommunityClass::Location)
            .next()
            .expect("tiny topology documents location tags")
            .community;
        for _ in 0..50 {
            census.record(&[loc], 32);
        }
        let classified = CommunityClassifier::default().classify_census(&dict, &census);
        let hit = classified.iter().find(|c| c.community == loc).unwrap();
        assert_eq!(hit.class, CommunityClass::Location);
        assert!(hit.documented);
    }

    #[test]
    fn undocumented_specific_cooccurring_community_is_blackhole() {
        let (dict, mut census) = fixture();
        let documented_bh = dict.entries().next().unwrap().community;
        let hidden = Community::from_parts(4999, 666);
        assert_eq!(dict.class_of(hidden), None);
        for _ in 0..10 {
            census.record(&[hidden, documented_bh], 32);
        }
        let classified = CommunityClassifier::default().classify_census(&dict, &census);
        let hit = classified.iter().find(|c| c.community == hidden).unwrap();
        assert_eq!(hit.class, CommunityClass::Blackhole);
        assert!(!hit.documented);
    }

    #[test]
    fn undocumented_coarse_community_follows_cooccurring_class() {
        let (dict, mut census) = fixture();
        let loc = dict
            .class_entries(CommunityClass::Location)
            .next()
            .expect("tiny topology documents location tags")
            .community;
        let rider = Community::from_parts(4998, 77);
        for _ in 0..10 {
            census.record(&[rider, loc], 20);
        }
        let lonely = Community::from_parts(4997, 78);
        for _ in 0..10 {
            census.record(&[lonely], 20);
        }
        let classified = CommunityClassifier::default().classify_census(&dict, &census);
        let rider_hit = classified.iter().find(|c| c.community == rider).unwrap();
        assert_eq!(rider_hit.class, CommunityClass::Location);
        let lonely_hit = classified.iter().find(|c| c.community == lonely).unwrap();
        assert_eq!(lonely_hit.class, CommunityClass::Informational);
    }

    #[test]
    fn rare_undocumented_communities_are_skipped() {
        let (dict, mut census) = fixture();
        let rare = Community::from_parts(4996, 9);
        census.record(&[rare], 32);
        let classified = CommunityClassifier::default().classify_census(&dict, &census);
        assert!(classified.iter().all(|c| c.community != rare));
    }

    #[test]
    fn negative_controls_exclude_every_blackhole_trigger() {
        let (dict, census) = fixture();
        let controls = CommunityClassifier::default().negative_controls(&dict, &census);
        assert!(!controls.is_empty(), "documented tags should produce controls");
        for c in controls.iter() {
            assert!(!dict.is_blackhole_community(c), "{c} is a trigger yet listed as control");
        }
        // Every documented location/informational tag not doubling as a
        // trigger is a control.
        for class in [CommunityClass::Location, CommunityClass::Informational] {
            for entry in dict.class_entries(class) {
                if !dict.is_blackhole_community(entry.community) {
                    assert!(controls.contains(entry.community));
                }
            }
        }
    }

    #[test]
    fn controls_set_basics() {
        let mut controls = NegativeControls::default();
        assert!(controls.is_empty());
        let c = Community::from_parts(3356, 100);
        controls.insert(c);
        assert_eq!(controls.len(), 1);
        assert!(controls.contains(c));
        assert!(!controls.contains(Community::from_parts(3356, 101)));
        let same = NegativeControls::from_set(controls.iter().collect());
        assert_eq!(controls, same);
    }
}
