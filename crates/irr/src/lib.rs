//! # bh-irr — community documentation corpus and dictionary mining
//!
//! Reproduces §4.1 of the paper ("Blackhole Communities Dictionary"):
//!
//! 1. [`corpus`] renders the topology's ground-truth blackhole offerings
//!    into *text* — synthetic IRR `aut-num` objects (RADb-style), operator
//!    web pages, and private-communication notes — interleaved with
//!    non-blackhole community documentation (relationship tags, traffic
//!    engineering, location communities) and plain noise. This substitutes
//!    for scraping RADb and operator websites.
//! 2. [`mining`] is the NLTK substitute: a tokenizer, a small stemmer for
//!    the keyword families ("blackhole", "null-route", "RTBH", "discard"),
//!    community-token extraction, and per-line association of community
//!    values with blackhole vs. other semantics. Decoys matter: the
//!    Level3-style `ASN:666` *peering tag* must not be mis-mined.
//! 3. [`dictionary`] assembles the documented [`BlackholeDictionary`]
//!    (communities → candidate providers, shared/ambiguous communities
//!    with non-public high-16-bits, per-provider metadata).
//! 4. [`inference`] implements the "Possibilities for Extended Dictionary"
//!    analysis (Fig. 2): a census of community-tag/prefix-length usage,
//!    the inferred-community extraction (exclusively >/24 usage +
//!    co-occurrence with documented blackhole communities + public-ASN
//!    high bits), and the Fig. 2 data series.
//! 5. [`classifier`] generalizes the dictionary into a multi-class
//!    community classifier (blackhole/action/location/informational à la
//!    Krenc et al.), combining the per-class documentation maps with
//!    census usage features, and distills the location/informational
//!    classes into [`NegativeControls`] that the inference session uses
//!    to suppress false candidate events (e.g. stolen-tag hijacks).
//!
//! Because ground truth is available, [`dictionary::DictionaryValidation`]
//! quantifies miner precision/recall — the paper could only spot-check
//! against published documentation.

pub mod classifier;
pub mod corpus;
pub mod dictionary;
pub mod inference;
pub mod mining;

pub use classifier::{
    ClassifiedCommunity, ClassifierConfig, CommunityClassifier, NegativeControls,
};
pub use corpus::{Corpus, CorpusGenerator, IrrObject, PrivateNote, WebPage};
pub use dictionary::{
    BlackholeDictionary, ClassScore, ClassValidation, DictEntry, DictionaryValidation, ProviderMeta,
};
pub use inference::{CommunityPrefixCensus, Fig2Point, InferredCommunity};
pub use mining::{CommunityClass, DictionaryMiner, MinedCommunity, MinedKind};
