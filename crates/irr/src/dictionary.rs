//! The blackhole communities dictionary.
//!
//! §4.1: "we only include communities in our dictionary if we can validate
//! them either via published information by the ASes or private
//! communication, and we refer to them as documented communities. … we
//! augment the dictionary of documented communities with information about
//! which networks provide \[shared\] communit\[ies\]."

use std::collections::{BTreeMap, BTreeSet};

use bh_bgp_types::asn::Asn;
use bh_bgp_types::community::{Community, LargeCommunity};
use bh_topology::{DocumentationChannel, TagClass, Topology};

use crate::corpus::Corpus;
use crate::mining::{CommunityClass, DictionaryMiner, MinedCommunity};

/// One dictionary entry: a community and the providers that honor it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DictEntry {
    /// The community value.
    pub community: Community,
    /// Candidate providers. Usually one; shared/ambiguous communities
    /// (high 16 bits not a public ASN) list every provider known to use
    /// the value — the inference engine disambiguates via the AS path.
    pub providers: Vec<Asn>,
}

impl DictEntry {
    /// Is this entry ambiguous (multiple candidate providers)?
    pub fn is_ambiguous(&self) -> bool {
        self.providers.len() > 1
    }
}

/// Per-provider metadata recorded while building the dictionary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProviderMeta {
    /// All communities this provider uses for blackholing.
    pub communities: Vec<Community>,
    /// Large-community trigger, if mined.
    pub large: Option<LargeCommunity>,
    /// Documented minimum accepted prefix length, if mined.
    pub min_accepted_length: Option<u8>,
}

/// The documented blackhole communities dictionary.
#[derive(Debug, Clone, Default)]
pub struct BlackholeDictionary {
    by_community: BTreeMap<Community, BTreeSet<Asn>>,
    by_large: BTreeMap<LargeCommunity, BTreeSet<Asn>>,
    providers: BTreeMap<Asn, ProviderMeta>,
    /// Non-blackhole documented communities (the second dictionary built
    /// in §4.1 for the Fig. 2 comparison) — the union of the non-blackhole
    /// class maps.
    other_by_community: BTreeMap<Community, BTreeSet<Asn>>,
    /// Non-blackhole documented communities refined by usage class.
    class_by_community: BTreeMap<CommunityClass, BTreeMap<Community, BTreeSet<Asn>>>,
    /// Class-refined RFC 8092 large communities (32-bit-ASN tags).
    class_by_large: BTreeMap<CommunityClass, BTreeMap<LargeCommunity, BTreeSet<Asn>>>,
}

impl BlackholeDictionary {
    /// Build from a corpus: class-aware mine, then aggregate.
    pub fn build(corpus: &Corpus) -> Self {
        let mined = DictionaryMiner.mine(corpus);
        Self::from_mined(&mined)
    }

    /// Build with the legacy stem-only miner — no class refinement, so
    /// weak-`discard` tag prose poisons the blackhole map. This is the
    /// dictionary-only baseline the negative-control scoring compares
    /// against.
    pub fn build_naive(corpus: &Corpus) -> Self {
        let mined = DictionaryMiner.mine_naive(corpus);
        Self::from_mined(&mined)
    }

    /// Aggregate mined observations.
    ///
    /// Each (provider, community) pair is first resolved to a single
    /// class — the strongest observation wins (blackhole, then action,
    /// then location, then informational), independent of observation
    /// order — so the per-class maps are disjoint by construction.
    pub fn from_mined(mined: &[MinedCommunity]) -> Self {
        let mut dict = BlackholeDictionary::default();
        let mut classic_class: BTreeMap<(Asn, Community), CommunityClass> = BTreeMap::new();
        let mut large_class: BTreeMap<(Asn, LargeCommunity), CommunityClass> = BTreeMap::new();
        for m in mined {
            if let Some(c) = m.community {
                classic_class
                    .entry((m.asn, c))
                    .and_modify(|e| *e = (*e).min(m.class))
                    .or_insert(m.class);
            }
            if let Some(l) = m.large {
                large_class
                    .entry((m.asn, l))
                    .and_modify(|e| *e = (*e).min(m.class))
                    .or_insert(m.class);
            }
        }
        for m in mined {
            if let Some(c) = m.community {
                let resolved = classic_class[&(m.asn, c)];
                if resolved == CommunityClass::Blackhole {
                    // Only blackhole-classed observations carry trigger
                    // metadata; outvoted non-blackhole sightings are
                    // dropped to keep the maps disjoint.
                    if m.class == CommunityClass::Blackhole {
                        dict.by_community.entry(c).or_default().insert(m.asn);
                        let meta = dict.providers.entry(m.asn).or_default();
                        if !meta.communities.contains(&c) {
                            meta.communities.push(c);
                        }
                        if let Some(len) = m.min_accepted_length {
                            meta.min_accepted_length =
                                Some(meta.min_accepted_length.map_or(len, |old| old.min(len)));
                        }
                    }
                } else {
                    dict.other_by_community.entry(c).or_default().insert(m.asn);
                    dict.class_by_community
                        .entry(resolved)
                        .or_default()
                        .entry(c)
                        .or_default()
                        .insert(m.asn);
                }
            }
            if let Some(l) = m.large {
                let resolved = large_class[&(m.asn, l)];
                if resolved == CommunityClass::Blackhole {
                    if m.class == CommunityClass::Blackhole {
                        dict.by_large.entry(l).or_default().insert(m.asn);
                        dict.providers.entry(m.asn).or_default().large = Some(l);
                    }
                } else {
                    dict.class_by_large
                        .entry(resolved)
                        .or_default()
                        .entry(l)
                        .or_default()
                        .insert(m.asn);
                }
            }
        }
        dict
    }

    /// Number of distinct blackhole communities.
    pub fn community_count(&self) -> usize {
        self.by_community.len() + self.by_large.len()
    }

    /// Number of providers with at least one blackhole community.
    pub fn provider_count(&self) -> usize {
        self.providers.len()
    }

    /// Candidate providers for a classic community (empty if unknown).
    pub fn providers_for(&self, community: Community) -> Vec<Asn> {
        self.by_community
            .get(&community)
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Candidate providers for a large community.
    pub fn providers_for_large(&self, large: LargeCommunity) -> Vec<Asn> {
        self.by_large.get(&large).map(|set| set.iter().copied().collect()).unwrap_or_default()
    }

    /// Is this a known blackhole community?
    pub fn is_blackhole_community(&self, community: Community) -> bool {
        self.by_community.contains_key(&community)
    }

    /// Is this a known *non*-blackhole documented community?
    pub fn is_other_community(&self, community: Community) -> bool {
        self.other_by_community.contains_key(&community)
    }

    /// Iterate blackhole entries.
    pub fn entries(&self) -> impl Iterator<Item = DictEntry> + '_ {
        self.by_community.iter().map(|(c, providers)| DictEntry {
            community: *c,
            providers: providers.iter().copied().collect(),
        })
    }

    /// Iterate non-blackhole entries (for Fig. 2).
    pub fn other_entries(&self) -> impl Iterator<Item = DictEntry> + '_ {
        self.other_by_community.iter().map(|(c, providers)| DictEntry {
            community: *c,
            providers: providers.iter().copied().collect(),
        })
    }

    /// Iterate the documented entries of one non-blackhole class.
    /// ([`CommunityClass::Blackhole`] entries live in [`Self::entries`].)
    pub fn class_entries(&self, class: CommunityClass) -> impl Iterator<Item = DictEntry> + '_ {
        self.class_by_community.get(&class).into_iter().flatten().map(|(c, providers)| DictEntry {
            community: *c,
            providers: providers.iter().copied().collect(),
        })
    }

    /// Iterate the documented RFC 8092 entries of one non-blackhole class.
    pub fn class_large_entries(
        &self,
        class: CommunityClass,
    ) -> impl Iterator<Item = (LargeCommunity, Vec<Asn>)> + '_ {
        self.class_by_large
            .get(&class)
            .into_iter()
            .flatten()
            .map(|(l, providers)| (*l, providers.iter().copied().collect()))
    }

    /// The resolved usage class of a classic community, if documented at
    /// all. When different providers documented the same value under
    /// different classes, the strongest class wins (blackhole > action >
    /// location > informational).
    pub fn class_of(&self, community: Community) -> Option<CommunityClass> {
        if self.by_community.contains_key(&community) {
            return Some(CommunityClass::Blackhole);
        }
        self.class_by_community
            .iter()
            .find(|(_, map)| map.contains_key(&community))
            .map(|(class, _)| *class)
    }

    /// The resolved usage class of a large community, if documented.
    pub fn class_of_large(&self, large: LargeCommunity) -> Option<CommunityClass> {
        if self.by_large.contains_key(&large) {
            return Some(CommunityClass::Blackhole);
        }
        self.class_by_large
            .iter()
            .find(|(_, map)| map.contains_key(&large))
            .map(|(class, _)| *class)
    }

    /// Providers and metadata.
    pub fn providers(&self) -> impl Iterator<Item = (Asn, &ProviderMeta)> {
        self.providers.iter().map(|(asn, meta)| (*asn, meta))
    }

    /// Metadata for one provider.
    pub fn provider_meta(&self, asn: Asn) -> Option<&ProviderMeta> {
        self.providers.get(&asn)
    }

    /// Insert an externally validated entry (e.g. a late private
    /// communication or a manually confirmed inferred community).
    pub fn insert_validated(&mut self, asn: Asn, community: Community) {
        self.by_community.entry(community).or_default().insert(asn);
        let meta = self.providers.entry(asn).or_default();
        if !meta.communities.contains(&community) {
            meta.communities.push(community);
        }
    }

    /// Validate against topology ground truth.
    pub fn validate_against(&self, topology: &Topology) -> DictionaryValidation {
        let mut v = DictionaryValidation::default();
        // Recall over documented offerings.
        for info in topology.ases() {
            let Some(offering) = &info.blackhole_offering else { continue };
            match offering.documentation {
                DocumentationChannel::Undocumented => {
                    // Correctly absent?
                    for c in &offering.communities {
                        if self.providers_for(*c).contains(&info.asn) {
                            v.undocumented_leaks += 1;
                        }
                    }
                }
                _ => {
                    for c in &offering.communities {
                        if self.providers_for(*c).contains(&info.asn) {
                            v.true_positives += 1;
                        } else {
                            v.missed.push((info.asn, *c));
                        }
                    }
                    if let Some(l) = offering.large_community {
                        if self.providers_for_large(l).contains(&info.asn) {
                            v.true_positives += 1;
                        } else {
                            v.missed.push((info.asn, Community::from_parts(0, 0)));
                        }
                    }
                }
            }
        }
        // Precision: every dictionary pair must be a real offering.
        for entry in self.entries() {
            for asn in &entry.providers {
                let genuine = topology.as_info(*asn).is_some_and(|info| {
                    info.blackhole_offering.as_ref().is_some_and(|o| o.is_trigger(entry.community))
                });
                if !genuine {
                    v.false_positives.push((*asn, entry.community));
                }
            }
        }
        v
    }

    /// Validate the non-blackhole class maps against topology tag ground
    /// truth, the way [`Self::validate_against`] does for blackholes.
    ///
    /// Precision counts every mined class pair against the full tag
    /// ground truth. Recall is restricted to ASes whose offering is
    /// IRR-documented: those render an `aut-num` deterministically, so
    /// every one of their tags is minable; the web and undocumented
    /// channels only probabilistically emit tag text.
    pub fn validate_classes(&self, topology: &Topology) -> ClassValidation {
        let mut v = ClassValidation::default();
        let mut truth: BTreeMap<(Asn, Community), CommunityClass> = BTreeMap::new();
        let mut truth_large: BTreeMap<(Asn, LargeCommunity), CommunityClass> = BTreeMap::new();
        for info in topology.ases() {
            for (c, class) in info.classed_tags() {
                truth.insert((info.asn, c), tag_class_to_community_class(class));
            }
            for tag in &info.tag_large_communities {
                truth_large
                    .insert((info.asn, tag.community), tag_class_to_community_class(tag.class));
            }
        }
        for class in CommunityClass::ALL {
            if class == CommunityClass::Blackhole {
                continue;
            }
            let score = v.per_class.entry(class).or_default();
            for entry in self.class_entries(class) {
                for asn in &entry.providers {
                    if truth.get(&(*asn, entry.community)) == Some(&class) {
                        score.true_positives += 1;
                    } else {
                        score.false_positives += 1;
                    }
                }
            }
            for (large, providers) in self.class_large_entries(class) {
                for asn in providers {
                    if truth_large.get(&(asn, large)) == Some(&class) {
                        score.true_positives += 1;
                    } else {
                        score.false_positives += 1;
                    }
                }
            }
        }
        for info in topology.ases() {
            let irr = info
                .blackhole_offering
                .as_ref()
                .is_some_and(|o| o.documentation == DocumentationChannel::Irr);
            if !irr {
                continue;
            }
            for (c, class) in info.classed_tags() {
                let class = tag_class_to_community_class(class);
                let found = self
                    .class_by_community
                    .get(&class)
                    .and_then(|map| map.get(&c))
                    .is_some_and(|providers| providers.contains(&info.asn));
                let score = v.per_class.entry(class).or_default();
                if found {
                    score.recalled += 1;
                } else {
                    score.missed += 1;
                }
            }
            for tag in &info.tag_large_communities {
                let class = tag_class_to_community_class(tag.class);
                let found = self
                    .class_by_large
                    .get(&class)
                    .and_then(|map| map.get(&tag.community))
                    .is_some_and(|providers| providers.contains(&info.asn));
                let score = v.per_class.entry(class).or_default();
                if found {
                    score.recalled += 1;
                } else {
                    score.missed += 1;
                }
            }
        }
        v
    }
}

/// The ground-truth tag class a mined class is scored against.
fn tag_class_to_community_class(class: TagClass) -> CommunityClass {
    match class {
        TagClass::Location => CommunityClass::Location,
        TagClass::Action => CommunityClass::Action,
        TagClass::Informational => CommunityClass::Informational,
    }
}

/// Precision/recall of the miner vs. ground truth.
#[derive(Debug, Clone, Default)]
pub struct DictionaryValidation {
    /// Documented (provider, community) pairs correctly mined.
    pub true_positives: usize,
    /// Pairs in the dictionary that are not genuine offerings.
    pub false_positives: Vec<(Asn, Community)>,
    /// Documented pairs the miner missed.
    pub missed: Vec<(Asn, Community)>,
    /// Undocumented offerings that somehow ended up in the dictionary
    /// (must be zero: there is no text to mine them from).
    pub undocumented_leaks: usize,
}

impl DictionaryValidation {
    /// Is the dictionary perfectly aligned with documented ground truth?
    pub fn is_perfect(&self) -> bool {
        self.false_positives.is_empty() && self.missed.is_empty() && self.undocumented_leaks == 0
    }

    /// Recall over documented pairs.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.missed.len();
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Precision over mined pairs.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives.len();
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }
}

/// Per-class precision/recall of the general community classifier
/// dictionary vs. ground truth.
#[derive(Debug, Clone, Default)]
pub struct ClassValidation {
    /// Scores per non-blackhole class.
    pub per_class: BTreeMap<CommunityClass, ClassScore>,
}

impl ClassValidation {
    /// Score for one class (zeros when nothing was mined or expected).
    pub fn score(&self, class: CommunityClass) -> ClassScore {
        self.per_class.get(&class).copied().unwrap_or_default()
    }
}

/// Precision/recall counters for one community class.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClassScore {
    /// Mined pairs matching ground truth (precision numerator).
    pub true_positives: usize,
    /// Mined pairs with no matching ground-truth tag of this class.
    pub false_positives: usize,
    /// IRR-documented ground-truth tags found under the right class.
    pub recalled: usize,
    /// IRR-documented ground-truth tags absent or misclassified.
    pub missed: usize,
}

impl ClassScore {
    /// Precision over mined pairs.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall over IRR-documented ground-truth tags.
    pub fn recall(&self) -> f64 {
        let denom = self.recalled + self.missed;
        if denom == 0 {
            1.0
        } else {
            self.recalled as f64 / denom as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use bh_topology::{TopologyBuilder, TopologyConfig};

    use crate::corpus::CorpusGenerator;

    use super::*;

    fn built() -> (bh_topology::Topology, BlackholeDictionary) {
        let t = TopologyBuilder::new(TopologyConfig::tiny(11)).build();
        let corpus = CorpusGenerator::new(&t, 5).generate();
        let dict = BlackholeDictionary::build(&corpus);
        (t, dict)
    }

    #[test]
    fn dictionary_has_high_precision_and_recall() {
        let (t, dict) = built();
        let v = dict.validate_against(&t);
        assert_eq!(v.undocumented_leaks, 0);
        assert!(v.precision() >= 0.99, "precision {} fps {:?}", v.precision(), v.false_positives);
        assert!(v.recall() >= 0.95, "recall {} missed {:?}", v.recall(), v.missed);
    }

    #[test]
    fn rfc7999_is_shared_by_ixps() {
        let (t, dict) = built();
        let providers = dict.providers_for(Community::BLACKHOLE);
        // Every RFC 7999 IXP route server should be listed.
        let expected: Vec<Asn> = t
            .ases()
            .filter(|i| {
                i.blackhole_offering
                    .as_ref()
                    .is_some_and(|o| o.communities.contains(&Community::BLACKHOLE))
            })
            .map(|i| i.asn)
            .collect();
        assert!(!expected.is_empty());
        for asn in expected {
            assert!(providers.contains(&asn), "{asn} missing from 65535:666 entry");
        }
        assert!(dict
            .entries()
            .find(|e| e.community == Community::BLACKHOLE)
            .unwrap()
            .is_ambiguous());
    }

    #[test]
    fn level3_decoy_lands_in_other_dictionary() {
        let (t, dict) = built();
        // Find the decoy provider (blackholes with :9999, tags with :666).
        let decoy = t
            .ases()
            .find(|i| {
                i.blackhole_offering
                    .as_ref()
                    .is_some_and(|o| o.primary_community().value_part() == 9999)
            })
            .expect("decoy exists");
        let tag = Community::from_parts((decoy.asn.value() & 0xFFFF) as u16, 666);
        assert!(
            !dict.providers_for(tag).contains(&decoy.asn),
            "decoy ASN:666 must not be a blackhole entry for the decoy"
        );
        let bh = decoy.blackhole_offering.as_ref().unwrap().primary_community();
        assert!(dict.providers_for(bh).contains(&decoy.asn));
        assert!(dict.is_other_community(tag) || dict.providers_for(tag).is_empty());
    }

    #[test]
    fn metadata_captures_min_length() {
        let (t, dict) = built();
        // At least one IRR-documented provider records a min length.
        let any = dict.providers().any(|(_, meta)| meta.min_accepted_length.is_some());
        assert!(any);
        // Lengths are in the legal blackhole window.
        for (_, meta) in dict.providers() {
            if let Some(len) = meta.min_accepted_length {
                assert!((22..=32).contains(&len));
            }
        }
        drop(t);
    }

    #[test]
    fn insert_validated_extends_dictionary() {
        let (_, mut dict) = built();
        let asn = Asn::new(64_496); // not mined
        let c = Community::from_parts(444, 666);
        assert!(!dict.is_blackhole_community(c));
        dict.insert_validated(asn, c);
        assert!(dict.is_blackhole_community(c));
        assert_eq!(dict.providers_for(c), vec![asn]);
        // Idempotent.
        dict.insert_validated(asn, c);
        assert_eq!(dict.provider_meta(asn).unwrap().communities.len(), 1);
    }

    #[test]
    fn class_maps_are_populated_and_disjoint_from_blackholes() {
        let (_, dict) = built();
        let mut class_pairs = 0;
        for class in CommunityClass::ALL.into_iter().skip(1) {
            for entry in dict.class_entries(class) {
                class_pairs += entry.providers.len();
                for p in &entry.providers {
                    assert!(
                        !dict.providers_for(entry.community).contains(p),
                        "{} is both blackhole and {class:?} for {p}",
                        entry.community
                    );
                }
            }
        }
        assert!(class_pairs > 0, "no class entries mined");
    }

    #[test]
    fn class_validation_scores_high_at_tiny_scale() {
        let (t, dict) = built();
        let v = dict.validate_classes(&t);
        for class in
            [CommunityClass::Action, CommunityClass::Location, CommunityClass::Informational]
        {
            let s = v.score(class);
            assert!(s.precision() >= 0.95, "{class:?} precision {} ({s:?})", s.precision());
            assert!(s.recall() >= 0.9, "{class:?} recall {} ({s:?})", s.recall());
        }
    }

    #[test]
    fn naive_dictionary_is_poisoned_by_trap_tags_and_class_aware_is_not() {
        let (t, _) = built();
        let corpus = CorpusGenerator::new(&t, 5).generate();
        let aware = BlackholeDictionary::build(&corpus).validate_against(&t);
        let naive = BlackholeDictionary::build_naive(&corpus).validate_against(&t);
        assert!(aware.precision() >= 0.99, "aware precision {}", aware.precision());
        assert!(
            naive.false_positives.len() > aware.false_positives.len(),
            "traps should poison only the naive miner (naive {:?})",
            naive.false_positives
        );
        // Recall is about genuine triggers and is unaffected by traps.
        assert!(naive.recall() >= 0.95 && aware.recall() >= 0.95);
    }

    #[test]
    fn aliasing_32_bit_providers_do_not_collide_after_rfc8092_routing() {
        use bh_topology::{
            AsInfo, BlackholeAuth, BlackholeOffering, LargeTag, NetworkType, Relationship,
            TagClass, Tier, Topology,
        };

        // Two 32-bit ASNs that alias mod 2^16: truncation used to fold
        // both onto one `ASN:666`-style classic community.
        let a = Asn::new(70_000);
        let b = Asn::new(70_000 + 65_536);
        assert_eq!(a.value() & 0xFFFF, b.value() & 0xFFFF);
        let mk = |asn: Asn| AsInfo {
            asn,
            tier: Tier::Transit,
            network_type: NetworkType::TransitAccess,
            country: "DE",
            prefixes: vec![],
            blackhole_offering: Some(BlackholeOffering {
                communities: vec![],
                large_community: Some(LargeCommunity::new(asn.value(), 666, 0)),
                min_accepted_length: 25,
                documentation: DocumentationChannel::Irr,
                auth: BlackholeAuth::OriginOrCone,
                blackhole_ip: None,
                strips_community: false,
                honors_no_export: true,
            }),
            tag_communities: vec![],
            tag_classes: vec![],
            tag_large_communities: vec![LargeTag {
                community: LargeCommunity::new(asn.value(), 2001, 0),
                class: TagClass::Location,
            }],
            in_peeringdb: true,
        };
        let mut ases = BTreeMap::new();
        ases.insert(a, mk(a));
        ases.insert(b, mk(b));
        let t = Topology::assemble(ases, vec![(a, b, Relationship::Peer)], vec![]);
        let corpus = CorpusGenerator::new(&t, 9).generate();
        let dict = BlackholeDictionary::build(&corpus);
        // Each provider keeps its own RFC 8092 trigger — no mod-2^16 merge.
        assert_eq!(dict.providers_for_large(LargeCommunity::new(a.value(), 666, 0)), vec![a]);
        assert_eq!(dict.providers_for_large(LargeCommunity::new(b.value(), 666, 0)), vec![b]);
        // And no truncated classic entry exists at all.
        let truncated = Community::from_parts((a.value() & 0xFFFF) as u16, 666);
        assert!(dict.providers_for(truncated).is_empty());
        assert_eq!(dict.class_of(truncated), None);
        // The location tags stay per-provider too.
        assert_eq!(
            dict.class_of_large(LargeCommunity::new(a.value(), 2001, 0)),
            Some(CommunityClass::Location)
        );
        assert_eq!(
            dict.class_of_large(LargeCommunity::new(b.value(), 2001, 0)),
            Some(CommunityClass::Location)
        );
        assert!(dict.validate_against(&t).is_perfect());
    }

    #[test]
    fn other_entries_do_not_overlap_blackhole_provider_pairs() {
        let (_, dict) = built();
        for entry in dict.entries() {
            for other in dict.other_entries() {
                if entry.community == other.community {
                    // The same value may exist in both dictionaries (e.g.
                    // ASN:666 decoy) but never for the same provider.
                    for p in &entry.providers {
                        assert!(
                            !other.providers.contains(p),
                            "{} both blackhole and other for {p}",
                            entry.community
                        );
                    }
                }
            }
        }
    }
}
