//! The blackhole communities dictionary.
//!
//! §4.1: "we only include communities in our dictionary if we can validate
//! them either via published information by the ASes or private
//! communication, and we refer to them as documented communities. … we
//! augment the dictionary of documented communities with information about
//! which networks provide \[shared\] communit\[ies\]."

use std::collections::{BTreeMap, BTreeSet};

use bh_bgp_types::asn::Asn;
use bh_bgp_types::community::{Community, LargeCommunity};
use bh_topology::{DocumentationChannel, Topology};

use crate::corpus::Corpus;
use crate::mining::{DictionaryMiner, MinedCommunity, MinedKind};

/// One dictionary entry: a community and the providers that honor it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DictEntry {
    /// The community value.
    pub community: Community,
    /// Candidate providers. Usually one; shared/ambiguous communities
    /// (high 16 bits not a public ASN) list every provider known to use
    /// the value — the inference engine disambiguates via the AS path.
    pub providers: Vec<Asn>,
}

impl DictEntry {
    /// Is this entry ambiguous (multiple candidate providers)?
    pub fn is_ambiguous(&self) -> bool {
        self.providers.len() > 1
    }
}

/// Per-provider metadata recorded while building the dictionary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProviderMeta {
    /// All communities this provider uses for blackholing.
    pub communities: Vec<Community>,
    /// Large-community trigger, if mined.
    pub large: Option<LargeCommunity>,
    /// Documented minimum accepted prefix length, if mined.
    pub min_accepted_length: Option<u8>,
}

/// The documented blackhole communities dictionary.
#[derive(Debug, Clone, Default)]
pub struct BlackholeDictionary {
    by_community: BTreeMap<Community, BTreeSet<Asn>>,
    by_large: BTreeMap<LargeCommunity, BTreeSet<Asn>>,
    providers: BTreeMap<Asn, ProviderMeta>,
    /// Non-blackhole documented communities (the second dictionary built
    /// in §4.1 for the Fig. 2 comparison).
    other_by_community: BTreeMap<Community, BTreeSet<Asn>>,
}

impl BlackholeDictionary {
    /// Build from a corpus: mine, then aggregate.
    pub fn build(corpus: &Corpus) -> Self {
        let mined = DictionaryMiner.mine(corpus);
        Self::from_mined(&mined)
    }

    /// Aggregate mined observations.
    pub fn from_mined(mined: &[MinedCommunity]) -> Self {
        let mut dict = BlackholeDictionary::default();
        for m in mined {
            match m.kind {
                MinedKind::Blackhole => {
                    if let Some(c) = m.community {
                        dict.by_community.entry(c).or_default().insert(m.asn);
                        let meta = dict.providers.entry(m.asn).or_default();
                        if !meta.communities.contains(&c) {
                            meta.communities.push(c);
                        }
                        if let Some(len) = m.min_accepted_length {
                            meta.min_accepted_length =
                                Some(meta.min_accepted_length.map_or(len, |old| old.min(len)));
                        }
                    }
                    if let Some(l) = m.large {
                        dict.by_large.entry(l).or_default().insert(m.asn);
                        dict.providers.entry(m.asn).or_default().large = Some(l);
                    }
                }
                MinedKind::Other => {
                    if let Some(c) = m.community {
                        dict.other_by_community.entry(c).or_default().insert(m.asn);
                    }
                }
            }
        }
        dict
    }

    /// Number of distinct blackhole communities.
    pub fn community_count(&self) -> usize {
        self.by_community.len() + self.by_large.len()
    }

    /// Number of providers with at least one blackhole community.
    pub fn provider_count(&self) -> usize {
        self.providers.len()
    }

    /// Candidate providers for a classic community (empty if unknown).
    pub fn providers_for(&self, community: Community) -> Vec<Asn> {
        self.by_community
            .get(&community)
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Candidate providers for a large community.
    pub fn providers_for_large(&self, large: LargeCommunity) -> Vec<Asn> {
        self.by_large.get(&large).map(|set| set.iter().copied().collect()).unwrap_or_default()
    }

    /// Is this a known blackhole community?
    pub fn is_blackhole_community(&self, community: Community) -> bool {
        self.by_community.contains_key(&community)
    }

    /// Is this a known *non*-blackhole documented community?
    pub fn is_other_community(&self, community: Community) -> bool {
        self.other_by_community.contains_key(&community)
    }

    /// Iterate blackhole entries.
    pub fn entries(&self) -> impl Iterator<Item = DictEntry> + '_ {
        self.by_community.iter().map(|(c, providers)| DictEntry {
            community: *c,
            providers: providers.iter().copied().collect(),
        })
    }

    /// Iterate non-blackhole entries (for Fig. 2).
    pub fn other_entries(&self) -> impl Iterator<Item = DictEntry> + '_ {
        self.other_by_community.iter().map(|(c, providers)| DictEntry {
            community: *c,
            providers: providers.iter().copied().collect(),
        })
    }

    /// Providers and metadata.
    pub fn providers(&self) -> impl Iterator<Item = (Asn, &ProviderMeta)> {
        self.providers.iter().map(|(asn, meta)| (*asn, meta))
    }

    /// Metadata for one provider.
    pub fn provider_meta(&self, asn: Asn) -> Option<&ProviderMeta> {
        self.providers.get(&asn)
    }

    /// Insert an externally validated entry (e.g. a late private
    /// communication or a manually confirmed inferred community).
    pub fn insert_validated(&mut self, asn: Asn, community: Community) {
        self.by_community.entry(community).or_default().insert(asn);
        let meta = self.providers.entry(asn).or_default();
        if !meta.communities.contains(&community) {
            meta.communities.push(community);
        }
    }

    /// Validate against topology ground truth.
    pub fn validate_against(&self, topology: &Topology) -> DictionaryValidation {
        let mut v = DictionaryValidation::default();
        // Recall over documented offerings.
        for info in topology.ases() {
            let Some(offering) = &info.blackhole_offering else { continue };
            match offering.documentation {
                DocumentationChannel::Undocumented => {
                    // Correctly absent?
                    for c in &offering.communities {
                        if self.providers_for(*c).contains(&info.asn) {
                            v.undocumented_leaks += 1;
                        }
                    }
                }
                _ => {
                    for c in &offering.communities {
                        if self.providers_for(*c).contains(&info.asn) {
                            v.true_positives += 1;
                        } else {
                            v.missed.push((info.asn, *c));
                        }
                    }
                    if let Some(l) = offering.large_community {
                        if self.providers_for_large(l).contains(&info.asn) {
                            v.true_positives += 1;
                        } else {
                            v.missed.push((info.asn, Community::from_parts(0, 0)));
                        }
                    }
                }
            }
        }
        // Precision: every dictionary pair must be a real offering.
        for entry in self.entries() {
            for asn in &entry.providers {
                let genuine = topology.as_info(*asn).is_some_and(|info| {
                    info.blackhole_offering.as_ref().is_some_and(|o| o.is_trigger(entry.community))
                });
                if !genuine {
                    v.false_positives.push((*asn, entry.community));
                }
            }
        }
        v
    }
}

/// Precision/recall of the miner vs. ground truth.
#[derive(Debug, Clone, Default)]
pub struct DictionaryValidation {
    /// Documented (provider, community) pairs correctly mined.
    pub true_positives: usize,
    /// Pairs in the dictionary that are not genuine offerings.
    pub false_positives: Vec<(Asn, Community)>,
    /// Documented pairs the miner missed.
    pub missed: Vec<(Asn, Community)>,
    /// Undocumented offerings that somehow ended up in the dictionary
    /// (must be zero: there is no text to mine them from).
    pub undocumented_leaks: usize,
}

impl DictionaryValidation {
    /// Is the dictionary perfectly aligned with documented ground truth?
    pub fn is_perfect(&self) -> bool {
        self.false_positives.is_empty() && self.missed.is_empty() && self.undocumented_leaks == 0
    }

    /// Recall over documented pairs.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.missed.len();
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Precision over mined pairs.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives.len();
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use bh_topology::{TopologyBuilder, TopologyConfig};

    use crate::corpus::CorpusGenerator;

    use super::*;

    fn built() -> (bh_topology::Topology, BlackholeDictionary) {
        let t = TopologyBuilder::new(TopologyConfig::tiny(11)).build();
        let corpus = CorpusGenerator::new(&t, 5).generate();
        let dict = BlackholeDictionary::build(&corpus);
        (t, dict)
    }

    #[test]
    fn dictionary_has_high_precision_and_recall() {
        let (t, dict) = built();
        let v = dict.validate_against(&t);
        assert_eq!(v.undocumented_leaks, 0);
        assert!(v.precision() >= 0.99, "precision {} fps {:?}", v.precision(), v.false_positives);
        assert!(v.recall() >= 0.95, "recall {} missed {:?}", v.recall(), v.missed);
    }

    #[test]
    fn rfc7999_is_shared_by_ixps() {
        let (t, dict) = built();
        let providers = dict.providers_for(Community::BLACKHOLE);
        // Every RFC 7999 IXP route server should be listed.
        let expected: Vec<Asn> = t
            .ases()
            .filter(|i| {
                i.blackhole_offering
                    .as_ref()
                    .is_some_and(|o| o.communities.contains(&Community::BLACKHOLE))
            })
            .map(|i| i.asn)
            .collect();
        assert!(!expected.is_empty());
        for asn in expected {
            assert!(providers.contains(&asn), "{asn} missing from 65535:666 entry");
        }
        assert!(dict
            .entries()
            .find(|e| e.community == Community::BLACKHOLE)
            .unwrap()
            .is_ambiguous());
    }

    #[test]
    fn level3_decoy_lands_in_other_dictionary() {
        let (t, dict) = built();
        // Find the decoy provider (blackholes with :9999, tags with :666).
        let decoy = t
            .ases()
            .find(|i| {
                i.blackhole_offering
                    .as_ref()
                    .is_some_and(|o| o.primary_community().value_part() == 9999)
            })
            .expect("decoy exists");
        let tag = Community::from_parts((decoy.asn.value() & 0xFFFF) as u16, 666);
        assert!(
            !dict.providers_for(tag).contains(&decoy.asn),
            "decoy ASN:666 must not be a blackhole entry for the decoy"
        );
        let bh = decoy.blackhole_offering.as_ref().unwrap().primary_community();
        assert!(dict.providers_for(bh).contains(&decoy.asn));
        assert!(dict.is_other_community(tag) || dict.providers_for(tag).is_empty());
    }

    #[test]
    fn metadata_captures_min_length() {
        let (t, dict) = built();
        // At least one IRR-documented provider records a min length.
        let any = dict.providers().any(|(_, meta)| meta.min_accepted_length.is_some());
        assert!(any);
        // Lengths are in the legal blackhole window.
        for (_, meta) in dict.providers() {
            if let Some(len) = meta.min_accepted_length {
                assert!((22..=32).contains(&len));
            }
        }
        drop(t);
    }

    #[test]
    fn insert_validated_extends_dictionary() {
        let (_, mut dict) = built();
        let asn = Asn::new(64_496); // not mined
        let c = Community::from_parts(444, 666);
        assert!(!dict.is_blackhole_community(c));
        dict.insert_validated(asn, c);
        assert!(dict.is_blackhole_community(c));
        assert_eq!(dict.providers_for(c), vec![asn]);
        // Idempotent.
        dict.insert_validated(asn, c);
        assert_eq!(dict.provider_meta(asn).unwrap().communities.len(), 1);
    }

    #[test]
    fn other_entries_do_not_overlap_blackhole_provider_pairs() {
        let (_, dict) = built();
        for entry in dict.entries() {
            for other in dict.other_entries() {
                if entry.community == other.community {
                    // The same value may exist in both dictionaries (e.g.
                    // ASN:666 decoy) but never for the same provider.
                    for p in &entry.providers {
                        assert!(
                            !other.providers.contains(p),
                            "{} both blackhole and other for {p}",
                            entry.community
                        );
                    }
                }
            }
        }
    }
}
