//! Bench-trajectory tooling: collect criterion-shim JSONL into a
//! `BENCH_<pr>.json` trajectory point, and compare trajectory points to
//! gate gross performance regressions.
//!
//! The repo records one `BENCH_<pr>.json` per perf-relevant PR at the
//! repo root. Each file holds a `baseline` section (the suite measured
//! on the parent commit) and a `current` section (measured after the
//! PR's changes), keyed by bench id with median ns/iter values:
//!
//! ```json
//! {"pr": 6, "baseline": {"pipeline/inference_batch": 123456, ...},
//!           "current":  {"pipeline/inference_batch":  61728, ...}}
//! ```
//!
//! Subcommands:
//!
//! * `collect <jsonl> <out.json> --pr N --section baseline|current` —
//!   fold a `CRITERION_JSON` JSONL run into one section of a trajectory
//!   file (merging with the other section if already present). Prints a
//!   per-bench speedup table when both sections exist.
//! * `compare <old.json> <new.json> [--tolerance PCT]` — diff two
//!   trajectory points (each file's `current` section, falling back to
//!   `baseline`); exit 1 if any bench regressed by more than the
//!   tolerance (default 25% ns/iter).
//! * `check [dir]` — find `BENCH_*.json` under `dir` (default `.`) and
//!   compare the newest two by PR number; a no-op when fewer than two
//!   trajectory points exist, so `make check` passes on fresh clones.
//!
//! Everything here is plain `std`: the JSON involved is flat
//! string→number maps produced by the vendored criterion shim and by
//! this tool itself, so a minimal recursive parser suffices.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Default regression gate: fail on > 25% ns/iter growth.
const DEFAULT_TOLERANCE_PCT: f64 = 25.0;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("collect") => cmd_collect(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        _ => Err(String::from(
            "usage: bench_compare collect <jsonl> <out.json> --pr N --section baseline|current\n\
             \x20      bench_compare compare <old.json> <new.json> [--tolerance PCT]\n\
             \x20      bench_compare check [dir] [--tolerance PCT]",
        )),
    };
    match result {
        Ok(code) => code,
        Err(err) => {
            eprintln!("bench_compare: {err}");
            ExitCode::from(2)
        }
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON (objects, strings, numbers — the only shapes we emit/read)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Num(f64),
    Str(String),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser { bytes: text.as_bytes(), pos: 0 }
    }

    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("unexpected {other:?} in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| e.to_string())?
                    .to_string();
                self.pos += 1;
                return Ok(s);
            }
            if b == b'\\' {
                return Err("escape sequences are not supported".into());
            }
            self.pos += 1;
        }
        Err("unterminated string".into())
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

fn parse_json(text: &str) -> Result<Json, String> {
    let mut parser = Parser::new(text);
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing data at byte {}", parser.pos));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Trajectory files
// ---------------------------------------------------------------------------

/// One `BENCH_<pr>.json`: bench id → median ns/iter per section.
#[derive(Debug, Default)]
struct Trajectory {
    pr: Option<f64>,
    baseline: BTreeMap<String, f64>,
    current: BTreeMap<String, f64>,
}

impl Trajectory {
    fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let json = parse_json(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let section = |name: &str| -> Result<BTreeMap<String, f64>, String> {
            let mut map = BTreeMap::new();
            if let Some(Json::Obj(fields)) = json.get(name) {
                for (id, v) in fields {
                    let ns = v.as_f64().ok_or_else(|| {
                        format!("{}: {name}.{id} is not a number", path.display())
                    })?;
                    map.insert(id.clone(), ns);
                }
            }
            Ok(map)
        };
        Ok(Trajectory {
            pr: json.get("pr").and_then(Json::as_f64),
            baseline: section("baseline")?,
            current: section("current")?,
        })
    }

    fn save(&self, path: &Path) -> Result<(), String> {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"pr\": {},", fmt_num(self.pr.unwrap_or(0.0)));
        let section = |out: &mut String, name: &str, map: &BTreeMap<String, f64>, last: bool| {
            let _ = write!(out, "  \"{name}\": {{");
            for (i, (id, ns)) in map.iter().enumerate() {
                let sep = if i + 1 == map.len() { "" } else { "," };
                let _ = write!(out, "\n    \"{id}\": {}{sep}", fmt_num(*ns));
            }
            let _ = writeln!(out, "\n  }}{}", if last { "" } else { "," });
        };
        section(&mut out, "baseline", &self.baseline, self.current.is_empty());
        if !self.current.is_empty() {
            section(&mut out, "current", &self.current, true);
        }
        out.push_str("}\n");
        std::fs::write(path, out).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// The section representing this trajectory point's final state:
    /// `current` after the PR's changes, else the bare `baseline`.
    fn effective(&self) -> &BTreeMap<String, f64> {
        if self.current.is_empty() {
            &self.baseline
        } else {
            &self.current
        }
    }
}

/// Render an ns value without a trailing `.0` for whole numbers.
fn fmt_num(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// Parse a `CRITERION_JSON` JSONL file into bench id → median ns.
fn load_jsonl(path: &Path) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut map = BTreeMap::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let json = parse_json(line).map_err(|e| format!("{}: {e}", path.display()))?;
        let id = match json.get("id") {
            Some(Json::Str(id)) => id.clone(),
            _ => return Err(format!("{}: line without string \"id\"", path.display())),
        };
        let ns = json
            .get("median_ns")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{}: {id} without numeric \"median_ns\"", path.display()))?;
        // Later lines win: a re-run of the same bench supersedes.
        map.insert(id, ns);
    }
    if map.is_empty() {
        return Err(format!("{}: no benchmark lines found", path.display()));
    }
    Ok(map)
}

// ---------------------------------------------------------------------------
// Subcommands
// ---------------------------------------------------------------------------

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn positional(args: &[String]) -> Vec<&String> {
    let mut out = Vec::new();
    let mut skip = false;
    for arg in args {
        if skip {
            skip = false;
        } else if arg.starts_with("--") {
            skip = true;
        } else {
            out.push(arg);
        }
    }
    out
}

fn tolerance(args: &[String]) -> Result<f64, String> {
    match flag_value(args, "--tolerance") {
        None => Ok(DEFAULT_TOLERANCE_PCT),
        Some(v) => v.parse::<f64>().map_err(|_| format!("bad --tolerance {v}")),
    }
}

/// Nearest previous trajectory point: the `BENCH_<m>.json` with the
/// largest `m < n` sitting next to `out` = `BENCH_<n>.json`. Gaps in
/// the numbering are fine; returns `None` when `out` is not named like
/// a trajectory point or no earlier point exists.
fn previous_trajectory(out: &Path) -> Result<Option<PathBuf>, String> {
    let Some(n) = out
        .file_name()
        .and_then(|f| f.to_str())
        .and_then(|f| f.strip_prefix("BENCH_"))
        .and_then(|rest| rest.strip_suffix(".json"))
        .and_then(|num| num.parse::<u64>().ok())
    else {
        return Ok(None);
    };
    let dir = match out.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let entries = std::fs::read_dir(&dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(Result::ok);
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in entries {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(m) = name
            .strip_prefix("BENCH_")
            .and_then(|rest| rest.strip_suffix(".json"))
            .and_then(|num| num.parse::<u64>().ok())
        {
            if m < n && best.as_ref().is_none_or(|(b, _)| m > *b) {
                best = Some((m, entry.path()));
            }
        }
    }
    Ok(best.map(|(_, path)| path))
}

fn cmd_collect(args: &[String]) -> Result<ExitCode, String> {
    let pos = positional(args);
    let [jsonl, out] = pos[..] else {
        return Err("collect needs <jsonl> <out.json>".into());
    };
    let section = flag_value(args, "--section").unwrap_or("current");
    if !matches!(section, "baseline" | "current") {
        return Err(format!("--section must be baseline or current, got {section}"));
    }
    let out = PathBuf::from(out);
    let measured = load_jsonl(Path::new(jsonl))?;
    let mut trajectory = if out.exists() {
        Trajectory::load(&out)?
    } else {
        let mut fresh = Trajectory::default();
        // Creating a new point directly with `--section current` (a
        // bench-json run with no prior bench-baseline): seed the
        // baseline from the nearest previous trajectory point, so the
        // file still records a comparison instead of shipping with an
        // empty baseline.
        if section == "current" {
            if let Some(prev) = previous_trajectory(&out)? {
                let prev_t = Trajectory::load(&prev)?;
                println!("seeding baseline from {}", prev.display());
                fresh.baseline = prev_t.effective().clone();
            }
        }
        fresh
    };
    if let Some(pr) = flag_value(args, "--pr") {
        trajectory.pr = Some(pr.parse::<f64>().map_err(|_| format!("bad --pr {pr}"))?);
    }
    let n = measured.len();
    match section {
        "baseline" => trajectory.baseline = measured,
        _ => trajectory.current = measured,
    }
    trajectory.save(&out)?;
    println!("wrote {n} benches to {} section \"{section}\"", out.display());
    if !trajectory.baseline.is_empty() && !trajectory.current.is_empty() {
        println!("\nbaseline vs current (this PR):");
        print_diff(&trajectory.baseline, &trajectory.current, f64::INFINITY);
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_compare(args: &[String]) -> Result<ExitCode, String> {
    let pos = positional(args);
    let [old, new] = pos[..] else {
        return Err("compare needs <old.json> <new.json>".into());
    };
    let tolerance = tolerance(args)?;
    let old_t = Trajectory::load(Path::new(old))?;
    let new_t = Trajectory::load(Path::new(new))?;
    println!("comparing {old} -> {new} (tolerance {tolerance}%)");
    let regressions = print_diff(old_t.effective(), new_t.effective(), tolerance);
    if regressions == 0 {
        println!("ok: no bench regressed by more than {tolerance}%");
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!("FAIL: {regressions} bench(es) regressed by more than {tolerance}%");
        Ok(ExitCode::FAILURE)
    }
}

fn cmd_check(args: &[String]) -> Result<ExitCode, String> {
    let pos = positional(args);
    let dir = pos.first().map(|s| s.as_str()).unwrap_or(".");
    let tolerance = tolerance(args)?;
    let mut points: Vec<(u64, PathBuf)> = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{dir}: {e}"))?.filter_map(Result::ok);
    for entry in entries {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(n) = name
            .strip_prefix("BENCH_")
            .and_then(|rest| rest.strip_suffix(".json"))
            .and_then(|num| num.parse::<u64>().ok())
        {
            points.push((n, entry.path()));
        }
    }
    points.sort_unstable();
    if points.len() < 2 {
        println!(
            "bench_compare: {} trajectory point(s) under {dir} — nothing to compare",
            points.len()
        );
        return Ok(ExitCode::SUCCESS);
    }
    let old = &points[points.len() - 2].1;
    let new = &points[points.len() - 1].1;
    cmd_compare(&[
        old.display().to_string(),
        new.display().to_string(),
        "--tolerance".into(),
        tolerance.to_string(),
    ])
}

/// Print a diff table of two id → ns maps; return the regression count.
fn print_diff(old: &BTreeMap<String, f64>, new: &BTreeMap<String, f64>, tolerance: f64) -> usize {
    let mut regressions = 0;
    for (id, new_ns) in new {
        let Some(old_ns) = old.get(id) else {
            println!("  {id:<50} (new bench, no reference)");
            continue;
        };
        if *old_ns <= 0.0 {
            continue;
        }
        let change = (new_ns - old_ns) / old_ns * 100.0;
        let speedup = old_ns / new_ns;
        let verdict = if change > tolerance {
            regressions += 1;
            "REGRESSION"
        } else {
            ""
        };
        println!("  {id:<50} {change:>+8.1}%  ({speedup:.2}x) {verdict}");
    }
    for id in old.keys().filter(|id| !new.contains_key(*id)) {
        println!("  {id:<50} (dropped)");
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_shim_jsonl_lines() {
        let json = parse_json(
            "{\"id\":\"pipeline/x\",\"median_ns\":1234,\"throughput_kind\":\"elements\",\
             \"throughput_per_iter\":10,\"per_sec\":8103727.715,\"samples\":10}",
        )
        .expect("parse");
        assert_eq!(json.get("id"), Some(&Json::Str("pipeline/x".into())));
        assert_eq!(json.get("median_ns").and_then(Json::as_f64), Some(1234.0));
        assert_eq!(json.get("per_sec").and_then(Json::as_f64), Some(8_103_727.715));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_numbers() {
        assert!(parse_json("{\"a\":1} extra").is_err());
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("").is_err());
    }

    #[test]
    fn trajectory_round_trips_through_save_and_load() {
        let dir = std::env::temp_dir().join("bench_compare_test_roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_9.json");
        let mut t = Trajectory { pr: Some(9.0), ..Trajectory::default() };
        t.baseline.insert("pipeline/a".into(), 1500.0);
        t.baseline.insert("fleet/b".into(), 2e6);
        t.current.insert("pipeline/a".into(), 750.5);
        t.save(&path).expect("save");
        let back = Trajectory::load(&path).expect("load");
        assert_eq!(back.pr, Some(9.0));
        assert_eq!(back.baseline, t.baseline);
        assert_eq!(back.current, t.current);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn effective_prefers_current_over_baseline() {
        let mut t = Trajectory::default();
        t.baseline.insert("a".into(), 100.0);
        assert_eq!(t.effective().get("a"), Some(&100.0));
        t.current.insert("a".into(), 50.0);
        assert_eq!(t.effective().get("a"), Some(&50.0));
    }

    #[test]
    fn collect_seeds_new_point_baseline_from_previous_point() {
        let dir = std::env::temp_dir().join("bench_compare_test_seed");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        // Nearest previous point (note the gap: no BENCH_4).
        let mut prev = Trajectory { pr: Some(3.0), ..Trajectory::default() };
        prev.current.insert("pipeline/a".into(), 2000.0);
        prev.save(&dir.join("BENCH_3.json")).expect("save prev");
        // Older point that must lose to BENCH_3.
        let mut stale = Trajectory { pr: Some(1.0), ..Trajectory::default() };
        stale.baseline.insert("pipeline/a".into(), 9000.0);
        stale.save(&dir.join("BENCH_1.json")).expect("save stale");
        let jsonl = dir.join("run.jsonl");
        std::fs::write(&jsonl, "{\"id\":\"pipeline/a\",\"median_ns\":1000}\n").unwrap();
        let out = dir.join("BENCH_5.json");
        let args: Vec<String> = [
            jsonl.display().to_string(),
            out.display().to_string(),
            "--pr".into(),
            "5".into(),
            "--section".into(),
            "current".into(),
        ]
        .into();
        cmd_collect(&args).expect("collect");
        let back = Trajectory::load(&out).expect("load");
        // Baseline carried over from BENCH_3's effective (current) section.
        assert_eq!(back.baseline.get("pipeline/a"), Some(&2000.0));
        assert_eq!(back.current.get("pipeline/a"), Some(&1000.0));
        assert_eq!(back.pr, Some(5.0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn previous_trajectory_ignores_non_points_and_self() {
        let dir = std::env::temp_dir().join("bench_compare_test_prev");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("BENCH_7.json"), "{}").unwrap();
        std::fs::write(dir.join("BENCH_notes.json"), "{}").unwrap();
        std::fs::write(dir.join("other.json"), "{}").unwrap();
        let prev = previous_trajectory(&dir.join("BENCH_7.json")).expect("scan");
        assert_eq!(prev, None, "a point is not its own predecessor");
        let prev = previous_trajectory(&dir.join("BENCH_9.json")).expect("scan");
        assert_eq!(prev, Some(dir.join("BENCH_7.json")));
        assert_eq!(previous_trajectory(Path::new("notes.json")).expect("scan"), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn diff_counts_only_over_tolerance_regressions() {
        let mut old = BTreeMap::new();
        let mut new = BTreeMap::new();
        old.insert("fine".into(), 100.0);
        new.insert("fine".into(), 110.0); // +10% — within 25%
        old.insert("bad".into(), 100.0);
        new.insert("bad".into(), 200.0); // +100% — regression
        new.insert("fresh".into(), 10.0); // no reference — ignored
        assert_eq!(print_diff(&old, &new, 25.0), 1);
        assert_eq!(print_diff(&old, &new, 150.0), 0);
    }
}
