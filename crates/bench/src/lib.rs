//! # bh-bench — shared pipeline harness + Criterion benches
//!
//! One bench target per table/figure of the paper (see
//! `bh_analysis::experiments::registry`). The [`pipeline`] module builds
//! the full study end-to-end — topology → corpus → dictionary → scenario
//! → collector stream → inference — at several scales, so benches,
//! examples, and integration tests share one code path.

pub mod pipeline;

pub use pipeline::{AdversarialRun, Study, StudyRun, StudyScale};
