//! The end-to-end study pipeline at configurable scale.
//!
//! Mirrors the paper's pipeline exactly:
//!
//! 1. the Internet exists (topology + collector deployment),
//! 2. operators document their blackhole communities (corpus),
//! 3. the dictionary is mined from the corpus (§4.1),
//! 4. attacks happen and operators react (scenario → BGP simulation),
//! 5. collectors observe, the engine infers (§4.2),
//! 6. analytics reproduce the tables and figures.

use bh_bgp_types::time::SimTime;
use bh_core::{EngineConfig, InferenceEngine, InferenceResult, ReferenceData};
use bh_irr::{BlackholeDictionary, CorpusGenerator};
use bh_routing::{deploy, BgpElem, CollectorConfig, CollectorDeployment};
use bh_topology::{Topology, TopologyBuilder, TopologyConfig};
use bh_workloads::{run, ScenarioConfig, ScenarioOutput};

/// Pipeline scale: trade fidelity for wall-clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StudyScale {
    /// ~60 ASes — unit-test speed.
    Tiny,
    /// ~230 ASes — bench default: minutes-scale full runs, shape-faithful.
    Small,
    /// The full Table-2-scale Internet (~1,150 ASes) — example/demo runs.
    Full,
}

impl StudyScale {
    /// Topology configuration for the scale.
    pub fn topology_config(self, seed: u64) -> TopologyConfig {
        match self {
            StudyScale::Tiny => TopologyConfig::tiny(seed),
            StudyScale::Small => TopologyConfig {
                seed,
                tier1_count: 8,
                transit_count: 70,
                content_count: 80,
                enterprise_count: 30,
                edu_count: 15,
                unknown_count: 15,
                ixp_count: 12,
                bh_transit: bh_topology::ProviderCounts { documented: 40, undocumented: 16 },
                bh_ixp: 10,
                bh_content: bh_topology::ProviderCounts { documented: 5, undocumented: 3 },
                bh_edu: bh_topology::ProviderCounts { documented: 3, undocumented: 0 },
                bh_enterprise: bh_topology::ProviderCounts { documented: 2, undocumented: 1 },
                bh_unknown: bh_topology::ProviderCounts { documented: 3, undocumented: 1 },
                peeringdb_coverage: 0.72,
            },
            StudyScale::Full => TopologyConfig { seed, ..Default::default() },
        }
    }

    /// Collector configuration for the scale.
    pub fn collector_config(self, seed: u64) -> CollectorConfig {
        match self {
            StudyScale::Tiny => CollectorConfig::tiny(seed),
            StudyScale::Small => CollectorConfig {
                seed,
                ris_peers: 18,
                rv_peers: 14,
                pch_ixp_coverage: 0.6,
                cdn_peers: 90,
                full_table_fraction: 0.5,
            },
            StudyScale::Full => CollectorConfig { seed, ..Default::default() },
        }
    }
}

/// A fully assembled study environment.
pub struct Study {
    /// The synthetic Internet.
    pub topology: Topology,
    /// Collector deployment (kept for re-deployments).
    pub collector_config: CollectorConfig,
    /// The mined, documented dictionary.
    pub dict: BlackholeDictionary,
    /// Base RNG seed.
    pub seed: u64,
}

impl Study {
    /// Build the environment: topology, corpus, dictionary.
    pub fn build(scale: StudyScale, seed: u64) -> Self {
        let topology = TopologyBuilder::new(scale.topology_config(seed)).build();
        let corpus = CorpusGenerator::new(&topology, seed ^ 0x1212).generate();
        let dict = BlackholeDictionary::build(&corpus);
        Study { topology, collector_config: scale.collector_config(seed ^ 0x3434), dict, seed }
    }

    /// A fresh collector deployment.
    pub fn deployment(&self) -> CollectorDeployment {
        deploy(&self.topology, &self.collector_config)
    }

    /// Reference data matching the deployment.
    pub fn refdata(&self) -> ReferenceData {
        ReferenceData::build(&self.topology, &self.deployment())
    }

    /// Run a scenario (attacks → reactions → propagation → collectors).
    pub fn run_scenario(&self, config: &ScenarioConfig) -> ScenarioOutput {
        run(&self.topology, self.deployment(), config)
    }

    /// Run the inference engine over an element stream.
    pub fn infer(&self, refdata: &ReferenceData, elems: &[BgpElem]) -> InferenceResult {
        self.infer_with_config(refdata, elems, EngineConfig::default())
    }

    /// Inference with explicit engine configuration (ablations).
    pub fn infer_with_config(
        &self,
        refdata: &ReferenceData,
        elems: &[BgpElem],
        config: EngineConfig,
    ) -> InferenceResult {
        let mut engine = InferenceEngine::with_config(&self.dict, refdata, config);
        engine.process_stream(elems);
        engine.finish()
    }

    /// The standard short visibility run used by most benches: `days`
    /// days at `rate` attacks/day inside the Aug-2016+ window.
    pub fn visibility_run(&self, days: u64, rate: f64) -> (ScenarioOutput, InferenceResult) {
        let mut config = ScenarioConfig::visibility_window(self.seed ^ 0x7777, rate);
        config.calendar.window_end =
            SimTime::from_unix((config.calendar.window_start.day_index() + days) * 86_400);
        let output = self.run_scenario(&config);
        let refdata = self.refdata();
        let result = self.infer(&refdata, &output.elems);
        (output, result)
    }

    /// The longitudinal run (Fig. 4): the full Dec 2014 – Mar 2017 window
    /// at `rate` attacks/day (scaled down vs. reality; shape-preserving).
    pub fn longitudinal_run(&self, rate: f64) -> (ScenarioOutput, InferenceResult) {
        let config = ScenarioConfig::study(self.seed ^ 0x9999, rate);
        let output = self.run_scenario(&config);
        let refdata = self.refdata();
        let result = self.infer(&refdata, &output.elems);
        (output, result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_study_builds_and_infers() {
        let study = Study::build(StudyScale::Tiny, 5);
        let (output, result) = study.visibility_run(4, 6.0);
        assert!(!output.ground_truth.is_empty());
        assert!(
            !result.events.is_empty(),
            "inference found no events from {} truths",
            output.ground_truth.len()
        );
    }

    #[test]
    fn dictionary_quality_at_small_scale() {
        let study = Study::build(StudyScale::Small, 7);
        let v = study.dict.validate_against(&study.topology);
        assert!(v.precision() >= 0.99, "precision {}", v.precision());
        assert!(v.recall() >= 0.95, "recall {}", v.recall());
        assert_eq!(v.undocumented_leaks, 0);
    }
}
