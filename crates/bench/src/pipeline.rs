//! The end-to-end study pipeline at configurable scale.
//!
//! Mirrors the paper's pipeline exactly:
//!
//! 1. the Internet exists (topology + collector deployment),
//! 2. operators document their blackhole communities (corpus),
//! 3. the dictionary is mined from the corpus (§4.1),
//! 4. attacks happen and operators react (scenario → BGP simulation),
//! 5. collectors observe, the session infers (§4.2),
//! 6. analytics reproduce the tables and figures.
//!
//! Scenario runs build **one** collector deployment and thread it
//! through simulation *and* reference data, so the metadata the
//! inference consults always matches the sessions that observed the
//! stream (and the deployment is computed once, not twice).

use std::sync::Arc;

use bh_bgp_types::time::SimTime;
use bh_core::{
    score_events, AnalyticsConfig, AnalyticsPipeline, AnalyticsReport, ConfusionReport,
    EngineConfig, EventAccumulator, InferenceResult, InferenceSession, ReferenceData,
    SessionBuilder, ShardedSession, StreamSummary,
};
use bh_irr::{BlackholeDictionary, Corpus, CorpusGenerator, NegativeControls};
use bh_routing::{deploy, BgpElem, CollectorConfig, CollectorDeployment, ElemSource, SliceSource};
use bh_topology::{PolicyTable, Topology, TopologyBuilder, TopologyConfig};
use bh_workloads::{
    fleet_of, run, run_adversarial, run_with_policies, AdversarialConfig, AdversarialOutput,
    CollectorArchive, ScenarioConfig, ScenarioOutput,
};

/// Pipeline scale: trade fidelity for wall-clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StudyScale {
    /// ~60 ASes — unit-test speed.
    Tiny,
    /// ~230 ASes — bench default: minutes-scale full runs, shape-faithful.
    Small,
    /// The full Table-2-scale Internet (~1,150 ASes) — example/demo runs.
    Full,
    /// The CAIDA-shaped ~75k-AS internet with power-law customer degrees
    /// — the propagation-engine scale tier. Whole-study runs at this
    /// scale are hours; it exists for the propagation benches and the
    /// massive smoke path.
    Massive,
}

impl StudyScale {
    /// Topology configuration for the scale.
    pub fn topology_config(self, seed: u64) -> TopologyConfig {
        match self {
            StudyScale::Tiny => TopologyConfig::tiny(seed),
            StudyScale::Small => TopologyConfig {
                seed,
                tier1_count: 8,
                transit_count: 70,
                content_count: 80,
                enterprise_count: 30,
                edu_count: 15,
                unknown_count: 15,
                ixp_count: 12,
                bh_transit: bh_topology::ProviderCounts { documented: 40, undocumented: 16 },
                bh_ixp: 10,
                bh_content: bh_topology::ProviderCounts { documented: 5, undocumented: 3 },
                bh_edu: bh_topology::ProviderCounts { documented: 3, undocumented: 0 },
                bh_enterprise: bh_topology::ProviderCounts { documented: 2, undocumented: 1 },
                bh_unknown: bh_topology::ProviderCounts { documented: 3, undocumented: 1 },
                peeringdb_coverage: 0.72,
                power_law_degrees: false,
            },
            StudyScale::Full => TopologyConfig { seed, ..Default::default() },
            StudyScale::Massive => TopologyConfig::massive(seed),
        }
    }

    /// Collector configuration for the scale.
    pub fn collector_config(self, seed: u64) -> CollectorConfig {
        match self {
            StudyScale::Tiny => CollectorConfig::tiny(seed),
            StudyScale::Small => CollectorConfig {
                seed,
                ris_peers: 18,
                rv_peers: 14,
                pch_ixp_coverage: 0.6,
                cdn_peers: 90,
                full_table_fraction: 0.5,
            },
            StudyScale::Full | StudyScale::Massive => {
                CollectorConfig { seed, ..Default::default() }
            }
        }
    }
}

/// A fully assembled study environment.
pub struct Study {
    /// The synthetic Internet.
    pub topology: Topology,
    /// Collector deployment (kept for re-deployments).
    pub collector_config: CollectorConfig,
    /// The mined, documented dictionary (shared by every session).
    pub dict: Arc<BlackholeDictionary>,
    /// Base RNG seed.
    pub seed: u64,
}

/// One scenario run, end to end: the collector stream, the inference
/// result, the accumulator-computed analytics report, and the reference
/// data that matches the deployment which observed the stream.
pub struct StudyRun {
    /// Scenario output (elements + ground truth).
    pub output: ScenarioOutput,
    /// Inference over the whole stream.
    pub result: InferenceResult,
    /// The reference data the inference used (built from the same
    /// deployment that produced `output`).
    pub refdata: Arc<ReferenceData>,
    /// The analytics window/now/grouping parameters of this run (the
    /// scenario calendar, with the paper's 5-minute grouping timeout).
    pub analytics: AnalyticsConfig,
    /// Every paper table/figure of this run, computed by the
    /// [`AnalyticsPipeline`] accumulators — field for field equal to the
    /// batch functions over `result`.
    pub report: AnalyticsReport,
}

/// One adversarial run, end to end: the labelled workload's output,
/// the inference over its collector stream, and the confusion report
/// scoring that inference against the simulator's ground truth.
pub struct AdversarialRun {
    /// Workload output (elements + cooperative ground truth + labels).
    pub output: AdversarialOutput,
    /// Inference over the whole stream.
    pub result: InferenceResult,
    /// The reference data the inference used.
    pub refdata: Arc<ReferenceData>,
    /// Precision/recall/per-kind false-positive attribution.
    pub report: ConfusionReport,
}

impl Study {
    /// Build the environment: topology, corpus, dictionary.
    pub fn build(scale: StudyScale, seed: u64) -> Self {
        let topology = TopologyBuilder::new(scale.topology_config(seed)).build();
        let corpus = CorpusGenerator::new(&topology, seed ^ 0x1212).generate();
        let dict = Arc::new(BlackholeDictionary::build(&corpus));
        Study { topology, collector_config: scale.collector_config(seed ^ 0x3434), dict, seed }
    }

    /// A fresh collector deployment (deterministic for a given study).
    pub fn deployment(&self) -> CollectorDeployment {
        deploy(&self.topology, &self.collector_config)
    }

    /// Reference data matching a specific deployment.
    pub fn refdata_for(&self, deployment: &CollectorDeployment) -> Arc<ReferenceData> {
        Arc::new(ReferenceData::build(&self.topology, deployment))
    }

    /// Reference data for a fresh (deterministic) deployment.
    pub fn refdata(&self) -> Arc<ReferenceData> {
        self.refdata_for(&self.deployment())
    }

    /// A session builder over this study's dictionary and the given
    /// reference data.
    pub fn session(&self, refdata: &Arc<ReferenceData>) -> SessionBuilder {
        SessionBuilder::new(self.dict.clone(), refdata.clone())
    }

    /// A sharded session over `shards` prefix-partitioned workers.
    pub fn sharded_session(&self, refdata: &Arc<ReferenceData>, shards: usize) -> ShardedSession {
        self.session(refdata).build_sharded(shards)
    }

    /// One-shot inference over an in-memory element stream.
    pub fn infer(&self, refdata: &Arc<ReferenceData>, elems: &[BgpElem]) -> InferenceResult {
        self.infer_with_config(refdata, elems, EngineConfig::default())
    }

    /// Inference with explicit session configuration (ablations).
    pub fn infer_with_config(
        &self,
        refdata: &Arc<ReferenceData>,
        elems: &[BgpElem],
        config: EngineConfig,
    ) -> InferenceResult {
        let mut session: InferenceSession = self.session(refdata).config(config).build();
        session.ingest(&mut SliceSource::new(elems));
        session.finish()
    }

    /// Sharded inference over an in-memory element stream.
    pub fn infer_sharded(
        &self,
        refdata: &Arc<ReferenceData>,
        elems: &[BgpElem],
        shards: usize,
    ) -> InferenceResult {
        let mut session = self.sharded_session(refdata, shards);
        session.ingest(&mut SliceSource::new(elems));
        session.finish()
    }

    /// One-shot inference over any element source — e.g. a
    /// [`MergedSource`](bh_routing::MergedSource) over many archives, or
    /// a running [`CollectorFleet`](bh_routing::CollectorFleet) stream.
    pub fn infer_source<S: ElemSource + ?Sized>(
        &self,
        refdata: &Arc<ReferenceData>,
        source: &mut S,
    ) -> InferenceResult {
        let mut session = self.session(refdata).build();
        session.ingest(source);
        session.finish()
    }

    /// Sharded inference over any element source.
    pub fn infer_sharded_source<S: ElemSource + ?Sized>(
        &self,
        refdata: &Arc<ReferenceData>,
        source: &mut S,
        shards: usize,
    ) -> InferenceResult {
        let mut session = self.sharded_session(refdata, shards);
        session.ingest(source);
        session.finish()
    }

    /// The full multi-collector historical path: per-collector MRT
    /// archives → [`CollectorFleet`](bh_routing::CollectorFleet) (one
    /// reader thread per archive, bounded channels) → merged stream →
    /// one inference session. Panics if any archive fails to decode
    /// cleanly — benches and tests want that loud.
    pub fn infer_fleet(
        &self,
        refdata: &Arc<ReferenceData>,
        archives: &[CollectorArchive],
    ) -> InferenceResult {
        let mut stream = fleet_of(archives).start();
        let result = self.infer_source(refdata, &mut stream);
        let report = stream.finish();
        assert!(report.is_clean(), "fleet archive error: {:?}", report.first_error());
        result
    }

    /// The fleet path fanned out across a sharded session: N archive
    /// readers pipelined into M prefix-partitioned inference workers.
    pub fn infer_fleet_sharded(
        &self,
        refdata: &Arc<ReferenceData>,
        archives: &[CollectorArchive],
        shards: usize,
    ) -> InferenceResult {
        let mut stream = fleet_of(archives).start();
        let result = self.infer_sharded_source(refdata, &mut stream, shards);
        let report = stream.finish();
        assert!(report.is_clean(), "fleet archive error: {:?}", report.first_error());
        result
    }

    /// An [`AnalyticsPipeline`] with every paper-metric accumulator
    /// registered over this study's reference data.
    pub fn analytics_pipeline(
        &self,
        refdata: &Arc<ReferenceData>,
        config: AnalyticsConfig,
    ) -> AnalyticsPipeline {
        AnalyticsPipeline::new(refdata.clone(), config)
    }

    /// One-pass streaming inference **and** analytics: closed events are
    /// drained into the pipeline every `drain_every` elements and the
    /// session finishes straight into it, so the full event `Vec` is
    /// never materialized. Returns the summary (census, counters,
    /// visibility) and the finalized report.
    pub fn infer_streaming_analytics(
        &self,
        refdata: &Arc<ReferenceData>,
        elems: &[BgpElem],
        config: AnalyticsConfig,
        drain_every: u64,
    ) -> (StreamSummary, AnalyticsReport) {
        let mut session = self.session(refdata).build();
        let mut pipeline = self.analytics_pipeline(refdata, config);
        let mut source = SliceSource::new(elems);
        let mut n = 0u64;
        while let Some(elem) = source.next_elem() {
            session.push(elem);
            n += 1;
            if n.is_multiple_of(drain_every.max(1)) {
                session.drain_closed_into(&mut pipeline);
            }
        }
        let summary = session.finish_with(&mut pipeline);
        (summary, pipeline.finalize())
    }

    /// Sharded one-pass inference and analytics: each worker streams its
    /// closed events through its own pipeline clone; the per-shard
    /// pipelines merge deterministically at the barrier.
    pub fn infer_sharded_analytics(
        &self,
        refdata: &Arc<ReferenceData>,
        elems: &[BgpElem],
        config: AnalyticsConfig,
        shards: usize,
    ) -> (StreamSummary, AnalyticsReport) {
        let pipeline = self.analytics_pipeline(refdata, config);
        let mut session = self.session(refdata).build_sharded_with(shards, pipeline);
        session.ingest(&mut SliceSource::new(elems));
        let (summary, merged) = session.finish_parts();
        (summary, merged.finalize())
    }

    /// Run a scenario and infer over its stream with ONE deployment:
    /// the same collector set observes and parameterizes the refdata.
    /// The analytics report comes from the same accumulators the
    /// streaming paths use, fed from the materialized result; the fold
    /// is one pass over the events — milliseconds against the
    /// multi-second simulation — so every run carries its report.
    fn scenario_run(&self, config: &ScenarioConfig) -> StudyRun {
        self.scenario_run_with(config, None)
    }

    fn scenario_run_with(
        &self,
        config: &ScenarioConfig,
        policies: Option<&PolicyTable>,
    ) -> StudyRun {
        let deployment = self.deployment();
        let refdata = self.refdata_for(&deployment);
        let analytics =
            AnalyticsConfig::window(config.calendar.window_start, config.calendar.window_end);
        let output = match policies {
            None => run(&self.topology, deployment, config),
            Some(table) => run_with_policies(&self.topology, deployment, config, table),
        };
        let result = self.infer(&refdata, &output.elems);
        let mut pipeline = self.analytics_pipeline(&refdata, analytics);
        pipeline.observe_result(&result);
        let report = pipeline.finalize();
        StudyRun { output, result, refdata, analytics, report }
    }

    /// The standard short visibility run used by most benches: `days`
    /// days at `rate` attacks/day inside the Aug-2016+ window.
    pub fn visibility_run(&self, days: u64, rate: f64) -> StudyRun {
        let mut config = ScenarioConfig::visibility_window(self.seed ^ 0x7777, rate);
        config.calendar.window_end =
            SimTime::from_unix((config.calendar.window_start.day_index() + days) * 86_400);
        self.scenario_run(&config)
    }

    /// [`visibility_run`](Self::visibility_run) with a per-AS
    /// [`PolicyTable`] installed on the simulator. An empty table is
    /// property-tested bit-identical to the plain run — this is the
    /// policy-overhead bench's comparison axis.
    pub fn visibility_run_with_policies(
        &self,
        days: u64,
        rate: f64,
        policies: &PolicyTable,
    ) -> StudyRun {
        let mut config = ScenarioConfig::visibility_window(self.seed ^ 0x7777, rate);
        config.calendar.window_end =
            SimTime::from_unix((config.calendar.window_start.day_index() + days) * 86_400);
        self.scenario_run_with(&config, Some(policies))
    }

    /// Run an adversarial workload end to end: simulate, infer over the
    /// collector stream, and score the inference against the workload's
    /// ground-truth labels.
    pub fn adversarial_run(&self, config: &AdversarialConfig) -> AdversarialRun {
        self.adversarial_run_with(self.dict.clone(), None, config)
    }

    /// [`adversarial_run`](Self::adversarial_run) with an injected
    /// dictionary and optional negative controls — the comparison axis
    /// for scoring the classifier: a trap-poisoned
    /// [`Study::naive_dict`] with and without
    /// [`CommunityClassifier::negative_controls`](bh_irr::CommunityClassifier::negative_controls).
    pub fn adversarial_run_with(
        &self,
        dict: Arc<BlackholeDictionary>,
        controls: Option<Arc<NegativeControls>>,
        config: &AdversarialConfig,
    ) -> AdversarialRun {
        let deployment = self.deployment();
        let refdata = self.refdata_for(&deployment);
        let output = run_adversarial(&self.topology, deployment, config);
        let mut builder = SessionBuilder::new(dict, refdata.clone());
        if let Some(controls) = controls {
            builder = builder.negative_controls(controls);
        }
        let mut session = builder.build();
        session.ingest(&mut SliceSource::new(&output.elems));
        let result = session.finish();
        let report = score_events(config.name.clone(), &result.events, output.labels.clone());
        AdversarialRun { output, result, refdata, report }
    }

    /// Regenerate this study's documentation corpus (the build does not
    /// retain it; same seed, so byte-identical to what the dictionary
    /// was mined from).
    pub fn corpus(&self) -> Corpus {
        CorpusGenerator::new(&self.topology, self.seed ^ 0x1212).generate()
    }

    /// The naive, stem-only dictionary over the same corpus: the
    /// dictionary-only baseline whose trap-poisoned blackhole map the
    /// classifier's negative controls are scored against.
    pub fn naive_dict(&self) -> Arc<BlackholeDictionary> {
        Arc::new(BlackholeDictionary::build_naive(&self.corpus()))
    }

    /// The longitudinal run (Fig. 4): the full Dec 2014 – Mar 2017 window
    /// at `rate` attacks/day (scaled down vs. reality; shape-preserving).
    pub fn longitudinal_run(&self, rate: f64) -> StudyRun {
        let config = ScenarioConfig::study(self.seed ^ 0x9999, rate);
        self.scenario_run(&config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_study_builds_and_infers() {
        let study = Study::build(StudyScale::Tiny, 5);
        let run = study.visibility_run(4, 6.0);
        assert!(!run.output.ground_truth.is_empty());
        assert!(
            !run.result.events.is_empty(),
            "inference found no events from {} truths",
            run.output.ground_truth.len()
        );
    }

    #[test]
    fn dictionary_quality_at_small_scale() {
        let study = Study::build(StudyScale::Small, 7);
        let v = study.dict.validate_against(&study.topology);
        assert!(v.precision() >= 0.99, "precision {}", v.precision());
        assert!(v.recall() >= 0.95, "recall {}", v.recall());
        assert_eq!(v.undocumented_leaks, 0);
    }

    #[test]
    fn run_refdata_matches_observing_deployment() {
        let study = Study::build(StudyScale::Tiny, 9);
        let run = study.visibility_run(2, 4.0);
        // The refdata threaded through the run reflects the exact
        // deployment that observed the stream: every session peer is a
        // direct feed of its platform (deploy() is deterministic, so a
        // fresh deployment reproduces the one the run used).
        for session in study.deployment().sessions() {
            assert!(
                run.refdata.has_direct_feed(session.dataset, session.peer_asn),
                "session {:?}/{} missing from refdata",
                session.dataset,
                session.peer_asn
            );
        }
    }

    #[test]
    fn sharded_infer_matches_batch() {
        let study = Study::build(StudyScale::Tiny, 11);
        let run = study.visibility_run(2, 4.0);
        let sharded = study.infer_sharded(&run.refdata, &run.output.elems, 4);
        assert_eq!(sharded, run.result);
    }

    #[test]
    fn run_report_matches_batch_analytics() {
        use bh_core::{daily_series, group_events, table3, table4};

        let study = Study::build(StudyScale::Tiny, 13);
        let run = study.visibility_run(3, 6.0);
        assert!(!run.result.events.is_empty());
        // The report the run carries equals the batch functions.
        assert_eq!(run.report.table3, table3(&run.result, &run.refdata));
        assert_eq!(run.report.table4, table4(&run.result.events, &run.refdata));
        assert_eq!(
            run.report.daily,
            daily_series(&run.result.events, run.analytics.window_start, run.analytics.window_end)
        );
        assert_eq!(
            run.report.periods,
            group_events(&run.result.events, run.analytics.grouping_timeout)
        );
    }

    #[test]
    fn fleet_ingestion_matches_merged_materialized() {
        let study = Study::build(StudyScale::Tiny, 19);
        let run = study.visibility_run(2, 4.0);
        let archives = run.output.fleet_archives().expect("archives serialize");
        assert!(archives.len() >= 2);
        // The reference is the same merged order the fleet yields,
        // materialized: MRT normalizes NEXT_HOP, which the inference
        // ignores, so results are bit-identical.
        let merged = bh_routing::merge_streams(
            bh_routing::split_by_collector(&run.output.elems).into_values().collect(),
        );
        let expected = study.infer(&run.refdata, &merged);
        assert_eq!(study.infer_fleet(&run.refdata, &archives), expected);
        assert_eq!(study.infer_fleet_sharded(&run.refdata, &archives, 4), expected);
    }

    #[test]
    fn streaming_analytics_match_run_report() {
        let study = Study::build(StudyScale::Tiny, 17);
        let run = study.visibility_run(2, 5.0);
        let (summary, report) =
            study.infer_streaming_analytics(&run.refdata, &run.output.elems, run.analytics, 512);
        assert_eq!(summary.stats, run.result.stats);
        assert_eq!(report, run.report);
        let (sharded_summary, sharded_report) =
            study.infer_sharded_analytics(&run.refdata, &run.output.elems, run.analytics, 4);
        assert_eq!(sharded_summary.per_dataset, run.result.per_dataset);
        assert_eq!(sharded_report, run.report);
    }
}
