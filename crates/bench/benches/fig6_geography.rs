//! Fig. 6 — blackholing providers and users per country.

use criterion::{criterion_group, criterion_main, Criterion};

use bh_analysis::Table;
use bh_bench::{Study, StudyRun, StudyScale};
use bh_core::{per_country, CountryAccumulator, EventAccumulator};

fn bench(c: &mut Criterion) {
    let study = Study::build(StudyScale::Small, 42);
    let StudyRun { result, refdata, report, .. } = study.visibility_run(10, 8.0);

    let (providers, users) = per_country(&result.events, &refdata);
    assert_eq!(
        (providers.clone(), users.clone()),
        (report.provider_countries.clone(), report.user_countries.clone()),
        "streamed accumulator must equal the batch maps"
    );
    let top = |map: &std::collections::BTreeMap<&'static str, usize>| -> Vec<(String, usize)> {
        let mut v: Vec<(String, usize)> = map.iter().map(|(c, n)| (c.to_string(), *n)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(8);
        v
    };
    let top_providers = top(&providers);
    let top_users = top(&users);

    let mut table = Table::new(
        "Fig 6: top countries (providers | users)",
        &["Rank", "Provider country", "#", "User country", "#"],
    );
    for i in 0..top_providers.len().max(top_users.len()) {
        table.row(vec![
            (i + 1).to_string(),
            top_providers.get(i).map(|(c, _)| c.clone()).unwrap_or_default(),
            top_providers.get(i).map(|(_, n)| n.to_string()).unwrap_or_default(),
            top_users.get(i).map(|(c, _)| c.clone()).unwrap_or_default(),
            top_users.get(i).map(|(_, n)| n.to_string()).unwrap_or_default(),
        ]);
    }
    println!("{}", table.render());

    let top3_providers: Vec<&str> = top_providers.iter().take(3).map(|(c, _)| c.as_str()).collect();
    let top5_users: Vec<&str> = top_users.iter().take(5).map(|(c, _)| c.as_str()).collect();
    println!(
        "shape: provider top-3 {:?} should be a subset of {{RU,US,DE,GB,NL}} (paper: RU,US,DE lead)",
        top3_providers
    );
    println!(
        "shape: user top-5 {:?} should draw from {{RU,US,DE,BR,UA,PL}} (paper adds BR and UA)\n",
        top5_users
    );

    c.bench_function("fig6/per_country", |b| b.iter(|| per_country(&result.events, &refdata)));
    c.bench_function("fig6/streaming_accumulator", |b| {
        b.iter(|| {
            let mut acc = CountryAccumulator::new(refdata.clone());
            for event in &result.events {
                acc.observe(event);
            }
            acc.finalize()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
