//! Table 2 — documented blackhole communities by network type.
//!
//! Regenerates the dictionary from the text corpus and tabulates per-type
//! network/community counts (with the inferred-but-undocumented counts in
//! parentheses, exactly like the paper's table).

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, Criterion};

use bh_analysis::Table;
use bh_bench::{Study, StudyScale};
use bh_irr::{BlackholeDictionary, CorpusGenerator};
use bh_topology::{DocumentationChannel, NetworkType};

fn print_table2(study: &Study) {
    // Per-type counts from the mined dictionary, using ground-truth type
    // labels (the paper uses PeeringDB/CAIDA; the mapping is identical
    // for documented providers, which all have records).
    let mut networks: BTreeMap<NetworkType, usize> = BTreeMap::new();
    let mut communities: BTreeMap<NetworkType, std::collections::BTreeSet<_>> = BTreeMap::new();
    for (asn, meta) in study.dict.providers() {
        let ty =
            study.topology.as_info(asn).map(|i| i.network_type).unwrap_or(NetworkType::Unknown);
        *networks.entry(ty).or_default() += 1;
        communities.entry(ty).or_default().extend(meta.communities.iter().copied());
    }
    // Undocumented ground truth (the "inferred" parenthetical).
    let mut undocumented: BTreeMap<NetworkType, usize> = BTreeMap::new();
    let mut undocumented_communities: BTreeMap<NetworkType, usize> = BTreeMap::new();
    for info in study.topology.ases() {
        if let Some(o) = &info.blackhole_offering {
            if o.documentation == DocumentationChannel::Undocumented {
                *undocumented.entry(info.network_type).or_default() += 1;
                *undocumented_communities.entry(info.network_type).or_default() +=
                    o.communities.len();
            }
        }
    }

    let mut table = Table::new(
        "Table 2: Documented blackhole communities (inferred in parentheses)",
        &["Network Type", "#Networks", "#Blackhole communities"],
    );
    let mut total_networks = 0;
    let mut total_undoc = 0;
    for ty in NetworkType::ALL {
        let n = networks.get(&ty).copied().unwrap_or(0);
        let c = communities.get(&ty).map(|s| s.len()).unwrap_or(0);
        let un = undocumented.get(&ty).copied().unwrap_or(0);
        let uc = undocumented_communities.get(&ty).copied().unwrap_or(0);
        total_networks += n;
        total_undoc += un;
        table.row(vec![ty.label().to_string(), format!("{n} ({un})"), format!("{c} ({uc})")]);
    }
    table.row(vec![
        "TOTAL unique".into(),
        format!("{total_networks} ({total_undoc})"),
        String::new(),
    ]);
    println!("{}", table.render());

    let transit = networks.get(&NetworkType::TransitAccess).copied().unwrap_or(0);
    println!(
        "shape: Transit/Access dominates documented providers: {transit}/{total_networks} \
         (paper: 198/307)"
    );
    let v = study.dict.validate_against(&study.topology);
    println!(
        "dictionary quality vs ground truth: precision {:.3} recall {:.3} leaks {}\n",
        v.precision(),
        v.recall(),
        v.undocumented_leaks
    );
}

fn bench(c: &mut Criterion) {
    let study = Study::build(StudyScale::Full, 42);
    print_table2(&study);
    c.bench_function("table2/mine_dictionary", |b| {
        b.iter(|| {
            let corpus = CorpusGenerator::new(&study.topology, 9).generate();
            BlackholeDictionary::build(&corpus)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
