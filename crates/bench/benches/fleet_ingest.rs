//! Fleet ingestion throughput: how fast a multi-collector MRT archive
//! set streams into the inference, in elements/second.
//!
//! Three execution shapes over identical per-collector archives:
//!
//! * **materialized** — decode every archive into a `Vec`, sort-merge
//!   with `merge_streams`, infer over the slice (the pre-fleet baseline;
//!   peak memory = the whole stream);
//! * **merged_stream** — single thread, one `MrtElemSource` per archive
//!   under a k-way `MergedSource` heap (constant memory, one decoder);
//! * **fleet** — one reader thread per archive with bounded channels and
//!   backpressure (`CollectorFleet`), merged into one session or fanned
//!   into a `ShardedSession` (constant memory, parallel decode).
//!
//! A second group sweeps the fleet's batch/window tunables to expose the
//! channel-amortization tradeoff. Not a paper artifact.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use bh_bench::{Study, StudyRun, StudyScale};
use bh_routing::{merge_streams, read_updates, FleetConfig, MergedSource, MrtElemSource};
use bh_workloads::{fleet_with_config, CollectorArchive};

fn bench(c: &mut Criterion) {
    let study = Study::build(StudyScale::Small, 42);
    let StudyRun { output, refdata, .. } = study.visibility_run(6, 6.0);
    let archives: Vec<CollectorArchive> =
        output.fleet_archives().expect("fleet archives serialize");
    let total_bytes: usize = archives.iter().map(|a| a.bytes.len()).sum();
    println!(
        "fleet input: {} elems across {} collector archives ({} KiB)",
        output.elems.len(),
        archives.len(),
        total_bytes / 1024
    );

    let mut group = c.benchmark_group("fleet_ingest");
    group.throughput(Throughput::Elements(output.elems.len() as u64));
    group.bench_function("materialized", |b| {
        b.iter(|| {
            let streams: Vec<_> = archives
                .iter()
                .map(|a| read_updates(&a.bytes[..], a.dataset, a.collector).expect("decodes"))
                .collect();
            let merged = merge_streams(streams);
            study.infer(&refdata, &merged).events.len()
        })
    });
    group.bench_function("merged_stream", |b| {
        b.iter(|| {
            let sources: Vec<_> = archives
                .iter()
                .map(|a| MrtElemSource::from_bytes(a.bytes.clone(), a.dataset, a.collector))
                .collect();
            study.infer_source(&refdata, &mut MergedSource::new(sources)).events.len()
        })
    });
    group.bench_function("fleet", |b| {
        b.iter(|| study.infer_fleet(&refdata, &archives).events.len())
    });
    for shards in [2usize, 4] {
        group.bench_function(&format!("fleet_sharded{shards}"), |b| {
            b.iter(|| study.infer_fleet_sharded(&refdata, &archives, shards).events.len())
        });
    }
    group.finish();

    // Tunable sweep: batch size × backpressure window. Tiny batches pay
    // per-send overhead; huge batches defeat pipelining (the merge sits
    // idle while readers fill).
    let mut group = c.benchmark_group("fleet_tunables");
    group.throughput(Throughput::Elements(output.elems.len() as u64));
    for (batch_elems, channel_batches) in [(64, 4), (512, 4), (4096, 2)] {
        group.bench_function(&format!("batch{batch_elems}_window{channel_batches}"), |b| {
            b.iter(|| {
                let config = FleetConfig { batch_elems, channel_batches };
                let mut stream = fleet_with_config(&archives, config).start();
                let result = study.infer_source(&refdata, &mut stream);
                assert!(stream.finish().is_clean());
                result.events.len()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
