//! Fig. 7(a) — services running on blackholed IPs (scans.io substitute).

use criterion::{criterion_group, criterion_main, Criterion};

use bh_analysis::{pct, Table};
use bh_bench::{Study, StudyRun, StudyScale};
use bh_bgp_types::prefix::Ipv4Prefix;
use bh_core::blackholed_prefixes;
use bh_dataplane::{service_histogram, ScanGenerator, Service};

fn bench(c: &mut Criterion) {
    let study = Study::build(StudyScale::Small, 42);
    let StudyRun { result, report, .. } = study.visibility_run(10, 8.0);

    // The March-2017-style snapshot: all blackholed prefixes, from the
    // one-pass census accumulator (== the batch fold, asserted here).
    assert_eq!(blackholed_prefixes(&result.events), report.blackholed_prefixes);
    let prefixes: Vec<Ipv4Prefix> = report.blackholed_prefixes.iter().copied().collect();
    let mut generator = ScanGenerator::new(0xCA5);
    let profiles = generator.profile_all(&prefixes);
    let (hist, none) = service_histogram(&profiles);

    let mut table =
        Table::new("Fig 7a: services on blackholed prefixes", &["Service", "#Prefixes", "Share"]);
    for service in Service::ALL {
        let n = hist.get(&service).copied().unwrap_or(0);
        table.row(vec![
            service.label().to_string(),
            n.to_string(),
            pct(n as f64 / profiles.len().max(1) as f64),
        ]);
    }
    table.row(vec![
        "NONE".into(),
        none.to_string(),
        pct(none as f64 / profiles.len().max(1) as f64),
    ]);
    println!("{}", table.render());

    let http = hist.get(&Service::Http).copied().unwrap_or(0);
    println!(
        "shape: HTTP dominates with {} (paper: 53% of prefixes; >60% expose some service)",
        pct(http as f64 / profiles.len().max(1) as f64)
    );
    let responding = profiles.iter().filter(|p| p.http_responds).count();
    println!(
        "shape: HTTP GET response rate {} of HTTP hosts (paper: 61% vs ~90% baseline)",
        pct(responding as f64 / http.max(1) as f64)
    );
    let alexa = profiles.iter().filter(|p| p.alexa_domain.is_some()).count();
    println!(
        "shape: Alexa-top-1M hosting: {} prefixes = {} of HTTP hosts (paper: ~3%)\n",
        alexa,
        pct(alexa as f64 / http.max(1) as f64)
    );

    c.bench_function("fig7a/profile_and_histogram", |b| {
        b.iter(|| {
            let mut generator = ScanGenerator::new(0xCA5);
            let profiles = generator.profile_all(&prefixes);
            service_histogram(&profiles)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
