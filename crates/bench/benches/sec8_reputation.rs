//! §8 — malicious activity of blackholed IPs (daily prober/scanner
//! matches against the CDN security feeds).

use criterion::{criterion_group, criterion_main, Criterion};

use bh_analysis::Table;
use bh_bench::{Study, StudyRun, StudyScale};
use bh_core::blackholed_prefixes;
use bh_dataplane::reputation_feed;

fn bench(c: &mut Criterion) {
    let study = Study::build(StudyScale::Small, 42);
    let StudyRun { result, report, .. } = study.visibility_run(8, 6.0);
    // The blackholed-prefix census from the one-pass accumulator (== the
    // batch fold over materialized events, asserted here).
    assert_eq!(blackholed_prefixes(&result.events), report.blackholed_prefixes);
    let blackholed = report.blackholed_prefixes.len();

    // Scale the feed the way the paper's population scales (20K prefixes
    // in March 2017 → 400–900 daily matches).
    let feed = reputation_feed(0x5EC8, 14, 20_000);
    let mut table = Table::new(
        "Sec 8: daily suspicious-activity matches among blackholed IPs",
        &["Day", "Probers", "Scanners", "Both", "Login attempts"],
    );
    for day in &feed {
        table.row(vec![
            day.day.to_string(),
            day.probers.to_string(),
            day.scanners.to_string(),
            day.both.to_string(),
            day.login_attempts.to_string(),
        ]);
    }
    println!("{}", table.render());

    let mean_matches: f64 =
        feed.iter().map(|d| (d.probers + d.scanners - d.both) as f64).sum::<f64>()
            / feed.len() as f64;
    let prober_share: f64 = feed
        .iter()
        .map(|d| d.probers as f64 / (d.probers + d.scanners - d.both) as f64)
        .sum::<f64>()
        / feed.len() as f64;
    println!(
        "shape: mean daily matches {:.0} in [400,900]; prober share {:.0}% (paper: >90%)",
        mean_matches,
        prober_share * 100.0
    );
    println!(
        "context: this run blackholed {blackholed} distinct prefixes (the paper's union of \
         suspicious IPs covers ~2% of blackholed prefixes)\n"
    );

    c.bench_function("sec8/feed_generation", |b| b.iter(|| reputation_feed(0x5EC8, 240, 20_000)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
