//! Table 1 — BGP dataset overview.
//!
//! Regenerates the per-platform peer/prefix statistics and checks the
//! headline shape: the CDN's visible prefix count dwarfs the public
//! collectors' (its sessions are internal), and unique-prefix counts are
//! driven by vantage placement.

use criterion::{criterion_group, criterion_main, Criterion};

use bh_analysis::{count, pct, Table};
use bh_bench::{Study, StudyScale};
use bh_routing::{table1, table1_totals, DataSource};

fn print_table1(study: &Study) {
    let deployment = study.deployment();
    let rows = table1(&study.topology, &deployment);
    let totals = table1_totals(&study.topology, &deployment);
    let mut table = Table::new(
        "Table 1: Overview of BGP dataset",
        &["Source", "#IP peers", "#AS peers", "#Unique AS peers", "#Prefixes", "#Unique prefixes"],
    );
    for row in &rows {
        table.row(vec![
            row.source.label().to_string(),
            count(row.ip_peers),
            count(row.as_peers),
            count(row.unique_as_peers),
            count(row.prefixes),
            count(row.unique_prefixes),
        ]);
    }
    table.row(vec![
        "Total".into(),
        count(totals.ip_peers),
        count(totals.as_peers),
        "-".into(),
        count(totals.prefixes),
        "-".into(),
    ]);
    println!("{}", table.render());

    // Shape checks vs the paper.
    let cdn = rows.iter().find(|r| r.source == DataSource::Cdn).expect("CDN row");
    let max_other =
        rows.iter().filter(|r| r.source != DataSource::Cdn).map(|r| r.prefixes).max().unwrap_or(0);
    println!(
        "shape: CDN prefixes {} >= max(other) {} -> {} (paper: CDN sees the most)",
        count(cdn.prefixes),
        count(max_other),
        cdn.prefixes >= max_other
    );
    println!(
        "shape: CDN unique-prefix share {} (paper: CDN contributes most unique prefixes)\n",
        pct(cdn.unique_prefixes as f64 / cdn.prefixes.max(1) as f64)
    );
}

fn bench(c: &mut Criterion) {
    let study = Study::build(StudyScale::Small, 42);
    print_table1(&study);
    let deployment = study.deployment();
    c.bench_function("table1/compute", |b| b.iter(|| table1(&study.topology, &deployment)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
