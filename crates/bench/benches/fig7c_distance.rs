//! Fig. 7(c) — AS distance between collector and blackholing provider,
//! including the "no-path" bundling bucket, plus the bundling ablation
//! (DESIGN.md ablation #1).

use criterion::{criterion_group, criterion_main, Criterion};

use bh_analysis::{pct, Table};
use bh_bench::{Study, StudyRun, StudyScale};
use bh_core::{
    distance_histogram, DetectionDistance, DistanceAccumulator, EngineConfig, EventAccumulator,
};

fn bench(c: &mut Criterion) {
    let study = Study::build(StudyScale::Small, 42);
    let StudyRun { output, result, refdata, report, .. } = study.visibility_run(10, 8.0);

    let hist = distance_histogram(&result.events);
    assert_eq!(hist, report.distance_histogram, "streamed accumulator must equal the batch");
    let total: usize = hist.values().sum();
    let mut table = Table::new(
        "Fig 7c: AS distance collector <-> blackholing provider",
        &["Distance", "#Detections", "Share"],
    );
    for (d, n) in &hist {
        let label = match d {
            DetectionDistance::NoPath => "no-path (bundled)".to_string(),
            DetectionDistance::Hops(h) => format!("{h}"),
        };
        table.row(vec![label, n.to_string(), pct(*n as f64 / total.max(1) as f64)]);
    }
    println!("{}", table.render());

    let no_path = hist.get(&DetectionDistance::NoPath).copied().unwrap_or(0);
    let zero = hist.get(&DetectionDistance::Hops(0)).copied().unwrap_or(0);
    println!(
        "shape: no-path share {} (paper: ~50%); 0-distance share {} (paper: ~20%, \
         collector at the blackholing IXP)",
        pct(no_path as f64 / total.max(1) as f64),
        pct(zero as f64 / total.max(1) as f64)
    );

    // Ablation: disable bundling detection and compare event counts.
    let ablated = study.infer_with_config(
        &refdata,
        &output.elems,
        EngineConfig { bundling_detection: false, ..Default::default() },
    );
    println!(
        "ablation: events with bundling {} vs without {} -> bundling contributes {} \
         (paper: ~half of inferences)\n",
        result.events.len(),
        ablated.events.len(),
        pct(1.0 - ablated.events.len() as f64 / result.events.len().max(1) as f64)
    );

    c.bench_function("fig7c/distance_histogram", |b| b.iter(|| distance_histogram(&result.events)));
    c.bench_function("fig7c/streaming_accumulator", |b| {
        b.iter(|| {
            let mut acc = DistanceAccumulator::default();
            for event in &result.events {
                acc.observe(event);
            }
            acc.finalize()
        })
    });
    c.bench_function("fig7c/inference_no_bundling", |b| {
        b.iter(|| {
            study.infer_with_config(
                &refdata,
                &output.elems,
                EngineConfig { bundling_detection: false, ..Default::default() },
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
