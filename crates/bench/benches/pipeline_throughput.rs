//! Pipeline throughput: the systems-performance benches — MRT codec
//! throughput, propagation rate, and inference rate (elements/second)
//! in every execution mode: **batch** (one-shot over a materialized
//! slice), **streaming** (incremental push with mid-stream event
//! draining), **streaming with inline analytics** (closed events drain
//! straight into the AnalyticsPipeline accumulators; the full event Vec
//! is never materialized), **sharded** (prefix-partitioned worker
//! threads), **sharded with inline analytics** (per-shard pipelines
//! merged at the barrier), and the **fleet ingestion** modes
//! (materialized merge vs constant-memory merged stream vs parallel
//! multi-reader CollectorFleet, optionally sharded). Not a paper
//! artifact; these quantify the implementation itself.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use bh_bench::{Study, StudyRun, StudyScale};
use bh_routing::archive::{mrt_round_trip, read_updates, write_updates};
use bh_routing::{merge_streams, BgpElem, ElemSource, MergedSource, MrtElemSource, SliceSource};

fn bench(c: &mut Criterion) {
    let study = Study::build(StudyScale::Small, 42);
    let StudyRun { output, refdata, analytics, .. } = study.visibility_run(6, 6.0);
    let elems = &output.elems;
    println!(
        "pipeline input: {} elems from {} announcements over {} days",
        elems.len(),
        output.announcements,
        output.days
    );

    let mut group = c.benchmark_group("pipeline");
    group.throughput(Throughput::Elements(elems.len() as u64));
    // Batch: materialized slice in, one result out (the old API shape).
    group.bench_function("inference_batch", |b| b.iter(|| study.infer(&refdata, elems)));
    // Streaming: push one element at a time, hand closed events to the
    // consumer every ~4k elements — the constant-memory online mode.
    group.bench_function("inference_streaming", |b| {
        b.iter(|| {
            let mut session = study.session(&refdata).build();
            let mut source = SliceSource::new(elems);
            let mut handed_out = 0usize;
            let mut n = 0u64;
            while let Some(elem) = source.next_elem() {
                session.push(elem);
                n += 1;
                if n.is_multiple_of(4096) {
                    handed_out += session.drain_closed().len();
                }
            }
            let result = session.finish();
            handed_out + result.events.len()
        })
    });
    // Streaming with inline analytics: closed events drain straight
    // into the AnalyticsPipeline accumulators, so every paper figure
    // falls out of the same pass and the full event Vec is NEVER
    // materialized — the constant-memory archive-scan mode.
    group.bench_function("inference_streaming_analytics", |b| {
        b.iter(|| {
            let (summary, report) =
                study.infer_streaming_analytics(&refdata, elems, analytics, 4096);
            (summary.stats.elems, report.table3.len())
        })
    });
    // Sharded: prefix-partitioned across worker threads, deterministic
    // merge (bit-identical to batch; see tests/pipeline_properties).
    for shards in [2usize, 4] {
        group.bench_function(&format!("inference_sharded{shards}"), |b| {
            b.iter(|| study.infer_sharded(&refdata, elems, shards))
        });
    }
    // Sharded with inline analytics: per-shard pipelines, merged
    // deterministically at the barrier — no per-shard event Vec either.
    group.bench_function("inference_sharded_analytics4", |b| {
        b.iter(|| {
            let (summary, report) = study.infer_sharded_analytics(&refdata, elems, analytics, 4);
            (summary.stats.elems, report.table3.len())
        })
    });
    group.bench_function("mrt_write", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(1 << 20);
            write_updates(&mut buf, elems).expect("write succeeds");
            buf
        })
    });
    group.bench_function("mrt_round_trip", |b| {
        b.iter(|| mrt_round_trip(elems).expect("round trip succeeds"))
    });
    // The full historical path: per-collector MRT archives (the shape
    // real pipelines download) → streaming sources → one session, with
    // no intermediate Vec<BgpElem>. The wire format does not carry the
    // platform/collector labels, so one archive per (dataset,
    // collector) keeps every PeerKey intact — same workload as above.
    let archives = output.fleet_archives().expect("fleet archives serialize");
    group.bench_function("inference_from_mrt_stream", |b| {
        b.iter(|| {
            let mut session = study.session(&refdata).build();
            for archive in &archives {
                let mut source = MrtElemSource::from_bytes(
                    archive.bytes.clone(),
                    archive.dataset,
                    archive.collector,
                );
                session.ingest(&mut source);
                assert!(source.error().is_none());
            }
            session.finish().events.len()
        })
    });
    // ---- fleet ingestion modes (see also the fleet_ingest bench) -------
    // The same per-collector archive set, ingested three ways:
    //
    // * materialized — decode every archive into a Vec, merge_streams,
    //   then infer (the pre-fleet shape: peak memory = whole stream);
    // * merged-stream — one thread, k MrtElemSources under a k-way
    //   MergedSource heap, no Vec<BgpElem> ever (constant memory);
    // * parallel fleet — one reader thread per archive with bounded
    //   channels + backpressure feeding the same merge (CollectorFleet),
    //   optionally into a sharded session.
    group.bench_function("fleet_materialized_merge", |b| {
        b.iter(|| {
            let streams: Vec<Vec<BgpElem>> = archives
                .iter()
                .map(|a| read_updates(&a.bytes[..], a.dataset, a.collector).expect("decodes"))
                .collect();
            let merged = merge_streams(streams);
            study.infer(&refdata, &merged).events.len()
        })
    });
    group.bench_function("fleet_merged_stream", |b| {
        b.iter(|| {
            let sources: Vec<_> = archives
                .iter()
                .map(|a| MrtElemSource::from_bytes(a.bytes.clone(), a.dataset, a.collector))
                .collect();
            study.infer_source(&refdata, &mut MergedSource::new(sources)).events.len()
        })
    });
    group.bench_function("fleet_parallel", |b| {
        b.iter(|| study.infer_fleet(&refdata, &archives).events.len())
    });
    group.bench_function("fleet_parallel_sharded4", |b| {
        b.iter(|| study.infer_fleet_sharded(&refdata, &archives, 4).events.len())
    });
    group.finish();

    // Propagation rate: full scenario at Tiny scale (fresh simulator
    // every iteration).
    let tiny = Study::build(StudyScale::Tiny, 7);
    let mut group = c.benchmark_group("propagation");
    group.sample_size(10);
    group.bench_function("scenario_4days_tiny", |b| b.iter(|| tiny.visibility_run(4, 6.0)));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
