//! Pipeline throughput: the systems-performance benches — MRT codec
//! throughput, propagation rate, and inference rate (elements/second)
//! in every execution mode: **batch** (one-shot over a materialized
//! slice), **streaming** (incremental push with mid-stream event
//! draining), **streaming with inline analytics** (closed events drain
//! straight into the AnalyticsPipeline accumulators; the full event Vec
//! is never materialized), **sharded** (prefix-partitioned worker
//! threads), and **sharded with inline analytics** (per-shard pipelines
//! merged at the barrier). Not a paper artifact; these quantify the
//! implementation itself.

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use bh_bench::{Study, StudyRun, StudyScale};
use bh_routing::archive::{mrt_round_trip, write_updates};
use bh_routing::{BgpElem, DataSource, ElemSource, MrtElemSource, SliceSource};

fn bench(c: &mut Criterion) {
    let study = Study::build(StudyScale::Small, 42);
    let StudyRun { output, refdata, analytics, .. } = study.visibility_run(6, 6.0);
    let elems = &output.elems;
    println!(
        "pipeline input: {} elems from {} announcements over {} days",
        elems.len(),
        output.announcements,
        output.days
    );

    let mut group = c.benchmark_group("pipeline");
    group.throughput(Throughput::Elements(elems.len() as u64));
    // Batch: materialized slice in, one result out (the old API shape).
    group.bench_function("inference_batch", |b| b.iter(|| study.infer(&refdata, elems)));
    // Streaming: push one element at a time, hand closed events to the
    // consumer every ~4k elements — the constant-memory online mode.
    group.bench_function("inference_streaming", |b| {
        b.iter(|| {
            let mut session = study.session(&refdata).build();
            let mut source = SliceSource::new(elems);
            let mut handed_out = 0usize;
            let mut n = 0u64;
            while let Some(elem) = source.next_elem() {
                session.push(elem);
                n += 1;
                if n.is_multiple_of(4096) {
                    handed_out += session.drain_closed().len();
                }
            }
            let result = session.finish();
            handed_out + result.events.len()
        })
    });
    // Streaming with inline analytics: closed events drain straight
    // into the AnalyticsPipeline accumulators, so every paper figure
    // falls out of the same pass and the full event Vec is NEVER
    // materialized — the constant-memory archive-scan mode.
    group.bench_function("inference_streaming_analytics", |b| {
        b.iter(|| {
            let (summary, report) =
                study.infer_streaming_analytics(&refdata, elems, analytics, 4096);
            (summary.stats.elems, report.table3.len())
        })
    });
    // Sharded: prefix-partitioned across worker threads, deterministic
    // merge (bit-identical to batch; see tests/pipeline_properties).
    for shards in [2usize, 4] {
        group.bench_function(&format!("inference_sharded{shards}"), |b| {
            b.iter(|| study.infer_sharded(&refdata, elems, shards))
        });
    }
    // Sharded with inline analytics: per-shard pipelines, merged
    // deterministically at the barrier — no per-shard event Vec either.
    group.bench_function("inference_sharded_analytics4", |b| {
        b.iter(|| {
            let (summary, report) = study.infer_sharded_analytics(&refdata, elems, analytics, 4);
            (summary.stats.elems, report.table3.len())
        })
    });
    group.bench_function("mrt_write", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(1 << 20);
            write_updates(&mut buf, elems).expect("write succeeds");
            buf
        })
    });
    group.bench_function("mrt_round_trip", |b| {
        b.iter(|| mrt_round_trip(elems).expect("round trip succeeds"))
    });
    // The full historical path: per-collector MRT archives (the shape
    // real pipelines download) → streaming sources → one session, with
    // no intermediate Vec<BgpElem>. The wire format does not carry the
    // platform/collector labels, so one archive per (dataset,
    // collector) keeps every PeerKey intact — same workload as above.
    let mut by_collector: BTreeMap<(DataSource, u16), Vec<BgpElem>> = BTreeMap::new();
    for elem in elems {
        by_collector.entry((elem.dataset, elem.collector)).or_default().push(elem.clone());
    }
    let archives: Vec<(DataSource, u16, Vec<u8>)> = by_collector
        .into_iter()
        .map(|((dataset, collector), collector_elems)| {
            let mut buf = Vec::new();
            write_updates(&mut buf, &collector_elems).expect("write succeeds");
            (dataset, collector, buf)
        })
        .collect();
    group.bench_function("inference_from_mrt_stream", |b| {
        b.iter(|| {
            let mut session = study.session(&refdata).build();
            for (dataset, collector, archive) in &archives {
                let mut source = MrtElemSource::new(&archive[..], *dataset, *collector);
                session.ingest(&mut source);
                assert!(source.error().is_none());
            }
            session.finish().events.len()
        })
    });
    group.finish();

    // Propagation rate: full scenario at Tiny scale (fresh simulator
    // every iteration).
    let tiny = Study::build(StudyScale::Tiny, 7);
    let mut group = c.benchmark_group("propagation");
    group.sample_size(10);
    group.bench_function("scenario_4days_tiny", |b| b.iter(|| tiny.visibility_run(4, 6.0)));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
