//! Pipeline throughput: the systems-performance benches — MRT codec
//! throughput, propagation rate, and inference rate (elements/second).
//! Not a paper artifact; these quantify the implementation itself.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use bh_bench::{Study, StudyScale};
use bh_routing::archive::{mrt_round_trip, write_updates};

fn bench(c: &mut Criterion) {
    let study = Study::build(StudyScale::Small, 42);
    let (output, _result) = study.visibility_run(6, 6.0);
    let refdata = study.refdata();
    let elems = &output.elems;
    println!(
        "pipeline input: {} elems from {} announcements over {} days",
        elems.len(),
        output.announcements,
        output.days
    );

    let mut group = c.benchmark_group("pipeline");
    group.throughput(Throughput::Elements(elems.len() as u64));
    group.bench_function("inference_throughput", |b| b.iter(|| study.infer(&refdata, elems)));
    group.bench_function("mrt_write", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(1 << 20);
            write_updates(&mut buf, elems).expect("write succeeds");
            buf
        })
    });
    group.bench_function("mrt_round_trip", |b| {
        b.iter(|| mrt_round_trip(elems).expect("round trip succeeds"))
    });
    group.finish();

    // Propagation rate: full scenario at Tiny scale (fresh simulator
    // every iteration).
    let tiny = Study::build(StudyScale::Tiny, 7);
    let mut group = c.benchmark_group("propagation");
    group.sample_size(10);
    group.bench_function("scenario_4days_tiny", |b| b.iter(|| tiny.visibility_run(4, 6.0)));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
