//! Fig. 9(b) — impact of blackholing on AS-level paths.

use std::collections::BTreeSet;

use criterion::{criterion_group, criterion_main, Criterion};

use bh_analysis::{pct, render_series, Ecdf, Series};
use bh_bench::{Study, StudyRun, StudyScale};
use bh_dataplane::{run_experiment, EfficacyInput};

fn efficacy_inputs(study: &Study, output: &bh_workloads::ScenarioOutput) -> Vec<EfficacyInput> {
    let mut inputs = Vec::new();
    let mut seen = BTreeSet::new();
    for truth in &output.ground_truth {
        if truth.accepted.is_empty() || !truth.prefix.is_host_route() {
            continue;
        }
        if !seen.insert(truth.prefix) {
            continue;
        }
        let mut dropping: BTreeSet<_> = truth.accepted.iter().copied().collect();
        for ixp in study.topology.ixps() {
            if truth.accepted.contains(&ixp.route_server_asn) {
                dropping.extend(ixp.members.iter().copied().filter(|m| *m != truth.user));
            }
        }
        dropping.remove(&truth.user);
        inputs.push(EfficacyInput { prefix: truth.prefix, user: truth.user, dropping });
        if inputs.len() >= 150 {
            break;
        }
    }
    inputs
}

fn bench(c: &mut Criterion) {
    let study = Study::build(StudyScale::Small, 42);
    let StudyRun { output, .. } = study.visibility_run(8, 6.0);
    let inputs = efficacy_inputs(&study, &output);
    assert!(!inputs.is_empty());

    let report = run_experiment(&study.topology, &inputs, 0xF19B);
    let as_deltas: Vec<f64> =
        report.measurements.iter().map(|m| m.as_delta_after_during() as f64).collect();
    let as_control: Vec<f64> =
        report.measurements.iter().map(|m| m.as_delta_control() as f64).collect();
    println!(
        "{}",
        render_series(
            "Fig 9b: AS-level path-length differences",
            &[
                Series::new("after - during", Ecdf::new(as_deltas).points()),
                Series::new("control - blackholed", Ecdf::new(as_control).points()),
            ],
        )
    );
    println!(
        "shape: mean AS-level shortening {:.1} hops (paper: 2-4 AS hops)",
        report.mean_as_shortening()
    );
    println!(
        "shape: dropped at destination AS or direct upstream: {} (paper: 16%)\n",
        pct(report.fraction_dropped_at_edge())
    );

    c.bench_function("fig9b/as_level_experiment", |b| {
        b.iter(|| run_experiment(&study.topology, &inputs, 0xF19B))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
