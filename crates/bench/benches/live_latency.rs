//! Live-service latency: what the near-real-time path costs on top of
//! the batch pipeline, and how fast the query surface answers.
//!
//! * **live_replay** — boot the whole node (replay feed, virtual clock,
//!   tailing daemon) and drive a Tiny workload to the drained report:
//!   one minute of simulated time per tick, so the measured wall time
//!   is dominated by the per-tick pump/merge/step overhead the daemon
//!   adds over the batch run.
//! * **batch_baseline** — the same workload through
//!   `infer_streaming_analytics` over the materialized merged stream
//!   (the lower bound the live path is compared against).
//! * **wire_status / wire_events_since** — per-query cost of the line
//!   protocol over a drained node's shared state.
//!
//! The setup also prints the worst *simulated* event-emission latency
//! the daemon observed (closing update → publication), which the e2e
//! suite bounds by `max_latency`. Not a paper artifact.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use bh_bench::{Study, StudyRun, StudyScale};
use bh_bgp_types::time::SimDuration;
use bh_live::{handle_command, LiveFleetConfig, LiveNode};
use bh_routing::{merge_streams, read_updates};

fn bench(c: &mut Criterion) {
    let study = Study::build(StudyScale::Tiny, 42);
    let StudyRun { output, refdata, analytics, .. } = study.visibility_run(2, 6.0);
    let archives = output.fleet_archives().expect("fleet archives serialize");
    let start = output.elems.iter().map(|e| e.time).min().expect("non-empty scenario");
    let quantum = SimDuration::mins(1);
    let config = LiveFleetConfig { checkpoint_every: 4_096, ..LiveFleetConfig::default() };
    let boot = || {
        LiveNode::boot(
            study.session(&refdata),
            study.analytics_pipeline(&refdata, analytics),
            &archives,
            start,
            quantum,
            config,
        )
    };

    // One instrumented replay up front: report the simulated emission
    // latency alongside the wall-time numbers criterion records.
    let mut node = boot();
    node.run_to_completion();
    let status = node.query().status();
    println!(
        "live input: {} elems over {} archives; worst emission latency {}s (quantum {}s)",
        status.elems,
        archives.len(),
        status.max_latency_seen.as_secs(),
        quantum.as_secs()
    );

    let mut group = c.benchmark_group("live_latency");
    group.throughput(Throughput::Elements(output.elems.len() as u64));
    group.bench_function("live_replay", |b| {
        b.iter(|| {
            let mut node = boot();
            node.run_to_completion();
            let (summary, report) = node.finish();
            (summary.stats.elems, report.blackholed_prefixes.len())
        })
    });
    let streams: Vec<_> = archives
        .iter()
        .map(|a| read_updates(&a.bytes[..], a.dataset, a.collector).expect("decodes"))
        .collect();
    let merged = merge_streams(streams);
    group.bench_function("batch_baseline", |b| {
        b.iter(|| {
            let (summary, report) =
                study.infer_streaming_analytics(&refdata, &merged, analytics, 1_000);
            (summary.stats.elems, report.blackholed_prefixes.len())
        })
    });
    group.finish();

    // Query surface on a drained node: per-command wall time.
    let mut node = boot();
    node.run_to_completion();
    let query = node.query();
    let mut group = c.benchmark_group("live_query");
    group.sample_size(50);
    group.bench_function("wire_status", |b| b.iter(|| handle_command(&query, "status").len()));
    group.bench_function("wire_events_since", |b| {
        b.iter(|| handle_command(&query, "events-since 0").len())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
