//! Policy-extension overhead: what does the pluggable per-AS policy
//! engine cost the simulator's hot path?
//!
//! Three points on the same Small-scale visibility scenario:
//!
//! * `extensions_off` — no table installed; the simulator runs the
//!   original pre-extension code path;
//! * `empty_table` — an empty [`PolicyTable`] passed through
//!   `run_with_policies`: compiles to nothing (property-tested
//!   bit-identical to `extensions_off`), measures the dispatch
//!   plumbing alone;
//! * `rov_half` — strict ROAs with ROV deployed at 50 % of the
//!   transit candidates: the real per-import validation cost (every
//!   /32 RTBH route is Invalid at a deploying AS, so this also
//!   changes propagation — the cost of *having* policies, not just
//!   checking them).
//!
//! Simulation-only (no inference), so the delta isolates the routing
//! layer the extensions hook into.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use bh_bench::{Study, StudyScale};
use bh_bgp_types::time::SimTime;
use bh_topology::{PolicyTable, RoaTable};
use bh_workloads::{run, run_with_policies, ScenarioConfig};

fn bench(c: &mut Criterion) {
    let study = Study::build(StudyScale::Small, 42);
    let mut config = ScenarioConfig::visibility_window(study.seed ^ 0x7777, 6.0);
    config.calendar.window_end =
        SimTime::from_unix((config.calendar.window_start.day_index() + 6) * 86_400);

    let empty = PolicyTable::new();
    let mut rov_half = PolicyTable::new();
    rov_half.set_roas(RoaTable::strict_from_topology(&study.topology));
    let deployed = rov_half.deploy_rov_fraction(&study.topology, 0.5);

    let probe = run(&study.topology, study.deployment(), &config);
    println!(
        "policy_overhead: {} announcements over {} days, ROV at {} transit ASes",
        probe.announcements,
        probe.days,
        deployed.len()
    );

    let mut group = c.benchmark_group("policy_overhead");
    group.sample_size(10);
    group.throughput(Throughput::Elements(probe.announcements));
    group.bench_function("extensions_off", |b| {
        b.iter(|| run(&study.topology, study.deployment(), &config).elems.len())
    });
    group.bench_function("empty_table", |b| {
        b.iter(|| {
            run_with_policies(&study.topology, study.deployment(), &config, &empty).elems.len()
        })
    });
    group.bench_function("rov_half", |b| {
        b.iter(|| {
            run_with_policies(&study.topology, study.deployment(), &config, &rov_half).elems.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
