//! Fig. 7(b) — number of blackholing providers per blackholing event.

use criterion::{criterion_group, criterion_main, Criterion};

use bh_analysis::{pct, Table};
use bh_bench::{Study, StudyRun, StudyScale};
use bh_core::providers_per_event;

fn bench(c: &mut Criterion) {
    let study = Study::build(StudyScale::Small, 42);
    let StudyRun { result, .. } = study.visibility_run(10, 8.0);

    let hist = providers_per_event(&result.events);
    let total: usize = hist.values().sum();
    let mut table =
        Table::new("Fig 7b: #blackholing providers per event", &["#Providers", "#Events", "Share"]);
    for (k, n) in &hist {
        table.row(vec![k.to_string(), n.to_string(), pct(*n as f64 / total.max(1) as f64)]);
    }
    println!("{}", table.render());

    let multi: usize = hist.iter().filter(|(k, _)| **k > 1).map(|(_, n)| n).sum();
    let max_providers = hist.keys().max().copied().unwrap_or(0);
    println!(
        "shape: multi-provider events {} (paper: 28%); max providers in one event: {} \
         (paper: 20)\n",
        pct(multi as f64 / total.max(1) as f64),
        max_providers
    );

    c.bench_function("fig7b/histogram", |b| b.iter(|| providers_per_event(&result.events)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
