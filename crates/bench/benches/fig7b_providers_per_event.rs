//! Fig. 7(b) — number of blackholing providers per blackholing event.

use criterion::{criterion_group, criterion_main, Criterion};

use bh_analysis::{pct, Table};
use bh_bench::{Study, StudyRun, StudyScale};
use bh_core::{providers_per_event, EventAccumulator, ProvidersPerEventAccumulator};

fn bench(c: &mut Criterion) {
    let study = Study::build(StudyScale::Small, 42);
    let StudyRun { result, report, .. } = study.visibility_run(10, 8.0);

    let hist = providers_per_event(&result.events);
    assert_eq!(hist, report.providers_per_event, "streamed accumulator must equal the batch");
    let total: usize = hist.values().sum();
    let mut table =
        Table::new("Fig 7b: #blackholing providers per event", &["#Providers", "#Events", "Share"]);
    for (k, n) in &hist {
        table.row(vec![k.to_string(), n.to_string(), pct(*n as f64 / total.max(1) as f64)]);
    }
    println!("{}", table.render());

    let multi: usize = hist.iter().filter(|(k, _)| **k > 1).map(|(_, n)| n).sum();
    let max_providers = hist.keys().max().copied().unwrap_or(0);
    println!(
        "shape: multi-provider events {} (paper: 28%); max providers in one event: {} \
         (paper: 20)\n",
        pct(multi as f64 / total.max(1) as f64),
        max_providers
    );

    c.bench_function("fig7b/histogram", |b| b.iter(|| providers_per_event(&result.events)));
    c.bench_function("fig7b/streaming_accumulator", |b| {
        b.iter(|| {
            let mut acc = ProvidersPerEventAccumulator::default();
            for event in &result.events {
                acc.observe(event);
            }
            acc.finalize()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
