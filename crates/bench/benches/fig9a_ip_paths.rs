//! Fig. 9(a) — impact of blackholing on IP-level paths (during vs after,
//! blackholed vs /31 control target).

use std::collections::BTreeSet;

use criterion::{criterion_group, criterion_main, Criterion};

use bh_analysis::{pct, render_series, Ecdf, Series};
use bh_bench::{Study, StudyRun, StudyScale};
use bh_dataplane::{run_experiment, EfficacyInput};

/// Build efficacy inputs from inferred events + ground-truth acceptance.
fn efficacy_inputs(study: &Study, output: &bh_workloads::ScenarioOutput) -> Vec<EfficacyInput> {
    let mut inputs = Vec::new();
    let mut seen = BTreeSet::new();
    for truth in &output.ground_truth {
        if truth.accepted.is_empty() || !truth.prefix.is_host_route() {
            continue;
        }
        if !seen.insert(truth.prefix) {
            continue;
        }
        let mut dropping: BTreeSet<_> = truth.accepted.iter().copied().collect();
        // IXP acceptance: honoring members drop too (sampled as the
        // members with host-route-accepting sessions).
        for ixp in study.topology.ixps() {
            if truth.accepted.contains(&ixp.route_server_asn) {
                dropping.extend(ixp.members.iter().copied().filter(|m| *m != truth.user));
            }
        }
        dropping.remove(&truth.user);
        inputs.push(EfficacyInput { prefix: truth.prefix, user: truth.user, dropping });
        if inputs.len() >= 150 {
            break;
        }
    }
    inputs
}

fn bench(c: &mut Criterion) {
    let study = Study::build(StudyScale::Small, 42);
    let StudyRun { output, .. } = study.visibility_run(8, 6.0);
    let inputs = efficacy_inputs(&study, &output);
    assert!(!inputs.is_empty(), "no accepted blackholings to measure");

    let report = run_experiment(&study.topology, &inputs, 0xF19A);
    let after_during: Vec<f64> =
        report.measurements.iter().map(|m| m.ip_delta_after_during() as f64).collect();
    let control: Vec<f64> =
        report.measurements.iter().map(|m| m.ip_delta_control() as f64).collect();
    println!(
        "{}",
        render_series(
            "Fig 9a: IP-level path-length differences",
            &[
                Series::new("after - during", Ecdf::new(after_during).points()),
                Series::new("control - blackholed", Ecdf::new(control).points()),
            ],
        )
    );
    println!(
        "shape: paths terminating earlier during blackholing: {} (paper: >80%)",
        pct(report.fraction_terminated_earlier())
    );
    println!(
        "shape: mean IP-level shortening {:.1} hops (paper: ~5.9); events measured {} / skipped {}\n",
        report.mean_ip_shortening(),
        report.measured_events,
        report.skipped_events
    );

    c.bench_function("fig9a/traceroute_experiment", |b| {
        b.iter(|| run_experiment(&study.topology, &inputs, 0xF19A))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
