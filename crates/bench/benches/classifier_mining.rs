//! Classifier throughput — class-aware mining and census classification.
//!
//! Two phases of the general community classifier on the Full-scale
//! corpus: (1) mining the multi-class dictionary from text (the tentpole
//! superset of the blackhole-only pass), and (2) classifying a populated
//! census against it, including negative-control extraction.

use criterion::{criterion_group, criterion_main, Criterion};

use bh_bench::{Study, StudyScale};
use bh_irr::{
    BlackholeDictionary, CommunityClass, CommunityClassifier, CommunityPrefixCensus,
    CorpusGenerator,
};

/// A census exercising every classifier path: documented triggers on
/// /32s, documented tags on coarse prefixes, plus undocumented riders
/// (specific-and-cooccurring, coarse-and-cooccurring, and noise).
fn census_for(dict: &BlackholeDictionary) -> CommunityPrefixCensus {
    let mut census = CommunityPrefixCensus::new();
    for (i, entry) in dict.entries().enumerate() {
        let hidden = bh_bgp_types::community::Community::from_parts(4000 + i as u16, 666);
        census.record_repeated(&[entry.community, hidden], 32, 50);
    }
    for class in CommunityClass::ALL.into_iter().skip(1) {
        for (i, entry) in dict.class_entries(class).enumerate() {
            let rider = bh_bgp_types::community::Community::from_parts(5000 + i as u16, 80);
            census.record_repeated(&[entry.community, rider], 20, 30);
        }
    }
    census
}

fn bench(c: &mut Criterion) {
    let study = Study::build(StudyScale::Full, 42);
    let census = census_for(&study.dict);
    println!(
        "classifier input: {} dictionary communities, {} census communities",
        study.dict.community_count(),
        census.community_count()
    );
    let classifier = CommunityClassifier::default();
    let classified = classifier.classify_census(&study.dict, &census);
    let controls = classifier.negative_controls(&study.dict, &census);
    println!("classified {} communities, {} negative controls", classified.len(), controls.len());

    c.bench_function("classifier/mine_multiclass", |b| {
        b.iter(|| {
            let corpus = CorpusGenerator::new(&study.topology, 9).generate();
            BlackholeDictionary::build(&corpus)
        })
    });
    c.bench_function("classifier/classify_census", |b| {
        b.iter(|| classifier.classify_census(&study.dict, &census))
    });
    c.bench_function("classifier/negative_controls", |b| {
        b.iter(|| classifier.negative_controls(&study.dict, &census))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
