//! Rank-parallel propagation at `Massive` scale.
//!
//! Floods the CAIDA-shaped ~75k-AS topology with full announce+withdraw
//! cycles from stub origins and compares the two propagation engines:
//!
//! * `queue` — the sequential FIFO engine (the seed trajectory);
//! * `phased_1` — the three-phase rank schedule, single worker: the
//!   pure algorithmic win (customer routes land before provider routes,
//!   so best paths settle without withdraw/re-announce churn);
//! * `phased_4` — the same schedule with 4 workers per rank group.
//!
//! Both engines are property-tested bit-identical (see
//! `tests/tests/phased_propagation.rs`); this bench asserts stream
//! equality once at startup and then measures. `MASSIVE_AS_COUNT`
//! shrinks the topology for smoke runs.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use bh_bgp_types::asn::Asn;
use bh_bgp_types::community::CommunitySet;
use bh_bgp_types::prefix::Ipv4Prefix;
use bh_bgp_types::time::SimTime;
use bh_routing::{deploy, Announcement, BgpSimulator, CollectorConfig, EngineMode};
use bh_topology::{Tier, Topology, TopologyBuilder, TopologyConfig};

fn floods_for(topology: &Topology) -> Vec<(Asn, Ipv4Prefix)> {
    topology
        .ases()
        .filter(|i| i.tier == Tier::Stub && !i.prefixes.is_empty())
        .take(2)
        .map(|i| (i.asn, i.prefixes[0]))
        .collect()
}

fn flood_cycle(sim: &mut BgpSimulator<'_>, floods: &[(Asn, Ipv4Prefix)]) -> usize {
    let mut total = 0usize;
    for &(origin, prefix) in floods {
        sim.announce(
            SimTime::from_unix(1_000),
            &Announcement::simple(origin, prefix, CommunitySet::new()),
        );
        total += sim.drain_elems().len();
        sim.withdraw(SimTime::from_unix(2_000), origin, prefix);
        total += sim.drain_elems().len();
    }
    total
}

fn bench(c: &mut Criterion) {
    let as_count: usize =
        std::env::var("MASSIVE_AS_COUNT").ok().and_then(|v| v.parse().ok()).unwrap_or(75_000);
    let topology = TopologyBuilder::new(TopologyConfig::massive_scaled(42, as_count)).build();
    let ranks = Arc::new(topology.propagation_ranks());
    let floods = floods_for(&topology);
    assert!(!floods.is_empty(), "massive topology has no stub origins");

    let collector_config = CollectorConfig { seed: 42, ..Default::default() };
    let mk_sim = |mode: EngineMode| {
        let mut sim = BgpSimulator::new(&topology, deploy(&topology, &collector_config), 42);
        sim.set_engine_mode(mode);
        sim.set_propagation_ranks(Arc::clone(&ranks));
        sim
    };

    // One equality pass before timing: same elems from both engines.
    let reference = {
        let mut sim = mk_sim(EngineMode::Queue);
        let mut elems = Vec::new();
        for &(origin, prefix) in &floods {
            sim.announce(
                SimTime::from_unix(1_000),
                &Announcement::simple(origin, prefix, CommunitySet::new()),
            );
            sim.withdraw(SimTime::from_unix(2_000), origin, prefix);
        }
        elems.extend(sim.drain_elems());
        elems
    };
    let phased = {
        let mut sim = mk_sim(EngineMode::Phased { threads: 4 });
        for &(origin, prefix) in &floods {
            sim.announce(
                SimTime::from_unix(1_000),
                &Announcement::simple(origin, prefix, CommunitySet::new()),
            );
            sim.withdraw(SimTime::from_unix(2_000), origin, prefix);
        }
        sim.drain_elems()
    };
    assert_eq!(reference, phased, "queue and phased engines must emit identically");
    println!(
        "propagation_massive: {} ASes, max rank {}, {} floods, {} elems/cycle",
        topology.as_count(),
        ranks.max_rank(),
        floods.len(),
        reference.len()
    );

    let mut group = c.benchmark_group("propagation_massive");
    group.sample_size(5); // ~12 s per flood cycle at full scale
    group.throughput(Throughput::Elements(reference.len().max(1) as u64));

    let mut sim = mk_sim(EngineMode::Queue);
    group.bench_function("queue", |b| b.iter(|| flood_cycle(&mut sim, &floods)));
    let mut sim = mk_sim(EngineMode::Phased { threads: 1 });
    group.bench_function("phased_1", |b| b.iter(|| flood_cycle(&mut sim, &floods)));
    let mut sim = mk_sim(EngineMode::Phased { threads: 4 });
    group.bench_function("phased_4", |b| b.iter(|| flood_cycle(&mut sim, &floods)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
