//! Fig. 4 — longitudinal adoption: daily providers / users / prefixes
//! over Dec 2014 – Mar 2017, with the named DDoS spikes.

use criterion::{criterion_group, criterion_main, Criterion};

use bh_analysis::{render_series, Series};
use bh_bench::{Study, StudyRun, StudyScale};
use bh_bgp_types::time::study as window;
use bh_core::{daily_series, DailySeriesAccumulator, EventAccumulator};
use bh_workloads::SPIKES;

fn bench(c: &mut Criterion) {
    let study = Study::build(StudyScale::Tiny, 42);
    // Tiny topology but the full 2.3-year calendar, scaled attack rate.
    let StudyRun { output, result, report, .. } = study.longitudinal_run(2.0);

    let series =
        daily_series(&result.events, window::longitudinal_start(), window::longitudinal_end());
    assert_eq!(series, report.daily, "streamed accumulator must equal the batch series");
    let to_points = |f: fn(&bh_core::DailyPoint) -> usize| -> Vec<(f64, f64)> {
        series.iter().map(|p| (p.day.day_index() as f64, f(p) as f64)).collect()
    };
    println!(
        "{}",
        render_series(
            "Fig 4: daily blackholing activity",
            &[
                Series::new("providers", to_points(|p| p.providers)),
                Series::new("users", to_points(|p| p.users)),
                Series::new("prefixes", to_points(|p| p.prefixes)),
            ],
        )
    );

    // Growth factors: mean of first vs last 60 days.
    let head = 60.min(series.len());
    let growth = |f: fn(&bh_core::DailyPoint) -> usize| -> f64 {
        let first: f64 =
            series.iter().take(head).map(|p| f(p) as f64).sum::<f64>() / head.max(1) as f64;
        let last: f64 =
            series.iter().rev().take(head).map(|p| f(p) as f64).sum::<f64>() / head.max(1) as f64;
        if first > 0.0 {
            last / first
        } else {
            f64::INFINITY
        }
    };
    println!("shape: provider growth x{:.1} (paper: ~x2.5)", growth(|p| p.providers));
    println!("shape: user growth     x{:.1} (paper: ~x4)", growth(|p| p.users));
    println!("shape: prefix growth   x{:.1} (paper: ~x6)", growth(|p| p.prefixes));

    // Spikes: each named attack day should beat its local baseline.
    for spike in SPIKES {
        let day =
            bh_bgp_types::time::SimTime::from_ymd(spike.year, spike.month, spike.day).day_index();
        let idx = (day - window::longitudinal_start().day_index()) as usize;
        if idx < 7 || idx + 1 >= series.len() {
            continue;
        }
        let baseline: f64 =
            series[idx - 7..idx].iter().map(|p| p.prefixes as f64).sum::<f64>() / 7.0;
        let on_day = series[idx].prefixes as f64;
        println!(
            "spike {} ({}): prefixes {} vs 7-day baseline {:.1} -> x{:.1}",
            spike.label,
            spike.description,
            on_day,
            baseline,
            if baseline > 0.0 { on_day / baseline } else { f64::INFINITY }
        );
    }
    println!(
        "events: {} inferred over {} days ({} ground-truth reactions)\n",
        result.events.len(),
        output.days,
        output.ground_truth.len()
    );

    c.bench_function("fig4/daily_series", |b| {
        b.iter(|| {
            daily_series(&result.events, window::longitudinal_start(), window::longitudinal_end())
        })
    });
    // One-pass form: the same fold as an explicit mergeable accumulator
    // (the shape each shard runs before the barrier merge).
    c.bench_function("fig4/streaming_accumulator", |b| {
        b.iter(|| {
            let mut acc = DailySeriesAccumulator::new(
                window::longitudinal_start(),
                window::longitudinal_end(),
            );
            for event in &result.events {
                acc.observe(event);
            }
            acc.finalize()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
