//! Fig. 9(c) — one week of IXP traffic toward blackholed prefixes:
//! dropped (below the line) vs still-forwarded (above), plus the §10
//! passive-validation statistics.

use criterion::{criterion_group, criterion_main, Criterion};

use bh_analysis::pct;
use bh_bench::{Study, StudyScale};
use bh_bgp_types::prefix::Ipv4Prefix;
use bh_bgp_types::time::SimTime;
use bh_dataplane::{fig9c_series, FlowSim};

fn bench(c: &mut Criterion) {
    let study = Study::build(StudyScale::Small, 42);
    let ixp = study
        .topology
        .ixps()
        .iter()
        .max_by_key(|ixp| ixp.members.len())
        .expect("topology has IXPs")
        .clone();

    // The four highest-volume blackholed prefixes of the figure.
    let prefixes: Vec<Ipv4Prefix> = vec![
        "60.10.0.1/32".parse().unwrap(),
        "60.11.0.2/32".parse().unwrap(),
        "60.12.0.3/32".parse().unwrap(),
        "60.13.0.4/32".parse().unwrap(),
    ];
    let start = SimTime::from_ymd(2017, 3, 20);
    let mut sim = FlowSim::new(&ixp, 0.34, 0xF19C);
    let series = fig9c_series(&mut sim, start, &prefixes, 12);

    println!("# Fig 9c: hourly sampled packets to blackholed prefixes (one week)");
    println!("# prefix\thour\tdropped(below zero)\tforwarded(above zero)");
    for (prefix, points) in &series {
        for (h, p) in points.iter().enumerate().step_by(12) {
            println!("{prefix}\t{h}\t-{}\t{}", p.dropped, p.forwarded);
        }
    }

    let total_dropped: u64 = series.values().flatten().map(|p| p.dropped).sum();
    let total_forwarded: u64 = series.values().flatten().map(|p| p.forwarded).sum();
    println!(
        "\nshape: dropped share {} (paper: >50% of traffic for announced /32s dropped)",
        pct(total_dropped as f64 / (total_dropped + total_forwarded).max(1) as f64)
    );
    println!(
        "shape: dropping members {} of {} = {} (paper: ~1/3 of traffic sources drop)",
        sim.members().iter().filter(|m| m.ignores.is_none()).count(),
        sim.members().len(),
        pct(sim.dropping_member_fraction())
    );
    let concentration = sim.leak_concentration();
    let top10: f64 = concentration.iter().take(10).map(|(_, s)| s).sum();
    println!(
        "shape: top-10 leaking members carry {} of forwarded traffic (paper: 80% from <10 members)\n",
        pct(top10)
    );

    c.bench_function("fig9c/week_series", |b| {
        b.iter(|| {
            let mut sim = FlowSim::new(&ixp, 0.34, 0xF19C);
            fig9c_series(&mut sim, start, &prefixes, 12)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
