//! Fig. 2 — community tag vs. prefix length, plus the extended-dictionary
//! inference (§4.1 "Possibilities for Extended Dictionary").

use criterion::{criterion_group, criterion_main, Criterion};

use bh_analysis::{pct, render_series, Series};
use bh_bench::{Study, StudyRun, StudyScale};
use bh_topology::DocumentationChannel;

fn bench(c: &mut Criterion) {
    let study = Study::build(StudyScale::Small, 42);
    let StudyRun { result, .. } = study.visibility_run(10, 8.0);

    // The Fig. 2 surface: fraction of occurrences per (tag, length).
    let points = result.census.fig2_series(&study.dict);
    let bh_mass_at_32: f64 = points
        .iter()
        .filter(|p| p.is_blackhole && p.prefix_length == 32)
        .map(|p| p.fraction)
        .sum::<f64>()
        / points.iter().filter(|p| p.is_blackhole).map(|p| p.fraction).sum::<f64>().max(1e-9);
    let other_mass_le_24: f64 = points
        .iter()
        .filter(|p| !p.is_blackhole && p.prefix_length <= 24)
        .map(|p| p.fraction)
        .sum::<f64>()
        / points.iter().filter(|p| !p.is_blackhole).map(|p| p.fraction).sum::<f64>().max(1e-9);

    let bh_series = Series::new(
        "blackhole-tags",
        points
            .iter()
            .filter(|p| p.is_blackhole)
            .map(|p| (p.prefix_length as f64, p.fraction))
            .collect(),
    );
    let other_series = Series::new(
        "other-tags",
        points
            .iter()
            .filter(|p| !p.is_blackhole)
            .map(|p| (p.prefix_length as f64, p.fraction))
            .collect(),
    );
    println!(
        "{}",
        render_series(
            "Fig 2: fraction of tag occurrences per prefix length",
            &[bh_series, other_series]
        )
    );
    println!(
        "shape: blackhole-tag mass at /32: {} (paper: almost exclusively /32)",
        pct(bh_mass_at_32)
    );
    println!(
        "shape: other-tag mass at <=/24: {} (paper: largest fraction at /24 or less-specific)",
        pct(other_mass_le_24)
    );

    // Extended dictionary: inferred communities.
    let inferred = result.census.infer_candidates(&study.dict, 3);
    let truly_undocumented = inferred
        .iter()
        .filter(|i| {
            study.topology.as_info(i.asn).is_some_and(|info| {
                info.blackhole_offering.as_ref().is_some_and(|o| {
                    o.documentation == DocumentationChannel::Undocumented
                        && o.is_trigger(i.community)
                })
            })
        })
        .count();
    let undocumented_total = study
        .topology
        .ases()
        .filter(|i| {
            i.blackhole_offering
                .as_ref()
                .is_some_and(|o| o.documentation == DocumentationChannel::Undocumented)
        })
        .count();
    println!(
        "extended dictionary: {} inferred candidates; {} confirmed against ground truth \
         ({} undocumented providers exist; paper: 111 communities / 102 ASes)\n",
        inferred.len(),
        truly_undocumented,
        undocumented_total
    );

    c.bench_function("fig2/census_series", |b| b.iter(|| result.census.fig2_series(&study.dict)));
    c.bench_function("fig2/infer_candidates", |b| {
        b.iter(|| result.census.infer_candidates(&study.dict, 3))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
