//! Table 3 — blackhole visibility per dataset.
//!
//! Runs the visibility-window scenario, infers events, and tabulates
//! per-platform providers/users/prefixes with unique counts and
//! direct-feed fractions.

use criterion::{criterion_group, criterion_main, Criterion};

use bh_analysis::{count, pct, Table};
use bh_bench::{Study, StudyRun, StudyScale};
use bh_core::{table3, EventAccumulator, VisibilityAccumulator};

fn bench(c: &mut Criterion) {
    let study = Study::build(StudyScale::Small, 42);
    let StudyRun { output, result, refdata, report, .. } = study.visibility_run(10, 8.0);

    let rows = table3(&result, &refdata);
    assert_eq!(rows, report.table3, "streamed accumulator must equal the batch rows");
    let mut table = Table::new(
        "Table 3: Blackhole dataset overview (IPv4)",
        &[
            "Source",
            "#Bh providers",
            "#Unique",
            "#Bh users",
            "#Unique",
            "#Bh prefixes",
            "#Unique",
            "Direct feeds",
        ],
    );
    for row in &rows {
        table.row(vec![
            row.source.clone(),
            count(row.providers),
            count(row.unique_providers),
            count(row.users),
            count(row.unique_users),
            count(row.prefixes),
            count(row.unique_prefixes),
            pct(row.direct_feed_fraction),
        ]);
    }
    println!("{}", table.render());

    let cdn = rows.iter().find(|r| r.source == "CDN").expect("CDN row");
    let ris = rows.iter().find(|r| r.source == "RIS").expect("RIS row");
    let pch = rows.iter().find(|r| r.source == "PCH").expect("PCH row");
    println!(
        "shape: CDN providers {} >= RIS providers {} -> {} (paper: CDN observes most providers)",
        cdn.providers,
        ris.providers,
        cdn.providers >= ris.providers
    );
    println!(
        "shape: PCH direct-feed {} >= RIS direct-feed {} -> {} (paper: 43.6% vs 4.42%)",
        pct(pch.direct_feed_fraction),
        pct(ris.direct_feed_fraction),
        pch.direct_feed_fraction >= ris.direct_feed_fraction
    );
    println!(
        "ground truth: {} reactions, {} inferred events\n",
        output.ground_truth.len(),
        result.events.len()
    );

    c.bench_function("table3/inference_plus_table", |b| {
        b.iter(|| {
            let result = study.infer(&refdata, &output.elems);
            table3(&result, &refdata)
        })
    });
    // One-pass form: fold the session's visibility map through the
    // mergeable accumulator (what the streaming pipeline does inline).
    c.bench_function("table3/streaming_accumulator", |b| {
        b.iter(|| {
            let mut acc = VisibilityAccumulator::new(refdata.clone());
            acc.observe_visibility(&result.per_dataset);
            acc.finalize()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
