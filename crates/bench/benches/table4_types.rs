//! Table 4 — blackhole visibility by provider network type.

use criterion::{criterion_group, criterion_main, Criterion};

use bh_analysis::{count, pct, Table};
use bh_bench::{Study, StudyRun, StudyScale};
use bh_core::{table4, EventAccumulator, TypeAccumulator};
use bh_topology::NetworkType;

fn bench(c: &mut Criterion) {
    let study = Study::build(StudyScale::Small, 42);
    let StudyRun { result, refdata, report, .. } = study.visibility_run(10, 8.0);

    let rows = table4(&result.events, &refdata);
    assert_eq!(rows, report.table4, "streamed accumulator must equal the batch rows");
    let mut table = Table::new(
        "Table 4: Blackhole visibility by provider type (IPv4)",
        &["Network Type", "#Bh prov.", "#Bh users", "#Bh pref.", "Direct feed"],
    );
    for row in &rows {
        table.row(vec![
            row.network_type.label().to_string(),
            count(row.providers),
            count(row.users),
            count(row.prefixes),
            pct(row.direct_feed_fraction),
        ]);
    }
    println!("{}", table.render());

    let transit =
        rows.iter().find(|r| r.network_type == NetworkType::TransitAccess).expect("transit row");
    let ixp = rows.iter().find(|r| r.network_type == NetworkType::Ixp).expect("ixp row");
    let total_prefixes: usize = rows.iter().map(|r| r.prefixes).sum();
    println!(
        "shape: Transit/Access prefixes {}/{} = {} (paper: ~90%)",
        transit.prefixes,
        total_prefixes,
        pct(transit.prefixes as f64 / total_prefixes.max(1) as f64)
    );
    println!(
        "shape: IXPs direct-feed {} (paper: 100% — every observed IXP has a PCH session)",
        pct(ixp.direct_feed_fraction)
    );
    println!(
        "shape: IXP providers {} < transit providers {} but serve {} users (second place)\n",
        ixp.providers, transit.providers, ixp.users
    );

    c.bench_function("table4/compute", |b| b.iter(|| table4(&result.events, &refdata)));
    c.bench_function("table4/streaming_accumulator", |b| {
        b.iter(|| {
            let mut acc = TypeAccumulator::new(refdata.clone());
            for event in &result.events {
                acc.observe(event);
            }
            acc.finalize()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
