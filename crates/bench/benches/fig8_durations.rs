//! Fig. 8 — blackholing durations: ungrouped events vs 5-minute-grouped
//! periods (CDF), histogram regimes, grouping-timeout sweep, and the
//! per-peer-state ablation (DESIGN.md ablations #2 and #3).

use criterion::{criterion_group, criterion_main, Criterion};

use bh_analysis::{pct, render_series, Ecdf, Histogram, Series};
use bh_bench::{Study, StudyRun, StudyScale};
use bh_bgp_types::time::{SimDuration, SimTime};
use bh_core::{durations, group_events, EngineConfig, EventAccumulator, PeriodAccumulator};

fn bench(c: &mut Criterion) {
    let study = Study::build(StudyScale::Small, 42);
    let StudyRun { output, result, refdata, report, .. } = study.visibility_run(10, 8.0);
    let now = SimTime::from_unix(
        (bh_bgp_types::time::study::visibility_start().day_index() + 10) * 86_400,
    );

    // Fig. 8(a): CDFs.
    let ungrouped: Vec<f64> =
        durations(&result.events, now).iter().map(|d| d.as_mins_f64()).collect();
    let grouped_periods = group_events(&result.events, SimDuration::mins(5));
    assert_eq!(
        grouped_periods, report.periods,
        "streamed period accumulator must equal the batch grouping"
    );
    let grouped: Vec<f64> = grouped_periods.iter().map(|p| p.duration(now).as_mins_f64()).collect();
    let ungrouped_cdf = Ecdf::new(ungrouped);
    let grouped_cdf = Ecdf::new(grouped);
    println!(
        "{}",
        render_series(
            "Fig 8a: CDF of blackholing durations (minutes)",
            &[
                Series::new("ungrouped events", ungrouped_cdf.points()),
                Series::new("grouped periods (5min)", grouped_cdf.points()),
            ],
        )
    );
    println!(
        "shape: ungrouped <=1min: {} (paper: >70%); grouped <=1min: {} (paper: ~4%)",
        pct(ungrouped_cdf.fraction_le(1.0)),
        pct(grouped_cdf.fraction_le(1.0))
    );
    println!(
        "shape: grouped >16h: {} (paper: ~30% of grouped are long)",
        pct(1.0 - grouped_cdf.fraction_le(16.0 * 60.0))
    );

    // Fig. 8(b): histogram regimes (hours, log bins).
    let mut hist = Histogram::logarithmic(1.0 / 60.0, 24.0 * 95.0, 16);
    hist.record_all(durations(&result.events, now).iter().map(|d| d.as_hours_f64()));
    println!("# Fig 8b: duration histogram (hours, log bins)");
    for (lo, hi, count) in hist.bins() {
        if count > 0 {
            println!("{lo:.3}\t{hi:.3}\t{count}");
        }
    }
    println!();

    // Grouping-timeout sweep (ablation #3).
    for timeout_mins in [1u64, 5, 15, 60] {
        let periods = group_events(&result.events, SimDuration::mins(timeout_mins));
        println!(
            "sweep: timeout {timeout_mins:>2}min -> {} periods from {} events",
            periods.len(),
            result.events.len()
        );
    }

    // Per-peer-state ablation (ablation #2): collapsing peers shortens
    // events because the first de-activation closes them.
    let ablated = study.infer_with_config(
        &refdata,
        &output.elems,
        EngineConfig { per_peer_state: false, ..Default::default() },
    );
    let mean = |events: &[bh_core::BlackholeEvent]| -> f64 {
        let ds = durations(events, now);
        if ds.is_empty() {
            0.0
        } else {
            ds.iter().map(|d| d.as_secs() as f64).sum::<f64>() / ds.len() as f64
        }
    };
    println!(
        "ablation: mean event duration with per-peer state {:.0}s vs without {:.0}s\n",
        mean(&result.events),
        mean(&ablated.events)
    );

    c.bench_function("fig8/group_events", |b| {
        b.iter(|| group_events(&result.events, SimDuration::mins(5)))
    });
    // One-pass form: the gap-tolerant coalescing accumulator, fed event
    // by event (what drains out of a streaming session).
    c.bench_function("fig8/streaming_period_accumulator", |b| {
        b.iter(|| {
            let mut acc = PeriodAccumulator::new(SimDuration::mins(5));
            for event in &result.events {
                acc.observe(event);
            }
            acc.finalize()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
