//! Fig. 5 — CDFs of blackholed-prefix counts per provider (transit vs
//! IXP) and per user type.

use criterion::{criterion_group, criterion_main, Criterion};

use bh_analysis::{render_series, Ecdf, Series};
use bh_bench::{Study, StudyRun, StudyScale};
use bh_core::{
    prefixes_per_provider, prefixes_per_user, EventAccumulator, ProviderPrefixAccumulator,
    UserPrefixAccumulator,
};
use bh_topology::NetworkType;

fn bench(c: &mut Criterion) {
    let study = Study::build(StudyScale::Small, 42);
    let StudyRun { result, refdata, report, .. } = study.visibility_run(10, 8.0);

    // Fig. 5(a): per-provider counts, transit/access vs IXP.
    let per_provider = prefixes_per_provider(&result.events, &refdata);
    assert_eq!(per_provider, report.prefixes_per_provider, "streamed == batch (providers)");
    let transit: Vec<f64> = per_provider
        .iter()
        .filter(|(_, ty, _)| *ty == NetworkType::TransitAccess)
        .map(|(_, _, n)| *n as f64)
        .collect();
    let ixp: Vec<f64> = per_provider
        .iter()
        .filter(|(_, ty, _)| *ty == NetworkType::Ixp)
        .map(|(_, _, n)| *n as f64)
        .collect();
    let transit_cdf = Ecdf::new(transit.clone());
    let ixp_cdf = Ecdf::new(ixp);
    // The mergeable ECDF form: incremental pushes build the same CDF.
    let mut incremental = Ecdf::empty();
    for v in &transit {
        incremental.push(*v);
    }
    assert_eq!(incremental.points(), transit_cdf.points());
    println!(
        "{}",
        render_series(
            "Fig 5a: CDF of #blackholed prefixes per provider",
            &[
                Series::new("transit/access", transit_cdf.points()),
                Series::new("ixp", ixp_cdf.points()),
            ],
        )
    );
    if !transit_cdf.is_empty() && !ixp_cdf.is_empty() {
        println!(
            "shape: providers with exactly 1 prefix: transit {:.0}% vs IXP {:.0}% \
             (paper: 15% vs ~20% — IXP CDF more extreme at the low end)",
            transit_cdf.fraction_le(1.0) * 100.0,
            ixp_cdf.fraction_le(1.0) * 100.0
        );
        println!(
            "shape: max prefixes: transit {} vs IXP {} (paper: both heavy-tailed)",
            transit_cdf.max().unwrap_or(0.0),
            ixp_cdf.max().unwrap_or(0.0)
        );
    }

    // Fig. 5(b): per-user counts, split by user type.
    let per_user = prefixes_per_user(&result.events, &refdata);
    assert_eq!(per_user, report.prefixes_per_user, "streamed == batch (users)");
    let mut series = Vec::new();
    let mut content_prefixes = 0usize;
    let mut total_prefixes = 0usize;
    let mut content_users = 0usize;
    for ty in [NetworkType::Content, NetworkType::TransitAccess, NetworkType::Enterprise] {
        let values: Vec<f64> =
            per_user.iter().filter(|(_, t, _)| *t == ty).map(|(_, _, n)| *n as f64).collect();
        if !values.is_empty() {
            series.push(Series::new(ty.label(), Ecdf::new(values).points()));
        }
    }
    for (_, ty, n) in &per_user {
        total_prefixes += n;
        if *ty == NetworkType::Content {
            content_prefixes += n;
            content_users += 1;
        }
    }
    println!("{}", render_series("Fig 5b: CDF of #blackholed prefixes per user", &series));
    println!(
        "shape: content users {}/{} = {:.0}% of users originate {:.0}% of prefixes \
         (paper: 18% of users, 43% of prefixes)\n",
        content_users,
        per_user.len(),
        content_users as f64 / per_user.len().max(1) as f64 * 100.0,
        content_prefixes as f64 / total_prefixes.max(1) as f64 * 100.0
    );

    c.bench_function("fig5/per_provider_and_user", |b| {
        b.iter(|| {
            (
                prefixes_per_provider(&result.events, &refdata),
                prefixes_per_user(&result.events, &refdata),
            )
        })
    });
    c.bench_function("fig5/streaming_accumulators", |b| {
        b.iter(|| {
            let mut providers = ProviderPrefixAccumulator::new(refdata.clone());
            let mut users = UserPrefixAccumulator::new(refdata.clone());
            for event in &result.events {
                providers.observe(event);
                users.observe(event);
            }
            (providers.finalize(), users.finalize())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
