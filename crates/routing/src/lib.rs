//! # bh-routing — BGP propagation simulator and collector substrate
//!
//! This crate substitutes for the paper's measurement infrastructure: the
//! real Internet's BGP dynamics plus the RIPE RIS / Route Views / PCH /
//! CDN collector platforms. It produces the exact observable the
//! inference engine consumes — timestamped, per-peer BGP elements
//! ([`BgpElem`], the BGPStream shape) — with the visibility mechanics the
//! paper depends on:
//!
//! * Gao-Rexford propagation (valley-free exports, relationship
//!   preferences) — [`policy`], [`sim`];
//! * blackhole acceptance at providers (trigger communities, >/24 length
//!   window, origin/cone/RPKI/IRR authentication) — [`policy`];
//! * community bundling, stripping, NO_EXPORT, and RFC 7999-compliant
//!   suppression — [`sim`];
//! * IXP route servers with member redistribution and PCH route-server
//!   views whose peer-ip lies in the peering LAN — [`sim`];
//! * platform placement biases — [`collector`];
//! * valley-free *forwarding* paths for the data-plane crates —
//!   [`paths`];
//! * combinatorial dataset statistics (Table 1) — [`stats`];
//! * MRT export of the element stream, plus a constant-memory streaming
//!   reader — [`archive`];
//! * source-agnostic element streams for the inference — [`source`];
//! * k-way timestamp merging of many collector streams — [`merge`];
//! * parallel bounded-memory ingestion of whole archive fleets —
//!   [`fleet`];
//! * live tailing of *growing* archives with a watermark-gated merge —
//!   [`live`].

pub mod archive;
pub mod collector;
pub mod elem;
pub mod extensions;
pub mod fleet;
pub mod live;
pub mod merge;
pub mod paths;
pub mod policy;
pub mod sim;
pub mod source;
pub mod stats;

pub use archive::{
    merge_streams, read_updates, split_by_collector, split_by_dataset, write_updates, MrtElemSource,
};
pub use collector::{deploy, CollectorConfig, CollectorDeployment, CollectorSession, FeedKind};
pub use elem::{BgpElem, DataSource, ElemType, PeerKey};
pub use extensions::{
    CommunityScrubExt, ExportAction, ExportCx, ImportCx, Leaker, OnlyToCustomers, OriginCx,
    PathEnd, PeerlockLite, PolicyEngine, PolicyExtension, Rov, RunStats,
};
pub use fleet::{
    ArchiveReport, ChannelSource, CollectorFleet, FleetConfig, FleetReport, FleetSource,
};
pub use live::{Clock, LiveArchive, LiveMerge, LivePoll, TailingSource, WallClock};
pub use merge::MergedSource;
pub use paths::ForwardingTree;
pub use policy::{ImportDecision, ImportOutcome, RejectReason, SessionBehavior};
pub use sim::{
    AnnounceOutcome, AnnounceScope, Announcement, BgpSimulator, EngineMode, PropagationError,
};
pub use source::{collect_source, ElemSource, IterSource, SliceSource};
pub use stats::{table1, table1_totals, DatasetStats, DatasetTotals};
