//! Source-agnostic element streams: the iterator-style abstraction the
//! inference consumes.
//!
//! The paper's pipeline is an *online* algorithm over years of BGP
//! updates; materializing a `Vec<BgpElem>` per archive does not scale.
//! [`ElemSource`] decouples producers (in-memory slices, the simulator,
//! MRT archives) from consumers (the inference session), so elements can
//! be processed in arrival order with constant memory.
//!
//! `next_elem` returns a *borrow* of the next element: slice-backed
//! sources yield without cloning, and generative sources (MRT readers,
//! adaptors over iterators) park the current element internally. The
//! borrow ends before the next call, which is exactly the shape an
//! online, one-pass consumer needs.

use crate::elem::BgpElem;

/// A stream of BGP elements in arrival order.
pub trait ElemSource {
    /// The next element, or `None` at end of stream.
    ///
    /// The returned borrow is only valid until the next call; one-pass
    /// consumers process it (or clone it) before advancing.
    fn next_elem(&mut self) -> Option<&BgpElem>;

    /// Bounds on the number of elements remaining, `Iterator`-style:
    /// `(lower, upper)` with `None` meaning unbounded/unknown.
    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, None)
    }
}

/// Forward through mutable references so drivers can take
/// `&mut impl ElemSource` or `&mut dyn ElemSource` interchangeably.
impl<S: ElemSource + ?Sized> ElemSource for &mut S {
    fn next_elem(&mut self) -> Option<&BgpElem> {
        (**self).next_elem()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (**self).size_hint()
    }
}

/// Forward through boxes so heterogeneous source sets (e.g. the inputs
/// of a [`MergedSource`](crate::merge::MergedSource)) can be
/// `Vec<Box<dyn ElemSource>>`.
impl<S: ElemSource + ?Sized> ElemSource for Box<S> {
    fn next_elem(&mut self) -> Option<&BgpElem> {
        (**self).next_elem()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (**self).size_hint()
    }
}

/// An in-memory slice as a stream — zero-copy, zero-allocation.
#[derive(Debug, Clone)]
pub struct SliceSource<'a> {
    elems: &'a [BgpElem],
    pos: usize,
}

impl<'a> SliceSource<'a> {
    /// Stream over `elems` from the beginning.
    pub fn new(elems: &'a [BgpElem]) -> Self {
        SliceSource { elems, pos: 0 }
    }

    /// Elements already yielded.
    pub fn position(&self) -> usize {
        self.pos
    }
}

impl<'a> From<&'a [BgpElem]> for SliceSource<'a> {
    fn from(elems: &'a [BgpElem]) -> Self {
        SliceSource::new(elems)
    }
}

impl<'a> From<&'a Vec<BgpElem>> for SliceSource<'a> {
    fn from(elems: &'a Vec<BgpElem>) -> Self {
        SliceSource::new(elems)
    }
}

impl ElemSource for SliceSource<'_> {
    fn next_elem(&mut self) -> Option<&BgpElem> {
        let elem = self.elems.get(self.pos)?;
        self.pos += 1;
        Some(elem)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.elems.len() - self.pos;
        (left, Some(left))
    }
}

/// Adapt any owning iterator of elements (e.g. a `vec.into_iter()`, a
/// channel receiver, a decoding pipeline) into an [`ElemSource`].
#[derive(Debug)]
pub struct IterSource<I: Iterator<Item = BgpElem>> {
    iter: I,
    current: Option<BgpElem>,
}

impl<I: Iterator<Item = BgpElem>> IterSource<I> {
    /// Wrap an iterator.
    pub fn new(iter: I) -> Self {
        IterSource { iter, current: None }
    }
}

impl<I: Iterator<Item = BgpElem>> ElemSource for IterSource<I> {
    fn next_elem(&mut self) -> Option<&BgpElem> {
        self.current = self.iter.next();
        self.current.as_ref()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.iter.size_hint()
    }
}

/// Drain a source into a vector (tests, small streams; defeats the
/// constant-memory point for large ones).
pub fn collect_source(mut source: impl ElemSource) -> Vec<BgpElem> {
    let mut out = Vec::with_capacity(source.size_hint().0);
    while let Some(elem) = source.next_elem() {
        out.push(elem.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use bh_bgp_types::as_path::AsPath;
    use bh_bgp_types::asn::Asn;
    use bh_bgp_types::community::CommunitySet;
    use bh_bgp_types::time::SimTime;

    use super::*;
    use crate::elem::{DataSource, ElemType};

    fn elem(t: u64) -> BgpElem {
        BgpElem {
            time: SimTime::from_unix(t),
            dataset: DataSource::Ris,
            collector: 0,
            peer_asn: Asn::new(1),
            peer_ip: "10.0.0.1".parse().unwrap(),
            elem_type: ElemType::Announce,
            prefix: "192.0.2.0/24".parse().unwrap(),
            as_path: AsPath::empty(),
            communities: CommunitySet::new(),
            next_hop: None,
        }
    }

    #[test]
    fn slice_source_yields_in_order_without_cloning() {
        let elems = vec![elem(1), elem(2), elem(3)];
        let mut src = SliceSource::new(&elems);
        assert_eq!(src.size_hint(), (3, Some(3)));
        let mut times = Vec::new();
        while let Some(e) = src.next_elem() {
            times.push(e.time.unix());
        }
        assert_eq!(times, vec![1, 2, 3]);
        assert_eq!(src.size_hint(), (0, Some(0)));
        assert_eq!(src.position(), 3);
        assert!(src.next_elem().is_none());
    }

    #[test]
    fn iter_source_parks_the_current_element() {
        let elems = vec![elem(7), elem(8)];
        let mut src = IterSource::new(elems.into_iter());
        assert_eq!(src.next_elem().unwrap().time.unix(), 7);
        assert_eq!(src.next_elem().unwrap().time.unix(), 8);
        assert!(src.next_elem().is_none());
    }

    #[test]
    fn collect_round_trips_a_slice() {
        let elems = vec![elem(1), elem(2)];
        let back = collect_source(SliceSource::new(&elems));
        assert_eq!(back, elems);
    }

    #[test]
    fn mut_ref_forwarding_works() {
        fn drive(mut s: impl ElemSource) -> usize {
            let mut n = 0;
            while s.next_elem().is_some() {
                n += 1;
            }
            n
        }
        let elems = vec![elem(1), elem(2)];
        let mut src = SliceSource::new(&elems);
        assert_eq!(drive(&mut src), 2);
    }
}
