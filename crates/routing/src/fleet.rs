//! The collector fleet: parallel, bounded-memory ingestion of many MRT
//! archives — the historical-path equivalent of subscribing to the whole
//! RIS + Route Views collector fleet at once.
//!
//! One reader thread per archive decodes MRT records into [`BgpElem`]s
//! and ships them over a **bounded** channel in small batches; the
//! consumer side wraps every channel in a [`ChannelSource`] and merges
//! them with a [`MergedSource`], so the inference sees one globally
//! time-ordered stream. Memory is bounded end to end: each reader holds
//! one record plus one outgoing batch, each channel holds at most
//! [`FleetConfig::channel_batches`] batches (backpressure — a fast
//! collector blocks until the merge catches up), and the merge buffers
//! one element per archive. No `Vec<BgpElem>` of the whole stream ever
//! exists.
//!
//! ```no_run
//! use bh_routing::{CollectorFleet, DataSource, ElemSource};
//! # fn archive_bytes() -> Vec<u8> { Vec::new() }
//!
//! let mut fleet = CollectorFleet::new();
//! fleet.add_archive(std::io::Cursor::new(archive_bytes()), DataSource::Ris, 0);
//! fleet.add_archive(std::io::Cursor::new(archive_bytes()), DataSource::RouteViews, 1);
//! let mut stream = fleet.start();
//! while let Some(elem) = stream.next_elem() {
//!     /* feed an InferenceSession / ShardedSession */
//! }
//! let report = stream.finish();
//! assert!(report.is_clean());
//! ```

use std::collections::VecDeque;
use std::io::Read;
use std::sync::mpsc::{Receiver, SyncSender};
use std::thread::JoinHandle;
use std::{sync::mpsc, thread};

use bh_mrt::{MessageStream, MrtError};
use bytes::Bytes;

use crate::archive::MrtElemSource;
use crate::elem::{BgpElem, DataSource};
use crate::merge::MergedSource;
use crate::source::ElemSource;

/// Fleet tunables. The defaults suit archive scans: batches big enough
/// to amortize the channel, channels small enough that a stalled
/// consumer stops every reader within a few batches.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Elements per cross-thread batch.
    pub batch_elems: usize,
    /// Bounded channel capacity, in batches (the backpressure window).
    pub channel_batches: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig { batch_elems: 512, channel_batches: 4 }
    }
}

/// What one reader thread reports when it finishes (or gives up).
#[derive(Debug)]
pub struct ArchiveReport {
    /// Platform label the archive was ingested under.
    pub dataset: DataSource,
    /// Collector label the archive was ingested under.
    pub collector: u16,
    /// Elements shipped to the merge (decoded elements the consumer
    /// hung up on before receiving are not counted).
    pub elems: u64,
    /// MRT records decoded.
    pub records_read: u64,
    /// MRT records skipped (tolerant readers only).
    pub records_skipped: u64,
    /// The decode error that ended the archive, if any.
    pub error: Option<MrtError>,
}

/// The per-archive reports of a finished fleet run.
#[derive(Debug)]
pub struct FleetReport {
    /// One entry per archive, in the order they were added.
    pub archives: Vec<ArchiveReport>,
}

impl FleetReport {
    /// Total elements shipped across all archives.
    pub fn total_elems(&self) -> u64 {
        self.archives.iter().map(|a| a.elems).sum()
    }

    /// Total records skipped by tolerant readers.
    pub fn records_skipped(&self) -> u64 {
        self.archives.iter().map(|a| a.records_skipped).sum()
    }

    /// The first archive error, if any archive ended on one.
    pub fn first_error(&self) -> Option<&MrtError> {
        self.archives.iter().find_map(|a| a.error.as_ref())
    }

    /// Did every archive stream to clean EOF?
    pub fn is_clean(&self) -> bool {
        self.first_error().is_none()
    }
}

/// An [`ElemSource`] over a channel of element batches — the receiving
/// half of one fleet reader, usable standalone for any producer thread.
pub struct ChannelSource {
    receiver: Receiver<Vec<BgpElem>>,
    queue: VecDeque<BgpElem>,
    current: Option<BgpElem>,
}

impl ChannelSource {
    /// Wrap the receiving end of a batch channel.
    pub fn new(receiver: Receiver<Vec<BgpElem>>) -> Self {
        ChannelSource { receiver, queue: VecDeque::new(), current: None }
    }
}

impl ElemSource for ChannelSource {
    fn next_elem(&mut self) -> Option<&BgpElem> {
        while self.queue.is_empty() {
            match self.receiver.recv() {
                Ok(batch) => self.queue.extend(batch),
                Err(_) => return None, // sender done (or reader stopped)
            }
        }
        self.current = self.queue.pop_front();
        self.current.as_ref()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.queue.len(), None)
    }
}

/// A fleet of MRT archive readers, one thread per archive.
///
/// Add archives with [`CollectorFleet::add_archive`] (strict decoding)
/// or [`CollectorFleet::add_archive_tolerant`] (production-style noise
/// survival); each call spawns its reader immediately, so decoding
/// overlaps with fleet assembly. [`CollectorFleet::start`] hands back
/// the merged stream.
pub struct CollectorFleet {
    config: FleetConfig,
    labels: Vec<(DataSource, u16)>,
    readers: Vec<JoinHandle<ReaderTail>>,
    receivers: Vec<ChannelSource>,
}

/// What a reader thread returns to be joined into an [`ArchiveReport`].
struct ReaderTail {
    elems: u64,
    records_read: u64,
    records_skipped: u64,
    error: Option<MrtError>,
}

impl Default for CollectorFleet {
    fn default() -> Self {
        Self::new()
    }
}

impl CollectorFleet {
    /// An empty fleet with default tunables.
    pub fn new() -> Self {
        Self::with_config(FleetConfig::default())
    }

    /// An empty fleet with explicit tunables.
    pub fn with_config(config: FleetConfig) -> Self {
        CollectorFleet {
            config: FleetConfig {
                batch_elems: config.batch_elems.max(1),
                channel_batches: config.channel_batches.max(1),
            },
            labels: Vec::new(),
            readers: Vec::new(),
            receivers: Vec::new(),
        }
    }

    /// Archives added so far.
    pub fn archive_count(&self) -> usize {
        self.readers.len()
    }

    /// Add one strict-decoded archive labelled `(dataset, collector)`
    /// and spawn its reader thread.
    pub fn add_archive<R: Read + Send + 'static>(
        &mut self,
        source: R,
        dataset: DataSource,
        collector: u16,
    ) {
        self.spawn(MrtElemSource::new(source, dataset, collector), dataset, collector);
    }

    /// Add one tolerant-decoded archive (undecodable payloads are
    /// skipped and counted, mirroring [`bh_mrt::MrtReader::tolerant`]).
    pub fn add_archive_tolerant<R: Read + Send + 'static>(
        &mut self,
        source: R,
        dataset: DataSource,
        collector: u16,
    ) {
        self.spawn(MrtElemSource::tolerant(source, dataset, collector), dataset, collector);
    }

    /// Add one strict-decoded *in-memory* archive; the reader thread
    /// slices records out of the shared buffer instead of copying them
    /// (see [`MrtElemSource::from_bytes`]). `Bytes::from(Vec<u8>)` is
    /// zero-copy, so handing a freshly built archive here costs nothing.
    pub fn add_archive_bytes(
        &mut self,
        archive: impl Into<Bytes>,
        dataset: DataSource,
        collector: u16,
    ) {
        self.spawn(MrtElemSource::from_bytes(archive, dataset, collector), dataset, collector);
    }

    /// Tolerant variant of [`CollectorFleet::add_archive_bytes`].
    pub fn add_archive_bytes_tolerant(
        &mut self,
        archive: impl Into<Bytes>,
        dataset: DataSource,
        collector: u16,
    ) {
        self.spawn(
            MrtElemSource::from_bytes_tolerant(archive, dataset, collector),
            dataset,
            collector,
        );
    }

    /// Close all receive channels, then join every reader. With the
    /// receivers gone first, a reader blocked on a bounded send fails
    /// fast instead of deadlocking the join.
    fn shut_down(receivers: &mut Vec<ChannelSource>, readers: &mut Vec<JoinHandle<ReaderTail>>) {
        receivers.clear();
        for handle in readers.drain(..) {
            let _ = handle.join();
        }
    }

    fn spawn<M: MessageStream + Send + 'static>(
        &mut self,
        mut source: MrtElemSource<M>,
        dataset: DataSource,
        collector: u16,
    ) {
        let (sender, receiver): (SyncSender<Vec<BgpElem>>, _) =
            mpsc::sync_channel(self.config.channel_batches);
        let batch_elems = self.config.batch_elems;
        let handle = thread::spawn(move || {
            let mut batch: Vec<BgpElem> = Vec::with_capacity(batch_elems);
            let mut elems = 0u64;
            let mut consumer_alive = true;
            while let Some(elem) = source.next_elem() {
                batch.push(elem.clone());
                if batch.len() >= batch_elems {
                    // Bounded send: blocks when the window is full — the
                    // backpressure that keeps a fast reader from racing
                    // ahead of the merge. Only shipped batches count.
                    let shipped = batch.len() as u64;
                    if sender
                        .send(std::mem::replace(&mut batch, Vec::with_capacity(batch_elems)))
                        .is_err()
                    {
                        consumer_alive = false;
                        break; // consumer hung up: stop decoding
                    }
                    elems += shipped;
                }
            }
            if consumer_alive && !batch.is_empty() {
                let shipped = batch.len() as u64;
                if sender.send(batch).is_ok() {
                    elems += shipped;
                }
            }
            ReaderTail {
                elems,
                records_read: source.records_read(),
                records_skipped: source.records_skipped(),
                error: source.take_error(),
            }
        });
        self.labels.push((dataset, collector));
        self.readers.push(handle);
        self.receivers.push(ChannelSource::new(receiver));
    }

    /// Merge the readers into one time-ordered [`FleetSource`].
    pub fn start(mut self) -> FleetSource {
        FleetSource {
            merged: Some(MergedSource::new(std::mem::take(&mut self.receivers))),
            labels: std::mem::take(&mut self.labels),
            readers: std::mem::take(&mut self.readers),
        }
    }
}

impl Drop for CollectorFleet {
    /// A fleet abandoned before [`CollectorFleet::start`] still owns its
    /// reader threads: close the channels and join them so a dropped
    /// fleet never leaks blocked readers. ([`CollectorFleet::start`]
    /// empties both vectors first, so this is a no-op afterwards.)
    fn drop(&mut self) {
        Self::shut_down(&mut self.receivers, &mut self.readers);
    }
}

/// The merged, globally time-ordered stream of a running fleet.
///
/// An ordinary [`ElemSource`]: feed it to
/// `InferenceSession::ingest` / `ShardedSession::ingest` directly.
/// After the stream ends (or mid-stream, to abort), call
/// [`FleetSource::finish`] to join the readers and collect the
/// per-archive [`FleetReport`] — dropping the source instead also shuts
/// the readers down (the channels close, then every reader is joined),
/// but discards the reports.
pub struct FleetSource {
    merged: Option<MergedSource<ChannelSource>>,
    labels: Vec<(DataSource, u16)>,
    readers: Vec<JoinHandle<ReaderTail>>,
}

impl FleetSource {
    /// Number of archives feeding the merge.
    pub fn archive_count(&self) -> usize {
        self.labels.len()
    }

    /// Join every reader and report per-archive accounting. Safe to call
    /// mid-stream: the channels close first, so blocked readers unblock
    /// and wind down.
    pub fn finish(mut self) -> FleetReport {
        drop(self.merged.take()); // close the receivers: blocked senders fail fast
        let labels = std::mem::take(&mut self.labels);
        let readers = std::mem::take(&mut self.readers);
        let archives = labels
            .into_iter()
            .zip(readers)
            .map(|((dataset, collector), handle)| {
                let tail = handle.join().expect("fleet reader panicked");
                ArchiveReport {
                    dataset,
                    collector,
                    elems: tail.elems,
                    records_read: tail.records_read,
                    records_skipped: tail.records_skipped,
                    error: tail.error,
                }
            })
            .collect();
        FleetReport { archives }
    }
}

impl Drop for FleetSource {
    /// Abandoning the stream mid-flight (without [`FleetSource::finish`])
    /// must not leak reader threads blocked on a full channel: close the
    /// receivers, then join every reader. `finish` empties `readers`
    /// first, so this is a no-op afterwards.
    fn drop(&mut self) {
        drop(self.merged.take());
        for handle in self.readers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl ElemSource for FleetSource {
    fn next_elem(&mut self) -> Option<&BgpElem> {
        self.merged.as_mut()?.next_elem()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.merged.as_ref().map_or((0, Some(0)), |m| m.size_hint())
    }
}

#[cfg(test)]
mod tests {
    use std::io::Cursor;

    use bh_bgp_types::community::{Community, CommunitySet};
    use bh_bgp_types::time::SimTime;

    use super::*;
    use crate::archive::{merge_streams, write_updates};
    use crate::elem::ElemType;
    use crate::source::collect_source;

    fn elem(t: u64, dataset: DataSource, collector: u16, peer: u32) -> BgpElem {
        BgpElem {
            time: SimTime::from_unix(t),
            dataset,
            collector,
            peer_asn: bh_bgp_types::asn::Asn::new(peer),
            peer_ip: "198.51.100.9".parse().unwrap(),
            elem_type: ElemType::Announce,
            prefix: "130.149.0.0/17".parse().unwrap(),
            as_path: "100 200 300".parse().unwrap(),
            communities: CommunitySet::from_classic(vec![Community::from_parts(100, 666)]),
            next_hop: Some("198.51.100.9".parse().unwrap()),
        }
    }

    fn archive_of(elems: &[BgpElem]) -> Vec<u8> {
        let mut buf = Vec::new();
        write_updates(&mut buf, elems).expect("write succeeds");
        buf
    }

    #[test]
    fn fleet_yields_the_merge_streams_order() {
        let a: Vec<BgpElem> = (0..40).map(|k| elem(10 + k * 3, DataSource::Ris, 0, 11)).collect();
        let b: Vec<BgpElem> =
            (0..40).map(|k| elem(11 + k * 2, DataSource::RouteViews, 1, 22)).collect();
        let c: Vec<BgpElem> = (0..10).map(|k| elem(10 + k * 9, DataSource::Pch, 2, 33)).collect();

        let mut fleet = CollectorFleet::with_config(FleetConfig {
            batch_elems: 7, // force multiple batches per archive
            channel_batches: 2,
        });
        fleet.add_archive(Cursor::new(archive_of(&a)), DataSource::Ris, 0);
        fleet.add_archive(Cursor::new(archive_of(&b)), DataSource::RouteViews, 1);
        fleet.add_archive(Cursor::new(archive_of(&c)), DataSource::Pch, 2);
        assert_eq!(fleet.archive_count(), 3);

        let mut stream = fleet.start();
        assert_eq!(stream.archive_count(), 3);
        let streamed = collect_source(&mut stream);
        let report = stream.finish();
        assert!(report.is_clean());
        assert_eq!(report.total_elems(), 90);
        assert_eq!(report.archives.len(), 3);
        assert_eq!(report.archives[0].dataset, DataSource::Ris);
        assert!(report.archives.iter().all(|a| a.records_read > 0));

        let expected = merge_streams(vec![a, b, c]);
        assert_eq!(streamed, expected, "fleet order must equal the materialized merge");
    }

    #[test]
    fn bytes_archives_match_the_read_path() {
        let a: Vec<BgpElem> = (0..40).map(|k| elem(10 + k * 3, DataSource::Ris, 0, 11)).collect();
        let b: Vec<BgpElem> =
            (0..40).map(|k| elem(11 + k * 2, DataSource::RouteViews, 1, 22)).collect();

        let mut fleet =
            CollectorFleet::with_config(FleetConfig { batch_elems: 7, channel_batches: 2 });
        fleet.add_archive_bytes(archive_of(&a), DataSource::Ris, 0);
        fleet.add_archive_bytes_tolerant(archive_of(&b), DataSource::RouteViews, 1);
        let mut stream = fleet.start();
        let streamed = collect_source(&mut stream);
        let report = stream.finish();
        assert!(report.is_clean());
        assert_eq!(report.total_elems(), 80);
        assert_eq!(streamed, merge_streams(vec![a, b]));
    }

    #[test]
    fn empty_archives_stream_nothing_but_report() {
        let mut fleet = CollectorFleet::new();
        fleet.add_archive(Cursor::new(Vec::new()), DataSource::Cdn, 7);
        let mut stream = fleet.start();
        assert!(stream.next_elem().is_none());
        let report = stream.finish();
        assert!(report.is_clean());
        assert_eq!(report.total_elems(), 0);
        assert_eq!(report.archives[0].collector, 7);
    }

    #[test]
    fn torn_archive_is_reported_not_hidden() {
        let elems: Vec<BgpElem> = (0..5).map(|k| elem(k, DataSource::Ris, 0, 9)).collect();
        let mut torn = archive_of(&elems);
        torn.truncate(torn.len() - 4);

        let mut fleet = CollectorFleet::new();
        fleet.add_archive(Cursor::new(torn), DataSource::Ris, 0);
        let mut stream = fleet.start();
        let streamed = collect_source(&mut stream);
        assert_eq!(streamed.len(), 4, "intact records still stream");
        let report = stream.finish();
        assert!(!report.is_clean());
        assert!(report.first_error().is_some());
    }

    #[test]
    fn finish_mid_stream_unblocks_backpressured_readers() {
        // A big archive with a tiny channel window: the reader will be
        // blocked on send when we abandon the stream.
        let elems: Vec<BgpElem> = (0..2_000).map(|k| elem(k, DataSource::Ris, 0, 9)).collect();
        let mut fleet =
            CollectorFleet::with_config(FleetConfig { batch_elems: 16, channel_batches: 1 });
        fleet.add_archive(Cursor::new(archive_of(&elems)), DataSource::Ris, 0);
        let mut stream = fleet.start();
        for _ in 0..10 {
            assert!(stream.next_elem().is_some());
        }
        let report = stream.finish(); // must not deadlock
        assert!(report.archives[0].elems < 2_000, "reader stopped early");
    }

    #[test]
    fn dropping_source_with_never_draining_consumer_joins_readers() {
        // The consumer never drains a single element, so every reader
        // fills its tiny channel window and blocks on send. Dropping the
        // source must close the channels and *join* the readers — the
        // test hangs (and the suite's timeout fails it) if the shutdown
        // path regresses to leaking blocked threads.
        let elems: Vec<BgpElem> = (0..2_000).map(|k| elem(k, DataSource::Ris, 0, 9)).collect();
        let archive = archive_of(&elems);
        let mut fleet =
            CollectorFleet::with_config(FleetConfig { batch_elems: 16, channel_batches: 1 });
        for collector in 0..4u16 {
            fleet.add_archive(Cursor::new(archive.clone()), DataSource::Ris, collector);
        }
        let stream = fleet.start();
        drop(stream); // never called next_elem(): all readers are mid-send
    }

    #[test]
    fn dropping_unstarted_fleet_joins_readers() {
        // Readers spawn at add_archive time, so a fleet abandoned before
        // start() already owns blocked threads.
        let elems: Vec<BgpElem> = (0..2_000).map(|k| elem(k, DataSource::Ris, 0, 9)).collect();
        let mut fleet =
            CollectorFleet::with_config(FleetConfig { batch_elems: 16, channel_batches: 1 });
        fleet.add_archive(Cursor::new(archive_of(&elems)), DataSource::Ris, 0);
        drop(fleet);
    }

    #[test]
    fn tolerant_fleet_counts_skipped_records() {
        // A corrupt-payload record, then valid ones: tolerant readers
        // skip and count, strict readers stop with an error.
        let elems: Vec<BgpElem> = (0..3).map(|k| elem(k, DataSource::Ris, 0, 9)).collect();
        let mut noisy = Vec::new();
        noisy.extend_from_slice(&1u32.to_be_bytes());
        noisy.extend_from_slice(&16u16.to_be_bytes()); // BGP4MP
        noisy.extend_from_slice(&4u16.to_be_bytes()); // MESSAGE_AS4
        noisy.extend_from_slice(&4u32.to_be_bytes());
        noisy.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef]);
        noisy.extend_from_slice(&archive_of(&elems));

        let mut fleet = CollectorFleet::new();
        fleet.add_archive_tolerant(Cursor::new(noisy.clone()), DataSource::Ris, 0);
        let mut stream = fleet.start();
        assert_eq!(collect_source(&mut stream).len(), 3);
        let report = stream.finish();
        assert!(report.is_clean());
        assert_eq!(report.records_skipped(), 1);

        let mut strict = CollectorFleet::new();
        strict.add_archive(Cursor::new(noisy), DataSource::Ris, 0);
        let mut stream = strict.start();
        assert!(collect_source(&mut stream).is_empty());
        assert!(!stream.finish().is_clean());
    }
}
