//! BGPStream-style elements: the unit of observation at collectors.

use std::fmt;
use std::net::IpAddr;

use bh_bgp_types::as_path::AsPath;
use bh_bgp_types::asn::Asn;
use bh_bgp_types::community::CommunitySet;
use bh_bgp_types::prefix::Ipv4Prefix;
use bh_bgp_types::time::SimTime;

/// The four BGP data platforms of the study (Table 1/Table 3 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DataSource {
    /// RIPE Routing Information Service.
    Ris,
    /// University of Oregon Route Views.
    RouteViews,
    /// Packet Clearing House (route collectors at IXPs).
    Pch,
    /// The large CDN's private feeds (customer-specific and internal
    /// announcements included).
    Cdn,
}

impl DataSource {
    /// All sources in the paper's table order.
    pub const ALL: [DataSource; 4] =
        [DataSource::Cdn, DataSource::Ris, DataSource::RouteViews, DataSource::Pch];

    /// Table row label.
    pub fn label(self) -> &'static str {
        match self {
            DataSource::Ris => "RIS",
            DataSource::RouteViews => "RV",
            DataSource::Pch => "PCH",
            DataSource::Cdn => "CDN",
        }
    }
}

impl fmt::Display for DataSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Announcement or withdrawal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElemType {
    /// A (re-)announcement with attributes.
    Announce,
    /// An explicit withdrawal.
    Withdraw,
}

/// One observation at a collector — the BGPStream "elem" shape the
/// inference engine consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BgpElem {
    /// Observation time.
    pub time: SimTime,
    /// Which platform observed it.
    pub dataset: DataSource,
    /// Collector id within the platform.
    pub collector: u16,
    /// The BGP peer that sent the message to the collector.
    pub peer_asn: Asn,
    /// The peer's IP — for sessions on IXP LANs this is the attribute the
    /// inference checks against PeeringDB peering LANs.
    pub peer_ip: IpAddr,
    /// Announce or withdraw.
    pub elem_type: ElemType,
    /// The prefix.
    pub prefix: Ipv4Prefix,
    /// AS path (empty for withdrawals).
    pub as_path: AsPath,
    /// Communities (empty for withdrawals).
    pub communities: CommunitySet,
    /// NEXT_HOP when announced.
    pub next_hop: Option<IpAddr>,
}

impl BgpElem {
    /// A unique-ish key for per-peer state tracking: (dataset, collector,
    /// peer).
    pub fn peer_key(&self) -> PeerKey {
        PeerKey { dataset: self.dataset, collector: self.collector, peer_asn: self.peer_asn }
    }

    /// Is this an announcement?
    pub fn is_announce(&self) -> bool {
        self.elem_type == ElemType::Announce
    }
}

/// Identity of one collector peer session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PeerKey {
    /// Platform.
    pub dataset: DataSource,
    /// Collector id.
    pub collector: u16,
    /// Peer ASN.
    pub peer_asn: Asn,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(DataSource::Ris.label(), "RIS");
        assert_eq!(DataSource::RouteViews.label(), "RV");
        assert_eq!(DataSource::Pch.label(), "PCH");
        assert_eq!(DataSource::Cdn.label(), "CDN");
        assert_eq!(DataSource::ALL.len(), 4);
    }

    #[test]
    fn peer_key_distinguishes_sessions() {
        let mk = |dataset, collector, asn: u32| BgpElem {
            time: SimTime::ZERO,
            dataset,
            collector,
            peer_asn: Asn::new(asn),
            peer_ip: "10.0.0.1".parse().unwrap(),
            elem_type: ElemType::Announce,
            prefix: "10.0.0.0/8".parse().unwrap(),
            as_path: AsPath::empty(),
            communities: CommunitySet::new(),
            next_hop: None,
        };
        assert_eq!(mk(DataSource::Ris, 0, 1).peer_key(), mk(DataSource::Ris, 0, 1).peer_key());
        assert_ne!(mk(DataSource::Ris, 0, 1).peer_key(), mk(DataSource::Ris, 1, 1).peer_key());
        assert_ne!(mk(DataSource::Ris, 0, 1).peer_key(), mk(DataSource::Pch, 0, 1).peer_key());
        assert!(mk(DataSource::Ris, 0, 1).is_announce());
    }
}
