//! Routing policy: Gao-Rexford import/export plus the blackhole-specific
//! acceptance rules of §2.

use bh_bgp_types::asn::Asn;
use bh_bgp_types::community::CommunitySet;
use bh_bgp_types::prefix::Ipv4Prefix;
use bh_topology::{BlackholeAuth, Relationship, Topology};

/// LOCAL_PREF assigned by relationship (standard Gao-Rexford economics).
pub fn local_pref_for(rel: Relationship) -> u32 {
    match rel {
        Relationship::Customer => 200,
        Relationship::Peer | Relationship::RouteServer => 100,
        Relationship::Provider => 50,
    }
}

/// Export rule: may a route learned via `learned_rel` be exported to a
/// neighbor we relate to as `to_rel`?
///
/// Customer routes (and own origins) go everywhere; peer/provider routes
/// only to customers. Exporting *to* a route server behaves like exporting
/// to a peer.
pub fn may_export(learned_rel: Option<Relationship>, to_rel: Relationship) -> bool {
    match learned_rel {
        None => true, // own origin
        Some(Relationship::Customer) => true,
        Some(_) => to_rel == Relationship::Customer,
    }
}

/// Why an import was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RejectReason {
    /// Receiving AS is already on the path.
    LoopDetected,
    /// More specific than /24 without an applicable blackhole trigger and
    /// the AS does not accept host routes on this session type.
    TooSpecific,
    /// Carried the provider's blackhole community but failed
    /// authentication.
    AuthFailed,
    /// Carried the provider's blackhole community but the prefix length is
    /// outside the accepted window.
    LengthRejected,
    /// RPKI-Invalid at an ROV-deploying AS (policy extension).
    RovInvalid,
    /// A Tier-1 ASN appeared on a path learned from a customer or peer
    /// — peerlock-lite leak containment (policy extension).
    PeerlockViolation,
    /// The hop adjacent to the origin is not a real neighbor of the
    /// origin — path-end validation (policy extension).
    PathEndInvalid,
    /// Arrived from a customer or peer while carrying the
    /// only-to-customers mark (policy extension).
    RouteLeak,
}

impl RejectReason {
    /// Stable human-readable label, used by run-stats reporting.
    pub fn label(self) -> &'static str {
        match self {
            RejectReason::LoopDetected => "loop-detected",
            RejectReason::TooSpecific => "too-specific",
            RejectReason::AuthFailed => "auth-failed",
            RejectReason::LengthRejected => "length-rejected",
            RejectReason::RovInvalid => "rov-invalid",
            RejectReason::PeerlockViolation => "peerlock-violation",
            RejectReason::PathEndInvalid => "path-end-invalid",
            RejectReason::RouteLeak => "route-leak",
        }
    }
}

/// The import decision for one received route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImportDecision {
    /// Accept as a regular route.
    Regular,
    /// Accept as a blackhole: install a discard (null next-hop), tag RIB
    /// entry as blackhole.
    Blackhole,
    /// Reject.
    Reject(RejectReason),
}

/// Full import result: the decision plus, when a blackhole trigger was
/// present but did not fire, the reason it did not (a route carrying an
/// inert trigger is still a legitimate route and falls back to the
/// normal filters — only route servers reject strictly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImportOutcome {
    /// What to do with the route.
    pub decision: ImportDecision,
    /// Why a matching trigger did not result in a blackhole.
    pub trigger_rejection: Option<RejectReason>,
}

/// Per-AS session behavior toggles (routing-plane, not ground-truth
/// topology — they model router configuration, not business policy).
#[derive(Debug, Clone, Copy)]
pub struct SessionBehavior {
    /// Accept >/24 prefixes from customers (most networks do — otherwise
    /// community bundling would never be visible).
    pub host_routes_from_customers: bool,
    /// Accept >/24 prefixes from peers / route servers (§10 found "some
    /// ASes do not accept /32 announcements because they have not changed
    /// their router configurations").
    pub host_routes_from_peers: bool,
}

impl Default for SessionBehavior {
    fn default() -> Self {
        SessionBehavior { host_routes_from_customers: true, host_routes_from_peers: false }
    }
}

/// Authentication input for a blackhole request.
#[derive(Debug, Clone, Copy)]
pub struct AuthContext<'a> {
    /// The topology (cones, allocations).
    pub topology: &'a Topology,
    /// Origin of the announcement (last AS on the path / the announcer).
    pub origin: Asn,
    /// The immediate neighbor that sent us the route.
    pub sender: Asn,
    /// Owner of the covering allocation of the prefix, if known.
    pub allocation_owner: Option<Asn>,
    /// Whether the prefix is registered in the IRR with the correct
    /// origin (workload-controlled; misconfigured users lack this).
    pub irr_registered: bool,
}

/// Does a blackhole request pass the provider's authentication?
pub fn auth_ok(auth: BlackholeAuth, ctx: &AuthContext<'_>) -> bool {
    match auth {
        BlackholeAuth::OriginOrCone => match ctx.allocation_owner {
            // Requester originates the prefix, or has it in its cone.
            Some(owner) => {
                owner == ctx.origin
                    || owner == ctx.sender
                    || ctx.topology.in_customer_cone(ctx.sender, owner)
            }
            None => false,
        },
        BlackholeAuth::Rpki => ctx.allocation_owner == Some(ctx.origin),
        BlackholeAuth::IrrRegistered => ctx.irr_registered,
    }
}

/// Full import decision at AS `receiver` for a route to `prefix` with
/// `communities`, received over a session of type `rel` (receiver's view)
/// from `sender`.
#[allow(clippy::too_many_arguments)]
pub fn import_decision(
    receiver: Asn,
    rel: Relationship,
    prefix: &Ipv4Prefix,
    communities: &CommunitySet,
    behavior: SessionBehavior,
    topology: &Topology,
    auth_ctx: &AuthContext<'_>,
) -> ImportOutcome {
    let offering = topology.as_info(receiver).and_then(|i| i.blackhole_offering.as_ref());

    // Does the announcement carry one of *our* triggers?
    let triggered = offering.is_some_and(|o| {
        communities.iter().any(|c| o.is_trigger(c))
            || o.large_community.is_some_and(|l| communities.contains_large(l))
    });

    let mut trigger_rejection = None;
    if triggered {
        let offering = offering.expect("triggered implies offering");
        if !offering.accepts_length(prefix.length()) {
            trigger_rejection = Some(RejectReason::LengthRejected);
        } else if !auth_ok(offering.auth, auth_ctx) {
            trigger_rejection = Some(RejectReason::AuthFailed);
        } else {
            return ImportOutcome { decision: ImportDecision::Blackhole, trigger_rejection: None };
        }
        // The trigger did not fire; the route still goes through the
        // ordinary filters below (e.g. the accidental /16 "blackhole the
        // whole table" event propagates as a plain tagged route).
    }

    // Ordinary specificity filtering.
    if prefix.is_more_specific_than(24) {
        let accepted = match rel {
            Relationship::Customer => behavior.host_routes_from_customers,
            Relationship::Peer | Relationship::RouteServer => behavior.host_routes_from_peers,
            Relationship::Provider => behavior.host_routes_from_peers,
        };
        if !accepted {
            return ImportOutcome {
                decision: ImportDecision::Reject(RejectReason::TooSpecific),
                trigger_rejection,
            };
        }
    }
    ImportOutcome { decision: ImportDecision::Regular, trigger_rejection }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    use bh_bgp_types::community::Community;
    use bh_topology::{AsInfo, BlackholeOffering, DocumentationChannel, NetworkType, Tier};

    use super::*;

    fn topo_with_provider(auth: BlackholeAuth) -> (Topology, Asn, Asn, Asn) {
        // provider(1) ← user(2) ← victim allocation owner is user itself;
        // unrelated(3).
        let provider = Asn::new(1);
        let user = Asn::new(2);
        let other = Asn::new(3);
        let mut ases = BTreeMap::new();
        let mk = |asn: Asn, prefixes: Vec<&str>, offering: Option<BlackholeOffering>| AsInfo {
            asn,
            tier: Tier::Stub,
            network_type: NetworkType::TransitAccess,
            country: "DE",
            prefixes: prefixes.iter().map(|p| p.parse().unwrap()).collect(),
            blackhole_offering: offering,
            tag_communities: vec![],
            tag_classes: vec![],
            tag_large_communities: vec![],
            in_peeringdb: true,
        };
        let offering = BlackholeOffering {
            communities: vec![Community::from_parts(1, 666)],
            large_community: None,
            min_accepted_length: 25,
            documentation: DocumentationChannel::Irr,
            auth,
            blackhole_ip: None,
            strips_community: false,
            honors_no_export: true,
        };
        ases.insert(provider, mk(provider, vec!["20.0.0.0/8"], Some(offering)));
        ases.insert(user, mk(user, vec!["30.0.0.0/16"], None));
        ases.insert(other, mk(other, vec!["40.0.0.0/16"], None));
        let edges = vec![
            (provider, user, Relationship::Customer),
            (provider, other, Relationship::Customer),
        ];
        (Topology::assemble(ases, edges, vec![]), provider, user, other)
    }

    fn ctx<'a>(
        topology: &'a Topology,
        origin: Asn,
        sender: Asn,
        owner: Option<Asn>,
        irr: bool,
    ) -> AuthContext<'a> {
        AuthContext { topology, origin, sender, allocation_owner: owner, irr_registered: irr }
    }

    #[test]
    fn local_pref_ordering() {
        assert!(local_pref_for(Relationship::Customer) > local_pref_for(Relationship::Peer));
        assert!(local_pref_for(Relationship::Peer) > local_pref_for(Relationship::Provider));
        assert_eq!(local_pref_for(Relationship::Peer), local_pref_for(Relationship::RouteServer));
    }

    #[test]
    fn export_rules_are_valley_free() {
        use Relationship::*;
        // Own origin exports everywhere.
        assert!(may_export(None, Customer));
        assert!(may_export(None, Peer));
        assert!(may_export(None, Provider));
        // Customer routes export everywhere.
        assert!(may_export(Some(Customer), Customer));
        assert!(may_export(Some(Customer), Peer));
        assert!(may_export(Some(Customer), Provider));
        assert!(may_export(Some(Customer), RouteServer));
        // Peer/provider/RS routes only to customers.
        for learned in [Peer, Provider, RouteServer] {
            assert!(may_export(Some(learned), Customer));
            assert!(!may_export(Some(learned), Peer));
            assert!(!may_export(Some(learned), Provider));
            assert!(!may_export(Some(learned), RouteServer));
        }
    }

    #[test]
    fn blackhole_trigger_accepts_host_route() {
        let (t, provider, user, _) = topo_with_provider(BlackholeAuth::OriginOrCone);
        let prefix: Ipv4Prefix = "30.0.1.1/32".parse().unwrap();
        let communities = CommunitySet::from_classic(vec![Community::from_parts(1, 666)]);
        let auth = ctx(&t, user, user, Some(user), true);
        let d = import_decision(
            provider,
            Relationship::Customer,
            &prefix,
            &communities,
            SessionBehavior::default(),
            &t,
            &auth,
        );
        assert_eq!(d.decision, ImportDecision::Blackhole);
        assert_eq!(d.trigger_rejection, None);
    }

    #[test]
    fn blackhole_rejected_when_too_coarse() {
        let (t, provider, user, _) = topo_with_provider(BlackholeAuth::OriginOrCone);
        let prefix: Ipv4Prefix = "30.0.0.0/20".parse().unwrap(); // < min /25
        let communities = CommunitySet::from_classic(vec![Community::from_parts(1, 666)]);
        let auth = ctx(&t, user, user, Some(user), true);
        let d = import_decision(
            provider,
            Relationship::Customer,
            &prefix,
            &communities,
            SessionBehavior::default(),
            &t,
            &auth,
        );
        // The trigger does not fire (too coarse), but the /20 is still a
        // legitimate route and imports normally.
        assert_eq!(d.decision, ImportDecision::Regular);
        assert_eq!(d.trigger_rejection, Some(RejectReason::LengthRejected));
    }

    #[test]
    fn blackhole_rejected_for_foreign_prefix() {
        // User 2 requests blackholing of user 3's space: auth failure.
        let (t, provider, user, other) = topo_with_provider(BlackholeAuth::OriginOrCone);
        let prefix: Ipv4Prefix = "40.0.1.1/32".parse().unwrap();
        let communities = CommunitySet::from_classic(vec![Community::from_parts(1, 666)]);
        let auth = ctx(&t, user, user, Some(other), true);
        let d = import_decision(
            provider,
            Relationship::Customer,
            &prefix,
            &communities,
            SessionBehavior::default(),
            &t,
            &auth,
        );
        // Auth failed: no blackhole, but the host route still imports per
        // the session's host-route policy (default: from customers, yes).
        assert_eq!(d.decision, ImportDecision::Regular);
        assert_eq!(d.trigger_rejection, Some(RejectReason::AuthFailed));
    }

    #[test]
    fn rpki_auth_requires_origin_match() {
        let (t, provider, user, other) = topo_with_provider(BlackholeAuth::Rpki);
        let prefix: Ipv4Prefix = "30.0.1.1/32".parse().unwrap();
        let communities = CommunitySet::from_classic(vec![Community::from_parts(1, 666)]);
        let good = ctx(&t, user, user, Some(user), false);
        let bad = ctx(&t, other, other, Some(user), false);
        assert_eq!(
            import_decision(
                provider,
                Relationship::Customer,
                &prefix,
                &communities,
                SessionBehavior::default(),
                &t,
                &good
            )
            .decision,
            ImportDecision::Blackhole
        );
        let bad_outcome = import_decision(
            provider,
            Relationship::Customer,
            &prefix,
            &communities,
            SessionBehavior::default(),
            &t,
            &bad,
        );
        assert_ne!(bad_outcome.decision, ImportDecision::Blackhole);
        assert_eq!(bad_outcome.trigger_rejection, Some(RejectReason::AuthFailed));
    }

    #[test]
    fn irr_auth_requires_registration() {
        let (t, provider, user, _) = topo_with_provider(BlackholeAuth::IrrRegistered);
        let prefix: Ipv4Prefix = "30.0.1.1/32".parse().unwrap();
        let communities = CommunitySet::from_classic(vec![Community::from_parts(1, 666)]);
        let registered = ctx(&t, user, user, Some(user), true);
        let unregistered = ctx(&t, user, user, Some(user), false);
        assert_eq!(
            import_decision(
                provider,
                Relationship::Customer,
                &prefix,
                &communities,
                SessionBehavior::default(),
                &t,
                &registered
            )
            .decision,
            ImportDecision::Blackhole
        );
        let rejected = import_decision(
            provider,
            Relationship::Customer,
            &prefix,
            &communities,
            SessionBehavior::default(),
            &t,
            &unregistered,
        );
        assert_ne!(rejected.decision, ImportDecision::Blackhole);
        assert_eq!(rejected.trigger_rejection, Some(RejectReason::AuthFailed));
    }

    #[test]
    fn cone_auth_accepts_provider_of_victim() {
        // Sender is a provider whose cone contains the allocation owner.
        let (t, provider, user, _) = topo_with_provider(BlackholeAuth::OriginOrCone);
        // user(2) has no customers, so fabricate: provider 1 sends on
        // behalf of its customer 2 — sender=1, owner=2, in cone.
        let prefix: Ipv4Prefix = "30.0.1.1/32".parse().unwrap();
        let communities = CommunitySet::from_classic(vec![Community::from_parts(1, 666)]);
        let auth = ctx(&t, provider, provider, Some(user), false);
        let d = import_decision(
            provider,
            Relationship::Customer,
            &prefix,
            &communities,
            SessionBehavior::default(),
            &t,
            &auth,
        );
        assert_eq!(d.decision, ImportDecision::Blackhole);
    }

    #[test]
    fn untagged_host_routes_follow_session_behavior() {
        let (t, provider, user, _) = topo_with_provider(BlackholeAuth::OriginOrCone);
        let prefix: Ipv4Prefix = "30.0.1.1/32".parse().unwrap();
        let communities = CommunitySet::new();
        let auth = ctx(&t, user, user, Some(user), true);
        // From customer with default behavior: accepted as regular
        // (this is what makes bundling visible).
        assert_eq!(
            import_decision(
                provider,
                Relationship::Customer,
                &prefix,
                &communities,
                SessionBehavior::default(),
                &t,
                &auth
            )
            .decision,
            ImportDecision::Regular
        );
        // From peer with default behavior: too specific.
        assert_eq!(
            import_decision(
                provider,
                Relationship::Peer,
                &prefix,
                &communities,
                SessionBehavior::default(),
                &t,
                &auth
            )
            .decision,
            ImportDecision::Reject(RejectReason::TooSpecific)
        );
        // Peer that accepts host routes.
        let lenient = SessionBehavior { host_routes_from_peers: true, ..Default::default() };
        assert_eq!(
            import_decision(
                provider,
                Relationship::Peer,
                &prefix,
                &communities,
                lenient,
                &t,
                &auth
            )
            .decision,
            ImportDecision::Regular
        );
    }

    #[test]
    fn normal_prefixes_import_regularly() {
        let (t, provider, user, _) = topo_with_provider(BlackholeAuth::OriginOrCone);
        let prefix: Ipv4Prefix = "30.0.0.0/16".parse().unwrap();
        let auth = ctx(&t, user, user, Some(user), true);
        for rel in [Relationship::Customer, Relationship::Peer, Relationship::Provider] {
            let outcome = import_decision(
                provider,
                rel,
                &prefix,
                &CommunitySet::new(),
                SessionBehavior::default(),
                &t,
                &auth,
            );
            assert_eq!(outcome.decision, ImportDecision::Regular);
            assert_eq!(outcome.trigger_rejection, None);
        }
    }
}
