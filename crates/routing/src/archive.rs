//! MRT export: serialize the collector element stream into archive bytes.
//!
//! The inference pipeline can consume [`BgpElem`]s directly (the live
//! BGPStream path) or parse MRT archives produced here (the historical
//! path) — both exercised by the integration tests, proving the wire
//! format carries everything the inference needs.

use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Write};
use std::net::IpAddr;

use bh_bgp_types::attrs::PathAttributes;
use bh_bgp_types::time::SimTime;
use bh_bgp_types::update::BgpUpdate;
use bh_mrt::{
    Bgp4mpMessage, MessageStream, MrtBytesReader, MrtError, MrtReader, MrtWriter, SharedAttrCache,
};
use bytes::Bytes;

use crate::elem::{BgpElem, DataSource, ElemType};
use crate::source::ElemSource;

/// Write a stream of elems as `BGP4MP/MESSAGE_AS4` records, one archive
/// per call (callers typically split by platform).
pub fn write_updates<W: Write>(sink: W, elems: &[BgpElem]) -> Result<u64, MrtError> {
    let mut writer = MrtWriter::new(sink);
    for elem in elems {
        let mut update = match elem.elem_type {
            ElemType::Announce => {
                let attrs = PathAttributes {
                    as_path: elem.as_path.clone(),
                    next_hop: Some(elem.next_hop.unwrap_or(elem.peer_ip)),
                    communities: elem.communities.clone(),
                    ..Default::default()
                };
                let mut u = BgpUpdate::new(attrs);
                u.announce_v4(elem.prefix);
                u
            }
            ElemType::Withdraw => BgpUpdate::withdraw(elem.prefix.into()),
        };
        // Local side of the session: a synthetic collector address.
        let local_ip: IpAddr = "192.0.2.254".parse().expect("static address");
        let update_taken = std::mem::replace(&mut update, BgpUpdate::withdraw(elem.prefix.into()));
        writer.write_update(
            elem.time,
            elem.peer_asn,
            elem.peer_ip,
            bh_bgp_types::asn::Asn::new(64_512),
            local_ip,
            &update_taken,
        )?;
    }
    Ok(writer.records_written())
}

/// Flatten one BGP4MP message into elems, labelled with the archive's
/// platform/collector identity.
pub(crate) fn elems_of_message(
    time: SimTime,
    msg: &Bgp4mpMessage,
    dataset: DataSource,
    collector: u16,
    out: &mut VecDeque<BgpElem>,
) {
    let Some(update) = &msg.update else { return };
    for prefix in update.announced_v4() {
        out.push_back(BgpElem {
            time,
            dataset,
            collector,
            peer_asn: msg.peer_asn,
            peer_ip: msg.peer_ip,
            elem_type: ElemType::Announce,
            prefix: *prefix,
            as_path: update.attrs.as_path.clone(),
            communities: update.attrs.communities.clone(),
            next_hop: update.attrs.next_hop,
        });
    }
    for prefix in update.withdrawn_v4() {
        out.push_back(BgpElem {
            time,
            dataset,
            collector,
            peer_asn: msg.peer_asn,
            peer_ip: msg.peer_ip,
            elem_type: ElemType::Withdraw,
            prefix: *prefix,
            as_path: Default::default(),
            communities: Default::default(),
            next_hop: None,
        });
    }
}

/// A streaming [`ElemSource`] over an MRT updates archive: records are
/// decoded one at a time from any [`MessageStream`] — an [`MrtReader`]
/// over any [`Read`] (a file, a socket, a decompressor), so archives of
/// any size are consumed with constant memory, or an [`MrtBytesReader`]
/// slicing an in-memory archive buffer with zero per-record copies — the
/// historical-path equivalent of a live BGPStream feed.
///
/// The MRT wire format does not carry the platform/collector labels, so
/// the caller supplies them (matching how real pipelines know which
/// archive belongs to which collector).
///
/// Decode errors end the stream; inspect [`MrtElemSource::error`] (or
/// recover it with [`MrtElemSource::take_error`]) after exhaustion to
/// distinguish clean EOF from a torn archive.
pub struct MrtElemSource<M> {
    reader: M,
    dataset: DataSource,
    collector: u16,
    queue: VecDeque<BgpElem>,
    current: Option<BgpElem>,
    error: Option<MrtError>,
}

impl<R: Read> MrtElemSource<MrtReader<R>> {
    /// Strict streaming reader (the first malformed record ends the
    /// stream with an error).
    pub fn new(source: R, dataset: DataSource, collector: u16) -> Self {
        Self::from_reader(MrtReader::new(source), dataset, collector)
    }

    /// Tolerant streaming reader (skips undecodable payloads, like
    /// production pipelines surviving archive noise).
    pub fn tolerant(source: R, dataset: DataSource, collector: u16) -> Self {
        Self::from_reader(MrtReader::tolerant(source), dataset, collector)
    }
}

impl MrtElemSource<MrtBytesReader> {
    /// Strict zero-copy source over an in-memory archive: record bodies
    /// and attribute blocks are refcounted slices of `archive`, never
    /// copies (`Bytes::from(Vec<u8>)` is itself zero-copy).
    pub fn from_bytes(archive: impl Into<Bytes>, dataset: DataSource, collector: u16) -> Self {
        Self::from_reader(MrtBytesReader::new(archive), dataset, collector)
    }

    /// Strict zero-copy source whose attribute-block memo is shared with
    /// sibling sources (see [`MrtBytesReader::with_shared_cache`]): a
    /// fleet of collector archives decodes each distinct block once, and
    /// every collector's copy aliases the same Arc-backed attributes.
    pub fn from_bytes_shared(
        archive: impl Into<Bytes>,
        dataset: DataSource,
        collector: u16,
        cache: SharedAttrCache,
    ) -> Self {
        Self::from_reader(MrtBytesReader::with_shared_cache(archive, cache), dataset, collector)
    }

    /// Tolerant zero-copy source (skips undecodable payloads).
    pub fn from_bytes_tolerant(
        archive: impl Into<Bytes>,
        dataset: DataSource,
        collector: u16,
    ) -> Self {
        Self::from_reader(MrtBytesReader::tolerant(archive), dataset, collector)
    }
}

impl<M: MessageStream> MrtElemSource<M> {
    /// Wrap an already-configured message stream.
    pub fn from_reader(reader: M, dataset: DataSource, collector: u16) -> Self {
        MrtElemSource {
            reader,
            dataset,
            collector,
            queue: VecDeque::new(),
            current: None,
            error: None,
        }
    }

    /// The decode error that ended the stream, if any.
    pub fn error(&self) -> Option<&MrtError> {
        self.error.as_ref()
    }

    /// Recover the decode error that ended the stream, if any.
    pub fn take_error(&mut self) -> Option<MrtError> {
        self.error.take()
    }

    /// MRT records decoded so far (fleet accounting).
    pub fn records_read(&self) -> u64 {
        self.reader.records_read()
    }

    /// MRT records skipped so far (tolerant readers only).
    pub fn records_skipped(&self) -> u64 {
        self.reader.records_skipped()
    }

    /// Mutable access to the underlying message stream — the hook that
    /// lets a live consumer feed a growable reader (e.g.
    /// [`bh_mrt::TailingReader::extend`]) between polls: `next_elem`
    /// returning `None` without an [`error`](Self::error) means "nothing
    /// decodable *yet*", and the source re-polls the reader on the next
    /// call rather than latching EOF.
    pub fn reader_mut(&mut self) -> &mut M {
        &mut self.reader
    }
}

impl<M: MessageStream> ElemSource for MrtElemSource<M> {
    fn next_elem(&mut self) -> Option<&BgpElem> {
        while self.queue.is_empty() {
            if self.error.is_some() {
                return None;
            }
            match self.reader.next_message() {
                Ok(Some((time, msg))) => {
                    elems_of_message(time, &msg, self.dataset, self.collector, &mut self.queue);
                }
                Ok(None) => return None,
                Err(e) => {
                    self.error = Some(e);
                    return None;
                }
            }
        }
        self.current = self.queue.pop_front();
        self.current.as_ref()
    }
}

/// Read an archive produced by [`write_updates`] back into elems — the
/// materializing convenience over [`MrtElemSource`].
///
/// Since the result holds the whole stream anyway, the source is slurped
/// into one buffer and decoded through the zero-copy
/// [`MrtBytesReader`] path: one allocation for the archive instead of
/// one per record body, with attribute blocks sliced, not copied.
pub fn read_updates<R: Read>(
    mut source: R,
    dataset: DataSource,
    collector: u16,
) -> Result<Vec<BgpElem>, MrtError> {
    let mut archive = Vec::new();
    source.read_to_end(&mut archive).map_err(bh_mrt::MrtError::from)?;
    let mut src = MrtElemSource::from_bytes(archive, dataset, collector);
    let mut out = Vec::new();
    while let Some(elem) = src.next_elem() {
        out.push(elem.clone());
    }
    match src.take_error() {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// Split elems by platform — the coarse shape real archives come in.
pub fn split_by_dataset(elems: Vec<BgpElem>) -> BTreeMap<DataSource, Vec<BgpElem>> {
    let mut out: BTreeMap<DataSource, Vec<BgpElem>> = BTreeMap::new();
    for elem in elems {
        out.entry(elem.dataset).or_default().push(elem);
    }
    out
}

/// Split elems by `(dataset, collector)` — one bucket per archive a
/// real pipeline would download, preserving per-collector arrival
/// order. The MRT wire format does not carry these labels, so an
/// archive per pair keeps every [`PeerKey`](crate::elem::PeerKey)
/// reconstructible on read-back.
pub fn split_by_collector(elems: &[BgpElem]) -> BTreeMap<(DataSource, u16), Vec<BgpElem>> {
    let mut out: BTreeMap<(DataSource, u16), Vec<BgpElem>> = BTreeMap::new();
    for elem in elems {
        out.entry((elem.dataset, elem.collector)).or_default().push(elem.clone());
    }
    out
}

/// Merge several collector streams into one time-ordered stream (stable:
/// ties keep `(dataset, collector)` then stream order) — the BGPStream
/// merge the paper's pipeline performs across RIS + RV collectors.
///
/// This flatten-and-stable-sort is the *specification* of the merge
/// order: [`MergedSource`](crate::merge::MergedSource) reproduces it
/// one element at a time (and a
/// [`CollectorFleet`](crate::fleet::CollectorFleet) in parallel), which
/// the golden-equivalence property tests in `tests/` prove against this
/// independent implementation. Materializing callers keep this
/// zero-clone shape; streaming consumers should use the sources and
/// skip the `Vec`.
pub fn merge_streams(mut streams: Vec<Vec<BgpElem>>) -> Vec<BgpElem> {
    let mut merged: Vec<BgpElem> = streams.drain(..).flatten().collect();
    merged.sort_by_key(|e| (e.time, e.dataset, e.collector));
    merged
}

/// Round-trip helper used by tests and benches: elems → MRT bytes → elems.
pub fn mrt_round_trip(elems: &[BgpElem]) -> Result<Vec<BgpElem>, MrtError> {
    let mut buf = Vec::new();
    write_updates(&mut buf, elems)?;
    let dataset = elems.first().map(|e| e.dataset).unwrap_or(DataSource::Ris);
    let collector = elems.first().map(|e| e.collector).unwrap_or(0);
    read_updates(&buf[..], dataset, collector)
}

/// A timestamp suitable for archive names.
pub fn archive_stamp(time: SimTime) -> String {
    let (y, m, d) = time.ymd();
    format!(
        "{y:04}{m:02}{d:02}.{:02}{:02}",
        (time.unix() % 86_400) / 3600,
        (time.unix() % 3600) / 60
    )
}

#[cfg(test)]
mod tests {
    use bh_bgp_types::community::{Community, CommunitySet};

    use super::*;

    fn sample_elems() -> Vec<BgpElem> {
        let mk = |t: u64, ty: ElemType| BgpElem {
            time: SimTime::from_unix(t),
            dataset: DataSource::Ris,
            collector: 3,
            peer_asn: bh_bgp_types::asn::Asn::new(6939),
            peer_ip: "80.81.192.1".parse().unwrap(),
            elem_type: ty,
            prefix: "130.149.1.1/32".parse().unwrap(),
            as_path: if ty == ElemType::Announce {
                "6939 3356 64500".parse().unwrap()
            } else {
                Default::default()
            },
            communities: if ty == ElemType::Announce {
                CommunitySet::from_classic(vec![Community::from_parts(3356, 9999)])
            } else {
                Default::default()
            },
            next_hop: None,
        };
        vec![mk(100, ElemType::Announce), mk(200, ElemType::Withdraw)]
    }

    #[test]
    fn mrt_round_trip_preserves_elems() {
        let elems = sample_elems();
        let back = mrt_round_trip(&elems).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].prefix, elems[0].prefix);
        assert_eq!(back[0].as_path, elems[0].as_path);
        assert_eq!(back[0].communities, elems[0].communities);
        assert_eq!(back[0].peer_asn, elems[0].peer_asn);
        assert_eq!(back[0].peer_ip, elems[0].peer_ip);
        assert_eq!(back[0].time, elems[0].time);
        assert_eq!(back[1].elem_type, ElemType::Withdraw);
    }

    #[test]
    fn streaming_source_matches_materializing_read() {
        let elems = sample_elems();
        let mut buf = Vec::new();
        write_updates(&mut buf, &elems).unwrap();

        let mut src = MrtElemSource::new(&buf[..], DataSource::Ris, 3);
        let mut streamed = Vec::new();
        while let Some(elem) = src.next_elem() {
            streamed.push(elem.clone());
        }
        assert!(src.error().is_none());
        assert_eq!(streamed, read_updates(&buf[..], DataSource::Ris, 3).unwrap());
        assert_eq!(streamed.len(), 2);
    }

    #[test]
    fn bytes_source_matches_read_source() {
        let elems = sample_elems();
        let mut buf = Vec::new();
        write_updates(&mut buf, &elems).unwrap();

        let mut via_read = MrtElemSource::new(&buf[..], DataSource::Ris, 3);
        let mut via_bytes = MrtElemSource::from_bytes(buf.clone(), DataSource::Ris, 3);
        loop {
            let a = via_read.next_elem().cloned();
            let b = via_bytes.next_elem().cloned();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert!(via_read.error().is_none());
        assert!(via_bytes.error().is_none());
        assert_eq!(via_read.records_read(), via_bytes.records_read());

        // Torn archives surface the same way through both paths.
        buf.truncate(buf.len() - 4);
        let mut torn = MrtElemSource::from_bytes_tolerant(buf, DataSource::Ris, 3);
        let mut n = 0;
        while torn.next_elem().is_some() {
            n += 1;
        }
        assert_eq!(n, 1);
        assert!(torn.take_error().is_some(), "framing tears propagate even in tolerant mode");
    }

    #[test]
    fn streaming_source_surfaces_torn_archives() {
        let elems = sample_elems();
        let mut buf = Vec::new();
        write_updates(&mut buf, &elems).unwrap();
        buf.truncate(buf.len() - 4); // tear the final record

        let mut src = MrtElemSource::new(&buf[..], DataSource::Ris, 3);
        let mut n = 0;
        while src.next_elem().is_some() {
            n += 1;
        }
        assert_eq!(n, 1, "the intact first record still streams");
        assert!(src.take_error().is_some(), "the tear is reported");
        assert!(read_updates(&buf[..], DataSource::Ris, 3).is_err());
    }

    #[test]
    fn merge_orders_by_time() {
        let mut a = sample_elems();
        a[0].time = SimTime::from_unix(500);
        a[1].time = SimTime::from_unix(100);
        let mut b = sample_elems();
        b[0].time = SimTime::from_unix(300);
        b[0].dataset = DataSource::Pch;
        b[1].time = SimTime::from_unix(200);
        b[1].dataset = DataSource::Pch;
        let merged = merge_streams(vec![a, b]);
        let times: Vec<u64> = merged.iter().map(|e| e.time.unix()).collect();
        assert_eq!(times, vec![100, 200, 300, 500]);
    }

    #[test]
    fn merge_streams_equals_stable_flatten_sort_on_unsorted_input() {
        // The pre-MergedSource contract: streams need not be sorted, and
        // equal keys keep flatten order (stream index, then position).
        let mut elems = Vec::new();
        for (t, collector, peer) in
            [(300u64, 1u16, 1u32), (100, 1, 2), (100, 1, 3), (200, 0, 4), (100, 1, 5)]
        {
            let mut e = sample_elems()[0].clone();
            e.time = SimTime::from_unix(t);
            e.collector = collector;
            e.peer_asn = bh_bgp_types::asn::Asn::new(peer);
            elems.push(e);
        }
        let streams = vec![elems[..2].to_vec(), elems[2..].to_vec()];
        let mut expected: Vec<BgpElem> = streams.concat();
        expected.sort_by_key(|e| (e.time, e.dataset, e.collector));
        assert_eq!(merge_streams(streams), expected);
        // Equal-key order: stream 0's (100,1) before stream 1's two.
        let peers: Vec<u32> = expected.iter().map(|e| e.peer_asn.value()).collect();
        assert_eq!(peers, vec![2, 3, 5, 4, 1]);
    }

    #[test]
    fn split_by_collector_partitions_per_archive() {
        let mut elems = sample_elems();
        elems[1].collector = 4;
        elems.push({
            let mut e = elems[0].clone();
            e.dataset = DataSource::Cdn;
            e
        });
        let split = split_by_collector(&elems);
        assert_eq!(split.len(), 3);
        assert_eq!(split[&(DataSource::Ris, 3)].len(), 1);
        assert_eq!(split[&(DataSource::Ris, 4)].len(), 1);
        assert_eq!(split[&(DataSource::Cdn, 3)].len(), 1);
    }

    #[test]
    fn split_partitions_by_platform() {
        let mut elems = sample_elems();
        elems[1].dataset = DataSource::Cdn;
        let split = split_by_dataset(elems);
        assert_eq!(split.len(), 2);
        assert_eq!(split[&DataSource::Ris].len(), 1);
        assert_eq!(split[&DataSource::Cdn].len(), 1);
    }

    #[test]
    fn archive_stamp_format() {
        let t = SimTime::from_ymd_hms(2016, 9, 20, 13, 45, 0);
        assert_eq!(archive_stamp(t), "20160920.1345");
    }
}
