//! The BGP propagation simulator.
//!
//! Event-driven and deterministic: callers inject origin announcements and
//! withdrawals; the engine propagates them through the relationship graph
//! under Gao-Rexford export policy and the blackhole acceptance rules, and
//! emits [`BgpElem`]s at every collector session whose view changes — the
//! stream the inference engine consumes, with all of the paper's
//! visibility mechanics reproduced:
//!
//! * direct feeds from blackholing providers (tagged routes visible),
//! * community bundling (tagged routes visible via *non-provider*
//!   neighbors even when no provider propagates),
//! * NO_EXPORT suppression (routes invisible except to the CDN's internal
//!   sessions),
//! * IXP route-server redistribution with PCH route-server views
//!   (peer-ip inside the peering LAN),
//! * providers that strip their trigger community or suppress propagation.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::net::IpAddr;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use bh_bgp_types::as_path::AsPath;
use bh_bgp_types::asn::Asn;
use bh_bgp_types::bogon::BogonFilter;
use bh_bgp_types::community::CommunitySet;
use bh_bgp_types::prefix::Ipv4Prefix;
use bh_bgp_types::time::SimTime;
use bh_topology::{Ixp, OriginIndex, PolicyTable, PropagationRanks, Relationship, Topology};

use crate::collector::{CollectorDeployment, CollectorSession, FeedKind};
use crate::elem::{BgpElem, DataSource, ElemType};
use crate::extensions::{PolicyEngine, RunStats};
use crate::policy::{
    import_decision, local_pref_for, may_export, AuthContext, ImportDecision, RejectReason,
    SessionBehavior,
};

/// Which neighbors an origin announcement is sent to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnnounceScope {
    /// All of the origin's neighbors (the *bundling* pattern: one
    /// advertisement with every provider's community attached, sent
    /// everywhere — §4.2/Fig. 3's ASC2).
    AllNeighbors,
    /// Only the listed neighbors (the *targeted* pattern: a separate
    /// advertisement per provider — Fig. 3's ASC1).
    Neighbors(Vec<Asn>),
}

/// One origin announcement.
#[derive(Debug, Clone)]
pub struct Announcement {
    /// The announcing AS (the blackholing user, for blackhole routes).
    pub origin: Asn,
    /// The prefix.
    pub prefix: Ipv4Prefix,
    /// Attached communities (may bundle several providers' triggers, may
    /// include NO_EXPORT).
    pub communities: CommunitySet,
    /// Delivery scope.
    pub scope: AnnounceScope,
    /// Whether the (prefix, origin) pair is correctly registered in the
    /// IRR (misconfigured users are not — §10).
    pub irr_registered: bool,
    /// Origin-side path prepending (1 = no prepending).
    pub prepend: usize,
}

impl Announcement {
    /// A plain announcement to everyone, registered, no prepending.
    pub fn simple(origin: Asn, prefix: Ipv4Prefix, communities: CommunitySet) -> Self {
        Announcement {
            origin,
            prefix,
            communities,
            scope: AnnounceScope::AllNeighbors,
            irr_registered: true,
            prepend: 1,
        }
    }
}

/// What happened to a blackhole request at each triggered provider.
/// Both vectors are in canonical (ASN-sorted) order, so the queue and
/// phased engines report identical outcomes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnnounceOutcome {
    /// Providers that accepted and installed the blackhole.
    pub accepted_by: Vec<Asn>,
    /// Providers where a trigger matched but the request was rejected.
    pub rejected_by: Vec<(Asn, RejectReason)>,
}

/// Propagation engine selection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum EngineMode {
    /// The original single FIFO work queue — sequential, trajectory
    /// exactly as the seed engine.
    #[default]
    Queue,
    /// Three valley-free phases scheduled by propagation rank — up to
    /// providers in ascending rank order, across peers and route
    /// servers in waves, down to customers in descending rank order —
    /// with the work *within* each rank processed by `threads` workers
    /// and merged in deterministic ASN order. Emits a bit-identical
    /// elem stream to [`EngineMode::Queue`] (property-tested), and does
    /// strictly less redundant work: rank order delivers
    /// highest-preference customer routes first, so an AS's best route
    /// never flips mid-flood the way FIFO churn makes it.
    Phased {
        /// Worker threads per rank group (clamped to ≥ 1).
        threads: usize,
    },
}

/// Typed propagation failure — the graceful replacement for the old
/// "propagation did not converge" panic, so `Massive` runs degrade into
/// an error the caller can skip past instead of aborting the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropagationError {
    /// The step cap was reached before the work queue drained (a policy
    /// dispute wheel, e.g. dueling leakers, can oscillate forever).
    NoConvergence {
        /// Work items processed before giving up.
        steps: u64,
    },
}

impl std::fmt::Display for PropagationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PropagationError::NoConvergence { steps } => {
                write!(f, "propagation did not converge after {steps} steps")
            }
        }
    }
}

impl std::error::Error for PropagationError {}

/// A route as held in an Adj-RIB-In slot.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RouteEntry {
    /// Path as received (first hop = the neighbor that sent it; for
    /// origin advertisements this is the origin itself).
    as_path: AsPath,
    communities: CommunitySet,
    learned_from: Asn,
    /// How the *receiver* relates to `learned_from`.
    learned_rel: Relationship,
    local_pref: u32,
    is_blackhole: bool,
    irr_registered: bool,
    next_hop: Option<IpAddr>,
    /// RFC 9234-style only-to-customers mark, set and read by the
    /// `OnlyToCustomers` policy extension. Always `false` when no
    /// policies are installed, so route equality (and therefore
    /// propagation and emission) is unchanged on the extensions-off
    /// path.
    leak_marked: bool,
}

#[derive(Debug, Clone, Default)]
struct PrefixState {
    /// Candidates keyed by sending neighbor.
    candidates: BTreeMap<Asn, RouteEntry>,
    /// What we last advertised per neighbor.
    advertised: BTreeMap<Asn, RouteEntry>,
    /// The best route the last neighbor-advertisement pass ran against.
    /// Outbound adverts are a pure function of `best` (offering and
    /// policies are fixed for a run), so when best is unchanged the
    /// whole neighbor loop is skipped — the scratch-work win that makes
    /// withdraw/re-announce churn cheap at `Massive` scale.
    advert_basis: Option<RouteEntry>,
}

impl PrefixState {
    fn best(&self) -> Option<&RouteEntry> {
        self.candidates.values().max_by(|a, b| {
            a.local_pref
                .cmp(&b.local_pref)
                .then(b.as_path.hop_len().cmp(&a.as_path.hop_len()))
                .then(b.learned_from.cmp(&a.learned_from))
        })
    }
}

/// Key for per-session emitted state: (dataset, collector, session peer,
/// prefix, attributed peer) — the last component distinguishes the
/// per-member views of a route-server session.
type EmitKey = (DataSource, u16, Asn, Ipv4Prefix, Asn);

#[derive(Debug, Clone)]
enum Work {
    Announce { to: Asn, from: Asn, prefix: Ipv4Prefix, route: RouteEntry },
    Withdraw { to: Asn, from: Asn, prefix: Ipv4Prefix },
}

impl Work {
    fn target(&self) -> Asn {
        match self {
            Work::Announce { to, .. } | Work::Withdraw { to, .. } => *to,
        }
    }

    fn source(&self) -> Asn {
        match self {
            Work::Announce { from, .. } | Work::Withdraw { from, .. } => *from,
        }
    }
}

/// The simulator.
pub struct BgpSimulator<'a> {
    topology: &'a Topology,
    origin_index: OriginIndex,
    deployment: CollectorDeployment,
    behaviors: HashMap<Asn, SessionBehavior>,
    state: HashMap<Asn, HashMap<Ipv4Prefix, PrefixState>>,
    /// Which neighbors each (origin, prefix) was directly sent to, with
    /// the sent route (for withdraws and scope changes).
    origin_adverts: HashMap<(Asn, Ipv4Prefix), BTreeMap<Asn, RouteEntry>>,
    emitted: HashMap<EmitKey, (AsPath, CommunitySet)>,
    elems: Vec<BgpElem>,
    bogons: BogonFilter,
    /// Compiled per-AS policy extensions; `None` (the default, and the
    /// result of installing an empty [`PolicyTable`]) runs the exact
    /// pre-extension code path.
    policies: Option<PolicyEngine>,
    /// Per-reason / per-extension rejection accounting, kept even when
    /// no policies are installed (counters never perturb routing).
    stats: RunStats,
    /// Which propagation engine `announce`/`withdraw` run.
    mode: EngineMode,
    /// Customer-cone depth ranks, computed lazily on the first phased
    /// run (or injected via [`BgpSimulator::set_propagation_ranks`] so
    /// benchmarks amortize the computation across simulator instances).
    ranks: Option<Arc<PropagationRanks>>,
    /// route-server ASN → index into `topology.ixps()` (replaces the
    /// linear `ixp_by_route_server` scan on the hot path).
    rs_index: HashMap<Asn, usize>,
    /// (AS, prefix) pairs whose visible state may have changed since the
    /// last flush. Emissions are reconstructed from final state at
    /// flush time, which is what makes both engines emit identically.
    dirty: BTreeSet<(Asn, Ipv4Prefix)>,
    /// Reused seed-neighbor scratch buffer (no per-announce alloc).
    scratch_neighbors: Vec<Asn>,
}

impl<'a> BgpSimulator<'a> {
    /// Build a simulator. `seed` controls per-AS session behavior
    /// (host-route acceptance) only.
    pub fn new(topology: &'a Topology, deployment: CollectorDeployment, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut behaviors = HashMap::new();
        for info in topology.ases() {
            behaviors.insert(
                info.asn,
                SessionBehavior {
                    host_routes_from_customers: rng.gen_bool(0.9),
                    host_routes_from_peers: rng.gen_bool(0.25),
                },
            );
        }
        let rs_index =
            topology.ixps().iter().enumerate().map(|(i, ixp)| (ixp.route_server_asn, i)).collect();
        BgpSimulator {
            topology,
            origin_index: topology.origin_index(),
            deployment,
            behaviors,
            state: HashMap::new(),
            origin_adverts: HashMap::new(),
            emitted: HashMap::new(),
            elems: Vec::new(),
            bogons: BogonFilter::new(),
            policies: None,
            stats: RunStats::default(),
            mode: EngineMode::Queue,
            ranks: None,
            rs_index,
            dirty: BTreeSet::new(),
            scratch_neighbors: Vec::new(),
        }
    }

    /// Select the propagation engine. Both modes produce bit-identical
    /// collector elems and outcomes; `Phased` is the fast path at
    /// `Massive` scale.
    pub fn set_engine_mode(&mut self, mode: EngineMode) {
        self.mode = mode;
    }

    /// The propagation engine currently selected.
    pub fn engine_mode(&self) -> EngineMode {
        self.mode
    }

    /// Inject precomputed propagation ranks (must be for this topology).
    /// The phased engine otherwise computes them lazily on first use.
    pub fn set_propagation_ranks(&mut self, ranks: Arc<PropagationRanks>) {
        self.ranks = Some(ranks);
    }

    /// Install (compile) a policy table. An empty table uninstalls:
    /// the simulator then runs the extensions-off fast path, which is
    /// property-tested bit-identical to the pre-extension baseline.
    /// Returns `true` when at least one extension was installed.
    pub fn install_policies(&mut self, table: &PolicyTable) -> bool {
        self.policies = PolicyEngine::compile(table);
        self.policies.is_some()
    }

    /// Per-`RejectReason` and per-extension rejection counts so far.
    pub fn run_stats(&self) -> &RunStats {
        &self.stats
    }

    /// Reset the rejection counters (e.g. between workload phases).
    pub fn reset_run_stats(&mut self) {
        self.stats = RunStats::default();
    }

    /// The topology in use.
    pub fn topology(&self) -> &Topology {
        self.topology
    }

    /// The collector deployment in use.
    pub fn deployment(&self) -> &CollectorDeployment {
        &self.deployment
    }

    /// Override one AS's session behavior (scenarios use this to model
    /// specific router configurations, e.g. members that do or do not
    /// accept /32s).
    pub fn set_behavior(&mut self, asn: Asn, behavior: SessionBehavior) {
        self.behaviors.insert(asn, behavior);
    }

    /// The session behavior of an AS.
    pub fn behavior(&self, asn: Asn) -> SessionBehavior {
        self.behaviors.get(&asn).copied().unwrap_or_default()
    }

    /// Drain the accumulated collector elements (time-ordered as emitted).
    pub fn drain_elems(&mut self) -> Vec<BgpElem> {
        std::mem::take(&mut self.elems)
    }

    /// Peek at accumulated elements.
    pub fn elems(&self) -> &[BgpElem] {
        &self.elems
    }

    /// Does `asn` currently hold a blackhole-flagged route for `prefix`?
    /// (Ground-truth query for data-plane simulation.)
    pub fn is_blackholed_at(&self, asn: Asn, prefix: &Ipv4Prefix) -> bool {
        self.state
            .get(&asn)
            .and_then(|m| m.get(prefix))
            .is_some_and(|ps| ps.candidates.values().any(|r| r.is_blackhole))
    }

    /// All ASes currently holding a blackhole route for `prefix`.
    pub fn blackholing_ases_for(&self, prefix: &Ipv4Prefix) -> Vec<Asn> {
        let mut out: Vec<Asn> = self
            .state
            .iter()
            .filter(|(_, m)| {
                m.get(prefix).is_some_and(|ps| ps.candidates.values().any(|r| r.is_blackhole))
            })
            .map(|(asn, _)| *asn)
            .collect();
        out.sort_unstable();
        out
    }

    /// Inject an announcement; returns blackhole acceptance outcomes.
    /// On non-convergence the run stops gracefully (counted in
    /// [`RunStats::convergence_failures`]); use
    /// [`BgpSimulator::try_announce`] to observe the error.
    pub fn announce(&mut self, time: SimTime, announcement: &Announcement) -> AnnounceOutcome {
        self.announce_impl(time, announcement).0
    }

    /// Like [`BgpSimulator::announce`], surfacing the propagation error.
    pub fn try_announce(
        &mut self,
        time: SimTime,
        announcement: &Announcement,
    ) -> Result<AnnounceOutcome, PropagationError> {
        let (outcome, result) = self.announce_impl(time, announcement);
        result.map(|()| outcome)
    }

    fn announce_impl(
        &mut self,
        time: SimTime,
        announcement: &Announcement,
    ) -> (AnnounceOutcome, Result<(), PropagationError>) {
        let mut outcome = AnnounceOutcome::default();
        if announcement.prefix.length() < 8 {
            return (outcome, Ok(())); // never less specific than /8
        }
        // Martian space never propagates (routers filter it on ingress);
        // host routes are checked against the same bogon table.
        if !self.bogons.is_routable(&announcement.prefix) {
            return (outcome, Ok(()));
        }
        let origin = announcement.origin;
        let mut communities = announcement.communities.clone();
        let mut prepend = announcement.prepend.max(1);
        if let Some(engine) = &self.policies {
            engine.origin(
                self.topology,
                origin,
                &announcement.prefix,
                &mut communities,
                &mut prepend,
            );
            prepend = prepend.max(1);
        }
        let mut path = AsPath::empty();
        path.prepend(origin, prepend);
        let route = RouteEntry {
            as_path: path,
            communities,
            learned_from: origin,
            learned_rel: Relationship::Peer, // placeholder; set per receiver
            local_pref: 0,
            is_blackhole: false,
            irr_registered: announcement.irr_registered,
            next_hop: None,
            leak_marked: false,
        };

        self.scratch_neighbors.clear();
        match &announcement.scope {
            AnnounceScope::AllNeighbors => {
                let topology = self.topology;
                self.scratch_neighbors.extend(topology.neighbors(origin).iter().map(|(n, _)| *n));
            }
            AnnounceScope::Neighbors(list) => self.scratch_neighbors.extend_from_slice(list),
        }

        let mut seeds: Vec<Work> = Vec::with_capacity(self.scratch_neighbors.len());
        let adverts = self.origin_adverts.entry((origin, announcement.prefix)).or_default();
        let previously: Vec<Asn> = adverts.keys().copied().collect();
        for &n in &self.scratch_neighbors {
            adverts.insert(n, route.clone());
            seeds.push(Work::Announce {
                to: n,
                from: origin,
                prefix: announcement.prefix,
                route: route.clone(),
            });
        }
        for n in previously {
            if !self.scratch_neighbors.contains(&n) {
                adverts.remove(&n);
                seeds.push(Work::Withdraw { to: n, from: origin, prefix: announcement.prefix });
            }
        }

        let result = self.run(seeds, &mut outcome);
        // Canonical outcome order, independent of engine and work order.
        outcome.accepted_by.sort_unstable();
        outcome.rejected_by.sort_unstable_by_key(|(a, _)| *a);
        self.flush_emissions(time);
        (outcome, result)
    }

    /// Withdraw an origin's prefix everywhere it was advertised. Like
    /// [`BgpSimulator::announce`], non-convergence degrades gracefully.
    pub fn withdraw(&mut self, time: SimTime, origin: Asn, prefix: Ipv4Prefix) {
        let _ = self.withdraw_impl(time, origin, prefix);
    }

    /// Like [`BgpSimulator::withdraw`], surfacing the propagation error.
    pub fn try_withdraw(
        &mut self,
        time: SimTime,
        origin: Asn,
        prefix: Ipv4Prefix,
    ) -> Result<(), PropagationError> {
        self.withdraw_impl(time, origin, prefix)
    }

    fn withdraw_impl(
        &mut self,
        time: SimTime,
        origin: Asn,
        prefix: Ipv4Prefix,
    ) -> Result<(), PropagationError> {
        let Some(adverts) = self.origin_adverts.remove(&(origin, prefix)) else {
            return Ok(());
        };
        let seeds: Vec<Work> =
            adverts.into_keys().map(|n| Work::Withdraw { to: n, from: origin, prefix }).collect();
        let mut outcome = AnnounceOutcome::default();
        let result = self.run(seeds, &mut outcome);
        self.flush_emissions(time);
        result
    }

    // ---- engine ---------------------------------------------------------

    fn run(
        &mut self,
        seeds: Vec<Work>,
        outcome: &mut AnnounceOutcome,
    ) -> Result<(), PropagationError> {
        let result = match self.mode {
            EngineMode::Queue => self.run_queue(seeds, outcome),
            EngineMode::Phased { threads } => self.run_phased(seeds, outcome, threads),
        };
        if result.is_err() {
            self.stats.convergence_failures += 1;
        }
        result
    }

    /// The sequential engine: one FIFO work queue.
    fn run_queue(
        &mut self,
        seeds: Vec<Work>,
        outcome: &mut AnnounceOutcome,
    ) -> Result<(), PropagationError> {
        let ctx = SimCtx {
            topology: self.topology,
            origin_index: &self.origin_index,
            behaviors: &self.behaviors,
            policies: self.policies.as_ref(),
            rs_index: &self.rs_index,
        };
        let cap = (self.topology.as_count() as u64 + 10) * 10_000;
        let mut steps: u64 = 0;
        let mut queue: VecDeque<Work> = seeds.into();
        let mut generated: Vec<Work> = Vec::new();
        while let Some(work) = queue.pop_front() {
            steps += 1;
            if steps >= cap {
                return Err(PropagationError::NoConvergence { steps });
            }
            let me = work.target();
            let mut node = NodeState {
                me,
                prefixes: self.state.entry(me).or_default(),
                out: &mut generated,
                stats: &mut self.stats,
                outcome,
                dirty: &mut self.dirty,
            };
            process_work(&ctx, &mut node, work);
            queue.extend(generated.drain(..));
        }
        Ok(())
    }

    /// The rank-scheduled engine: three valley-free phases per round —
    /// customer→provider work in ascending rank order, peer/route-server
    /// work in waves, provider→customer work in descending rank order —
    /// repeated until quiescent. Rank order delivers the
    /// highest-preference customer routes first, so an AS's best route
    /// settles without the withdraw/re-announce churn a FIFO trajectory
    /// produces. Work within one rank group targets distinct ASes, so
    /// it is farmed out to `threads` workers over disjoint per-AS state
    /// and merged back in ASN order — the result is independent of both
    /// thread count and completion order.
    fn run_phased(
        &mut self,
        seeds: Vec<Work>,
        outcome: &mut AnnounceOutcome,
        threads: usize,
    ) -> Result<(), PropagationError> {
        let ranks = match &self.ranks {
            Some(r) => Arc::clone(r),
            None => {
                let r = Arc::new(self.topology.propagation_ranks());
                self.ranks = Some(Arc::clone(&r));
                r
            }
        };
        let max_rank = ranks.max_rank() as usize;
        let mut up: Vec<Vec<Work>> = vec![Vec::new(); max_rank + 1];
        let mut across: Vec<Work> = Vec::new();
        let mut down: Vec<Vec<Work>> = vec![Vec::new(); max_rank + 1];
        let cap = (self.topology.as_count() as u64 + 10) * 10_000;
        let mut steps: u64 = 0;
        classify_works(self.topology, &ranks, seeds, &mut up, &mut across, &mut down);
        loop {
            let mut progressed = false;
            // Phase 1: up. Routes climbing to providers, lowest rank
            // first; work generated for higher ranks joins this sweep.
            for r in 0..=max_rank {
                while !up[r].is_empty() {
                    let works = std::mem::take(&mut up[r]);
                    progressed = true;
                    steps += works.len() as u64;
                    if steps >= cap {
                        return Err(PropagationError::NoConvergence { steps });
                    }
                    let out = self.process_group(works, outcome, threads);
                    classify_works(self.topology, &ranks, out, &mut up, &mut across, &mut down);
                }
            }
            // Phase 2: across. Peer and route-server redistribution, in
            // waves until locally quiescent (route-server chains).
            while !across.is_empty() {
                let works = std::mem::take(&mut across);
                progressed = true;
                steps += works.len() as u64;
                if steps >= cap {
                    return Err(PropagationError::NoConvergence { steps });
                }
                let out = self.process_group(works, outcome, threads);
                classify_works(self.topology, &ranks, out, &mut up, &mut across, &mut down);
            }
            // Phase 3: down. Routes descending to customers, highest
            // rank first; lower-rank work joins this sweep.
            for r in (0..=max_rank).rev() {
                while !down[r].is_empty() {
                    let works = std::mem::take(&mut down[r]);
                    progressed = true;
                    steps += works.len() as u64;
                    if steps >= cap {
                        return Err(PropagationError::NoConvergence { steps });
                    }
                    let out = self.process_group(works, outcome, threads);
                    classify_works(self.topology, &ranks, out, &mut up, &mut across, &mut down);
                }
            }
            if !progressed {
                return Ok(());
            }
        }
    }

    /// Process one rank group of work items. Items are grouped per
    /// target AS (a *unit*); units are independent because processing a
    /// work item touches only the target's own per-prefix state, so
    /// units run on worker threads and merge deterministically in ASN
    /// order afterwards.
    fn process_group(
        &mut self,
        works: Vec<Work>,
        outcome: &mut AnnounceOutcome,
        threads: usize,
    ) -> Vec<Work> {
        struct Unit {
            me: Asn,
            prefixes: HashMap<Ipv4Prefix, PrefixState>,
            works: Vec<Work>,
            out: Vec<Work>,
            stats: RunStats,
            outcome: AnnounceOutcome,
            dirty: BTreeSet<(Asn, Ipv4Prefix)>,
        }
        let mut by_target: BTreeMap<Asn, Vec<Work>> = BTreeMap::new();
        for work in works {
            by_target.entry(work.target()).or_default().push(work);
        }
        let mut units: Vec<Unit> = by_target
            .into_iter()
            .map(|(me, works)| Unit {
                me,
                prefixes: self.state.remove(&me).unwrap_or_default(),
                works,
                out: Vec::new(),
                stats: RunStats::default(),
                outcome: AnnounceOutcome::default(),
                dirty: BTreeSet::new(),
            })
            .collect();
        {
            let ctx = SimCtx {
                topology: self.topology,
                origin_index: &self.origin_index,
                behaviors: &self.behaviors,
                policies: self.policies.as_ref(),
                rs_index: &self.rs_index,
            };
            let run_unit = |unit: &mut Unit| {
                let todo = std::mem::take(&mut unit.works);
                let mut node = NodeState {
                    me: unit.me,
                    prefixes: &mut unit.prefixes,
                    out: &mut unit.out,
                    stats: &mut unit.stats,
                    outcome: &mut unit.outcome,
                    dirty: &mut unit.dirty,
                };
                for work in todo {
                    process_work(&ctx, &mut node, work);
                }
            };
            // Spawning scoped threads costs more than processing a
            // small group; only parallelize when there are enough
            // units to amortize it. Never affects results — the merge
            // below is ASN-ordered either way.
            const MIN_UNITS_PER_WORKER: usize = 256;
            let workers = threads.max(1).min(units.len() / MIN_UNITS_PER_WORKER);
            if workers <= 1 {
                for unit in &mut units {
                    run_unit(unit);
                }
            } else {
                let run_unit = &run_unit;
                let chunk = units.len().div_ceil(workers);
                std::thread::scope(|s| {
                    for group in units.chunks_mut(chunk) {
                        s.spawn(move || {
                            for unit in group {
                                run_unit(unit);
                            }
                        });
                    }
                });
            }
        }
        // Deterministic merge: unit (ASN) order, never completion order.
        let mut generated: Vec<Work> = Vec::new();
        for unit in units {
            self.state.insert(unit.me, unit.prefixes);
            generated.extend(unit.out);
            self.stats.absorb(unit.stats);
            for asn in unit.outcome.accepted_by {
                if !outcome.accepted_by.contains(&asn) {
                    outcome.accepted_by.push(asn);
                }
            }
            for (asn, reason) in unit.outcome.rejected_by {
                if !outcome.rejected_by.iter().any(|(a, _)| *a == asn) {
                    outcome.rejected_by.push((asn, reason));
                }
            }
            self.dirty.extend(unit.dirty);
        }
        generated
    }

    /// Reconstruct collector emissions from final state for every
    /// (AS, prefix) pair dirtied since the last flush. Emitting from
    /// the converged state (rather than along the propagation
    /// trajectory) is what makes the queue and phased engines produce
    /// bit-identical elem streams: propagation order affects only
    /// transient state, and the best-path fixpoint is unique.
    fn flush_emissions(&mut self, time: SimTime) {
        if self.dirty.is_empty() {
            return;
        }
        let topology = self.topology;
        let dirty = std::mem::take(&mut self.dirty);
        for &(me, prefix) in &dirty {
            let ps = self.state.get(&me).and_then(|m| m.get(&prefix));
            if let Some(&idx) = self.rs_index.get(&me) {
                // Route-server node: refresh the PCH per-member views,
                // attributing each route to the member that sent it,
                // with its peering-LAN address.
                let ixp = &topology.ixps()[idx];
                for session in self.deployment.sessions_at(me) {
                    if !matches!(session.feed, FeedKind::RouteServerView(_)) {
                        continue;
                    }
                    for &member in &ixp.members {
                        let visible = ps.and_then(|ps| ps.candidates.get(&member)).map(|r| {
                            let mut out = r.clone();
                            if ixp.route_server_in_path {
                                out.as_path.prepend(me, 1);
                            }
                            out
                        });
                        let peer_ip =
                            ixp.member_lan_ip(member).map(IpAddr::V4).unwrap_or(session.peer_ip);
                        let key: EmitKey =
                            (session.dataset, session.collector, session.peer_asn, prefix, member);
                        emit_diff(
                            &mut self.emitted,
                            &mut self.elems,
                            time,
                            key,
                            session,
                            peer_ip,
                            prefix,
                            member,
                            visible.as_ref(),
                        );
                    }
                }
            } else {
                let best = ps.and_then(|p| p.best());
                for session in self.deployment.sessions_at(me) {
                    match session.feed {
                        FeedKind::RouteServerView(_) => {
                            // only meaningful at route-server nodes
                        }
                        FeedKind::Full | FeedKind::CustomerOnly | FeedKind::Internal => {
                            let visible: Option<&RouteEntry> = match (session.feed, best) {
                                (_, None) => None,
                                (FeedKind::Full, Some(b)) => {
                                    if b.communities.has_no_export() {
                                        None
                                    } else {
                                        Some(b)
                                    }
                                }
                                (FeedKind::CustomerOnly, Some(b)) => {
                                    if b.communities.has_no_export()
                                        || b.learned_rel != Relationship::Customer
                                    {
                                        None
                                    } else {
                                        Some(b)
                                    }
                                }
                                (FeedKind::Internal, Some(b)) => {
                                    // Internal sessions prefer the blackhole
                                    // candidate when one exists (it is the
                                    // operationally interesting route).
                                    Some(
                                        ps.expect("best implies state")
                                            .candidates
                                            .values()
                                            .find(|r| r.is_blackhole)
                                            .unwrap_or(b),
                                    )
                                }
                                (FeedKind::RouteServerView(_), Some(_)) => unreachable!(),
                            };
                            // The peer prepends itself when exporting to
                            // the collector, exactly like any other eBGP
                            // export.
                            let exported = visible.map(|r| {
                                let mut out = r.clone();
                                out.as_path.prepend(me, 1);
                                out
                            });
                            let key: EmitKey =
                                (session.dataset, session.collector, session.peer_asn, prefix, me);
                            emit_diff(
                                &mut self.emitted,
                                &mut self.elems,
                                time,
                                key,
                                session,
                                session.peer_ip,
                                prefix,
                                me,
                                exported.as_ref(),
                            );
                        }
                    }
                }
            }
        }
    }
}

// ---- shared propagation core -------------------------------------------
//
// Both engines run the exact same per-work processing; the functions
// below take an explicit read-only context plus a per-AS state view
// instead of `&mut self`, so the phased engine can hand disjoint state
// to worker threads while the queue engine threads its own fields
// through unchanged.

/// Read-only propagation context (all fields `Sync`), shared by every
/// worker of a phased rank group.
struct SimCtx<'a> {
    topology: &'a Topology,
    origin_index: &'a OriginIndex,
    behaviors: &'a HashMap<Asn, SessionBehavior>,
    policies: Option<&'a PolicyEngine>,
    /// route-server ASN → index into `topology.ixps()`.
    rs_index: &'a HashMap<Asn, usize>,
}

impl SimCtx<'_> {
    fn ixp_of(&self, asn: Asn) -> Option<&Ixp> {
        self.rs_index.get(&asn).map(|&i| &self.topology.ixps()[i])
    }
}

/// Mutable state of the one AS a work item targets. Processing a work
/// item touches nothing outside this view — that unit isolation is what
/// makes within-rank parallelism sound.
struct NodeState<'a> {
    me: Asn,
    prefixes: &'a mut HashMap<Ipv4Prefix, PrefixState>,
    out: &'a mut Vec<Work>,
    stats: &'a mut RunStats,
    outcome: &'a mut AnnounceOutcome,
    dirty: &'a mut BTreeSet<(Asn, Ipv4Prefix)>,
}

/// Sort generated work into the three valley-free phases by the role of
/// the *sender* as seen from the receiver: a route arriving from a
/// customer is climbing (up), one from a provider is descending (down),
/// and anything else — peers, route servers, unknown senders — is
/// lateral.
fn classify_works(
    topology: &Topology,
    ranks: &PropagationRanks,
    works: Vec<Work>,
    up: &mut [Vec<Work>],
    across: &mut Vec<Work>,
    down: &mut [Vec<Work>],
) {
    for work in works {
        match topology.rel_between(work.target(), work.source()) {
            Some(Relationship::Customer) => {
                let r = ranks.rank_of(work.target()).unwrap_or(0) as usize;
                up[r.min(up.len() - 1)].push(work);
            }
            Some(Relationship::Provider) => {
                let r = ranks.rank_of(work.target()).unwrap_or(0) as usize;
                down[r.min(down.len() - 1)].push(work);
            }
            _ => across.push(work),
        }
    }
}

fn process_work(ctx: &SimCtx<'_>, node: &mut NodeState<'_>, work: Work) {
    match work {
        Work::Announce { from, prefix, route, .. } => {
            process_announce(ctx, node, from, prefix, route);
        }
        Work::Withdraw { from, prefix, .. } => {
            process_withdraw(ctx, node, from, prefix);
        }
    }
}

fn process_announce(
    ctx: &SimCtx<'_>,
    node: &mut NodeState<'_>,
    from: Asn,
    prefix: Ipv4Prefix,
    mut route: RouteEntry,
) {
    let me = node.me;
    if route.as_path.contains(me) {
        node.stats.record_import_reject(RejectReason::LoopDetected);
        // Loop prevention is treat-as-withdraw: any previously held
        // candidate from this neighbor is gone, which keeps the
        // converged state independent of delivery order.
        match ctx.ixp_of(me) {
            Some(ixp) => rs_remove_candidate(ctx, node, ixp, from, prefix),
            None => remove_candidate(ctx, node, from, prefix),
        }
        return;
    }
    let Some(rel) = ctx.topology.rel_between(me, from) else {
        return; // targeted announce to a non-neighbor: silently dropped
    };

    // Route-server node? Special redistribution semantics. Policy
    // extensions deliberately do not hook route servers: they are
    // transparent redistribution points, not policy actors, and PCH
    // visibility depends on that transparency.
    if let Some(ixp) = ctx.ixp_of(me) {
        process_at_route_server(ctx, node, ixp, from, prefix, route);
        return;
    }

    // Policy-extension import hooks run before the Gao-Rexford
    // import — they model the ingress filters (ROV, peerlock,
    // path-end, OTC) a router applies ahead of route acceptance.
    if let Some(engine) = ctx.policies {
        if engine
            .import(
                ctx.topology,
                node.stats,
                me,
                from,
                rel,
                &prefix,
                &route.as_path,
                &route.communities,
                &mut route.leak_marked,
            )
            .is_err()
        {
            remove_candidate(ctx, node, from, prefix);
            return;
        }
    }

    let behavior = ctx.behaviors.get(&me).copied().unwrap_or_default();
    let origin = route.as_path.origin().unwrap_or(from);
    let auth_ctx = AuthContext {
        topology: ctx.topology,
        origin,
        sender: from,
        allocation_owner: ctx.origin_index.origin_of(&prefix),
        irr_registered: route.irr_registered,
    };
    let import =
        import_decision(me, rel, &prefix, &route.communities, behavior, ctx.topology, &auth_ctx);
    // Record trigger-specific rejections for ground truth even when
    // the route is otherwise accepted as a plain route.
    if let Some(reason) = import.trigger_rejection {
        node.stats.record_trigger_reject(reason);
        if !node.outcome.rejected_by.iter().any(|(a, _)| *a == me) {
            node.outcome.rejected_by.push((me, reason));
        }
    }

    match import.decision {
        ImportDecision::Reject(reason) => {
            node.stats.record_import_reject(reason);
            // A previously held candidate from this neighbor is gone.
            remove_candidate(ctx, node, from, prefix);
            return;
        }
        ImportDecision::Blackhole => {
            route.is_blackhole = true;
            if !node.outcome.accepted_by.contains(&me) {
                node.outcome.accepted_by.push(me);
            }
        }
        ImportDecision::Regular => {
            // A blackhole route redistributed by a route server keeps
            // its drop semantics at members (next-hop is the null
            // interface). Anywhere else the flag must not travel: a
            // transit AS holding a propagated /32 merely routes toward
            // the provider that discards.
            route.is_blackhole =
                route.is_blackhole && rel == Relationship::RouteServer && route.next_hop.is_some();
        }
    }
    route.learned_rel = rel;
    route.local_pref = local_pref_for(rel);

    let ps = node.prefixes.entry(prefix).or_default();
    let unchanged = ps.candidates.get(&from) == Some(&route);
    ps.candidates.insert(from, route);
    if unchanged {
        return; // no state change: stop propagation
    }
    after_change(ctx, node, prefix);
}

fn remove_candidate(ctx: &SimCtx<'_>, node: &mut NodeState<'_>, from: Asn, prefix: Ipv4Prefix) {
    let Some(ps) = node.prefixes.get_mut(&prefix) else {
        return;
    };
    if ps.candidates.remove(&from).is_none() {
        return;
    }
    after_change(ctx, node, prefix);
}

fn process_withdraw(ctx: &SimCtx<'_>, node: &mut NodeState<'_>, from: Asn, prefix: Ipv4Prefix) {
    match ctx.ixp_of(node.me) {
        Some(ixp) => rs_remove_candidate(ctx, node, ixp, from, prefix),
        None => remove_candidate(ctx, node, from, prefix),
    }
}

/// After a candidate change at `me`: recompute best, update neighbor
/// advertisements, and mark the pair dirty for the emission flush.
fn after_change(ctx: &SimCtx<'_>, node: &mut NodeState<'_>, prefix: Ipv4Prefix) {
    let me = node.me;
    node.dirty.insert((me, prefix));
    let topology = ctx.topology;
    let offering = topology.as_info(me).and_then(|i| i.blackhole_offering.as_ref());
    let Some(ps) = node.prefixes.get_mut(&prefix) else {
        return;
    };
    let best = ps.best().cloned();
    if ps.advert_basis == best {
        return; // adverts are a pure function of best: nothing to redo
    }

    // Determine the outbound advertisement per neighbor.
    for &(n, to_rel) in topology.neighbors(me) {
        // Each `None` arm mirrors one distinct suppression rule of the
        // paper; keeping them separate (with their comments) documents
        // the policy even though the bodies coincide.
        #[allow(clippy::if_same_then_else)]
        let advert: Option<RouteEntry> = match &best {
            None => None,
            Some(best) => {
                if n == best.learned_from {
                    None // never advertise back to the sender
                } else if best.communities.has_no_export() {
                    None // explicit NO_EXPORT: honored by everyone
                } else if best.is_blackhole && offering.is_some_and(|o| o.honors_no_export) {
                    None // RFC 7999-compliant provider suppresses
                } else {
                    // Valley-free verdict, then policy-extension
                    // export hooks (scrub / OTC marking / leaker
                    // override). The hard suppressions above are
                    // never overridable — NO_EXPORT and RFC 7999
                    // compliance hold even at a leaker.
                    let default_allowed = may_export(Some(best.learned_rel), to_rel);
                    let decided = match ctx.policies {
                        None => default_allowed.then(|| best.clone()),
                        Some(engine) => {
                            let mut out = best.clone();
                            let allowed = engine.export(
                                topology,
                                node.stats,
                                me,
                                n,
                                to_rel,
                                best.learned_rel,
                                &prefix,
                                &best.as_path,
                                &mut out.communities,
                                &mut out.leak_marked,
                                default_allowed,
                            );
                            allowed.then_some(out)
                        }
                    };
                    match decided {
                        None => None, // valley-free (or policy) suppression
                        Some(mut out) => {
                            out.as_path.prepend(me, 1);
                            if best.is_blackhole {
                                if let Some(o) = offering {
                                    if o.strips_community {
                                        out.communities.retain(|c| !o.is_trigger(*c));
                                    }
                                }
                            }
                            Some(out)
                        }
                    }
                }
            }
        };

        let unchanged = match (&advert, ps.advertised.get(&n)) {
            (None, None) => true,
            (Some(a), Some(o)) => a == o,
            _ => false,
        };
        if unchanged {
            continue;
        }
        match advert {
            Some(a) => {
                node.out.push(Work::Announce { to: n, from: me, prefix, route: a.clone() });
                ps.advertised.insert(n, a);
            }
            None => {
                ps.advertised.remove(&n);
                node.out.push(Work::Withdraw { to: n, from: me, prefix });
            }
        }
    }
    ps.advert_basis = best;
}

/// Compare with the session's previously emitted state; emit announce
/// or withdraw elems as needed.
#[allow(clippy::too_many_arguments)] // flat emission context, called from one place per feed kind
fn emit_diff(
    emitted: &mut HashMap<EmitKey, (AsPath, CommunitySet)>,
    elems: &mut Vec<BgpElem>,
    time: SimTime,
    key: EmitKey,
    session: &CollectorSession,
    peer_ip: IpAddr,
    prefix: Ipv4Prefix,
    attributed_peer: Asn,
    visible: Option<&RouteEntry>,
) {
    let old = emitted.get(&key);
    match visible {
        Some(route) => {
            let sig = (route.as_path.clone(), route.communities.clone());
            if old == Some(&sig) {
                return;
            }
            emitted.insert(key, sig);
            elems.push(BgpElem {
                time,
                dataset: session.dataset,
                collector: session.collector,
                peer_asn: attributed_peer,
                peer_ip,
                elem_type: ElemType::Announce,
                prefix,
                as_path: route.as_path.clone(),
                communities: route.communities.clone(),
                next_hop: route.next_hop,
            });
        }
        None => {
            if old.is_none() {
                return;
            }
            emitted.remove(&key);
            elems.push(BgpElem {
                time,
                dataset: session.dataset,
                collector: session.collector,
                peer_asn: attributed_peer,
                peer_ip,
                elem_type: ElemType::Withdraw,
                prefix,
                as_path: AsPath::empty(),
                communities: CommunitySet::new(),
                next_hop: None,
            });
        }
    }
}

// ---- route servers --------------------------------------------------

fn process_at_route_server(
    ctx: &SimCtx<'_>,
    node: &mut NodeState<'_>,
    ixp: &Ixp,
    from: Asn,
    prefix: Ipv4Prefix,
    mut route: RouteEntry,
) {
    let me = node.me;
    if !ixp.has_member(from) {
        return; // only members speak to the route server
    }
    let offering = ctx.topology.as_info(me).and_then(|i| i.blackhole_offering.as_ref());

    // Import filter at the route server.
    let triggered = offering.is_some_and(|o| {
        route.communities.iter().any(|c| o.is_trigger(c))
            || o.large_community.is_some_and(|l| route.communities.contains_large(l))
    });
    if triggered {
        let o = offering.expect("triggered implies offering");
        if !o.accepts_length(prefix.length()) {
            if !node.outcome.rejected_by.iter().any(|(a, _)| *a == me) {
                node.outcome.rejected_by.push((me, RejectReason::LengthRejected));
            }
            rs_remove_candidate(ctx, node, ixp, from, prefix);
            return;
        }
        // Route servers filter on IRR registration: misconfigured
        // users' blackhole requests are not redistributed (§10).
        let origin = route.as_path.origin().unwrap_or(from);
        let auth_ctx = AuthContext {
            topology: ctx.topology,
            origin,
            sender: from,
            allocation_owner: ctx.origin_index.origin_of(&prefix),
            irr_registered: route.irr_registered,
        };
        if !crate::policy::auth_ok(o.auth, &auth_ctx) {
            if !node.outcome.rejected_by.iter().any(|(a, _)| *a == me) {
                node.outcome.rejected_by.push((me, RejectReason::AuthFailed));
            }
            rs_remove_candidate(ctx, node, ixp, from, prefix);
            return;
        }
        route.is_blackhole = true;
        route.next_hop = o.blackhole_ip.map(IpAddr::V4);
        if !node.outcome.accepted_by.contains(&me) {
            node.outcome.accepted_by.push(me);
        }
    } else if prefix.is_more_specific_than(24) {
        // Untagged host routes are not redistributed by route servers.
        rs_remove_candidate(ctx, node, ixp, from, prefix);
        return;
    }
    route.learned_rel = Relationship::RouteServer;
    route.local_pref = local_pref_for(Relationship::RouteServer);

    let ps = node.prefixes.entry(prefix).or_default();
    let unchanged = ps.candidates.get(&from) == Some(&route);
    ps.candidates.insert(from, route);
    if unchanged {
        return;
    }
    rs_redistribute(node, ixp, prefix);
}

fn rs_remove_candidate(
    _ctx: &SimCtx<'_>,
    node: &mut NodeState<'_>,
    ixp: &Ixp,
    from: Asn,
    prefix: Ipv4Prefix,
) {
    let Some(ps) = node.prefixes.get_mut(&prefix) else {
        return;
    };
    if ps.candidates.remove(&from).is_none() {
        return;
    }
    rs_redistribute(node, ixp, prefix);
}

/// Re-advertise the route server's choice to every member after any
/// change to its candidate set: each member receives the best remaining
/// candidate contributed by *another* member (shortest AS path, then
/// lowest contributor ASN), or a withdraw when none is left.
///
/// Advertising the post-change best — not the triggering change — is
/// what keeps the members' view a pure function of the route server's
/// final candidate set: a member holds exactly one candidate per route
/// server session, so forwarding every contribution would leave
/// whichever arrived last, an artifact of delivery order that the queue
/// and phased engines would disagree on. The PCH route-server views are
/// reconstructed from the final candidate set at flush time;
/// propagation only marks the pair dirty.
fn rs_redistribute(node: &mut NodeState<'_>, ixp: &Ixp, prefix: Ipv4Prefix) {
    let me = node.me;
    node.dirty.insert((me, prefix));
    static EMPTY: BTreeMap<Asn, RouteEntry> = BTreeMap::new();
    let candidates = node.prefixes.get(&prefix).map(|ps| &ps.candidates).unwrap_or(&EMPTY);
    for &member in &ixp.members {
        let best = candidates
            .iter()
            .filter(|&(&contributor, _)| contributor != member)
            .min_by_key(|&(&contributor, route)| (route.as_path.hop_len(), contributor));
        match best {
            Some((_, route)) => {
                let mut out = route.clone();
                if ixp.route_server_in_path {
                    out.as_path.prepend(me, 1);
                }
                node.out.push(Work::Announce { to: member, from: me, prefix, route: out });
            }
            None => {
                node.out.push(Work::Withdraw { to: member, from: me, prefix });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use bh_bgp_types::community::Community;
    use bh_topology::{BlackholeAuth, NetworkType, Tier};

    use crate::collector::{CollectorConfig, CollectorSession};

    use super::*;

    /// Hand-built topology:
    ///
    /// ```text
    ///        T1a ===== T1b          (tier-1 peers)
    ///        /  \        \
    ///      P1    P2      T1b's customer: peerAS
    ///        \  /
    ///        USER (originates 30.0.0.0/16)
    ///  USER also peers with peerAS.
    /// ```
    /// P1 and P2 offer blackholing (P1: 0xP1:666, honors no-export;
    /// P2: strips its community, propagates).
    struct Fixture {
        topology: Topology,
        t1a: Asn,
        p1: Asn,
        p2: Asn,
        user: Asn,
        peer_as: Asn,
    }

    fn fixture() -> Fixture {
        use bh_topology::{AsInfo, BlackholeOffering, DocumentationChannel};
        use std::collections::BTreeMap;

        let t1a = Asn::new(10);
        let t1b = Asn::new(11);
        let p1 = Asn::new(20);
        let p2 = Asn::new(21);
        let user = Asn::new(30);
        let peer_as = Asn::new(40);

        let mk = |asn: Asn,
                  tier: Tier,
                  prefixes: Vec<&str>,
                  offering: Option<BlackholeOffering>| AsInfo {
            asn,
            tier,
            network_type: NetworkType::TransitAccess,
            country: "DE",
            prefixes: prefixes.iter().map(|p| p.parse().unwrap()).collect(),
            blackhole_offering: offering,
            tag_communities: vec![],
            tag_classes: vec![],
            tag_large_communities: vec![],
            in_peeringdb: true,
        };
        let offer = |asn: Asn, honors: bool, strips: bool| BlackholeOffering {
            communities: vec![Community::from_parts(asn.value() as u16, 666)],
            large_community: None,
            min_accepted_length: 25,
            documentation: DocumentationChannel::Irr,
            auth: BlackholeAuth::OriginOrCone,
            blackhole_ip: None,
            strips_community: strips,
            honors_no_export: honors,
        };

        let mut ases = BTreeMap::new();
        ases.insert(t1a, mk(t1a, Tier::Tier1, vec!["50.0.0.0/12"], None));
        ases.insert(t1b, mk(t1b, Tier::Tier1, vec!["51.0.0.0/12"], None));
        ases.insert(p1, mk(p1, Tier::Transit, vec!["52.0.0.0/14"], Some(offer(p1, true, false))));
        ases.insert(p2, mk(p2, Tier::Transit, vec!["53.0.0.0/14"], Some(offer(p2, false, true))));
        ases.insert(user, mk(user, Tier::Stub, vec!["30.0.0.0/16"], None));
        ases.insert(peer_as, mk(peer_as, Tier::Stub, vec!["54.0.0.0/16"], None));

        let edges = vec![
            (t1a, t1b, Relationship::Peer),
            (t1a, p1, Relationship::Customer),
            (t1a, p2, Relationship::Customer),
            (t1b, peer_as, Relationship::Customer),
            (p1, user, Relationship::Customer),
            (p2, user, Relationship::Customer),
            (user, peer_as, Relationship::Peer),
        ];
        Fixture { topology: Topology::assemble(ases, edges, vec![]), t1a, p1, p2, user, peer_as }
    }

    fn session(dataset: DataSource, asn: Asn, feed: FeedKind) -> CollectorSession {
        CollectorSession {
            dataset,
            collector: 0,
            peer_asn: asn,
            peer_ip: "192.0.2.9".parse().unwrap(),
            feed,
        }
    }

    fn deployment_with(sessions: Vec<CollectorSession>) -> CollectorDeployment {
        let mut d = CollectorDeployment::default();
        for s in sessions {
            d.add_session(s);
        }
        d
    }

    fn bh_communities(provider: Asn) -> CommunitySet {
        CommunitySet::from_classic(vec![Community::from_parts(provider.value() as u16, 666)])
    }

    /// Deterministic behaviors: everyone accepts host routes from
    /// customers, nobody from peers (tests override as needed).
    fn pin_behaviors(sim: &mut BgpSimulator<'_>, f: &Fixture) {
        for asn in [f.t1a, f.p1, f.p2, f.user, f.peer_as] {
            sim.set_behavior(asn, SessionBehavior::default());
        }
        sim.set_behavior(Asn::new(11), SessionBehavior::default());
    }

    #[test]
    fn regular_announcement_floods_valley_free() {
        let f = fixture();
        let d = deployment_with(vec![session(DataSource::Ris, f.t1a, FeedKind::Full)]);
        let mut sim = BgpSimulator::new(&f.topology, d, 1);
        pin_behaviors(&mut sim, &f);
        let outcome = sim.announce(
            SimTime::from_unix(100),
            &Announcement::simple(f.user, "30.0.0.0/16".parse().unwrap(), CommunitySet::new()),
        );
        assert!(outcome.accepted_by.is_empty());
        let elems = sim.drain_elems();
        // T1a sees the route via its customers P1/P2.
        assert!(!elems.is_empty());
        let announce = elems.iter().find(|e| e.is_announce()).unwrap();
        assert_eq!(announce.prefix, "30.0.0.0/16".parse().unwrap());
        assert_eq!(announce.as_path.origin(), Some(f.user));
        // Valley-free: path is T1a ← {P1|P2} ← user.
        assert_eq!(announce.as_path.hop_len(), 3);
        assert_eq!(announce.as_path.first(), Some(f.t1a));
    }

    #[test]
    fn blackhole_accepted_at_provider() {
        let f = fixture();
        let d = deployment_with(vec![]);
        let mut sim = BgpSimulator::new(&f.topology, d, 1);
        pin_behaviors(&mut sim, &f);
        let outcome = sim.announce(
            SimTime::from_unix(100),
            &Announcement {
                origin: f.user,
                prefix: "30.0.1.1/32".parse().unwrap(),
                communities: bh_communities(f.p1),
                scope: AnnounceScope::Neighbors(vec![f.p1]),
                irr_registered: true,
                prepend: 1,
            },
        );
        assert_eq!(outcome.accepted_by, vec![f.p1]);
        assert!(outcome.rejected_by.is_empty());
        assert!(sim.is_blackholed_at(f.p1, &"30.0.1.1/32".parse().unwrap()));
        assert!(!sim.is_blackholed_at(f.p2, &"30.0.1.1/32".parse().unwrap()));
    }

    #[test]
    fn rfc_compliant_provider_suppresses_propagation() {
        // P1 honors no-export: T1a must never learn the /32.
        let f = fixture();
        let d = deployment_with(vec![session(DataSource::Ris, f.t1a, FeedKind::Full)]);
        let mut sim = BgpSimulator::new(&f.topology, d, 1);
        pin_behaviors(&mut sim, &f);
        sim.announce(
            SimTime::from_unix(100),
            &Announcement {
                origin: f.user,
                prefix: "30.0.1.1/32".parse().unwrap(),
                communities: bh_communities(f.p1),
                scope: AnnounceScope::Neighbors(vec![f.p1]),
                irr_registered: true,
                prepend: 1,
            },
        );
        assert!(sim.drain_elems().is_empty());
    }

    #[test]
    fn non_compliant_provider_propagates_with_stripped_community() {
        // P2 strips its community but does propagate.
        let f = fixture();
        let d = deployment_with(vec![session(DataSource::Ris, f.t1a, FeedKind::Full)]);
        let mut sim = BgpSimulator::new(&f.topology, d, 1);
        pin_behaviors(&mut sim, &f);
        sim.announce(
            SimTime::from_unix(100),
            &Announcement {
                origin: f.user,
                prefix: "30.0.1.1/32".parse().unwrap(),
                communities: bh_communities(f.p2),
                scope: AnnounceScope::Neighbors(vec![f.p2]),
                irr_registered: true,
                prepend: 1,
            },
        );
        let elems = sim.drain_elems();
        let announce = elems.iter().find(|e| e.is_announce()).expect("T1a sees the /32");
        assert_eq!(announce.prefix, "30.0.1.1/32".parse().unwrap());
        // The trigger was stripped.
        assert!(!announce.communities.contains(Community::from_parts(f.p2.value() as u16, 666)));
        // Provider is on the path.
        assert!(announce.as_path.contains(f.p2));
    }

    #[test]
    fn bundling_is_visible_via_non_provider_neighbors() {
        // USER bundles P1+P2 triggers and announces to ALL neighbors,
        // including peerAS which has a collector session. Even though P1
        // suppresses and P2 strips, the bundle is visible via peerAS with
        // both communities intact (Fig. 3's key mechanism).
        let f = fixture();
        let d = deployment_with(vec![session(DataSource::RouteViews, f.peer_as, FeedKind::Full)]);
        let mut sim = BgpSimulator::new(&f.topology, d, 1);
        pin_behaviors(&mut sim, &f);
        sim.set_behavior(
            f.peer_as,
            SessionBehavior { host_routes_from_customers: true, host_routes_from_peers: true },
        );
        let mut communities = bh_communities(f.p1);
        communities.merge(&bh_communities(f.p2));
        sim.announce(
            SimTime::from_unix(100),
            &Announcement {
                origin: f.user,
                prefix: "30.0.1.1/32".parse().unwrap(),
                communities: communities.clone(),
                scope: AnnounceScope::AllNeighbors,
                irr_registered: true,
                prepend: 1,
            },
        );
        let elems = sim.drain_elems();
        let seen = elems.iter().find(|e| e.is_announce() && e.peer_asn == f.peer_as);
        // peerAS accepts the /32 from its peer only if its session
        // behavior allows host routes from peers; the chosen seed does.
        let announce = seen.expect("bundled announcement visible at peerAS");
        assert!(announce.communities.contains(Community::from_parts(f.p1.value() as u16, 666)));
        assert!(announce.communities.contains(Community::from_parts(f.p2.value() as u16, 666)));
        // Neither provider is on the path (no-path / bundling case).
        assert!(!announce.as_path.contains(f.p1));
        assert!(!announce.as_path.contains(f.p2));
    }

    #[test]
    fn no_export_hides_from_public_but_not_internal() {
        let f = fixture();
        let d = deployment_with(vec![
            session(DataSource::Ris, f.p1, FeedKind::Full),
            session(DataSource::Cdn, f.p1, FeedKind::Internal),
        ]);
        let mut sim = BgpSimulator::new(&f.topology, d, 1);
        pin_behaviors(&mut sim, &f);
        let mut communities = bh_communities(f.p1);
        communities.insert(Community::NO_EXPORT);
        sim.announce(
            SimTime::from_unix(100),
            &Announcement {
                origin: f.user,
                prefix: "30.0.1.1/32".parse().unwrap(),
                communities,
                scope: AnnounceScope::Neighbors(vec![f.p1]),
                irr_registered: true,
                prepend: 1,
            },
        );
        let elems = sim.drain_elems();
        assert!(
            elems.iter().all(|e| e.dataset != DataSource::Ris),
            "RIS must not see a NO_EXPORT route"
        );
        let cdn = elems.iter().find(|e| e.dataset == DataSource::Cdn);
        assert!(cdn.is_some(), "CDN internal session sees NO_EXPORT routes");
        assert!(cdn.unwrap().communities.has_no_export());
    }

    #[test]
    fn direct_feed_sees_tagged_route() {
        // P2 has a RIS session: the tagged /32 is visible there even
        // before propagation (direct feed).
        let f = fixture();
        let d = deployment_with(vec![session(DataSource::Ris, f.p2, FeedKind::Full)]);
        let mut sim = BgpSimulator::new(&f.topology, d, 1);
        pin_behaviors(&mut sim, &f);
        sim.announce(
            SimTime::from_unix(100),
            &Announcement {
                origin: f.user,
                prefix: "30.0.1.1/32".parse().unwrap(),
                communities: bh_communities(f.p2),
                scope: AnnounceScope::Neighbors(vec![f.p2]),
                irr_registered: true,
                prepend: 1,
            },
        );
        let elems = sim.drain_elems();
        let announce = elems.iter().find(|e| e.is_announce()).expect("direct feed elem");
        assert_eq!(announce.peer_asn, f.p2);
        // Direct feeds retain the tag (stripping applies on neighbor
        // export, not on the provider's own collector session).
        assert!(announce.communities.contains(Community::from_parts(f.p2.value() as u16, 666)));
        assert_eq!(announce.as_path.distance_from_peer(f.p2), Some(0));
    }

    #[test]
    fn withdraw_generates_withdraw_elems() {
        let f = fixture();
        let d = deployment_with(vec![session(DataSource::Ris, f.p2, FeedKind::Full)]);
        let mut sim = BgpSimulator::new(&f.topology, d, 1);
        pin_behaviors(&mut sim, &f);
        let prefix: Ipv4Prefix = "30.0.1.1/32".parse().unwrap();
        sim.announce(
            SimTime::from_unix(100),
            &Announcement {
                origin: f.user,
                prefix,
                communities: bh_communities(f.p2),
                scope: AnnounceScope::Neighbors(vec![f.p2]),
                irr_registered: true,
                prepend: 1,
            },
        );
        sim.withdraw(SimTime::from_unix(200), f.user, prefix);
        let elems = sim.drain_elems();
        let withdraw =
            elems.iter().find(|e| e.elem_type == ElemType::Withdraw).expect("withdraw elem");
        assert_eq!(withdraw.prefix, prefix);
        assert_eq!(withdraw.time, SimTime::from_unix(200));
        assert!(!sim.is_blackholed_at(f.p2, &prefix));
    }

    #[test]
    fn unauthorized_blackhole_is_rejected() {
        // USER requests blackholing of peerAS's space: auth failure at P1.
        let f = fixture();
        let d = deployment_with(vec![]);
        let mut sim = BgpSimulator::new(&f.topology, d, 1);
        pin_behaviors(&mut sim, &f);
        let outcome = sim.announce(
            SimTime::from_unix(100),
            &Announcement {
                origin: f.user,
                prefix: "54.0.1.1/32".parse().unwrap(),
                communities: bh_communities(f.p1),
                scope: AnnounceScope::Neighbors(vec![f.p1]),
                irr_registered: true,
                prepend: 1,
            },
        );
        assert!(outcome.accepted_by.is_empty());
        assert_eq!(outcome.rejected_by, vec![(f.p1, RejectReason::AuthFailed)]);
    }

    #[test]
    fn prepending_does_not_break_user_inference() {
        let f = fixture();
        let d = deployment_with(vec![session(DataSource::Ris, f.t1a, FeedKind::Full)]);
        let mut sim = BgpSimulator::new(&f.topology, d, 1);
        pin_behaviors(&mut sim, &f);
        sim.announce(
            SimTime::from_unix(100),
            &Announcement {
                origin: f.user,
                prefix: "30.0.1.1/32".parse().unwrap(),
                communities: bh_communities(f.p2),
                scope: AnnounceScope::Neighbors(vec![f.p2]),
                irr_registered: true,
                prepend: 3,
            },
        );
        let elems = sim.drain_elems();
        let announce = elems.iter().find(|e| e.is_announce()).unwrap();
        assert!(announce.as_path.has_prepending());
        assert_eq!(announce.as_path.hop_before(f.p2), Some(f.user));
    }

    #[test]
    fn reannouncement_without_community_updates_state() {
        // The implicit-withdrawal signal: re-announce without the tag.
        let f = fixture();
        let d = deployment_with(vec![session(DataSource::Ris, f.p2, FeedKind::Full)]);
        let mut sim = BgpSimulator::new(&f.topology, d, 1);
        pin_behaviors(&mut sim, &f);
        let prefix: Ipv4Prefix = "30.0.1.1/32".parse().unwrap();
        sim.announce(
            SimTime::from_unix(100),
            &Announcement {
                origin: f.user,
                prefix,
                communities: bh_communities(f.p2),
                scope: AnnounceScope::Neighbors(vec![f.p2]),
                irr_registered: true,
                prepend: 1,
            },
        );
        assert!(sim.is_blackholed_at(f.p2, &prefix));
        sim.announce(
            SimTime::from_unix(160),
            &Announcement {
                origin: f.user,
                prefix,
                communities: CommunitySet::new(),
                scope: AnnounceScope::Neighbors(vec![f.p2]),
                irr_registered: true,
                prepend: 1,
            },
        );
        assert!(!sim.is_blackholed_at(f.p2, &prefix));
        let elems = sim.drain_elems();
        // Two announcements at the direct feed: tagged then untagged.
        let announces: Vec<_> =
            elems.iter().filter(|e| e.is_announce() && e.peer_asn == f.p2).collect();
        assert_eq!(announces.len(), 2);
        assert!(!announces[0].communities.is_empty());
        assert!(announces[1].communities.is_empty());
    }

    #[test]
    fn route_server_redistributes_and_pch_attributes_members() {
        use bh_topology::{TopologyBuilder, TopologyConfig};
        // Generated topology: find an IXP with blackholing and ≥2 members.
        let t = TopologyBuilder::new(TopologyConfig::tiny(21)).build();
        let ixp = t
            .ixps()
            .iter()
            .find(|ixp| {
                ixp.members.len() >= 2
                    && t.as_info(ixp.route_server_asn)
                        .is_some_and(|i| i.blackhole_offering.is_some())
            })
            .expect("blackholing IXP exists")
            .clone();
        let member = *ixp
            .members
            .iter()
            .find(|m| !t.as_info(**m).unwrap().prefixes.is_empty())
            .expect("member with address space");
        let victim = t.as_info(member).unwrap().prefixes[0];
        let host = victim.nth_addr(7).map(Ipv4Prefix::host).unwrap();

        let d = crate::collector::deploy(
            &t,
            &CollectorConfig { pch_ixp_coverage: 1.0, ..CollectorConfig::tiny(5) },
        );
        let mut sim = BgpSimulator::new(&t, d, 9);
        let trigger = t
            .as_info(ixp.route_server_asn)
            .unwrap()
            .blackhole_offering
            .as_ref()
            .unwrap()
            .primary_community();
        let outcome = sim.announce(
            SimTime::from_unix(100),
            &Announcement {
                origin: member,
                prefix: host,
                communities: CommunitySet::from_classic(vec![trigger]),
                scope: AnnounceScope::Neighbors(vec![ixp.route_server_asn]),
                irr_registered: true,
                prepend: 1,
            },
        );
        assert!(outcome.accepted_by.contains(&ixp.route_server_asn));
        let elems = sim.drain_elems();
        let pch: Vec<_> =
            elems.iter().filter(|e| e.dataset == DataSource::Pch && e.prefix == host).collect();
        assert!(!pch.is_empty(), "PCH route-server view sees the blackhole");
        for e in &pch {
            assert_eq!(e.peer_asn, member, "attributed to the announcing member");
            match e.peer_ip {
                IpAddr::V4(ip) => assert!(ixp.peering_lan.contains_addr(ip)),
                IpAddr::V6(_) => panic!("LAN addresses are IPv4"),
            }
            assert!(e.communities.contains(trigger));
            // Blackhole next-hop set by the route server.
            assert!(e.next_hop.is_some());
        }
    }

    #[test]
    fn route_server_rejects_unregistered_member_routes() {
        use bh_topology::{TopologyBuilder, TopologyConfig};
        let t = TopologyBuilder::new(TopologyConfig::tiny(21)).build();
        let ixp = t
            .ixps()
            .iter()
            .find(|ixp| {
                ixp.members.len() >= 2
                    && t.as_info(ixp.route_server_asn)
                        .is_some_and(|i| i.blackhole_offering.is_some())
            })
            .expect("blackholing IXP exists")
            .clone();
        let member =
            *ixp.members.iter().find(|m| !t.as_info(**m).unwrap().prefixes.is_empty()).unwrap();
        let victim = t.as_info(member).unwrap().prefixes[0];
        let host = victim.nth_addr(7).map(Ipv4Prefix::host).unwrap();
        let d = crate::collector::deploy(
            &t,
            &CollectorConfig { pch_ixp_coverage: 1.0, ..CollectorConfig::tiny(5) },
        );
        let mut sim = BgpSimulator::new(&t, d, 9);
        let trigger = t
            .as_info(ixp.route_server_asn)
            .unwrap()
            .blackhole_offering
            .as_ref()
            .unwrap()
            .primary_community();
        let outcome = sim.announce(
            SimTime::from_unix(100),
            &Announcement {
                origin: member,
                prefix: host,
                communities: CommunitySet::from_classic(vec![trigger]),
                scope: AnnounceScope::Neighbors(vec![ixp.route_server_asn]),
                irr_registered: false, // misconfigured user
                prepend: 1,
            },
        );
        assert!(outcome.accepted_by.is_empty());
        assert!(outcome
            .rejected_by
            .iter()
            .any(|(asn, r)| *asn == ixp.route_server_asn && *r == RejectReason::AuthFailed));
        assert!(sim.drain_elems().iter().all(|e| e.prefix != host));
    }

    // ---- policy extensions ----------------------------------------------

    #[test]
    fn run_stats_count_per_reason_rejections() {
        let f = fixture();
        let mut sim = BgpSimulator::new(&f.topology, deployment_with(vec![]), 1);
        pin_behaviors(&mut sim, &f);

        // USER requests blackholing of peerAS's space: AuthFailed at
        // P1, but the route is still imported as a plain route, so it
        // lands in trigger_rejects, not import_rejects.
        sim.announce(
            SimTime::from_unix(100),
            &Announcement {
                origin: f.user,
                prefix: "54.0.1.0/25".parse().unwrap(),
                communities: bh_communities(f.p1),
                scope: AnnounceScope::Neighbors(vec![f.p1]),
                irr_registered: true,
                prepend: 1,
            },
        );
        assert_eq!(
            sim.run_stats().trigger_rejects.get(&RejectReason::AuthFailed),
            Some(&1),
            "inert trigger counted as trigger rejection"
        );

        // An untagged host route bundled everywhere: peers reject it
        // TooSpecific (pin_behaviors: nobody accepts /32s from peers).
        sim.announce(
            SimTime::from_unix(200),
            &Announcement::simple(f.user, "30.0.2.1/32".parse().unwrap(), CommunitySet::new()),
        );
        assert!(
            sim.run_stats().import_rejects_for(RejectReason::TooSpecific) > 0,
            "peer sessions reject untagged host routes"
        );

        // Flooding a regular prefix exercises loop prevention.
        sim.announce(
            SimTime::from_unix(300),
            &Announcement::simple(f.user, "30.0.0.0/16".parse().unwrap(), CommunitySet::new()),
        );
        assert!(sim.run_stats().import_rejects_for(RejectReason::LoopDetected) > 0);

        let total = sim.run_stats().total_import_rejects();
        assert!(total > 0);
        sim.reset_run_stats();
        assert_eq!(sim.run_stats().total_import_rejects(), 0);
    }

    #[test]
    fn rov_with_strict_roas_filters_blackhole_host_routes() {
        use bh_topology::{PolicyTable, RoaTable};

        let f = fixture();
        let host: Ipv4Prefix = "30.0.1.1/32".parse().unwrap();
        let request = Announcement {
            origin: f.user,
            prefix: host,
            communities: bh_communities(f.p1),
            scope: AnnounceScope::Neighbors(vec![f.p1]),
            irr_registered: true,
            prepend: 1,
        };

        // Without policies the provider accepts the blackhole.
        let mut sim = BgpSimulator::new(&f.topology, deployment_with(vec![]), 1);
        pin_behaviors(&mut sim, &f);
        assert_eq!(sim.announce(SimTime::from_unix(100), &request).accepted_by, vec![f.p1]);

        // Strict ROAs (max_length = allocation length) + ROV at the
        // provider: the /32 is RPKI-Invalid and never reaches trigger
        // evaluation.
        let mut table = PolicyTable::new();
        table.set_roas(RoaTable::strict_from_topology(&f.topology));
        table.entry(f.p1).rov = true;
        let mut sim = BgpSimulator::new(&f.topology, deployment_with(vec![]), 1);
        pin_behaviors(&mut sim, &f);
        assert!(sim.install_policies(&table));
        let outcome = sim.announce(SimTime::from_unix(100), &request);
        assert!(outcome.accepted_by.is_empty(), "ROV rejects the RPKI-Invalid host route");
        assert!(!sim.is_blackholed_at(f.p1, &host));
        assert_eq!(sim.run_stats().import_rejects_for(RejectReason::RovInvalid), 1);
        assert_eq!(sim.run_stats().extension_rejects.get("rov"), Some(&1));
    }

    #[test]
    fn empty_table_installs_nothing() {
        let f = fixture();
        let mut sim = BgpSimulator::new(&f.topology, deployment_with(vec![]), 1);
        assert!(!sim.install_policies(&bh_topology::PolicyTable::new()));
    }

    #[test]
    fn leaker_forces_export_and_otc_contains_it() {
        use bh_topology::PolicyTable;

        let t1b = Asn::new(11);
        let f = fixture();
        let prefix: Ipv4Prefix = "30.0.0.0/16".parse().unwrap();

        // peer_as learns user's prefix over their peering; valley-free
        // forbids re-exporting a peer route to its provider T1b.
        let mut table = PolicyTable::new();
        table.entry(f.peer_as).leaker = true;
        let mut sim = BgpSimulator::new(&f.topology, deployment_with(vec![]), 1);
        pin_behaviors(&mut sim, &f);
        sim.install_policies(&table);
        sim.announce(
            SimTime::from_unix(100),
            &Announcement::simple(f.user, prefix, CommunitySet::new()),
        );
        assert!(sim.run_stats().exports_forced > 0, "leaker forces the peer route upward");

        // With OTC at both ends, peer_as marks the peer-learned route
        // and T1b drops the marked route from its customer: the leak is
        // contained and accounted.
        let mut table = PolicyTable::new();
        table.entry(f.peer_as).leaker = true;
        table.entry(f.peer_as).only_to_customers = true;
        table.entry(t1b).only_to_customers = true;
        let mut sim = BgpSimulator::new(&f.topology, deployment_with(vec![]), 1);
        pin_behaviors(&mut sim, &f);
        sim.install_policies(&table);
        sim.announce(
            SimTime::from_unix(100),
            &Announcement::simple(f.user, prefix, CommunitySet::new()),
        );
        assert!(sim.run_stats().import_rejects_for(RejectReason::RouteLeak) > 0);
        assert_eq!(
            sim.run_stats().extension_rejects.get("only-to-customers"),
            Some(&sim.run_stats().import_rejects_for(RejectReason::RouteLeak))
        );
    }

    #[test]
    fn scrub_strips_bundled_trigger_on_export() {
        use bh_topology::{CommunityScrub, PolicyTable};

        let f = fixture();
        let host: Ipv4Prefix = "30.0.1.1/32".parse().unwrap();
        let mut communities = bh_communities(f.p1);
        communities.merge(&bh_communities(f.p2));
        let request = Announcement {
            origin: f.user,
            prefix: host,
            communities,
            scope: AnnounceScope::Neighbors(vec![f.p2]),
            irr_registered: true,
            prepend: 1,
        };
        let p1_trigger = Community::from_parts(f.p1.value() as u16, 666);

        // Baseline: P2 strips only its own trigger, so T1a still sees
        // P1's bundled community on the propagated route.
        let d = deployment_with(vec![session(DataSource::Ris, f.t1a, FeedKind::Full)]);
        let mut sim = BgpSimulator::new(&f.topology, d, 1);
        pin_behaviors(&mut sim, &f);
        sim.announce(SimTime::from_unix(100), &request);
        let elems = sim.drain_elems();
        assert!(elems.iter().any(|e| e.communities.contains(p1_trigger)));

        // A community-scrub extension at P2 also removes P1's trigger:
        // the bundled signal is laundered before it reaches T1a.
        let mut table = PolicyTable::new();
        table.entry(f.p2).scrub =
            Some(CommunityScrub { strip_all: false, strip: vec![p1_trigger], rewrite: vec![] });
        let d = deployment_with(vec![session(DataSource::Ris, f.t1a, FeedKind::Full)]);
        let mut sim = BgpSimulator::new(&f.topology, d, 1);
        pin_behaviors(&mut sim, &f);
        sim.install_policies(&table);
        sim.announce(SimTime::from_unix(100), &request);
        let elems = sim.drain_elems();
        assert!(!elems.is_empty());
        assert!(elems.iter().all(|e| !e.communities.contains(p1_trigger)));
    }
}
