//! Pluggable per-AS policy extensions over the Gao-Rexford core.
//!
//! [`crate::policy`] is the *invariant* layer: relationship preferences,
//! valley-free exports, and blackhole trigger evaluation, identical at
//! every AS. This module is the *configurable* layer on top: a
//! [`PolicyExtension`] trait with hooks at the three places a real
//! router's policy config attaches —
//!
//! * **origin** (`on_origin`): rewrite communities / prepending as the
//!   route is first announced,
//! * **import** (`on_import`): accept or reject a route *before* the
//!   Gao-Rexford import runs, optionally mutating route state,
//! * **export** (`on_export`): veto ([`ExportAction::Suppress`]) or
//!   override ([`ExportAction::Force`]) the valley-free `may_export`
//!   verdict and scrub outgoing communities.
//!
//! Concrete extensions ship for ROV (against a [`RoaTable`]),
//! peerlock-lite, RFC 9234-style only-to-customers, community
//! strip/rewrite, path-end validation, and a deliberately misbehaving
//! route leaker. A [`PolicyEngine`] compiles a declarative
//! [`PolicyTable`] (from `bh-topology`) into per-AS hook chains; ASes
//! absent from the table pay nothing, and an empty table compiles to an
//! engine the simulator refuses to install — keeping the extensions-off
//! path bit-identical to the pre-extension baseline.
//!
//! Hooks run at regular ASes only. IXP route servers keep their own
//! fixed redistribution semantics (`sim.rs`): they are transparent
//! multipliers, not policy actors, and the paper's PCH visibility
//! depends on that transparency.

use std::collections::BTreeMap;

use bh_bgp_types::as_path::AsPath;
use bh_bgp_types::community::CommunitySet;
use bh_bgp_types::hash::FxHashMap;
use bh_bgp_types::prefix::Ipv4Prefix;
use bh_bgp_types::Asn;
use bh_topology::{AsPolicy, CommunityScrub, PolicyTable, Relationship, RoaTable, RpkiValidity};
use bh_topology::{Tier, Topology};

use crate::policy::RejectReason;

/// Context handed to [`PolicyExtension::on_origin`]: the announcement
/// as the origin AS is about to push it to its neighbors.
pub struct OriginCx<'a> {
    pub origin: Asn,
    pub prefix: &'a Ipv4Prefix,
    /// Communities attached to the announcement; mutable so origin-side
    /// scrubbing/rewriting applies before the first export.
    pub communities: &'a mut CommunitySet,
    /// Extra origin prepends (0 = announce the plain path).
    pub prepend: &'a mut usize,
    pub topology: &'a Topology,
}

/// Context handed to [`PolicyExtension::on_import`]: a route arriving
/// at `me` from neighbor `from`, before the Gao-Rexford import runs.
pub struct ImportCx<'a> {
    pub me: Asn,
    pub from: Asn,
    /// `me`'s relationship to `from` (`Customer` means the sender is
    /// `me`'s customer — the `local_pref_for` convention).
    pub rel: Relationship,
    pub prefix: &'a Ipv4Prefix,
    pub as_path: &'a AsPath,
    pub communities: &'a CommunitySet,
    /// The route's only-to-customers mark (RFC 9234's OTC attribute);
    /// extensions may read it to detect leaks and set it to contain
    /// them downstream.
    pub leak_marked: &'a mut bool,
    pub topology: &'a Topology,
    pub roas: &'a RoaTable,
}

/// Context handed to [`PolicyExtension::on_export`]: `me`'s best route
/// about to be advertised to neighbor `to`.
pub struct ExportCx<'a> {
    pub me: Asn,
    pub to: Asn,
    /// `me`'s relationship to `to` (`Customer` means the receiver is
    /// `me`'s customer).
    pub to_rel: Relationship,
    /// How the best route was learned.
    pub learned_rel: Relationship,
    pub prefix: &'a Ipv4Prefix,
    pub as_path: &'a AsPath,
    /// Outgoing copy of the route's communities; scrub extensions edit
    /// this without touching the stored route.
    pub communities: &'a mut CommunitySet,
    /// Outgoing copy of the only-to-customers mark.
    pub leak_marked: &'a mut bool,
    /// The valley-free `may_export` verdict the core already computed.
    pub default_allowed: bool,
    pub topology: &'a Topology,
}

/// What an export hook wants done with the advertisement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExportAction {
    /// Defer to the core verdict (and any other extension).
    Default,
    /// Never advertise to this neighbor. Dominates `Force`.
    Suppress,
    /// Advertise even where valley-free export forbids it (leaks).
    Force,
}

/// A per-AS policy hook. All hooks default to no-ops so an extension
/// implements only the phases it cares about.
pub trait PolicyExtension: Send + Sync {
    /// Stable name used for per-extension rejection accounting.
    fn name(&self) -> &'static str;

    fn on_origin(&self, _cx: &mut OriginCx<'_>) {}

    /// `Err(reason)` rejects the route before the Gao-Rexford import.
    fn on_import(&self, _cx: &mut ImportCx<'_>) -> Result<(), RejectReason> {
        Ok(())
    }

    fn on_export(&self, _cx: &mut ExportCx<'_>) -> ExportAction {
        ExportAction::Default
    }
}

/// RFC 6811 route-origin validation: drop RPKI-Invalid routes. Under a
/// strict ROA table (max_length = allocation length) this filters every
/// RTBH host route at deploying ASes — the blackholing-vs-ROV tension
/// the adversarial workloads quantify.
pub struct Rov;

impl PolicyExtension for Rov {
    fn name(&self) -> &'static str {
        "rov"
    }

    fn on_import(&self, cx: &mut ImportCx<'_>) -> Result<(), RejectReason> {
        let Some(origin) = cx.as_path.origin() else {
            return Ok(());
        };
        match cx.roas.validity(cx.prefix, origin) {
            RpkiValidity::Invalid => Err(RejectReason::RovInvalid),
            RpkiValidity::Valid | RpkiValidity::NotFound => Ok(()),
        }
    }
}

/// Peerlock-lite: a route learned from a customer or peer that carries
/// a Tier-1 ASN (other than the sender itself) must be a leak — under
/// valley-free export no Tier-1 ever appears downstream of a non-Tier-1
/// on a legitimate customer/peer path.
pub struct PeerlockLite;

impl PolicyExtension for PeerlockLite {
    fn name(&self) -> &'static str {
        "peerlock-lite"
    }

    fn on_import(&self, cx: &mut ImportCx<'_>) -> Result<(), RejectReason> {
        if !matches!(
            cx.rel,
            Relationship::Customer | Relationship::Peer | Relationship::RouteServer
        ) {
            return Ok(());
        }
        for asn in cx.as_path.iter_asns() {
            if asn == cx.from {
                continue;
            }
            if cx.topology.as_info(asn).is_some_and(|info| info.tier == Tier::Tier1) {
                return Err(RejectReason::PeerlockViolation);
            }
        }
        Ok(())
    }
}

/// RFC 9234-style only-to-customers: mark routes learned from providers
/// or peers; a *marked* route arriving from a customer or peer means a
/// leak already happened upstream, so drop it. Exports to customers and
/// peers also set the mark, containing leaks one hop out even when the
/// leaker itself deploys nothing.
pub struct OnlyToCustomers;

impl PolicyExtension for OnlyToCustomers {
    fn name(&self) -> &'static str {
        "only-to-customers"
    }

    fn on_import(&self, cx: &mut ImportCx<'_>) -> Result<(), RejectReason> {
        match cx.rel {
            Relationship::Customer | Relationship::Peer | Relationship::RouteServer => {
                if *cx.leak_marked {
                    return Err(RejectReason::RouteLeak);
                }
                if cx.rel != Relationship::Customer {
                    // Learned from a lateral peer: may only go to my
                    // customers from here on.
                    *cx.leak_marked = true;
                }
                Ok(())
            }
            Relationship::Provider => {
                *cx.leak_marked = true;
                Ok(())
            }
        }
    }

    fn on_export(&self, cx: &mut ExportCx<'_>) -> ExportAction {
        if matches!(cx.to_rel, Relationship::Customer | Relationship::Peer) {
            *cx.leak_marked = true;
        }
        ExportAction::Default
    }
}

/// Path-end validation (the lightweight BGPsec alternative): the hop
/// adjacent to the origin must be a real topology neighbor of the
/// origin. Catches forged-origin hijacks that graft a victim origin
/// onto an attacker path.
pub struct PathEnd;

impl PolicyExtension for PathEnd {
    fn name(&self) -> &'static str {
        "path-end"
    }

    fn on_import(&self, cx: &mut ImportCx<'_>) -> Result<(), RejectReason> {
        let Some(origin) = cx.as_path.origin() else {
            return Ok(());
        };
        if cx.topology.as_info(origin).is_none() {
            return Ok(()); // unknown origin: nothing to validate against
        }
        let hops: Vec<Asn> = cx.as_path.iter_asns().collect();
        let Some(last_hop) = hops.iter().rev().find(|a| **a != origin) else {
            return Ok(()); // origin-only path: a direct session
        };
        if cx.topology.neighbors(origin).iter().any(|(n, _)| n == last_hop) {
            Ok(())
        } else {
            Err(RejectReason::PathEndInvalid)
        }
    }
}

/// Community strip/rewrite on export, from the per-AS
/// [`CommunityScrub`] config. Models transit networks that launder
/// customer-attached informational communities — the behavior that
/// erodes community-based inference visibility.
pub struct CommunityScrubExt {
    scrub: CommunityScrub,
}

impl CommunityScrubExt {
    pub fn new(scrub: CommunityScrub) -> Self {
        Self { scrub }
    }
}

impl PolicyExtension for CommunityScrubExt {
    fn name(&self) -> &'static str {
        "community-scrub"
    }

    fn on_export(&self, cx: &mut ExportCx<'_>) -> ExportAction {
        if self.scrub.strip_all {
            cx.communities.retain(|_| false);
        } else {
            for c in &self.scrub.strip {
                cx.communities.remove(*c);
            }
        }
        for (from, to) in &self.scrub.rewrite {
            if cx.communities.remove(*from) {
                cx.communities.insert(*to);
            }
        }
        ExportAction::Default
    }
}

/// Deliberate misbehavior: export every best route to every neighbor,
/// ignoring the valley-free rule. The route-leak workloads install this
/// at chosen transit ASes to create the leak traffic the inference must
/// not misread as blackholing. NO_EXPORT and RFC 7999 suppression are
/// hard rules in the simulator and are never leaked through.
pub struct Leaker;

impl PolicyExtension for Leaker {
    fn name(&self) -> &'static str {
        "leaker"
    }

    fn on_export(&self, cx: &mut ExportCx<'_>) -> ExportAction {
        if cx.default_allowed {
            ExportAction::Default
        } else {
            ExportAction::Force
        }
    }
}

/// Per-`RejectReason` and per-extension accounting for one simulator
/// run. Counters only — recording a rejection never perturbs routing,
/// which the empty-table bit-identity property depends on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Routes actually rejected on import (candidate removed), by
    /// reason. Includes the Gao-Rexford core reasons (`LoopDetected`,
    /// `TooSpecific`) and every extension reason.
    pub import_rejects: BTreeMap<RejectReason, u64>,
    /// Blackhole triggers that matched but did not fire (`AuthFailed`,
    /// `LengthRejected`); the route itself still imported normally.
    pub trigger_rejects: BTreeMap<RejectReason, u64>,
    /// Import rejections attributed to a named policy extension.
    pub extension_rejects: BTreeMap<&'static str, u64>,
    /// Advertisements vetoed by an export hook.
    pub exports_suppressed: u64,
    /// Advertisements forced past the valley-free rule (leaks).
    pub exports_forced: u64,
    /// Propagation runs that hit the step cap and were abandoned
    /// (`PropagationError::NoConvergence` surfaced to the caller).
    pub convergence_failures: u64,
}

impl RunStats {
    pub fn record_import_reject(&mut self, reason: RejectReason) {
        *self.import_rejects.entry(reason).or_insert(0) += 1;
    }

    pub fn record_trigger_reject(&mut self, reason: RejectReason) {
        *self.trigger_rejects.entry(reason).or_insert(0) += 1;
    }

    fn record_extension_reject(&mut self, reason: RejectReason, name: &'static str) {
        self.record_import_reject(reason);
        *self.extension_rejects.entry(name).or_insert(0) += 1;
    }

    pub fn import_rejects_for(&self, reason: RejectReason) -> u64 {
        self.import_rejects.get(&reason).copied().unwrap_or(0)
    }

    pub fn total_import_rejects(&self) -> u64 {
        self.import_rejects.values().sum()
    }

    /// Fold another run's counters into this one (the phased engine
    /// accounts per parallel unit, then absorbs in deterministic order).
    pub fn absorb(&mut self, other: RunStats) {
        for (reason, n) in other.import_rejects {
            *self.import_rejects.entry(reason).or_insert(0) += n;
        }
        for (reason, n) in other.trigger_rejects {
            *self.trigger_rejects.entry(reason).or_insert(0) += n;
        }
        for (name, n) in other.extension_rejects {
            *self.extension_rejects.entry(name).or_insert(0) += n;
        }
        self.exports_suppressed += other.exports_suppressed;
        self.exports_forced += other.exports_forced;
        self.convergence_failures += other.convergence_failures;
    }
}

/// One AS's compiled hook chain, in a fixed deterministic order:
/// validation first (ROV, peerlock, path-end, OTC), then mutation
/// (scrub), then misbehavior (leaker).
struct Compiled {
    extensions: Vec<Box<dyn PolicyExtension>>,
}

impl Compiled {
    fn from_policy(policy: &AsPolicy) -> Option<Self> {
        let mut extensions: Vec<Box<dyn PolicyExtension>> = Vec::new();
        if policy.rov {
            extensions.push(Box::new(Rov));
        }
        if policy.peerlock_lite {
            extensions.push(Box::new(PeerlockLite));
        }
        if policy.path_end {
            extensions.push(Box::new(PathEnd));
        }
        if policy.only_to_customers {
            extensions.push(Box::new(OnlyToCustomers));
        }
        if let Some(scrub) = &policy.scrub {
            if !scrub.is_noop() {
                extensions.push(Box::new(CommunityScrubExt::new(scrub.clone())));
            }
        }
        if policy.leaker {
            extensions.push(Box::new(Leaker));
        }
        if extensions.is_empty() {
            None
        } else {
            Some(Self { extensions })
        }
    }
}

/// A [`PolicyTable`] compiled into per-AS hook chains, ready for the
/// simulator. ASes without policies are absent from the map and pay a
/// single hash probe per hook site.
pub struct PolicyEngine {
    per_as: FxHashMap<Asn, Compiled>,
    roas: RoaTable,
}

impl PolicyEngine {
    /// Compile a declarative table. Returns `None` when the table is
    /// empty — the simulator then skips installation entirely, keeping
    /// the extensions-off fast path byte-for-byte identical.
    pub fn compile(table: &PolicyTable) -> Option<Self> {
        if table.is_empty() {
            return None;
        }
        let mut per_as = FxHashMap::default();
        for (asn, policy) in table.iter() {
            if let Some(compiled) = Compiled::from_policy(policy) {
                per_as.insert(asn, compiled);
            }
        }
        Some(Self { per_as, roas: table.roas().clone() })
    }

    /// Number of ASes with at least one compiled extension.
    pub fn deployed_count(&self) -> usize {
        self.per_as.len()
    }

    /// Run the origin hooks of `origin`'s extensions.
    pub fn origin(
        &self,
        topology: &Topology,
        origin: Asn,
        prefix: &Ipv4Prefix,
        communities: &mut CommunitySet,
        prepend: &mut usize,
    ) {
        let Some(compiled) = self.per_as.get(&origin) else {
            return;
        };
        let mut cx = OriginCx { origin, prefix, communities, prepend, topology };
        for ext in &compiled.extensions {
            ext.on_origin(&mut cx);
        }
    }

    /// Run `me`'s import hooks; the first `Err` rejects the route and
    /// is recorded against the extension that raised it.
    #[allow(clippy::too_many_arguments)] // one parameter per BGP attribute of the event
    pub fn import(
        &self,
        topology: &Topology,
        stats: &mut RunStats,
        me: Asn,
        from: Asn,
        rel: Relationship,
        prefix: &Ipv4Prefix,
        as_path: &AsPath,
        communities: &CommunitySet,
        leak_marked: &mut bool,
    ) -> Result<(), RejectReason> {
        let Some(compiled) = self.per_as.get(&me) else {
            return Ok(());
        };
        let mut cx = ImportCx {
            me,
            from,
            rel,
            prefix,
            as_path,
            communities,
            leak_marked,
            topology,
            roas: &self.roas,
        };
        for ext in &compiled.extensions {
            if let Err(reason) = ext.on_import(&mut cx) {
                stats.record_extension_reject(reason, ext.name());
                return Err(reason);
            }
        }
        Ok(())
    }

    /// Run `me`'s export hooks over the core's valley-free verdict.
    /// `Suppress` dominates `Force` dominates the default.
    #[allow(clippy::too_many_arguments)] // one parameter per BGP attribute of the event
    pub fn export(
        &self,
        topology: &Topology,
        stats: &mut RunStats,
        me: Asn,
        to: Asn,
        to_rel: Relationship,
        learned_rel: Relationship,
        prefix: &Ipv4Prefix,
        as_path: &AsPath,
        communities: &mut CommunitySet,
        leak_marked: &mut bool,
        default_allowed: bool,
    ) -> bool {
        let Some(compiled) = self.per_as.get(&me) else {
            return default_allowed;
        };
        let mut cx = ExportCx {
            me,
            to,
            to_rel,
            learned_rel,
            prefix,
            as_path,
            communities,
            leak_marked,
            default_allowed,
            topology,
        };
        let mut suppressed = false;
        let mut forced = false;
        for ext in &compiled.extensions {
            match ext.on_export(&mut cx) {
                ExportAction::Default => {}
                ExportAction::Suppress => suppressed = true,
                ExportAction::Force => forced = true,
            }
        }
        if suppressed {
            if default_allowed {
                stats.exports_suppressed += 1;
            }
            false
        } else if forced {
            if !default_allowed {
                stats.exports_forced += 1;
            }
            true
        } else {
            default_allowed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_bgp_types::community::Community;

    #[test]
    fn empty_table_compiles_to_nothing() {
        let mut table = PolicyTable::new();
        assert!(PolicyEngine::compile(&table).is_none());
        // All-off entries still compile to nothing.
        table.entry(Asn(65001));
        assert!(PolicyEngine::compile(&table).is_none());
        table.entry(Asn(65001)).rov = true;
        let engine = PolicyEngine::compile(&table).expect("non-empty table compiles");
        assert_eq!(engine.deployed_count(), 1);
    }

    #[test]
    fn scrub_strips_and_rewrites() {
        let scrub = CommunityScrub {
            strip_all: false,
            strip: vec![Community::from_parts(65001, 666)],
            rewrite: vec![(Community::from_parts(65001, 100), Community::from_parts(65002, 200))],
        };
        let ext = CommunityScrubExt::new(scrub);
        let mut communities = CommunitySet::new();
        communities.insert(Community::from_parts(65001, 666));
        communities.insert(Community::from_parts(65001, 100));
        communities.insert(Community::from_parts(65001, 300));
        let prefix: Ipv4Prefix = "10.0.0.1/32".parse().unwrap();
        let path = AsPath::from_sequence(vec![Asn(65001)]);
        let topology = Topology::assemble(std::collections::BTreeMap::new(), vec![], vec![]);
        let mut leak_marked = false;
        let mut cx = ExportCx {
            me: Asn(65009),
            to: Asn(65010),
            to_rel: Relationship::Customer,
            learned_rel: Relationship::Customer,
            prefix: &prefix,
            as_path: &path,
            communities: &mut communities,
            leak_marked: &mut leak_marked,
            default_allowed: true,
            topology: &topology,
        };
        assert_eq!(ext.on_export(&mut cx), ExportAction::Default);
        assert!(!communities.contains(Community::from_parts(65001, 666)));
        assert!(!communities.contains(Community::from_parts(65001, 100)));
        assert!(communities.contains(Community::from_parts(65002, 200)));
        assert!(communities.contains(Community::from_parts(65001, 300)));
    }

    #[test]
    fn otc_marks_and_rejects() {
        let ext = OnlyToCustomers;
        let prefix: Ipv4Prefix = "10.0.0.0/24".parse().unwrap();
        let path = AsPath::from_sequence(vec![Asn(65001)]);
        let communities = CommunitySet::new();
        let topology = Topology::assemble(std::collections::BTreeMap::new(), vec![], vec![]);
        let roas = RoaTable::new();

        // Learned from a provider: mark set, accepted.
        let mut leak_marked = false;
        let mut cx = ImportCx {
            me: Asn(65002),
            from: Asn(65001),
            rel: Relationship::Provider,
            prefix: &prefix,
            as_path: &path,
            communities: &communities,
            leak_marked: &mut leak_marked,
            topology: &topology,
            roas: &roas,
        };
        assert!(ext.on_import(&mut cx).is_ok());
        assert!(leak_marked);

        // A marked route arriving from a customer is a leak.
        let mut leak_marked = true;
        let mut cx = ImportCx {
            me: Asn(65002),
            from: Asn(65003),
            rel: Relationship::Customer,
            prefix: &prefix,
            as_path: &path,
            communities: &communities,
            leak_marked: &mut leak_marked,
            topology: &topology,
            roas: &roas,
        };
        assert_eq!(cx.me, Asn(65002));
        assert_eq!(ext.on_import(&mut cx), Err(RejectReason::RouteLeak));
    }

    #[test]
    fn run_stats_accumulate_by_reason() {
        let mut stats = RunStats::default();
        stats.record_import_reject(RejectReason::LoopDetected);
        stats.record_import_reject(RejectReason::LoopDetected);
        stats.record_trigger_reject(RejectReason::AuthFailed);
        stats.record_extension_reject(RejectReason::RovInvalid, "rov");
        assert_eq!(stats.import_rejects_for(RejectReason::LoopDetected), 2);
        assert_eq!(stats.import_rejects_for(RejectReason::RovInvalid), 1);
        assert_eq!(stats.trigger_rejects.get(&RejectReason::AuthFailed), Some(&1));
        assert_eq!(stats.extension_rejects.get("rov"), Some(&1));
        assert_eq!(stats.total_import_rejects(), 3);
    }
}
