//! Dataset statistics: the combinatorial reproduction of Table 1.
//!
//! Table 1 reports, per platform, the number of IP peers, AS peers,
//! *unique* AS peers, prefixes, and *unique* prefixes. Rather than
//! simulating the announcement of every base prefix through the full
//! graph (memory-prohibitive and analytically unnecessary), the visible
//! prefix set of each session is derived from the feed semantics:
//!
//! * `Full` / `Internal` — every originated prefix (plus, for `Internal`,
//!   customer-specific state, which is why the CDN's prefix counts dwarf
//!   the public collectors' in the paper);
//! * `CustomerOnly` — prefixes originated inside the peer's customer cone;
//! * `RouteServerView` — prefixes originated by the IXP's members.

use std::collections::{BTreeMap, BTreeSet};

use bh_bgp_types::asn::Asn;
use bh_bgp_types::prefix::Ipv4Prefix;
use bh_topology::Topology;

use crate::collector::{CollectorDeployment, FeedKind};
use crate::elem::DataSource;

/// One Table 1 row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetStats {
    /// Platform.
    pub source: DataSource,
    /// Number of peering sessions ("#IP peers").
    pub ip_peers: usize,
    /// Distinct peer ASNs ("#AS peers").
    pub as_peers: usize,
    /// Peer ASNs seen by no other platform ("#Unique AS peers").
    pub unique_as_peers: usize,
    /// Prefixes visible across the platform's sessions ("#Prefixes" —
    /// the paper sums per-collector tables; we count the union per
    /// platform, the comparable shape).
    pub prefixes: usize,
    /// Prefixes visible in no other platform ("#Unique prefixes").
    pub unique_prefixes: usize,
}

/// Compute per-platform statistics plus the combined total row.
pub fn table1(topology: &Topology, deployment: &CollectorDeployment) -> Vec<DatasetStats> {
    // Pre-compute per-AS originated prefix sets and customer cones lazily.
    let mut visible: BTreeMap<DataSource, BTreeSet<Ipv4Prefix>> = BTreeMap::new();
    let mut peers: BTreeMap<DataSource, BTreeSet<Asn>> = BTreeMap::new();
    let mut sessions: BTreeMap<DataSource, usize> = BTreeMap::new();

    for session in deployment.sessions() {
        *sessions.entry(session.dataset).or_default() += 1;
        peers.entry(session.dataset).or_default().insert(session.peer_asn);
        let set = visible.entry(session.dataset).or_default();
        match session.feed {
            FeedKind::Full | FeedKind::Internal => {
                for info in topology.ases() {
                    set.extend(info.prefixes.iter().copied());
                }
            }
            FeedKind::CustomerOnly => {
                for asn in topology.customer_cone(session.peer_asn) {
                    if let Some(info) = topology.as_info(asn) {
                        set.extend(info.prefixes.iter().copied());
                    }
                }
            }
            FeedKind::RouteServerView(ixp_id) => {
                if let Some(ixp) = topology.ixp(ixp_id) {
                    for &member in &ixp.members {
                        if let Some(info) = topology.as_info(member) {
                            set.extend(info.prefixes.iter().copied());
                        }
                    }
                }
            }
        }
    }

    let mut rows = Vec::new();
    for source in DataSource::ALL {
        let my_peers = peers.get(&source).cloned().unwrap_or_default();
        let my_prefixes = visible.get(&source).cloned().unwrap_or_default();
        let other_peers: BTreeSet<Asn> = peers
            .iter()
            .filter(|(s, _)| **s != source)
            .flat_map(|(_, set)| set.iter().copied())
            .collect();
        let other_prefixes: BTreeSet<Ipv4Prefix> = visible
            .iter()
            .filter(|(s, _)| **s != source)
            .flat_map(|(_, set)| set.iter().copied())
            .collect();
        rows.push(DatasetStats {
            source,
            ip_peers: sessions.get(&source).copied().unwrap_or(0),
            as_peers: my_peers.len(),
            unique_as_peers: my_peers.difference(&other_peers).count(),
            prefixes: my_prefixes.len(),
            unique_prefixes: my_prefixes.difference(&other_prefixes).count(),
        });
    }
    rows
}

/// The combined "Total" row of Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetTotals {
    /// All sessions.
    pub ip_peers: usize,
    /// Distinct peer ASNs across platforms.
    pub as_peers: usize,
    /// Union of visible prefixes.
    pub prefixes: usize,
}

/// Compute the totals row.
pub fn table1_totals(topology: &Topology, deployment: &CollectorDeployment) -> DatasetTotals {
    let rows = table1(topology, deployment);
    let mut all_peers: BTreeSet<Asn> = BTreeSet::new();
    for session in deployment.sessions() {
        all_peers.insert(session.peer_asn);
    }
    // Union of prefixes: recompute from rows is not possible (sets are
    // internal), so rebuild: any Full/Internal session sees everything.
    let any_full =
        deployment.sessions().any(|s| matches!(s.feed, FeedKind::Full | FeedKind::Internal));
    let prefix_union = if any_full {
        topology.ases().map(|i| i.prefixes.len()).sum()
    } else {
        rows.iter().map(|r| r.prefixes).max().unwrap_or(0)
    };
    DatasetTotals {
        ip_peers: rows.iter().map(|r| r.ip_peers).sum(),
        as_peers: all_peers.len(),
        prefixes: prefix_union,
    }
}

#[cfg(test)]
mod tests {
    use bh_topology::{TopologyBuilder, TopologyConfig};

    use crate::collector::{deploy, CollectorConfig};

    use super::*;

    fn stats() -> (Vec<DatasetStats>, DatasetTotals) {
        let t = TopologyBuilder::new(TopologyConfig::tiny(9)).build();
        let d = deploy(&t, &CollectorConfig::tiny(3));
        (table1(&t, &d), table1_totals(&t, &d))
    }

    #[test]
    fn all_four_platforms_reported() {
        let (rows, _) = stats();
        assert_eq!(rows.len(), 4);
        let sources: Vec<_> = rows.iter().map(|r| r.source).collect();
        assert_eq!(sources, DataSource::ALL.to_vec());
    }

    #[test]
    fn cdn_sees_the_most_prefixes() {
        // Table 1's headline shape: the CDN's visible prefix count is the
        // largest (internal feeds).
        let (rows, _) = stats();
        let cdn = rows.iter().find(|r| r.source == DataSource::Cdn).unwrap();
        for row in &rows {
            assert!(cdn.prefixes >= row.prefixes, "CDN must see ≥ {}", row.source);
        }
        assert!(cdn.ip_peers > 0);
    }

    #[test]
    fn unique_counts_are_bounded() {
        let (rows, totals) = stats();
        for row in &rows {
            assert!(row.unique_as_peers <= row.as_peers);
            assert!(row.unique_prefixes <= row.prefixes);
            assert!(row.as_peers <= row.ip_peers);
        }
        assert_eq!(totals.ip_peers, rows.iter().map(|r| r.ip_peers).sum::<usize>());
        assert!(totals.as_peers <= totals.ip_peers);
        assert!(totals.prefixes >= rows.iter().map(|r| r.prefixes).max().unwrap());
    }

    #[test]
    fn pch_counts_member_prefixes_only() {
        let t = TopologyBuilder::new(TopologyConfig::tiny(9)).build();
        let d = deploy(&t, &CollectorConfig::tiny(3));
        let rows = table1(&t, &d);
        let pch = rows.iter().find(|r| r.source == DataSource::Pch).unwrap();
        let total: usize = t.ases().map(|i| i.prefixes.len()).sum();
        assert!(pch.prefixes < total, "PCH view is member-scoped");
        assert!(pch.prefixes > 0);
    }
}
