//! Live ingestion substrate: tailing *growing* archives with bounded
//! merge latency.
//!
//! The batch pipeline ([`MrtElemSource`](crate::archive::MrtElemSource) → [`MergedSource`](crate::merge::MergedSource)) assumes
//! complete archives: a source that returns `None` is finished forever.
//! A near-real-time service instead tails archives that collectors are
//! still writing, so this module provides the three live primitives the
//! `bh-live` daemon builds on:
//!
//! * [`LiveArchive`] — a shared, append-only byte buffer standing in for
//!   one collector's updates file on disk, with a **watermark**: the
//!   writer's promise that every record with `time ≤ watermark` has been
//!   appended (future appends are strictly later). Watermarks are what
//!   let a merge emit without waiting for a quiet collector to produce
//!   its next record.
//! * [`TailingSource`] — re-polls one [`LiveArchive`] for appended
//!   bytes, frames them incrementally through
//!   [`bh_mrt::TailingReader`] (a partial trailing record is retried on
//!   the next poll, never skipped as corrupt), and yields
//!   [`LivePoll::Elem`] / [`LivePoll::Pending`] / [`LivePoll::End`].
//! * [`LiveMerge`] — the k-way `(time, dataset, collector)` merge over
//!   tailing sources. It yields an element only once it is *safe*: every
//!   source that might still produce an earlier element (no buffered
//!   head, not ended) must have a watermark at or past the candidate's
//!   timestamp. On a fully delivered prefix, its order is exactly the
//!   [`merge_streams`](crate::archive::merge_streams) order, so a
//!   drained live run reproduces the batch stream bit for bit.
//!
//! [`Clock`] abstracts time so the daemon's pacing logic runs against a
//! virtual clock in tests (`bh-workloads`) and [`WallClock`] in
//! production.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use bh_bgp_types::time::{SimDuration, SimTime};
use bh_mrt::{MessageStream, MrtError, TailingReader};

use crate::archive::elems_of_message;
use crate::elem::{BgpElem, DataSource};

/// The daemon's notion of time: virtual in tests, wall in production.
///
/// `now` drives watermarks, event `emitted_at` stamps and latency
/// accounting; `sleep` paces the poll loop.
pub trait Clock: Send + Sync {
    /// The current time.
    fn now(&self) -> SimTime;
    /// Block (or, for a virtual clock, advance) for `d`.
    fn sleep(&self, d: SimDuration);
}

/// The production clock: Unix wall time, real sleeps.
#[derive(Debug, Clone, Copy, Default)]
pub struct WallClock;

impl Clock for WallClock {
    fn now(&self) -> SimTime {
        let secs =
            SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or_default();
        SimTime::from_unix(secs)
    }

    fn sleep(&self, d: SimDuration) {
        std::thread::sleep(Duration::from_secs(d.as_secs()));
    }
}

/// Snapshot of a [`LiveArchive`] tail: bytes appended past an offset,
/// plus the archive's current watermark and closed flag.
struct ArchiveInner {
    bytes: Vec<u8>,
    watermark: SimTime,
    closed: bool,
}

/// A shared handle to one collector's *growing* updates archive.
///
/// Writers ([`bh_workloads`-style feeds, or a real downloader) append
/// MRT bytes — whole records or arbitrary fragments — advance the
/// watermark, and eventually [`close`](LiveArchive::close); readers
/// ([`TailingSource`]) poll for growth. Clones share the same buffer.
///
/// The watermark contract: advancing to `w` promises every record with
/// `time ≤ w` is already appended, and all future appends are strictly
/// later than `w`. Watermarks are monotonic (stale advances are ignored).
#[derive(Clone)]
pub struct LiveArchive {
    inner: Arc<Mutex<ArchiveInner>>,
}

impl Default for LiveArchive {
    fn default() -> Self {
        Self::new()
    }
}

impl LiveArchive {
    /// An empty, open archive with watermark [`SimTime::ZERO`].
    pub fn new() -> Self {
        LiveArchive {
            inner: Arc::new(Mutex::new(ArchiveInner {
                bytes: Vec::new(),
                watermark: SimTime::ZERO,
                closed: false,
            })),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ArchiveInner> {
        self.inner.lock().expect("live archive lock poisoned")
    }

    /// Append bytes (any fragmentation — record boundaries not required).
    /// Appending after [`close`](Self::close) is a writer bug and panics.
    pub fn append(&self, chunk: &[u8]) {
        let mut inner = self.lock();
        assert!(!inner.closed, "append to a closed LiveArchive");
        inner.bytes.extend_from_slice(chunk);
    }

    /// Advance the watermark (monotonic; stale values are ignored).
    pub fn advance_watermark(&self, to: SimTime) {
        let mut inner = self.lock();
        inner.watermark = inner.watermark.max(to);
    }

    /// Declare the archive complete: no further appends will happen.
    pub fn close(&self) {
        self.lock().closed = true;
    }

    /// Total bytes appended so far.
    pub fn len(&self) -> usize {
        self.lock().bytes.len()
    }

    /// Has anything been appended?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current watermark.
    pub fn watermark(&self) -> SimTime {
        self.lock().watermark
    }

    /// Has the writer closed the archive?
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Copy out everything appended at or past `offset`, with the
    /// watermark and closed flag observed under the same lock.
    fn read_from(&self, offset: usize) -> (Vec<u8>, SimTime, bool) {
        let inner = self.lock();
        let chunk = inner.bytes.get(offset..).unwrap_or_default().to_vec();
        (chunk, inner.watermark, inner.closed)
    }
}

/// One poll of a [`TailingSource`].
#[derive(Debug)]
pub enum LivePoll<'a> {
    /// The next element, in archive order.
    Elem(&'a BgpElem),
    /// Nothing decodable yet; the archive's watermark at poll time (the
    /// merge's safety bound — nothing earlier can still arrive).
    Pending(SimTime),
    /// The archive is closed and fully drained (or the stream died —
    /// check [`TailingSource::error`]).
    End,
}

/// Tails one [`LiveArchive`], decoding appended records incrementally.
///
/// Unlike [`MrtElemSource`](crate::archive::MrtElemSource) over a complete archive, exhaustion is not
/// final: a poll that finds no new complete record reports
/// [`LivePoll::Pending`] and the next poll re-frames from the same
/// offset — including a *partial trailing record*, which stays buffered
/// in the [`TailingReader`] until its remaining bytes arrive (it is
/// never skipped as corrupt). Only after the writer closes the archive
/// does a leftover partial record become a decode error.
pub struct TailingSource {
    archive: LiveArchive,
    dataset: DataSource,
    collector: u16,
    reader: TailingReader,
    offset: usize,
    queue: VecDeque<BgpElem>,
    current: Option<BgpElem>,
    error: Option<MrtError>,
    done: bool,
    skip: u64,
    consumed: u64,
}

impl TailingSource {
    /// Tail `archive` under the `(dataset, collector)` label.
    pub fn new(archive: LiveArchive, dataset: DataSource, collector: u16) -> Self {
        Self::with_skip(archive, dataset, collector, 0)
    }

    /// Tail `archive`, silently discarding the first `skip` elements —
    /// the resume path: a daemon restarting from a checkpoint replays
    /// each archive from byte zero and skips what it already delivered.
    pub fn with_skip(archive: LiveArchive, dataset: DataSource, collector: u16, skip: u64) -> Self {
        TailingSource {
            archive,
            dataset,
            collector,
            reader: TailingReader::new(),
            offset: 0,
            queue: VecDeque::new(),
            current: None,
            error: None,
            done: false,
            skip,
            consumed: 0,
        }
    }

    /// Platform label.
    pub fn dataset(&self) -> DataSource {
        self.dataset
    }

    /// Collector label.
    pub fn collector(&self) -> u16 {
        self.collector
    }

    /// Elements dequeued so far (including skipped ones), i.e. the
    /// replay position a resume would need.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// The decode error that ended the stream, if any.
    pub fn error(&self) -> Option<&MrtError> {
        self.error.as_ref()
    }

    /// Poll for the next element. See [`LivePoll`] for the three
    /// outcomes; `Pending` is retriable, `End` is final.
    pub fn poll(&mut self) -> LivePoll<'_> {
        loop {
            if self.done {
                return LivePoll::End;
            }
            if let Some(elem) = self.queue.pop_front() {
                self.consumed += 1;
                if self.skip > 0 {
                    self.skip -= 1;
                    continue;
                }
                self.current = Some(elem);
                return LivePoll::Elem(self.current.as_ref().expect("just set"));
            }
            match self.reader.next_message() {
                Ok(Some((time, msg))) => {
                    elems_of_message(time, &msg, self.dataset, self.collector, &mut self.queue);
                }
                Ok(None) => {
                    let (chunk, watermark, closed) = self.archive.read_from(self.offset);
                    if !chunk.is_empty() {
                        self.offset += chunk.len();
                        self.reader.extend(&chunk);
                        continue; // re-frame: the partial tail may now complete
                    }
                    if closed {
                        if !self.reader.is_closed() {
                            // Declare EOF to the framer so a leftover
                            // partial record surfaces as the truncation
                            // error it now is.
                            self.reader.close();
                            continue;
                        }
                        self.done = true;
                        return LivePoll::End;
                    }
                    return LivePoll::Pending(watermark);
                }
                Err(e) => {
                    self.error = Some(e);
                    self.done = true;
                    return LivePoll::End;
                }
            }
        }
    }
}

/// The live k-way merge: yields elements in the batch
/// `(time, dataset, collector, source index)` order, but only when the
/// watermarks prove no earlier element can still arrive.
///
/// [`next_ready`](LiveMerge::next_ready) returning `None` means "nothing
/// *safe* yet", not end of stream — poll again after the feeds make
/// progress; [`all_ended`](LiveMerge::all_ended) is the end-of-stream
/// signal. One element per source is buffered as its head, exactly like
/// [`MergedSource`](crate::merge::MergedSource)(crate::merge::MergedSource).
pub struct LiveMerge {
    sources: Vec<TailingSource>,
    heads: Vec<Option<BgpElem>>,
    ended: Vec<bool>,
    watermarks: Vec<SimTime>,
    current: Option<BgpElem>,
}

impl LiveMerge {
    /// Merge `sources`; index order is the tie-break, so a resumed
    /// daemon must rebuild its sources in the original order.
    pub fn new(sources: Vec<TailingSource>) -> Self {
        let n = sources.len();
        LiveMerge {
            sources,
            heads: vec![None; n],
            ended: vec![false; n],
            watermarks: vec![SimTime::ZERO; n],
            current: None,
        }
    }

    /// Number of input sources.
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }

    /// Number of sources that reached [`LivePoll::End`].
    pub fn sources_ended(&self) -> usize {
        self.ended.iter().filter(|e| **e).count()
    }

    /// Have all sources ended? (The merged stream is complete.)
    pub fn all_ended(&self) -> bool {
        self.ended.iter().all(|e| *e) && self.heads.iter().all(|h| h.is_none())
    }

    /// The first decode error across sources, if any.
    pub fn first_error(&self) -> Option<&MrtError> {
        self.sources.iter().find_map(|s| s.error())
    }

    /// Per-source delivery positions, labelled `(dataset, collector)` —
    /// what a checkpoint records so a resume can
    /// [`TailingSource::with_skip`] past already-delivered elements. A
    /// buffered head was consumed from its source but **not** delivered,
    /// so it is not counted: the resume re-reads it.
    pub fn delivered(&self) -> Vec<((DataSource, u16), u64)> {
        self.sources
            .iter()
            .zip(&self.heads)
            .map(|(s, head)| {
                ((s.dataset(), s.collector()), s.consumed() - u64::from(head.is_some()))
            })
            .collect()
    }

    /// Yield the next element if one is provably safe to emit.
    pub fn next_ready(&mut self) -> Option<&BgpElem> {
        for i in 0..self.sources.len() {
            if self.heads[i].is_none() && !self.ended[i] {
                match self.sources[i].poll() {
                    LivePoll::Elem(e) => {
                        let e = e.clone();
                        self.heads[i] = Some(e);
                    }
                    LivePoll::Pending(w) => {
                        self.watermarks[i] = self.watermarks[i].max(w);
                    }
                    LivePoll::End => self.ended[i] = true,
                }
            }
        }
        let mut best: Option<((SimTime, DataSource, u16, usize), usize)> = None;
        for (i, head) in self.heads.iter().enumerate() {
            if let Some(e) = head {
                let key = (e.time, e.dataset, e.collector, i);
                if best.is_none_or(|(bk, _)| key < bk) {
                    best = Some((key, i));
                }
            }
        }
        let (key, index) = best?;
        // Safety gate: a headless, still-open source whose watermark is
        // behind the candidate could yet produce an earlier element
        // (or an equal-time one that ties ahead) — hold until its
        // watermark passes. Watermarks promise future records are
        // *strictly* later, so `>= key time` suffices even on ties.
        for i in 0..self.sources.len() {
            if self.heads[i].is_none() && !self.ended[i] && self.watermarks[i] < key.0 {
                return None;
            }
        }
        self.current = self.heads[index].take();
        self.current.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use bh_bgp_types::community::{Community, CommunitySet};

    use super::*;
    use crate::archive::write_updates;
    use crate::elem::ElemType;
    use crate::source::ElemSource;

    fn elem(t: u64, dataset: DataSource, collector: u16, peer: u32) -> BgpElem {
        BgpElem {
            time: SimTime::from_unix(t),
            dataset,
            collector,
            peer_asn: bh_bgp_types::asn::Asn::new(peer),
            peer_ip: "198.51.100.9".parse().unwrap(),
            elem_type: ElemType::Announce,
            prefix: "130.149.0.0/17".parse().unwrap(),
            as_path: "100 200 300".parse().unwrap(),
            communities: CommunitySet::from_classic(vec![Community::from_parts(100, 666)]),
            next_hop: Some("198.51.100.9".parse().unwrap()),
        }
    }

    fn archive_of(elems: &[BgpElem]) -> Vec<u8> {
        let mut buf = Vec::new();
        write_updates(&mut buf, elems).expect("write succeeds");
        buf
    }

    #[test]
    fn tailing_source_pends_then_streams_as_archive_grows() {
        let elems: Vec<BgpElem> = (0..4).map(|k| elem(100 + k, DataSource::Ris, 0, 9)).collect();
        let bytes = archive_of(&elems);
        let archive = LiveArchive::new();
        let mut src = TailingSource::new(archive.clone(), DataSource::Ris, 0);

        assert!(matches!(src.poll(), LivePoll::Pending(w) if w == SimTime::ZERO));

        // Append a record and a half: one element streams, the torn tail
        // pends instead of erroring.
        let half = archive_of(&elems[..2]);
        archive.append(&half[..half.len() - 5]);
        archive.advance_watermark(SimTime::from_unix(101));
        assert!(matches!(src.poll(), LivePoll::Elem(e) if e.time.unix() == 100));
        assert!(matches!(src.poll(), LivePoll::Pending(w) if w.unix() == 101));
        assert!(src.error().is_none(), "a partial tail is pending, not corrupt");

        // The tail completes, plus the rest of the stream; closing ends it.
        archive.append(&half[half.len() - 5..]);
        archive.append(&bytes[half.len()..]);
        archive.close();
        let mut times = Vec::new();
        loop {
            match src.poll() {
                LivePoll::Elem(e) => times.push(e.time.unix()),
                LivePoll::Pending(_) => panic!("closed archive cannot pend"),
                LivePoll::End => break,
            }
        }
        assert_eq!(times, vec![101, 102, 103]);
        assert!(src.error().is_none());
        assert_eq!(src.consumed(), 4);
        assert!(matches!(src.poll(), LivePoll::End), "End is final");
    }

    #[test]
    fn closing_with_torn_tail_surfaces_the_error() {
        let elems: Vec<BgpElem> = (0..2).map(|k| elem(100 + k, DataSource::Ris, 0, 9)).collect();
        let bytes = archive_of(&elems);
        let archive = LiveArchive::new();
        let mut src = TailingSource::new(archive.clone(), DataSource::Ris, 0);
        archive.append(&bytes[..bytes.len() - 3]);
        archive.close();
        assert!(matches!(src.poll(), LivePoll::Elem(_)));
        assert!(matches!(src.poll(), LivePoll::End));
        assert!(src.error().is_some(), "the tear is an error once the writer closed");
    }

    #[test]
    fn mrt_elem_source_retries_partial_tail_via_reader_mut() {
        // Satellite coverage: the batch-facing MrtElemSource, driven over
        // a growable TailingReader, must treat a truncated tail as "not
        // yet" — next_elem() returns None with no error, and after the
        // missing bytes arrive the record decodes on the next poll.
        let elems: Vec<BgpElem> = (0..3).map(|k| elem(100 + k, DataSource::Ris, 0, 9)).collect();
        let bytes = archive_of(&elems);
        let cut = bytes.len() - 7;
        let mut src =
            crate::archive::MrtElemSource::from_reader(TailingReader::new(), DataSource::Ris, 0);
        src.reader_mut().extend(&bytes[..cut]);
        let mut n = 0;
        while src.next_elem().is_some() {
            n += 1;
        }
        assert_eq!(n, 2, "intact records stream");
        assert!(src.error().is_none(), "partial tail is not corrupt");

        src.reader_mut().extend(&bytes[cut..]);
        assert!(src.next_elem().is_some(), "the retried tail decodes after growth");
        assert!(src.next_elem().is_none());
        src.reader_mut().close();
        assert!(src.next_elem().is_none());
        assert!(src.error().is_none(), "clean EOF after close");
        assert_eq!(src.records_read(), 3);
    }

    #[test]
    fn live_merge_holds_elements_until_watermarks_prove_safety() {
        let a = LiveArchive::new();
        let b = LiveArchive::new();
        let mut merge = LiveMerge::new(vec![
            TailingSource::new(a.clone(), DataSource::Ris, 0),
            TailingSource::new(b.clone(), DataSource::RouteViews, 1),
        ]);

        // Source a has an element at t=100; b is silent with watermark 0:
        // b could still produce t<100, so nothing is safe.
        a.append(&archive_of(&[elem(100, DataSource::Ris, 0, 9)]));
        a.advance_watermark(SimTime::from_unix(100));
        assert!(merge.next_ready().is_none(), "quiet collector blocks until its watermark");

        // b's watermark reaches 99: still unsafe (b could emit t=100 and
        // tie-break ahead is impossible — but t<100... no wait, =100 ties
        // are resolved by dataset; strict-future watermarks make >= the
        // exact bound, so 99 < 100 still holds the element).
        b.advance_watermark(SimTime::from_unix(99));
        assert!(merge.next_ready().is_none());

        // Watermark 100: any future b element is strictly later than 100.
        b.advance_watermark(SimTime::from_unix(100));
        let e = merge.next_ready().expect("safe now").clone();
        assert_eq!(e.time.unix(), 100);
        assert!(merge.next_ready().is_none(), "drained again");

        // End both; merge completes.
        a.close();
        b.close();
        assert!(merge.next_ready().is_none());
        assert!(merge.all_ended());
        assert!(merge.first_error().is_none());
    }

    #[test]
    fn live_merge_drained_order_equals_merge_streams() {
        let a: Vec<BgpElem> = (0..30).map(|k| elem(10 + k * 3, DataSource::Ris, 0, 11)).collect();
        let b: Vec<BgpElem> =
            (0..30).map(|k| elem(11 + k * 2, DataSource::RouteViews, 1, 22)).collect();
        let arch_a = LiveArchive::new();
        let arch_b = LiveArchive::new();
        arch_a.append(&archive_of(&a));
        arch_b.append(&archive_of(&b));
        arch_a.close();
        arch_b.close();

        let mut merge = LiveMerge::new(vec![
            TailingSource::new(arch_a, DataSource::Ris, 0),
            TailingSource::new(arch_b, DataSource::RouteViews, 1),
        ]);
        let mut got = Vec::new();
        while let Some(e) = merge.next_ready() {
            got.push(e.clone());
        }
        assert!(merge.all_ended());
        let expected = crate::archive::merge_streams(vec![a, b]);
        assert_eq!(got, expected, "closed-archive live merge is the batch merge");
    }

    #[test]
    fn delivered_excludes_buffered_heads_and_skip_resumes_exactly() {
        let a: Vec<BgpElem> = (0..10).map(|k| elem(10 + k * 2, DataSource::Ris, 0, 11)).collect();
        let b: Vec<BgpElem> = (0..10).map(|k| elem(11 + k * 2, DataSource::Pch, 1, 22)).collect();
        let arch_a = LiveArchive::new();
        let arch_b = LiveArchive::new();
        arch_a.append(&archive_of(&a));
        arch_b.append(&archive_of(&b));
        arch_a.close();
        arch_b.close();

        let sources = |skips: &[u64]| {
            vec![
                TailingSource::with_skip(arch_a.clone(), DataSource::Ris, 0, skips[0]),
                TailingSource::with_skip(arch_b.clone(), DataSource::Pch, 1, skips[1]),
            ]
        };

        let mut merge = LiveMerge::new(sources(&[0, 0]));
        let mut prefix = Vec::new();
        for _ in 0..7 {
            prefix.push(merge.next_ready().expect("closed archives are fully safe").clone());
        }
        let delivered = merge.delivered();
        let total: u64 = delivered.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 7, "heads consumed from sources but undelivered are not counted");

        // Resume from the recorded positions: the remainder must be the
        // remainder of a fresh full drain.
        let skips: Vec<u64> = delivered.iter().map(|(_, n)| *n).collect();
        let mut resumed = LiveMerge::new(sources(&skips));
        let mut rest = Vec::new();
        while let Some(e) = resumed.next_ready() {
            rest.push(e.clone());
        }
        let mut full = LiveMerge::new(sources(&[0, 0]));
        let mut all = Vec::new();
        while let Some(e) = full.next_ready() {
            all.push(e.clone());
        }
        prefix.extend(rest);
        assert_eq!(prefix, all, "prefix + resumed remainder == uninterrupted drain");
    }

    #[test]
    fn wall_clock_reports_present_time() {
        let now = WallClock.now();
        assert!(now.unix() > 1_600_000_000, "the wall clock is past 2020");
    }
}
