//! Collector platforms: RIS, Route Views, PCH, and the CDN.
//!
//! §3/§5 describe each platform's bias, which this module reproduces:
//!
//! * **RIS / Route Views** peer with the transit core ("biased to what is
//!   announced by large transit providers"), a mix of full-table and
//!   customer-only feeds.
//! * **PCH** places collectors *at IXPs*, peering with the route servers —
//!   direct visibility into IXP blackholing (and the platform with the
//!   highest direct-feed fraction in Table 3).
//! * **CDN** receives feeds from ~1,300 networks of every type, including
//!   customer-specific/internal announcements, because its equipment sits
//!   *inside* many ISPs — so its sessions see routes that are never
//!   exported externally (e.g. NO_EXPORT blackhole routes).

use std::collections::BTreeMap;
use std::net::IpAddr;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use bh_bgp_types::asn::Asn;
use bh_topology::{IxpId, NetworkType, Tier, Topology};

use crate::elem::DataSource;

/// What a collector session is allowed to see.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedKind {
    /// The peer's full table (everything its best path selection holds,
    /// subject to ordinary export: NO_EXPORT routes stay hidden).
    Full,
    /// Only routes learned from customers (plus the peer's own origins).
    CustomerOnly,
    /// An internal session: sees everything in the peer's RIB, including
    /// NO_EXPORT and blackhole-accepted routes (the CDN's unique view).
    Internal,
    /// A session with an IXP route server: sees every route the route
    /// server redistributes, attributed to the announcing member.
    RouteServerView(IxpId),
}

/// One collector peering session.
#[derive(Debug, Clone)]
pub struct CollectorSession {
    /// Platform.
    pub dataset: DataSource,
    /// Collector id within the platform.
    pub collector: u16,
    /// The AS whose routes this session observes.
    pub peer_asn: Asn,
    /// Session peer IP (on IXP LANs: the peer's LAN address).
    pub peer_ip: IpAddr,
    /// Visibility.
    pub feed: FeedKind,
}

/// The full collector deployment: sessions indexed by the observed AS.
#[derive(Debug, Clone, Default)]
pub struct CollectorDeployment {
    by_asn: BTreeMap<Asn, Vec<CollectorSession>>,
    session_count: usize,
}

impl CollectorDeployment {
    /// Sessions observing a given AS.
    pub fn sessions_at(&self, asn: Asn) -> &[CollectorSession] {
        self.by_asn.get(&asn).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All sessions.
    pub fn sessions(&self) -> impl Iterator<Item = &CollectorSession> {
        self.by_asn.values().flatten()
    }

    /// Total session count.
    pub fn session_count(&self) -> usize {
        self.session_count
    }

    /// ASes with at least one session of the given platform.
    pub fn peers_of(&self, dataset: DataSource) -> Vec<Asn> {
        self.by_asn
            .iter()
            .filter(|(_, sessions)| sessions.iter().any(|s| s.dataset == dataset))
            .map(|(asn, _)| *asn)
            .collect()
    }

    /// Add one session. `deploy` is the usual constructor; this is public
    /// so scenarios and tests can assemble bespoke deployments.
    pub fn add_session(&mut self, session: CollectorSession) {
        self.by_asn.entry(session.peer_asn).or_default().push(session);
        self.session_count += 1;
    }

    /// Every `(dataset, collector)` pair with at least one session — the
    /// archive set a fleet ingestion run covers, including collectors
    /// that happened to observe nothing (their archives are just empty).
    pub fn collector_ids(&self) -> std::collections::BTreeSet<(DataSource, u16)> {
        self.sessions().map(|s| (s.dataset, s.collector)).collect()
    }
}

/// Deployment configuration (counts are clamped to the topology size).
#[derive(Debug, Clone)]
pub struct CollectorConfig {
    /// RNG seed for peer sampling.
    pub seed: u64,
    /// RIS peer count.
    pub ris_peers: usize,
    /// Route Views peer count.
    pub rv_peers: usize,
    /// Fraction of IXPs where PCH operates a route collector.
    pub pch_ixp_coverage: f64,
    /// CDN feed count (networks, sampled across all types).
    pub cdn_peers: usize,
    /// Fraction of RIS/RV peers sending full tables (the rest send
    /// customer routes only).
    pub full_table_fraction: f64,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        CollectorConfig {
            seed: 0x0b5e_77e1,
            ris_peers: 80,
            rv_peers: 60,
            pch_ixp_coverage: 0.6,
            cdn_peers: 450,
            full_table_fraction: 0.5,
        }
    }
}

impl CollectorConfig {
    /// Scaled-down deployment for tests.
    pub fn tiny(seed: u64) -> Self {
        CollectorConfig {
            seed,
            ris_peers: 6,
            rv_peers: 5,
            pch_ixp_coverage: 0.75,
            cdn_peers: 20,
            full_table_fraction: 0.5,
        }
    }
}

/// Build a deployment over a topology.
pub fn deploy(topology: &Topology, config: &CollectorConfig) -> CollectorDeployment {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut deployment = CollectorDeployment::default();

    // Core-biased pool for RIS/RV: tier-1 + transit ASes.
    let core: Vec<Asn> = topology
        .ases()
        .filter(|i| matches!(i.tier, Tier::Tier1 | Tier::Transit))
        .map(|i| i.asn)
        .collect();

    let place_core_platform = |dataset: DataSource,
                               count: usize,
                               rng: &mut StdRng,
                               deployment: &mut CollectorDeployment| {
        let picks: Vec<Asn> = core.choose_multiple(rng, count.min(core.len())).copied().collect();
        for (i, asn) in picks.iter().enumerate() {
            let feed = if rng.gen_bool(config.full_table_fraction) {
                FeedKind::Full
            } else {
                FeedKind::CustomerOnly
            };
            deployment.add_session(CollectorSession {
                dataset,
                collector: (i % 8) as u16, // platforms run several collectors
                peer_asn: *asn,
                peer_ip: synth_peer_ip(dataset, i),
                feed,
            });
        }
    };
    place_core_platform(DataSource::Ris, config.ris_peers, &mut rng, &mut deployment);
    place_core_platform(DataSource::RouteViews, config.rv_peers, &mut rng, &mut deployment);

    // PCH: route-server sessions at a fraction of IXPs.
    for (i, ixp) in topology.ixps().iter().enumerate() {
        if !rng.gen_bool(config.pch_ixp_coverage) {
            continue;
        }
        let peer_ip =
            ixp.peering_lan.nth_addr(1).map(IpAddr::V4).expect("peering LAN has addresses");
        deployment.add_session(CollectorSession {
            dataset: DataSource::Pch,
            collector: i as u16,
            peer_asn: ixp.route_server_asn,
            peer_ip,
            feed: FeedKind::RouteServerView(ixp.id),
        });
    }

    // CDN: feeds across every network type, internal view.
    let all: Vec<Asn> =
        topology.ases().filter(|i| i.network_type != NetworkType::Ixp).map(|i| i.asn).collect();
    let picks: Vec<Asn> =
        all.choose_multiple(&mut rng, config.cdn_peers.min(all.len())).copied().collect();
    for (i, asn) in picks.iter().enumerate() {
        deployment.add_session(CollectorSession {
            dataset: DataSource::Cdn,
            collector: (i % 32) as u16,
            peer_asn: *asn,
            peer_ip: synth_peer_ip(DataSource::Cdn, i),
            feed: FeedKind::Internal,
        });
    }

    deployment
}

/// Synthetic collector-session peer addresses (documentation + benchmark
/// ranges so they never collide with allocated topology space).
fn synth_peer_ip(dataset: DataSource, index: usize) -> IpAddr {
    let base: u32 = match dataset {
        DataSource::Ris => u32::from_be_bytes([198, 51, 100, 0]),
        DataSource::RouteViews => u32::from_be_bytes([203, 0, 113, 0]),
        DataSource::Pch => u32::from_be_bytes([192, 0, 2, 0]),
        DataSource::Cdn => u32::from_be_bytes([198, 18, 0, 0]),
    };
    IpAddr::V4(std::net::Ipv4Addr::from(base + (index as u32 % 65_000)))
}

#[cfg(test)]
mod tests {
    use bh_topology::{TopologyBuilder, TopologyConfig};

    use super::*;

    fn deployment() -> (Topology, CollectorDeployment) {
        let t = TopologyBuilder::new(TopologyConfig::tiny(9)).build();
        let d = deploy(&t, &CollectorConfig::tiny(3));
        (t, d)
    }

    #[test]
    fn deployment_is_deterministic() {
        let t = TopologyBuilder::new(TopologyConfig::tiny(9)).build();
        let a = deploy(&t, &CollectorConfig::tiny(3));
        let b = deploy(&t, &CollectorConfig::tiny(3));
        assert_eq!(a.session_count(), b.session_count());
        assert_eq!(a.peers_of(DataSource::Cdn), b.peers_of(DataSource::Cdn));
    }

    #[test]
    fn ris_rv_peer_with_core() {
        let (t, d) = deployment();
        for dataset in [DataSource::Ris, DataSource::RouteViews] {
            let peers = d.peers_of(dataset);
            assert!(!peers.is_empty());
            for asn in peers {
                let tier = t.as_info(asn).unwrap().tier;
                assert!(matches!(tier, Tier::Tier1 | Tier::Transit), "{asn} is not core");
            }
        }
    }

    #[test]
    fn pch_sits_on_route_servers() {
        let (t, d) = deployment();
        let peers = d.peers_of(DataSource::Pch);
        assert!(!peers.is_empty());
        for asn in peers {
            assert!(t.ixp_by_route_server(asn).is_some(), "{asn} is not a route server");
        }
        // Peer IPs are inside the respective LANs.
        for s in d.sessions().filter(|s| s.dataset == DataSource::Pch) {
            let FeedKind::RouteServerView(id) = s.feed else {
                panic!("PCH session must be a route-server view")
            };
            let ixp = t.ixp(id).unwrap();
            match s.peer_ip {
                IpAddr::V4(v4) => assert!(ixp.peering_lan.contains_addr(v4)),
                IpAddr::V6(_) => panic!("IXP LAN sessions are IPv4"),
            }
        }
    }

    #[test]
    fn cdn_has_internal_feeds_across_types() {
        let (t, d) = deployment();
        let peers = d.peers_of(DataSource::Cdn);
        assert!(peers.len() >= 10);
        for s in d.sessions().filter(|s| s.dataset == DataSource::Cdn) {
            assert_eq!(s.feed, FeedKind::Internal);
        }
        // At least one non-transit network feeds the CDN.
        let has_edge = peers.iter().any(|asn| t.as_info(*asn).unwrap().tier == Tier::Stub);
        assert!(has_edge);
    }

    #[test]
    fn collector_ids_cover_every_session() {
        let (_, d) = deployment();
        let ids = d.collector_ids();
        assert!(!ids.is_empty());
        for s in d.sessions() {
            assert!(ids.contains(&(s.dataset, s.collector)));
        }
        // Several platforms run collectors in the tiny deployment.
        let datasets: std::collections::BTreeSet<DataSource> =
            ids.iter().map(|(d, _)| *d).collect();
        assert!(datasets.len() >= 2);
    }

    #[test]
    fn sessions_at_lookup_matches_sessions() {
        let (_, d) = deployment();
        let total: usize = d
            .sessions()
            .map(|s| s.peer_asn)
            .collect::<std::collections::BTreeSet<_>>()
            .iter()
            .map(|asn| d.sessions_at(*asn).len())
            .sum();
        assert_eq!(total, d.session_count());
    }
}
