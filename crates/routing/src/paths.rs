//! Valley-free forwarding-path computation.
//!
//! The data-plane simulator (traceroutes, flow forwarding) needs the AS
//! path that *traffic* follows from a source AS toward a destination
//! origin, under the same Gao-Rexford economics as the control plane:
//! prefer customer routes, then peer routes (one lateral step, including
//! IXP multilateral peering), then provider routes; break ties by length.
//!
//! Implemented as the classic three-phase relaxation:
//! 1. customer-route distances propagate *up* provider links from the
//!    origin,
//! 2. peer-route distances are one lateral (peer or same-IXP) step off a
//!    customer route,
//! 3. provider-route distances propagate *down* customer links from any
//!    routed AS (Dijkstra-ordered).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use bh_bgp_types::asn::Asn;
use bh_topology::{Relationship, Topology};

/// How an AS reaches the destination (preference order matters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum RouteClass {
    Customer = 0,
    Peer = 1,
    Provider = 2,
}

#[derive(Debug, Clone, Copy)]
struct Reach {
    class: RouteClass,
    dist: u32,
    /// Next AS toward the destination (traffic direction).
    next: Option<Asn>,
}

/// All-sources forwarding state toward one destination AS.
#[derive(Debug)]
pub struct ForwardingTree {
    origin: Asn,
    reach: HashMap<Asn, Reach>,
}

impl ForwardingTree {
    /// Compute the tree toward `origin` over `topology`.
    pub fn toward(topology: &Topology, origin: Asn) -> Self {
        let mut best: HashMap<Asn, Reach> = HashMap::new();
        best.insert(origin, Reach { class: RouteClass::Customer, dist: 0, next: None });

        // Phase 1: customer routes — BFS up provider links.
        let mut queue = VecDeque::from([origin]);
        while let Some(x) = queue.pop_front() {
            let dx = best[&x].dist;
            for &p in &topology.providers_of(x) {
                let candidate = Reach { class: RouteClass::Customer, dist: dx + 1, next: Some(x) };
                if better(&best, p, candidate) {
                    best.insert(p, candidate);
                    queue.push_back(p);
                }
            }
        }

        // Phase 2: peer routes — one lateral step off a customer route.
        // Collect first (customer distances are final), then insert.
        let mut lateral: Vec<(Asn, Reach)> = Vec::new();
        for info in topology.ases() {
            let x = info.asn;
            let Some(r) = best.get(&x) else { continue };
            if r.class != RouteClass::Customer {
                continue;
            }
            for (n, rel) in topology.neighbors(x) {
                if matches!(rel, Relationship::Peer | Relationship::RouteServer)
                    || matches!(rel, Relationship::Provider)
                {
                    // Peer/RS lateral; provider links handled in phase 3.
                    if matches!(rel, Relationship::Peer | Relationship::RouteServer) {
                        lateral.push((
                            *n,
                            Reach { class: RouteClass::Peer, dist: r.dist + 1, next: Some(x) },
                        ));
                    }
                }
            }
        }
        for (asn, candidate) in lateral {
            if better(&best, asn, candidate) {
                best.insert(asn, candidate);
            }
        }

        // Phase 3: provider routes — Dijkstra down customer links from
        // every routed AS.
        let mut heap: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();
        for (asn, r) in &best {
            heap.push(Reverse((r.dist, asn.value())));
        }
        while let Some(Reverse((dist, asn_raw))) = heap.pop() {
            let x = Asn::new(asn_raw);
            let Some(rx) = best.get(&x).copied() else { continue };
            if rx.dist != dist {
                continue; // stale heap entry
            }
            for &c in &topology.customers_of(x) {
                let candidate =
                    Reach { class: RouteClass::Provider, dist: rx.dist + 1, next: Some(x) };
                if better(&best, c, candidate) {
                    best.insert(c, candidate);
                    heap.push(Reverse((candidate.dist, c.value())));
                }
            }
        }

        ForwardingTree { origin, reach: best }
    }

    /// The destination AS.
    pub fn origin(&self) -> Asn {
        self.origin
    }

    /// Can `src` reach the destination at all?
    pub fn reaches(&self, src: Asn) -> bool {
        self.reach.contains_key(&src)
    }

    /// The AS-level forwarding path from `src` to the destination,
    /// inclusive of both ends. `None` if unreachable.
    pub fn path_from(&self, src: Asn) -> Option<Vec<Asn>> {
        let mut path = vec![src];
        let mut current = src;
        let mut guard = 0;
        while current != self.origin {
            let r = self.reach.get(&current)?;
            let next = r.next?;
            path.push(next);
            current = next;
            guard += 1;
            if guard > self.reach.len() {
                return None; // defensive: malformed pointers
            }
        }
        Some(path)
    }

    /// AS-level hop count from `src` (0 when src == origin).
    pub fn distance(&self, src: Asn) -> Option<u32> {
        self.reach.get(&src).map(|r| r.dist)
    }
}

fn better(best: &HashMap<Asn, Reach>, asn: Asn, candidate: Reach) -> bool {
    match best.get(&asn) {
        None => true,
        Some(old) => {
            (candidate.class, candidate.dist, candidate.next.map(|a| a.value()))
                < (old.class, old.dist, old.next.map(|a| a.value()))
        }
    }
}

#[cfg(test)]
mod tests {
    use bh_topology::{TopologyBuilder, TopologyConfig};

    use super::*;

    #[test]
    fn path_prefers_customer_route() {
        // origin ← provider chain should win over peer shortcuts of equal
        // availability. Build: O ← A ← B, and B peers with O directly:
        // B's peer route (1 hop) beats provider route via A (2 hops)?
        // Preference order: customer > peer > provider. B has no customer
        // route to O; peer route dist 1 wins over provider: correct.
        use bh_topology::{AsInfo, NetworkType, Tier};
        use std::collections::BTreeMap;
        let o = Asn::new(1);
        let a = Asn::new(2);
        let b = Asn::new(3);
        let mk = |asn| AsInfo {
            asn,
            tier: Tier::Stub,
            network_type: NetworkType::TransitAccess,
            country: "DE",
            prefixes: vec![],
            blackhole_offering: None,
            tag_communities: vec![],
            tag_classes: vec![],
            tag_large_communities: vec![],
            in_peeringdb: true,
        };
        let mut ases = BTreeMap::new();
        for asn in [o, a, b] {
            ases.insert(asn, mk(asn));
        }
        let edges = vec![
            (a, o, Relationship::Customer), // o is a's customer
            (b, a, Relationship::Customer), // a is b's customer
            (b, o, Relationship::Peer),
        ];
        let t = Topology::assemble(ases, edges, vec![]);
        let tree = ForwardingTree::toward(&t, o);
        // a reaches o via its customer o directly.
        assert_eq!(tree.path_from(a), Some(vec![a, o]));
        // b: customer route via a (dist 2) vs peer route (dist 1):
        // customer class wins despite longer path.
        assert_eq!(tree.path_from(b), Some(vec![b, a, o]));
        assert_eq!(tree.distance(o), Some(0));
    }

    #[test]
    fn valley_free_no_peer_then_up() {
        // src ← peer ← origin, then src's provider must NOT be used to
        // reach origin through src (peer routes don't export to
        // providers). Check: provider of src has its own path or none.
        use bh_topology::{AsInfo, NetworkType, Tier};
        use std::collections::BTreeMap;
        let origin = Asn::new(1);
        let src = Asn::new(2);
        let upstream = Asn::new(3);
        let mk = |asn| AsInfo {
            asn,
            tier: Tier::Stub,
            network_type: NetworkType::TransitAccess,
            country: "DE",
            prefixes: vec![],
            blackhole_offering: None,
            tag_communities: vec![],
            tag_classes: vec![],
            tag_large_communities: vec![],
            in_peeringdb: true,
        };
        let mut ases = BTreeMap::new();
        for asn in [origin, src, upstream] {
            ases.insert(asn, mk(asn));
        }
        let edges = vec![
            (src, origin, Relationship::Peer),
            (upstream, src, Relationship::Customer), // src is upstream's customer
        ];
        let t = Topology::assemble(ases, edges, vec![]);
        let tree = ForwardingTree::toward(&t, origin);
        assert_eq!(tree.path_from(src), Some(vec![src, origin]));
        // upstream learned src's peer route? Forbidden: peer routes only
        // export to customers. upstream is src's PROVIDER → no route.
        assert!(!tree.reaches(upstream));
    }

    #[test]
    fn generated_topology_is_fully_reachable_among_non_ixp_ases() {
        let t = TopologyBuilder::new(TopologyConfig::tiny(13)).build();
        // Pick a stub origin with prefixes.
        let origin = t
            .ases()
            .find(|i| !i.prefixes.is_empty() && i.tier == bh_topology::Tier::Stub)
            .unwrap()
            .asn;
        let tree = ForwardingTree::toward(&t, origin);
        let mut unreachable = 0;
        for info in t.ases() {
            if info.network_type == bh_topology::NetworkType::Ixp {
                continue; // route servers carry no traffic
            }
            if !tree.reaches(info.asn) {
                unreachable += 1;
            }
        }
        assert_eq!(unreachable, 0, "all transit/stub ASes must reach {origin}");
    }

    #[test]
    fn paths_terminate_and_are_loop_free() {
        let t = TopologyBuilder::new(TopologyConfig::tiny(13)).build();
        let origin = t.ases().find(|i| !i.prefixes.is_empty()).unwrap().asn;
        let tree = ForwardingTree::toward(&t, origin);
        for info in t.ases() {
            if let Some(path) = tree.path_from(info.asn) {
                assert_eq!(path.last(), Some(&origin));
                let mut dedup = path.clone();
                dedup.sort_unstable();
                dedup.dedup();
                assert_eq!(dedup.len(), path.len(), "loop in {path:?}");
                assert!(path.len() <= 12, "implausibly long path {path:?}");
            }
        }
    }

    #[test]
    fn distance_is_monotone_along_path() {
        let t = TopologyBuilder::new(TopologyConfig::tiny(29)).build();
        let origin = t.ases().find(|i| !i.prefixes.is_empty()).unwrap().asn;
        let tree = ForwardingTree::toward(&t, origin);
        for info in t.ases() {
            if let Some(path) = tree.path_from(info.asn) {
                // Each hop must strictly decrease the remaining distance.
                let dists: Vec<u32> = path.iter().map(|asn| tree.distance(*asn).unwrap()).collect();
                for w in dists.windows(2) {
                    assert!(w[0] > w[1], "distance not decreasing: {dists:?}");
                }
            }
        }
    }
}
