//! K-way merge of collector element streams — the BGPStream merge as a
//! constant-memory [`ElemSource`].
//!
//! The paper's pipeline consumes a time-ordered merge of ~180 RIS and
//! Route Views collector feeds. [`MergedSource`] reproduces that merge
//! *without materializing*: it holds exactly one buffered element per
//! input source (a k-entry binary heap) and yields the globally ordered
//! stream one element at a time, so merging hundreds of archive streams
//! costs O(k) memory and O(log k) per element.
//!
//! ## Ordering contract
//!
//! Elements are yielded in ascending `(time, dataset, collector)` order
//! with ties between sources broken by **source index** — exactly the
//! order [`merge_streams`](crate::archive::merge_streams) produces (a
//! stable sort over the flattened streams), so the two are golden-equal
//! whenever each input source is itself ordered. That precondition
//! holds for every archive produced by this workspace (collectors
//! observe in arrival order) and is checked with a `debug_assert!` per
//! source; release builds trust the input.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use bh_bgp_types::time::SimTime;

use crate::elem::{BgpElem, DataSource};
use crate::source::ElemSource;

/// The BGPStream total order plus the stable source-index tie-break.
type MergeKey = (SimTime, DataSource, u16, usize);

fn key_of(elem: &BgpElem, index: usize) -> MergeKey {
    (elem.time, elem.dataset, elem.collector, index)
}

/// A stable k-way timestamp merge over any set of [`ElemSource`]s.
///
/// Buffers one element per source; see the module docs for the ordering
/// contract. Sources of different concrete types merge via
/// `MergedSource<Box<dyn ElemSource>>`.
pub struct MergedSource<S: ElemSource> {
    sources: Vec<S>,
    heads: Vec<Option<BgpElem>>,
    heap: BinaryHeap<Reverse<MergeKey>>,
    current: Option<BgpElem>,
    primed: bool,
}

impl<S: ElemSource> MergedSource<S> {
    /// Merge `sources`; index order is the tie-break order, matching the
    /// stream order `merge_streams` would have flattened.
    pub fn new(sources: Vec<S>) -> Self {
        let heads = sources.iter().map(|_| None).collect();
        MergedSource { sources, heads, heap: BinaryHeap::new(), current: None, primed: false }
    }

    /// Number of input sources.
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }

    /// Recover the sources (e.g. to inspect
    /// [`MrtElemSource::take_error`](crate::archive::MrtElemSource::take_error)
    /// after the merged stream ends).
    pub fn into_sources(self) -> Vec<S> {
        self.sources
    }

    /// Pull the next element of source `index` into its head slot.
    fn refill(&mut self, index: usize) {
        if let Some(elem) = self.sources[index].next_elem() {
            let key = key_of(elem, index);
            debug_assert!(
                self.heads[index].as_ref().is_none_or(|prev| key_of(prev, index) <= key)
                    && self.current.as_ref().is_none_or(|prev| {
                        // The popped element bounds every successor.
                        (prev.time, prev.dataset, prev.collector) <= (key.0, key.1, key.2)
                    }),
                "source {index} is not (time, dataset, collector)-ordered"
            );
            self.heads[index] = Some(elem.clone());
            self.heap.push(Reverse(key));
        }
    }
}

impl<S: ElemSource> ElemSource for MergedSource<S> {
    fn next_elem(&mut self) -> Option<&BgpElem> {
        if !self.primed {
            self.primed = true;
            for index in 0..self.sources.len() {
                self.refill(index);
            }
        }
        let Reverse((_, _, _, index)) = self.heap.pop()?;
        self.current = self.heads[index].take();
        self.refill(index);
        self.current.as_ref()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let buffered = self.heads.iter().filter(|h| h.is_some()).count();
        let mut lower = buffered;
        let mut upper = Some(buffered);
        for source in &self.sources {
            let (lo, hi) = source.size_hint();
            lower += lo;
            upper = match (upper, hi) {
                (Some(a), Some(b)) => Some(a + b),
                _ => None,
            };
        }
        (lower, upper)
    }
}

#[cfg(test)]
mod tests {
    use bh_bgp_types::as_path::AsPath;
    use bh_bgp_types::asn::Asn;
    use bh_bgp_types::community::CommunitySet;

    use super::*;
    use crate::elem::ElemType;
    use crate::source::{collect_source, IterSource, SliceSource};

    fn elem(t: u64, dataset: DataSource, collector: u16) -> BgpElem {
        BgpElem {
            time: SimTime::from_unix(t),
            dataset,
            collector,
            peer_asn: Asn::new(1),
            peer_ip: "10.0.0.1".parse().unwrap(),
            elem_type: ElemType::Announce,
            prefix: "192.0.2.0/24".parse().unwrap(),
            as_path: AsPath::empty(),
            communities: CommunitySet::new(),
            next_hop: None,
        }
    }

    #[test]
    fn merges_by_time_across_sources() {
        let a = vec![elem(100, DataSource::Ris, 0), elem(300, DataSource::Ris, 0)];
        let b = vec![elem(200, DataSource::RouteViews, 1), elem(400, DataSource::RouteViews, 1)];
        let merged = MergedSource::new(vec![SliceSource::new(&a), SliceSource::new(&b)]);
        let times: Vec<u64> = collect_source(merged).iter().map(|e| e.time.unix()).collect();
        assert_eq!(times, vec![100, 200, 300, 400]);
    }

    #[test]
    fn ties_break_by_dataset_then_collector() {
        // Same timestamp everywhere: the (dataset, collector) order wins,
        // exactly like merge_streams' sort key.
        let a = vec![elem(100, DataSource::RouteViews, 0)];
        let b = vec![elem(100, DataSource::Ris, 2)];
        let c = vec![elem(100, DataSource::Ris, 1)];
        let merged = MergedSource::new(vec![
            SliceSource::new(&a),
            SliceSource::new(&b),
            SliceSource::new(&c),
        ]);
        let order: Vec<(DataSource, u16)> =
            collect_source(merged).iter().map(|e| (e.dataset, e.collector)).collect();
        assert_eq!(
            order,
            vec![(DataSource::Ris, 1), (DataSource::Ris, 2), (DataSource::RouteViews, 0)]
        );
    }

    #[test]
    fn full_ties_keep_source_index_order() {
        // Identical keys: source index (= stream order) is the stable
        // tie-break, matching the stable flatten-then-sort.
        let a = vec![elem(100, DataSource::Ris, 0)];
        let b = vec![elem(100, DataSource::Ris, 0)];
        let mut tagged_a = a.clone();
        tagged_a[0].peer_asn = Asn::new(11);
        let mut tagged_b = b;
        tagged_b[0].peer_asn = Asn::new(22);
        let merged =
            MergedSource::new(vec![SliceSource::new(&tagged_a), SliceSource::new(&tagged_b)]);
        let peers: Vec<u32> = collect_source(merged).iter().map(|e| e.peer_asn.value()).collect();
        assert_eq!(peers, vec![11, 22]);
    }

    #[test]
    fn empty_and_unbalanced_sources_are_fine() {
        let a: Vec<BgpElem> = Vec::new();
        let b = vec![elem(1, DataSource::Ris, 0), elem(2, DataSource::Ris, 0)];
        let merged = MergedSource::new(vec![SliceSource::new(&a), SliceSource::new(&b)]);
        assert_eq!(collect_source(merged).len(), 2);

        let mut none: MergedSource<SliceSource<'_>> = MergedSource::new(Vec::new());
        assert!(none.next_elem().is_none());
        assert_eq!(none.size_hint(), (0, Some(0)));
    }

    #[test]
    fn size_hint_tracks_remaining() {
        let a = vec![elem(1, DataSource::Ris, 0), elem(3, DataSource::Ris, 0)];
        let b = vec![elem(2, DataSource::Pch, 0)];
        let mut merged = MergedSource::new(vec![SliceSource::new(&a), SliceSource::new(&b)]);
        assert_eq!(merged.size_hint(), (3, Some(3)));
        merged.next_elem();
        assert_eq!(merged.size_hint(), (2, Some(2)));
        while merged.next_elem().is_some() {}
        assert_eq!(merged.size_hint(), (0, Some(0)));
    }

    #[test]
    fn boxed_sources_of_mixed_types_merge() {
        let a = vec![elem(2, DataSource::Ris, 0)];
        let owned = vec![elem(1, DataSource::Cdn, 0)];
        let sources: Vec<Box<dyn ElemSource>> =
            vec![Box::new(SliceSource::new(&a)), Box::new(IterSource::new(owned.into_iter()))];
        let times: Vec<u64> =
            collect_source(MergedSource::new(sources)).iter().map(|e| e.time.unix()).collect();
        assert_eq!(times, vec![1, 2]);
    }

    #[test]
    fn into_sources_returns_exhausted_sources() {
        let a = vec![elem(1, DataSource::Ris, 0)];
        let mut merged = MergedSource::new(vec![SliceSource::new(&a)]);
        while merged.next_elem().is_some() {}
        let sources = merged.into_sources();
        assert_eq!(sources.len(), 1);
        assert_eq!(sources[0].position(), 1);
    }
}
