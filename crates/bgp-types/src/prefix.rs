//! CIDR prefixes.
//!
//! The inference methodology leans heavily on prefix specificity:
//! blackholing providers accept routes *more specific than /24* only when
//! tagged with a blackhole community, 98% of observed blackholed prefixes
//! are /32 host routes, and data cleaning drops prefixes *less specific
//! than /8*. These predicates are first-class here.

use std::cmp::Ordering;
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::ParseError;

/// An IPv4 CIDR prefix, stored canonically (host bits zeroed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ipv4Prefix {
    network: u32,
    length: u8,
}

impl Ipv4Prefix {
    /// Construct a prefix from a network address and length, masking any
    /// host bits. Lengths > 32 are clamped errors.
    pub fn new(addr: Ipv4Addr, length: u8) -> Result<Self, ParseError> {
        if length > 32 {
            return Err(ParseError::new(format!("IPv4 prefix length {length} > 32")));
        }
        let raw = u32::from(addr);
        Ok(Ipv4Prefix { network: raw & Self::mask(length), length })
    }

    /// Construct from raw network bits; masks host bits. Panics if
    /// `length > 32` — intended for trusted, programmatic construction.
    pub fn from_raw(network: u32, length: u8) -> Self {
        assert!(length <= 32, "IPv4 prefix length {length} > 32");
        Ipv4Prefix { network: network & Self::mask(length), length }
    }

    /// A host route (`/32`) for a single address.
    pub fn host(addr: Ipv4Addr) -> Self {
        Ipv4Prefix { network: u32::from(addr), length: 32 }
    }

    /// The network address.
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.network)
    }

    /// Raw network bits.
    pub fn network_bits(&self) -> u32 {
        self.network
    }

    /// The prefix length.
    pub fn length(&self) -> u8 {
        self.length
    }

    /// The netmask for a given length.
    fn mask(length: u8) -> u32 {
        if length == 0 {
            0
        } else {
            u32::MAX << (32 - length as u32)
        }
    }

    /// Number of addresses covered (saturates at `u64` precision).
    pub fn address_count(&self) -> u64 {
        1u64 << (32 - self.length as u32)
    }

    /// Does this prefix contain the given address?
    pub fn contains_addr(&self, addr: Ipv4Addr) -> bool {
        (u32::from(addr) & Self::mask(self.length)) == self.network
    }

    /// Does this prefix fully contain `other` (i.e. `other` is equal or
    /// more specific and falls inside this network)?
    pub fn contains(&self, other: &Ipv4Prefix) -> bool {
        self.length <= other.length && (other.network & Self::mask(self.length)) == self.network
    }

    /// Is this prefix *more specific than* (strictly longer than) `/len`?
    ///
    /// `p.is_more_specific_than(24)` is the paper's "more-specific than /24"
    /// predicate that gates blackhole acceptance.
    pub fn is_more_specific_than(&self, len: u8) -> bool {
        self.length > len
    }

    /// Is this a host route (`/32`)?
    pub fn is_host_route(&self) -> bool {
        self.length == 32
    }

    /// The immediately less-specific covering prefix, or `None` for `/0`.
    pub fn parent(&self) -> Option<Ipv4Prefix> {
        if self.length == 0 {
            None
        } else {
            Some(Ipv4Prefix::from_raw(self.network, self.length - 1))
        }
    }

    /// The "neighbor" host inside the same /31, used by the efficacy
    /// experiment to pick a non-blackholed control target next to a
    /// blackholed /32 (§10: "we select another target in the same /31").
    pub fn sibling_host(&self) -> Option<Ipv4Prefix> {
        if self.length != 32 {
            return None;
        }
        Some(Ipv4Prefix { network: self.network ^ 1, length: 32 })
    }

    /// Iterate the `n`-th address inside the prefix (0-based), if in range.
    pub fn nth_addr(&self, n: u64) -> Option<Ipv4Addr> {
        if n >= self.address_count() {
            return None;
        }
        Some(Ipv4Addr::from(self.network.wrapping_add(n as u32)))
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.length)
    }
}

impl FromStr for Ipv4Prefix {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| ParseError::new(format!("missing '/' in prefix: {s:?}")))?;
        let addr: Ipv4Addr = addr
            .parse()
            .map_err(|_| ParseError::new(format!("bad IPv4 address in prefix: {s:?}")))?;
        let len: u8 =
            len.parse().map_err(|_| ParseError::new(format!("bad prefix length in: {s:?}")))?;
        Ipv4Prefix::new(addr, len)
    }
}

impl Ord for Ipv4Prefix {
    fn cmp(&self, other: &Self) -> Ordering {
        self.network.cmp(&other.network).then(self.length.cmp(&other.length))
    }
}

impl PartialOrd for Ipv4Prefix {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// An IPv6 CIDR prefix, stored canonically (host bits zeroed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ipv6Prefix {
    network: u128,
    length: u8,
}

impl Ipv6Prefix {
    /// Construct a prefix, masking host bits.
    pub fn new(addr: Ipv6Addr, length: u8) -> Result<Self, ParseError> {
        if length > 128 {
            return Err(ParseError::new(format!("IPv6 prefix length {length} > 128")));
        }
        let raw = u128::from(addr);
        Ok(Ipv6Prefix { network: raw & Self::mask(length), length })
    }

    /// Construct from raw bits; panics if `length > 128`.
    pub fn from_raw(network: u128, length: u8) -> Self {
        assert!(length <= 128, "IPv6 prefix length {length} > 128");
        Ipv6Prefix { network: network & Self::mask(length), length }
    }

    /// The network address.
    pub fn network(&self) -> Ipv6Addr {
        Ipv6Addr::from(self.network)
    }

    /// The prefix length.
    pub fn length(&self) -> u8 {
        self.length
    }

    fn mask(length: u8) -> u128 {
        if length == 0 {
            0
        } else {
            u128::MAX << (128 - length as u32)
        }
    }

    /// Does this prefix fully contain `other`?
    pub fn contains(&self, other: &Ipv6Prefix) -> bool {
        self.length <= other.length && (other.network & Self::mask(self.length)) == self.network
    }

    /// Is this a host route (`/128`)?
    pub fn is_host_route(&self) -> bool {
        self.length == 128
    }
}

impl fmt::Display for Ipv6Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.length)
    }
}

impl FromStr for Ipv6Prefix {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| ParseError::new(format!("missing '/' in prefix: {s:?}")))?;
        let addr: Ipv6Addr = addr
            .parse()
            .map_err(|_| ParseError::new(format!("bad IPv6 address in prefix: {s:?}")))?;
        let len: u8 =
            len.parse().map_err(|_| ParseError::new(format!("bad prefix length in: {s:?}")))?;
        Ipv6Prefix::new(addr, len)
    }
}

/// Either an IPv4 or an IPv6 prefix.
///
/// The study reports that 96.6% of observed prefixes are IPv4 and the
/// evaluation focuses on IPv4, but the data model carries both families so
/// the dictionary (`dead:beef` next-hops) and codecs stay faithful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Prefix {
    /// An IPv4 prefix.
    V4(Ipv4Prefix),
    /// An IPv6 prefix.
    V6(Ipv6Prefix),
}

impl Prefix {
    /// The prefix length.
    pub fn length(&self) -> u8 {
        match self {
            Prefix::V4(p) => p.length(),
            Prefix::V6(p) => p.length(),
        }
    }

    /// Is this an IPv4 prefix?
    pub fn is_ipv4(&self) -> bool {
        matches!(self, Prefix::V4(_))
    }

    /// Is this a host route (/32 or /128)?
    pub fn is_host_route(&self) -> bool {
        match self {
            Prefix::V4(p) => p.is_host_route(),
            Prefix::V6(p) => p.is_host_route(),
        }
    }

    /// The paper's key predicate: more specific than /24 (IPv4) or /48
    /// (IPv6, the conventional equivalent boundary).
    pub fn is_blackhole_specific(&self) -> bool {
        match self {
            Prefix::V4(p) => p.is_more_specific_than(24),
            Prefix::V6(p) => p.length() > 48,
        }
    }

    /// The IPv4 prefix, if this is one.
    pub fn as_v4(&self) -> Option<&Ipv4Prefix> {
        match self {
            Prefix::V4(p) => Some(p),
            Prefix::V6(_) => None,
        }
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Prefix::V4(p) => p.fmt(f),
            Prefix::V6(p) => p.fmt(f),
        }
    }
}

impl From<Ipv4Prefix> for Prefix {
    fn from(p: Ipv4Prefix) -> Self {
        Prefix::V4(p)
    }
}

impl From<Ipv6Prefix> for Prefix {
    fn from(p: Ipv6Prefix) -> Self {
        Prefix::V6(p)
    }
}

impl FromStr for Prefix {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.contains(':') {
            s.parse::<Ipv6Prefix>().map(Prefix::V6)
        } else {
            s.parse::<Ipv4Prefix>().map(Prefix::V4)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p4(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn canonical_form_masks_host_bits() {
        let p = Ipv4Prefix::new(Ipv4Addr::new(10, 1, 2, 3), 16).unwrap();
        assert_eq!(p.to_string(), "10.1.0.0/16");
        assert_eq!(p, p4("10.1.0.0/16"));
    }

    #[test]
    fn display_parse_round_trip() {
        for s in ["0.0.0.0/0", "130.149.1.1/32", "192.0.2.0/24", "10.0.0.0/8"] {
            assert_eq!(p4(s).to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!("10.0.0.0".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Ipv4Prefix>().is_err());
        assert!("300.0.0.0/8".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0/x".parse::<Ipv4Prefix>().is_err());
    }

    #[test]
    fn containment() {
        let big = p4("10.0.0.0/8");
        let small = p4("10.42.0.0/16");
        let host = p4("10.42.1.1/32");
        assert!(big.contains(&small));
        assert!(big.contains(&host));
        assert!(small.contains(&host));
        assert!(!small.contains(&big));
        assert!(!p4("11.0.0.0/8").contains(&small));
        // A prefix contains itself.
        assert!(big.contains(&big));
    }

    #[test]
    fn contains_addr() {
        let p = p4("192.0.2.0/24");
        assert!(p.contains_addr(Ipv4Addr::new(192, 0, 2, 200)));
        assert!(!p.contains_addr(Ipv4Addr::new(192, 0, 3, 1)));
    }

    #[test]
    fn specificity_predicates() {
        assert!(p4("1.2.3.4/32").is_more_specific_than(24));
        assert!(p4("1.2.3.0/25").is_more_specific_than(24));
        assert!(!p4("1.2.3.0/24").is_more_specific_than(24));
        assert!(Prefix::from(p4("1.2.3.4/32")).is_blackhole_specific());
        assert!(!Prefix::from(p4("1.2.3.0/24")).is_blackhole_specific());
    }

    #[test]
    fn host_route_and_sibling() {
        let h = p4("130.149.1.1/32");
        assert!(h.is_host_route());
        assert_eq!(h.sibling_host().unwrap().to_string(), "130.149.1.0/32");
        assert_eq!(p4("130.149.1.0/32").sibling_host().unwrap(), h);
        assert!(p4("130.149.1.0/24").sibling_host().is_none());
    }

    #[test]
    fn parent_walks_up() {
        let h = p4("130.149.1.1/32");
        let parent = h.parent().unwrap();
        assert_eq!(parent.length(), 31);
        assert!(parent.contains(&h));
        assert!(p4("0.0.0.0/0").parent().is_none());
    }

    #[test]
    fn address_count() {
        assert_eq!(p4("1.2.3.4/32").address_count(), 1);
        assert_eq!(p4("1.2.3.0/24").address_count(), 256);
        assert_eq!(p4("0.0.0.0/0").address_count(), 1u64 << 32);
    }

    #[test]
    fn nth_addr() {
        let p = p4("192.0.2.0/30");
        assert_eq!(p.nth_addr(0).unwrap(), Ipv4Addr::new(192, 0, 2, 0));
        assert_eq!(p.nth_addr(3).unwrap(), Ipv4Addr::new(192, 0, 2, 3));
        assert!(p.nth_addr(4).is_none());
    }

    #[test]
    fn ipv6_basics() {
        let p: Ipv6Prefix = "2001:db8::/32".parse().unwrap();
        assert_eq!(p.to_string(), "2001:db8::/32");
        let host: Ipv6Prefix = "2001:db8::dead:beef/128".parse().unwrap();
        assert!(host.is_host_route());
        assert!(p.contains(&host));
        assert!(!host.contains(&p));
    }

    #[test]
    fn mixed_prefix_parsing() {
        assert!(matches!("10.0.0.0/8".parse::<Prefix>().unwrap(), Prefix::V4(_)));
        assert!(matches!("2001:db8::/32".parse::<Prefix>().unwrap(), Prefix::V6(_)));
        assert!("nonsense".parse::<Prefix>().is_err());
    }

    #[test]
    fn ordering_is_by_network_then_length() {
        let mut v = vec![p4("10.0.0.0/16"), p4("10.0.0.0/8"), p4("9.0.0.0/8")];
        v.sort();
        assert_eq!(v, vec![p4("9.0.0.0/8"), p4("10.0.0.0/8"), p4("10.0.0.0/16")]);
    }
}
