//! BGP path attributes.
//!
//! A structured (already-parsed) view of the attributes that matter to the
//! study: `AS_PATH` (user inference, ambiguity resolution), `COMMUNITIES`
//! (the blackholing trigger), `NEXT_HOP` (IXP blackholing rewrites it to the
//! blackholing IP / null interface), plus the standard decision-process
//! attributes the routing simulator needs (`LOCAL_PREF`, `MED`).

use std::net::{IpAddr, Ipv4Addr};

use serde::{Deserialize, Serialize};

use crate::as_path::AsPath;
use crate::asn::Asn;
use crate::community::CommunitySet;

/// RFC 4271 ORIGIN attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Origin {
    /// Learned from an IGP (most deliberate announcements).
    Igp,
    /// Learned from EGP (historical).
    Egp,
    /// INCOMPLETE — typically redistributed statics; common for RTBH
    /// host routes injected at the victim's border.
    Incomplete,
}

impl Origin {
    /// Wire value (0/1/2).
    pub fn code(self) -> u8 {
        match self {
            Origin::Igp => 0,
            Origin::Egp => 1,
            Origin::Incomplete => 2,
        }
    }

    /// Decode from the wire value.
    pub fn from_code(code: u8) -> Option<Origin> {
        match code {
            0 => Some(Origin::Igp),
            1 => Some(Origin::Egp),
            2 => Some(Origin::Incomplete),
            _ => None,
        }
    }

    /// Decision-process preference: IGP < EGP < INCOMPLETE (lower wins).
    pub fn preference_rank(self) -> u8 {
        self.code()
    }
}

/// Attribute type codes used by the codec (RFC 4271 / 1997 / 8092).
pub mod type_code {
    /// ORIGIN.
    pub const ORIGIN: u8 = 1;
    /// AS_PATH.
    pub const AS_PATH: u8 = 2;
    /// NEXT_HOP.
    pub const NEXT_HOP: u8 = 3;
    /// MULTI_EXIT_DISC.
    pub const MED: u8 = 4;
    /// LOCAL_PREF.
    pub const LOCAL_PREF: u8 = 5;
    /// ATOMIC_AGGREGATE.
    pub const ATOMIC_AGGREGATE: u8 = 6;
    /// AGGREGATOR.
    pub const AGGREGATOR: u8 = 7;
    /// COMMUNITIES (RFC 1997).
    pub const COMMUNITIES: u8 = 8;
    /// EXTENDED COMMUNITIES (RFC 4360).
    pub const EXTENDED_COMMUNITIES: u8 = 16;
    /// LARGE COMMUNITIES (RFC 8092).
    pub const LARGE_COMMUNITIES: u8 = 32;
}

/// The parsed path attributes of one announcement.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PathAttributes {
    /// ORIGIN.
    pub origin: Origin,
    /// AS_PATH, nearest AS first.
    pub as_path: AsPath,
    /// NEXT_HOP. For IXP blackholing this is the *blackholing IP*
    /// (commonly ending in `.66` for IPv4 per the paper).
    pub next_hop: Option<IpAddr>,
    /// MULTI_EXIT_DISC.
    pub med: Option<u32>,
    /// LOCAL_PREF (iBGP / route-server contexts).
    pub local_pref: Option<u32>,
    /// ATOMIC_AGGREGATE presence.
    pub atomic_aggregate: bool,
    /// AGGREGATOR (ASN + router id).
    pub aggregator: Option<(Asn, Ipv4Addr)>,
    /// All communities (classic + extended + large).
    pub communities: CommunitySet,
}

impl Default for PathAttributes {
    fn default() -> Self {
        PathAttributes {
            origin: Origin::Igp,
            as_path: AsPath::empty(),
            next_hop: None,
            med: None,
            local_pref: None,
            atomic_aggregate: false,
            aggregator: None,
            communities: CommunitySet::new(),
        }
    }
}

impl PathAttributes {
    /// A minimal attribute set: origin IGP, the given path and next hop.
    pub fn basic(as_path: AsPath, next_hop: IpAddr) -> Self {
        PathAttributes { as_path, next_hop: Some(next_hop), ..Default::default() }
    }

    /// Builder-style: attach a communities set.
    pub fn with_communities(mut self, communities: CommunitySet) -> Self {
        self.communities = communities;
        self
    }

    /// Builder-style: set LOCAL_PREF.
    pub fn with_local_pref(mut self, lp: u32) -> Self {
        self.local_pref = Some(lp);
        self
    }

    /// Builder-style: set ORIGIN.
    pub fn with_origin(mut self, origin: Origin) -> Self {
        self.origin = origin;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_codes_round_trip() {
        for origin in [Origin::Igp, Origin::Egp, Origin::Incomplete] {
            assert_eq!(Origin::from_code(origin.code()), Some(origin));
        }
        assert_eq!(Origin::from_code(3), None);
    }

    #[test]
    fn origin_preference_order() {
        assert!(Origin::Igp.preference_rank() < Origin::Egp.preference_rank());
        assert!(Origin::Egp.preference_rank() < Origin::Incomplete.preference_rank());
    }

    #[test]
    fn default_attributes_are_empty() {
        let attrs = PathAttributes::default();
        assert!(attrs.as_path.is_empty());
        assert!(attrs.communities.is_empty());
        assert_eq!(attrs.next_hop, None);
        assert!(!attrs.atomic_aggregate);
    }

    #[test]
    fn builder_helpers() {
        let path = AsPath::from_sequence(vec![Asn::new(1), Asn::new(2)]);
        let nh: IpAddr = "10.0.0.1".parse().unwrap();
        let attrs = PathAttributes::basic(path.clone(), nh)
            .with_local_pref(200)
            .with_origin(Origin::Incomplete);
        assert_eq!(attrs.as_path, path);
        assert_eq!(attrs.next_hop, Some(nh));
        assert_eq!(attrs.local_pref, Some(200));
        assert_eq!(attrs.origin, Origin::Incomplete);
    }
}
