//! A fast, non-cryptographic hasher for the pipeline's hot maps.
//!
//! The session and decode hot paths probe several hash maps per
//! announcement (intern tables, the open-event map, the attribute-block
//! cache). Those keys are either already-mixed content hashes or tiny
//! fixed-size values, so SipHash's DoS resistance buys nothing there —
//! all inputs come from our own decoder, not from an attacker who can
//! choose map keys. [`FxHasher`] is the rustc-style multiply-rotate
//! hasher: a few cycles per word instead of a SipHash round.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the golden-ratio family (same constant rustc uses).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc `FxHash` word-at-a-time hasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail) ^ rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add(n as u64);
        self.add((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`] (deterministic: no per-map seed).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash + ?Sized>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_and_distinguishes_values() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_ne!(hash_of(&42u64), hash_of(&43u64));
        assert_ne!(hash_of(&[1u8, 2, 3][..]), hash_of(&[1u8, 2, 3, 0][..]));
        assert_ne!(hash_of(&(7u32, 8u8)), hash_of(&(8u32, 7u8)));
    }

    #[test]
    fn maps_work_with_arbitrary_keys() {
        let mut m: FxHashMap<Vec<u8>, u32> = FxHashMap::default();
        m.insert(vec![1, 2, 3], 1);
        m.insert(vec![], 2);
        assert_eq!(m.get(&vec![1, 2, 3]), Some(&1));
        assert_eq!(m.get(&vec![]), Some(&2));
    }
}
