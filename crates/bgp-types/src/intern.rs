//! Interning tables for [`AsPath`]s and [`CommunitySet`]s.
//!
//! The paper's workload is massively repetitive: 5.7 billion updates
//! ride on a few million distinct AS paths and far fewer distinct
//! community sets. An intern table maps each distinct value to a dense
//! small id ([`PathId`] / [`CommunitySetId`]) with O(1) hash/eq, so the
//! inference can carry and compare handles instead of structures. The
//! stored values are the Arc-backed [`AsPath`]/[`CommunitySet`] handles
//! themselves, so interning also *deduplicates storage*: every element
//! whose path was seen before shares the first occurrence's allocation.
//!
//! Tables are per-shard in a [`ShardedSession`]-style run and merged
//! with [`InternTable::absorb`], which returns the id remapping so a
//! shard's ids stay resolvable after the merge. Two tables that interned
//! the same values in different orders compare equal (`PartialEq` is
//! set-based), which is what makes single-threaded and sharded runs of
//! the same stream produce identical summaries.
//!
//! [`ShardedSession`]: ../../bh_core/struct.ShardedSession.html

use std::hash::Hash;

use crate::hash::FxHashMap;

use crate::as_path::AsPath;
use crate::community::CommunitySet;

/// Dense handle for an interned [`AsPath`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PathId(pub u32);

/// Dense handle for an interned [`CommunitySet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CommunitySetId(pub u32);

/// Values an intern table can hand out ids for.
pub trait Internable: Clone + Eq + Hash {
    /// The id newtype for this value kind.
    type Id: Copy;
    /// Wrap a dense index.
    fn id_of(index: u32) -> Self::Id;
    /// Unwrap to the dense index.
    fn index_of(id: Self::Id) -> u32;
}

impl Internable for AsPath {
    type Id = PathId;
    fn id_of(index: u32) -> PathId {
        PathId(index)
    }
    fn index_of(id: PathId) -> u32 {
        id.0
    }
}

impl Internable for CommunitySet {
    type Id = CommunitySetId;
    fn id_of(index: u32) -> CommunitySetId {
        CommunitySetId(index)
    }
    fn index_of(id: CommunitySetId) -> u32 {
        id.0
    }
}

/// An append-only id table: first come, first id.
///
/// Lookups ride on the values' memoized content hashes, so interning an
/// already-seen `AsPath` costs one `u64` hash write plus (usually) one
/// pointer-equality probe.
#[derive(Debug, Clone, Default)]
pub struct InternTable<T: Internable> {
    ids: FxHashMap<T, u32>,
    values: Vec<T>,
}

/// Interner for AS paths.
pub type PathTable = InternTable<AsPath>;
/// Interner for community sets.
pub type CommunitySetTable = InternTable<CommunitySet>;

impl<T: Internable> InternTable<T> {
    /// Empty table.
    pub fn new() -> Self {
        InternTable { ids: FxHashMap::default(), values: Vec::new() }
    }

    /// The id for `value`, allocating the next dense id on first sight.
    pub fn intern(&mut self, value: &T) -> T::Id {
        if let Some(&index) = self.ids.get(value) {
            return T::id_of(index);
        }
        let index = u32::try_from(self.values.len()).expect("more than u32::MAX interned values");
        self.ids.insert(value.clone(), index);
        self.values.push(value.clone());
        T::id_of(index)
    }

    /// The canonical (first-interned) handle equal to `value`, if any —
    /// lets a caller swap its copy for the shared allocation.
    pub fn canonical(&self, value: &T) -> Option<&T> {
        self.ids.get_key_value(value).map(|(k, _)| k)
    }

    /// Resolve an id back to its value.
    ///
    /// # Panics
    /// If `id` was not produced by this table (or by a table this one
    /// absorbed).
    pub fn resolve(&self, id: T::Id) -> &T {
        &self.values[T::index_of(id) as usize]
    }

    /// Number of distinct interned values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterate values in id order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.values.iter()
    }

    /// Merge `other` into `self`, returning, for each of `other`'s ids
    /// (in dense order), the id it now maps to in `self`. Values already
    /// present keep their existing id, so absorb order cannot perturb
    /// ids already handed out by `self` — the id-stability contract the
    /// sharded merge relies on.
    pub fn absorb(&mut self, other: &InternTable<T>) -> Vec<T::Id> {
        other.values.iter().map(|value| self.intern(value)).collect()
    }
}

/// Set-based equality: same distinct values, regardless of id order.
impl<T: Internable> PartialEq for InternTable<T> {
    fn eq(&self, other: &Self) -> bool {
        self.values.len() == other.values.len()
            && self.values.iter().all(|v| other.ids.contains_key(v))
    }
}

impl<T: Internable> Eq for InternTable<T> {}

#[cfg(test)]
mod tests {
    use std::str::FromStr;

    use super::*;
    use crate::community::Community;

    fn path(s: &str) -> AsPath {
        AsPath::from_str(s).unwrap()
    }

    #[test]
    fn interning_dedups_and_is_id_stable() {
        let mut table = PathTable::new();
        let a = table.intern(&path("3356 2914 64500"));
        let b = table.intern(&path("6939 64500"));
        let a_again = table.intern(&path("3356 2914 64500"));
        assert_eq!(a, a_again, "same value must keep its id");
        assert_ne!(a, b);
        assert_eq!(table.len(), 2);
        assert_eq!(table.resolve(a), &path("3356 2914 64500"));
        assert_eq!(table.resolve(b), &path("6939 64500"));
    }

    #[test]
    fn canonical_returns_the_shared_allocation() {
        let mut table = PathTable::new();
        let first = path("3356 64500");
        table.intern(&first);
        let copy = path("3356 64500");
        assert!(!copy.shares_allocation(&first));
        let canonical = table.canonical(&copy).expect("interned");
        assert!(canonical.shares_allocation(&first));
        assert!(table.canonical(&path("174 1")).is_none());
    }

    #[test]
    fn absorb_remaps_ids_and_keeps_existing_ones_stable() {
        // Two shards intern overlapping values in different orders.
        let mut left = CommunitySetTable::new();
        let shared = CommunitySet::from_classic(vec![Community::BLACKHOLE]);
        let only_left = CommunitySet::from_classic(vec![Community::from_parts(3356, 9999)]);
        let only_right = CommunitySet::from_classic(vec![Community::from_parts(1299, 666)]);
        let id_shared = left.intern(&shared);
        let id_left = left.intern(&only_left);

        let mut right = CommunitySetTable::new();
        let r_only = right.intern(&only_right);
        let r_shared = right.intern(&shared);

        let remap = left.absorb(&right);
        assert_eq!(left.len(), 3);
        // Pre-existing ids survive the absorb untouched.
        assert_eq!(left.intern(&shared), id_shared);
        assert_eq!(left.intern(&only_left), id_left);
        // The remap carries each right-id to its left-id.
        assert_eq!(remap[CommunitySet::index_of(r_shared) as usize], id_shared);
        let new_id = remap[CommunitySet::index_of(r_only) as usize];
        assert_eq!(left.resolve(new_id), &only_right);
    }

    #[test]
    fn equality_ignores_id_order() {
        let mut forward = PathTable::new();
        let mut backward = PathTable::new();
        forward.intern(&path("1 2"));
        forward.intern(&path("3 4"));
        backward.intern(&path("3 4"));
        backward.intern(&path("1 2"));
        assert_eq!(forward, backward);
        backward.intern(&path("5 6"));
        assert_ne!(forward, backward);
    }

    #[test]
    fn absorb_is_commutative_up_to_set_equality() {
        let mut a = PathTable::new();
        a.intern(&path("1"));
        a.intern(&path("2"));
        let mut b = PathTable::new();
        b.intern(&path("2"));
        b.intern(&path("3"));
        let mut ab = a.clone();
        ab.absorb(&b);
        let mut ba = b.clone();
        ba.absorb(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.len(), 3);
    }
}
