//! Autonomous System Numbers.
//!
//! ASNs are 32-bit since RFC 6793; the original 16-bit space still matters
//! for the classic RFC 1997 community format, whose first 16 bits encode an
//! ASN. The blackhole-community dictionary of the paper therefore needs to
//! know whether a 16-bit value names a *public* ASN ("we ignore communities
//! for which the first 16 bits do not encode a public ASN", §4.1).

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::ParseError;

/// An Autonomous System Number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Asn(pub u32);

impl Asn {
    /// AS_TRANS (RFC 6793): stands in for 32-bit ASNs on 16-bit-only sessions.
    pub const TRANS: Asn = Asn(23456);
    /// Reserved ASN 0 (RFC 7607) — must never originate routes.
    pub const ZERO: Asn = Asn(0);
    /// Last 16-bit ASN.
    pub const MAX_16BIT: u32 = 65_535;

    /// Create a new ASN from a raw number.
    pub const fn new(value: u32) -> Self {
        Asn(value)
    }

    /// Raw numeric value.
    pub const fn value(self) -> u32 {
        self.0
    }

    /// Does this ASN fit in the classic 16-bit space?
    pub const fn is_16bit(self) -> bool {
        self.0 <= Self::MAX_16BIT
    }

    /// Is this a private-use ASN (RFC 6996)?
    ///
    /// 64512–65534 (16-bit) and 4200000000–4294967294 (32-bit).
    pub const fn is_private(self) -> bool {
        (self.0 >= 64_512 && self.0 <= 65_534)
            || (self.0 >= 4_200_000_000 && self.0 <= 4_294_967_294)
    }

    /// Is this ASN reserved (not assignable to an operator)?
    ///
    /// Covers ASN 0, AS_TRANS, 65535 (reserved, used by well-known
    /// communities such as RFC 7999's `65535:666`), the RFC 5398
    /// documentation ranges (64496–64511, 65536–65551), and 4294967295.
    pub const fn is_reserved(self) -> bool {
        matches!(self.0, 0 | 23_456 | 65_535 | 4_294_967_295)
            || (self.0 >= 64_496 && self.0 <= 64_511)
            || (self.0 >= 65_536 && self.0 <= 65_551)
    }

    /// A *public* ASN: one that could identify a real network operator.
    ///
    /// This is the predicate used when deciding whether the high 16 bits of
    /// a community can be mapped to a blackholing provider.
    pub const fn is_public(self) -> bool {
        !self.is_private() && !self.is_reserved()
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl From<u32> for Asn {
    fn from(value: u32) -> Self {
        Asn(value)
    }
}

impl From<u16> for Asn {
    fn from(value: u16) -> Self {
        Asn(value as u32)
    }
}

impl From<Asn> for u32 {
    fn from(value: Asn) -> Self {
        value.0
    }
}

impl FromStr for Asn {
    type Err = ParseError;

    /// Accepts `"6939"`, `"AS6939"`, or `"as6939"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let digits = s
            .strip_prefix("AS")
            .or_else(|| s.strip_prefix("as"))
            .or_else(|| s.strip_prefix("As"))
            .unwrap_or(s);
        digits.parse::<u32>().map(Asn).map_err(|_| ParseError::new(format!("invalid ASN: {s:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_round_trip() {
        let asn = Asn::new(3356);
        assert_eq!(asn.to_string(), "AS3356");
        assert_eq!("AS3356".parse::<Asn>().unwrap(), asn);
        assert_eq!("3356".parse::<Asn>().unwrap(), asn);
        assert_eq!("as3356".parse::<Asn>().unwrap(), asn);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("ASfoo".parse::<Asn>().is_err());
        assert!("".parse::<Asn>().is_err());
        assert!("-5".parse::<Asn>().is_err());
        assert!("4294967296".parse::<Asn>().is_err());
    }

    #[test]
    fn sixteen_bit_boundary() {
        assert!(Asn::new(65_535).is_16bit());
        assert!(!Asn::new(65_536).is_16bit());
    }

    #[test]
    fn private_ranges() {
        assert!(Asn::new(64_512).is_private());
        assert!(Asn::new(65_534).is_private());
        assert!(!Asn::new(64_511).is_private());
        assert!(!Asn::new(65_535).is_private());
        assert!(Asn::new(4_200_000_000).is_private());
        assert!(Asn::new(4_294_967_294).is_private());
        assert!(!Asn::new(4_294_967_295).is_private());
    }

    #[test]
    fn reserved_values() {
        assert!(Asn::ZERO.is_reserved());
        assert!(Asn::TRANS.is_reserved());
        assert!(Asn::new(65_535).is_reserved());
        assert!(Asn::new(64_496).is_reserved());
        assert!(Asn::new(65_551).is_reserved());
        assert!(Asn::new(4_294_967_295).is_reserved());
        assert!(!Asn::new(3356).is_reserved());
    }

    #[test]
    fn public_asn_predicate_matches_paper_usage() {
        // The paper ignores communities like 65535:666 / 0:666 when mapping
        // the high 16 bits to a provider — those are not public ASNs.
        assert!(!Asn::new(65_535).is_public());
        assert!(!Asn::new(0).is_public());
        assert!(!Asn::new(64_512).is_public());
        // Real operators are public.
        assert!(Asn::new(3356).is_public());
        assert!(Asn::new(174).is_public());
        assert!(Asn::new(196_608).is_public()); // first public 32-bit ASN after doc range
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Asn::new(2) < Asn::new(10));
    }
}
