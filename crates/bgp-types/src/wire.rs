//! Binary wire codec for BGP UPDATE messages (RFC 4271, AS4 paths per
//! RFC 6793).
//!
//! This is the payload layer of the `bh-mrt` MRT writer/reader: the
//! simulator serializes every routing event into genuine BGP wire bytes
//! wrapped in MRT `BGP4MP_MESSAGE_AS4` records, so the inference pipeline
//! parses the same byte format it would parse from RouteViews/RIS archives.
//!
//! Scope (explicit, smoltcp-style):
//! * Encoded: ORIGIN, AS_PATH (4-byte ASNs), NEXT_HOP, MED, LOCAL_PREF,
//!   ATOMIC_AGGREGATE, AGGREGATOR, COMMUNITIES, EXTENDED/LARGE COMMUNITIES,
//!   IPv4 NLRI + withdrawals.
//! * Not encoded: MP_REACH/MP_UNREACH (IPv6 NLRI travels through the
//!   structured model, not the wire), ADD-PATH, attribute fragmentation.
//! * Unknown attributes are skipped on decode (tolerant reader), matching
//!   how measurement pipelines must treat arbitrary archive data.

use std::net::{IpAddr, Ipv4Addr};
use std::sync::{Arc, Mutex};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::as_path::{AsPath, AsPathSegment};
use crate::asn::Asn;
use crate::attrs::{type_code, Origin, PathAttributes};
use crate::community::{Community, ExtendedCommunity, LargeCommunity};
use crate::error::CodecError;
use crate::prefix::Ipv4Prefix;
use crate::update::BgpUpdate;

/// BGP message types (header `type` octet).
pub mod msg_type {
    /// OPEN.
    pub const OPEN: u8 = 1;
    /// UPDATE.
    pub const UPDATE: u8 = 2;
    /// NOTIFICATION.
    pub const NOTIFICATION: u8 = 3;
    /// KEEPALIVE.
    pub const KEEPALIVE: u8 = 4;
}

/// Length of the fixed BGP message header (marker + length + type).
pub const BGP_HEADER_LEN: usize = 19;

/// Maximum BGP message size (RFC 4271).
pub const BGP_MAX_MESSAGE_LEN: usize = 4096;

const ATTR_FLAG_OPTIONAL: u8 = 0x80;
const ATTR_FLAG_TRANSITIVE: u8 = 0x40;
const ATTR_FLAG_EXTENDED_LEN: u8 = 0x10;

/// Encode one IPv4 NLRI element: length octet + minimal network bytes.
pub fn encode_nlri(buf: &mut BytesMut, prefix: &Ipv4Prefix) {
    buf.put_u8(prefix.length());
    let octets = prefix.network().octets();
    let nbytes = prefix.length().div_ceil(8) as usize;
    buf.put_slice(&octets[..nbytes]);
}

/// Decode one IPv4 NLRI element.
pub fn decode_nlri(buf: &mut Bytes) -> Result<Ipv4Prefix, CodecError> {
    CodecError::ensure("nlri length", buf.remaining(), 1)?;
    let len = buf.get_u8();
    if len > 32 {
        return Err(CodecError::BadLength { what: "nlri prefix length", value: len as usize });
    }
    let nbytes = len.div_ceil(8) as usize;
    CodecError::ensure("nlri network", buf.remaining(), nbytes)?;
    let mut octets = [0u8; 4];
    buf.copy_to_slice(&mut octets[..nbytes]);
    Ok(Ipv4Prefix::from_raw(u32::from_be_bytes(octets), len))
}

fn put_attr_header(buf: &mut BytesMut, flags: u8, code: u8, len: usize) {
    if len > 255 {
        buf.put_u8(flags | ATTR_FLAG_EXTENDED_LEN);
        buf.put_u8(code);
        buf.put_u16(len as u16);
    } else {
        buf.put_u8(flags);
        buf.put_u8(code);
        buf.put_u8(len as u8);
    }
}

fn encode_as_path(path: &AsPath) -> BytesMut {
    let mut body = BytesMut::new();
    for seg in path.segments() {
        let asns = seg.asns();
        // RFC limits a segment to 255 ASNs; split long prepends.
        for chunk in asns.chunks(255) {
            body.put_u8(seg.type_code());
            body.put_u8(chunk.len() as u8);
            for asn in chunk {
                body.put_u32(asn.value());
            }
        }
    }
    body
}

fn decode_as_path(mut body: Bytes) -> Result<AsPath, CodecError> {
    let mut segments = Vec::new();
    while body.has_remaining() {
        CodecError::ensure("as-path segment header", body.remaining(), 2)?;
        let seg_type = body.get_u8();
        let count = body.get_u8() as usize;
        CodecError::ensure("as-path segment body", body.remaining(), count * 4)?;
        let mut asns = Vec::with_capacity(count);
        for _ in 0..count {
            asns.push(Asn::new(body.get_u32()));
        }
        match seg_type {
            1 => segments.push(AsPathSegment::Set(asns)),
            2 => segments.push(AsPathSegment::Sequence(asns)),
            other => {
                return Err(CodecError::BadValue {
                    what: "as-path segment type",
                    value: other as u64,
                })
            }
        }
    }
    // Merge adjacent sequences produced by chunking on encode.
    let mut merged: Vec<AsPathSegment> = Vec::with_capacity(segments.len());
    for seg in segments {
        match (merged.last_mut(), seg) {
            (Some(AsPathSegment::Sequence(tail)), AsPathSegment::Sequence(next)) => {
                tail.extend(next);
            }
            (_, seg) => merged.push(seg),
        }
    }
    Ok(AsPath::from_segments(merged))
}

/// Encode the path attributes section (without the leading 2-byte total
/// length, which belongs to the UPDATE body).
pub fn encode_attributes(attrs: &PathAttributes) -> BytesMut {
    let mut out = BytesMut::new();
    let wk = ATTR_FLAG_TRANSITIVE; // well-known mandatory
    let opt = ATTR_FLAG_OPTIONAL | ATTR_FLAG_TRANSITIVE;

    put_attr_header(&mut out, wk, type_code::ORIGIN, 1);
    out.put_u8(attrs.origin.code());

    let path = encode_as_path(&attrs.as_path);
    put_attr_header(&mut out, wk, type_code::AS_PATH, path.len());
    out.put_slice(&path);

    if let Some(IpAddr::V4(nh)) = attrs.next_hop {
        put_attr_header(&mut out, wk, type_code::NEXT_HOP, 4);
        out.put_slice(&nh.octets());
    }

    if let Some(med) = attrs.med {
        put_attr_header(&mut out, ATTR_FLAG_OPTIONAL, type_code::MED, 4);
        out.put_u32(med);
    }

    if let Some(lp) = attrs.local_pref {
        put_attr_header(&mut out, wk, type_code::LOCAL_PREF, 4);
        out.put_u32(lp);
    }

    if attrs.atomic_aggregate {
        put_attr_header(&mut out, wk, type_code::ATOMIC_AGGREGATE, 0);
    }

    if let Some((asn, id)) = attrs.aggregator {
        put_attr_header(&mut out, opt, type_code::AGGREGATOR, 8);
        out.put_u32(asn.value());
        out.put_slice(&id.octets());
    }

    if !attrs.communities.is_empty() {
        put_attr_header(&mut out, opt, type_code::COMMUNITIES, attrs.communities.len() * 4);
        for c in attrs.communities.iter() {
            out.put_u32(c.raw());
        }
    }

    let ext: Vec<ExtendedCommunity> = attrs.communities.iter_extended().collect();
    if !ext.is_empty() {
        put_attr_header(&mut out, opt, type_code::EXTENDED_COMMUNITIES, ext.len() * 8);
        for c in ext {
            out.put_slice(&c.to_bytes());
        }
    }

    let large: Vec<LargeCommunity> = attrs.communities.iter_large().collect();
    if !large.is_empty() {
        put_attr_header(&mut out, opt, type_code::LARGE_COMMUNITIES, large.len() * 12);
        for c in large {
            out.put_u32(c.global_admin);
            out.put_u32(c.local_1);
            out.put_u32(c.local_2);
        }
    }

    out
}

/// Decode a path attributes section.
pub fn decode_attributes(mut buf: Bytes) -> Result<PathAttributes, CodecError> {
    let mut attrs = PathAttributes::default();
    let mut seen = [false; 256];
    while buf.has_remaining() {
        CodecError::ensure("attribute header", buf.remaining(), 3)?;
        let flags = buf.get_u8();
        let code = buf.get_u8();
        let len = if flags & ATTR_FLAG_EXTENDED_LEN != 0 {
            CodecError::ensure("attribute extended length", buf.remaining(), 2)?;
            buf.get_u16() as usize
        } else {
            buf.get_u8() as usize
        };
        CodecError::ensure("attribute body", buf.remaining(), len)?;
        if seen[code as usize] {
            return Err(CodecError::DuplicateAttribute(code));
        }
        seen[code as usize] = true;
        let mut body = buf.split_to(len);
        match code {
            type_code::ORIGIN => {
                CodecError::ensure("origin", body.remaining(), 1)?;
                let v = body.get_u8();
                attrs.origin = Origin::from_code(v)
                    .ok_or(CodecError::BadValue { what: "origin", value: v as u64 })?;
            }
            type_code::AS_PATH => {
                attrs.as_path = decode_as_path(body)?;
            }
            type_code::NEXT_HOP => {
                CodecError::ensure("next hop", body.remaining(), 4)?;
                let mut octets = [0u8; 4];
                body.copy_to_slice(&mut octets);
                attrs.next_hop = Some(IpAddr::V4(Ipv4Addr::from(octets)));
            }
            type_code::MED => {
                CodecError::ensure("med", body.remaining(), 4)?;
                attrs.med = Some(body.get_u32());
            }
            type_code::LOCAL_PREF => {
                CodecError::ensure("local pref", body.remaining(), 4)?;
                attrs.local_pref = Some(body.get_u32());
            }
            type_code::ATOMIC_AGGREGATE => {
                attrs.atomic_aggregate = true;
            }
            type_code::AGGREGATOR => {
                CodecError::ensure("aggregator", body.remaining(), 8)?;
                let asn = Asn::new(body.get_u32());
                let mut octets = [0u8; 4];
                body.copy_to_slice(&mut octets);
                attrs.aggregator = Some((asn, Ipv4Addr::from(octets)));
            }
            type_code::COMMUNITIES => {
                if len % 4 != 0 {
                    return Err(CodecError::BadLength { what: "communities", value: len });
                }
                while body.has_remaining() {
                    attrs.communities.insert(Community(body.get_u32()));
                }
            }
            type_code::EXTENDED_COMMUNITIES => {
                if len % 8 != 0 {
                    return Err(CodecError::BadLength { what: "extended communities", value: len });
                }
                while body.has_remaining() {
                    let mut raw = [0u8; 8];
                    body.copy_to_slice(&mut raw);
                    attrs.communities.insert_extended(ExtendedCommunity::from_bytes(raw));
                }
            }
            type_code::LARGE_COMMUNITIES => {
                if len % 12 != 0 {
                    return Err(CodecError::BadLength { what: "large communities", value: len });
                }
                while body.has_remaining() {
                    let c = LargeCommunity::new(body.get_u32(), body.get_u32(), body.get_u32());
                    attrs.communities.insert_large(c);
                }
            }
            _ => {
                // Tolerant reader: unknown attribute, skip.
            }
        }
    }
    Ok(attrs)
}

/// How many distinct attribute blocks [`AttrCache`] holds before it resets.
///
/// Real archive streams repeat a small working set of attribute blocks
/// (one per active path), so a few thousand entries cover a collector dump;
/// the flush-on-full policy keeps the worst case (adversarially unique
/// blocks) at a bounded memory cost with no LRU bookkeeping on the hot path.
pub const ATTR_CACHE_CAP: usize = 4096;

/// A memo table for decoded attribute blocks.
///
/// BGP UPDATE streams are heavily repetitive: the same serialized attribute
/// block (path + communities + next hop) arrives once per announced prefix.
/// The cache keys on the *raw attribute bytes* — an O(1)-sliced [`Bytes`]
/// view of the archive buffer, hashed by content — and stores the decoded
/// [`PathAttributes`]. Because `AsPath` and `CommunitySet` are Arc-backed
/// handles, a cache hit clones in O(1) and every element decoded from the
/// same block *shares* one allocation, which is what makes downstream
/// interning and hashing cheap.
#[derive(Debug, Default)]
pub struct AttrCache {
    map: crate::hash::FxHashMap<Bytes, PathAttributes>,
    hits: u64,
    misses: u64,
}

impl AttrCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cache hits so far (attribute blocks served without re-decoding).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far (attribute blocks actually decoded).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of distinct attribute blocks currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Decode `raw`, serving repeats from the memo table.
    pub fn decode(&mut self, raw: Bytes) -> Result<PathAttributes, CodecError> {
        if let Some(hit) = self.map.get(&raw) {
            self.hits += 1;
            return Ok(hit.clone());
        }
        let attrs = decode_attributes(raw.clone())?;
        self.misses += 1;
        if self.map.len() >= ATTR_CACHE_CAP {
            self.map.clear();
        }
        self.map.insert(raw, attrs.clone());
        Ok(attrs)
    }
}

/// An [`AttrCache`] shared by several readers — typically one per
/// collector archive of the same fleet. Collectors overwhelmingly carry
/// the same attribute blocks (the same paths reach every vantage point),
/// so a fleet-wide cache decodes each distinct block once and every
/// reader's elements alias the same Arc-backed values. Readers lock only
/// for the duration of one block probe; share across threads with care
/// (parallel decoders serialize on it — per-reader caches are better
/// there).
pub type SharedAttrCache = Arc<Mutex<AttrCache>>;

/// A fresh, empty [`SharedAttrCache`].
pub fn shared_attr_cache() -> SharedAttrCache {
    Arc::new(Mutex::new(AttrCache::new()))
}

/// Encode a full BGP UPDATE *message* (header + body) for the IPv4 routes
/// of `update`. IPv6 routes are ignored by this wire path (see module docs).
pub fn encode_update_message(update: &BgpUpdate) -> BytesMut {
    let mut body = BytesMut::new();

    // Withdrawn routes.
    let mut withdrawn = BytesMut::new();
    for p in update.withdrawn_v4() {
        encode_nlri(&mut withdrawn, p);
    }
    body.put_u16(withdrawn.len() as u16);
    body.put_slice(&withdrawn);

    // Path attributes (only when there are announcements).
    if update.announced_v4().next().is_some() {
        let attrs = encode_attributes(&update.attrs);
        body.put_u16(attrs.len() as u16);
        body.put_slice(&attrs);
        for p in update.announced_v4() {
            encode_nlri(&mut body, p);
        }
    } else {
        body.put_u16(0);
    }

    let mut msg = BytesMut::with_capacity(BGP_HEADER_LEN + body.len());
    msg.put_slice(&[0xFF; 16]); // marker
    msg.put_u16((BGP_HEADER_LEN + body.len()) as u16);
    msg.put_u8(msg_type::UPDATE);
    msg.put_slice(&body);
    msg
}

/// Decode a full BGP UPDATE message (header + body) back into a
/// [`BgpUpdate`]. Returns `Ok(None)` for non-UPDATE messages (KEEPALIVEs
/// inside archives are legal and skipped).
pub fn decode_update_message(buf: Bytes) -> Result<Option<BgpUpdate>, CodecError> {
    decode_update_message_cached(buf, None)
}

/// [`decode_update_message`] with an optional [`AttrCache`] memoizing the
/// attribute-block decode. `decode_update_message(b)` is exactly
/// `decode_update_message_cached(b, None)`; passing a cache changes only
/// *sharing* (equal blocks yield Arc-shared `PathAttributes`), never the
/// decoded values.
pub fn decode_update_message_cached(
    mut buf: Bytes,
    cache: Option<&mut AttrCache>,
) -> Result<Option<BgpUpdate>, CodecError> {
    CodecError::ensure("bgp header", buf.remaining(), BGP_HEADER_LEN)?;
    if buf[..16] != [0xFF; 16] {
        return Err(CodecError::BadValue { what: "bgp marker", value: buf[0] as u64 });
    }
    buf.advance(16);
    let msg_len = buf.get_u16() as usize;
    if !(BGP_HEADER_LEN..=BGP_MAX_MESSAGE_LEN).contains(&msg_len) {
        return Err(CodecError::BadLength { what: "bgp message length", value: msg_len });
    }
    let kind = buf.get_u8();
    let body_len = msg_len - BGP_HEADER_LEN;
    CodecError::ensure("bgp body", buf.remaining(), body_len)?;
    let mut body = buf.split_to(body_len);
    if kind != msg_type::UPDATE {
        return Ok(None);
    }

    CodecError::ensure("withdrawn length", body.remaining(), 2)?;
    let withdrawn_len = body.get_u16() as usize;
    CodecError::ensure("withdrawn routes", body.remaining(), withdrawn_len)?;
    let mut withdrawn_buf = body.split_to(withdrawn_len);
    let mut withdrawn = Vec::new();
    while withdrawn_buf.has_remaining() {
        withdrawn.push(decode_nlri(&mut withdrawn_buf)?);
    }

    CodecError::ensure("attributes length", body.remaining(), 2)?;
    let attrs_len = body.get_u16() as usize;
    CodecError::ensure("attributes", body.remaining(), attrs_len)?;
    let attrs_buf = body.split_to(attrs_len);
    let attrs = if attrs_len > 0 {
        match cache {
            Some(cache) => cache.decode(attrs_buf)?,
            None => decode_attributes(attrs_buf)?,
        }
    } else {
        PathAttributes::default()
    };

    let mut update = BgpUpdate::new(attrs);
    while body.has_remaining() {
        let p = decode_nlri(&mut body)?;
        update.announce_v4(p);
    }
    for p in withdrawn {
        update.withdraw_v4(p);
    }
    Ok(Some(update))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::community::{Community, CommunitySet};

    fn sample_attrs() -> PathAttributes {
        let mut communities = CommunitySet::from_classic(vec![
            Community::from_parts(3356, 9999),
            Community::BLACKHOLE,
            Community::NO_EXPORT,
        ]);
        communities.insert_large(LargeCommunity::new(196_608, 666, 0));
        communities.insert_extended(ExtendedCommunity::two_octet_as(3356, 7, 2));
        PathAttributes {
            origin: Origin::Incomplete,
            as_path: "6939 3356 64500 64500".parse().unwrap(),
            next_hop: Some("192.0.2.66".parse().unwrap()),
            med: Some(50),
            local_pref: Some(120),
            atomic_aggregate: true,
            aggregator: Some((Asn::new(64500), Ipv4Addr::new(10, 0, 0, 1))),
            communities,
        }
    }

    #[test]
    fn nlri_round_trip_various_lengths() {
        for s in [
            "0.0.0.0/0",
            "10.0.0.0/8",
            "10.20.0.0/15",
            "192.0.2.0/24",
            "192.0.2.55/32",
            "128.0.0.0/1",
        ] {
            let p: Ipv4Prefix = s.parse().unwrap();
            let mut buf = BytesMut::new();
            encode_nlri(&mut buf, &p);
            let mut bytes = buf.freeze();
            assert_eq!(decode_nlri(&mut bytes).unwrap(), p, "{s}");
            assert!(!bytes.has_remaining());
        }
    }

    #[test]
    fn nlri_rejects_bad_length() {
        let mut bytes = Bytes::from_static(&[40, 1, 2, 3, 4, 5]);
        assert!(matches!(decode_nlri(&mut bytes), Err(CodecError::BadLength { .. })));
    }

    #[test]
    fn nlri_rejects_truncation() {
        let mut bytes = Bytes::from_static(&[24, 1]);
        assert!(matches!(decode_nlri(&mut bytes), Err(CodecError::Truncated { .. })));
    }

    #[test]
    fn attributes_round_trip() {
        let attrs = sample_attrs();
        let encoded = encode_attributes(&attrs).freeze();
        let decoded = decode_attributes(encoded).unwrap();
        assert_eq!(decoded, attrs);
    }

    #[test]
    fn attributes_reject_duplicates() {
        let attrs = PathAttributes::default();
        let mut encoded = encode_attributes(&attrs);
        let copy = encoded.clone();
        encoded.put_slice(&copy); // every attribute duplicated
        assert!(matches!(
            decode_attributes(encoded.freeze()),
            Err(CodecError::DuplicateAttribute(_))
        ));
    }

    #[test]
    fn unknown_attributes_are_skipped() {
        let mut encoded = encode_attributes(&PathAttributes::default());
        // Append an unknown optional-transitive attribute (code 200).
        encoded.put_u8(0xC0);
        encoded.put_u8(200);
        encoded.put_u8(2);
        encoded.put_u16(0xBEEF);
        let decoded = decode_attributes(encoded.freeze()).unwrap();
        assert_eq!(decoded, PathAttributes::default());
    }

    #[test]
    fn long_prepend_survives_segment_chunking() {
        let mut path = AsPath::from_sequence(vec![Asn::new(64500)]);
        path.prepend(Asn::new(3356), 300); // forces 255-ASN chunk split
        let attrs = PathAttributes { as_path: path.clone(), ..Default::default() };
        let decoded = decode_attributes(encode_attributes(&attrs).freeze()).unwrap();
        assert_eq!(decoded.as_path.asns(), path.asns());
        assert_eq!(decoded.as_path.without_prepending().to_string(), "3356 64500");
    }

    #[test]
    fn update_message_round_trip() {
        let mut update = BgpUpdate::new(sample_attrs());
        update.announce_v4("130.149.1.1/32".parse().unwrap());
        update.announce_v4("192.0.2.0/24".parse().unwrap());
        update.withdraw_v4("198.51.100.0/24".parse().unwrap());
        let encoded = encode_update_message(&update).freeze();
        let decoded = decode_update_message(encoded).unwrap().unwrap();
        assert_eq!(decoded, update);
    }

    #[test]
    fn withdrawal_only_update_round_trip() {
        let mut update = BgpUpdate::new(PathAttributes::default());
        update.withdraw_v4("130.149.1.1/32".parse().unwrap());
        let encoded = encode_update_message(&update).freeze();
        let decoded = decode_update_message(encoded).unwrap().unwrap();
        assert_eq!(decoded.withdrawn_v4().count(), 1);
        assert_eq!(decoded.announced_v4().count(), 0);
    }

    #[test]
    fn attr_cache_decodes_identically_and_shares_allocations() {
        let mut update = BgpUpdate::new(sample_attrs());
        update.announce_v4("192.0.2.0/24".parse().unwrap());
        let encoded = encode_update_message(&update).freeze();

        let mut cache = AttrCache::new();
        let first =
            decode_update_message_cached(encoded.clone(), Some(&mut cache)).unwrap().unwrap();
        let second =
            decode_update_message_cached(encoded.clone(), Some(&mut cache)).unwrap().unwrap();
        let uncached = decode_update_message(encoded).unwrap().unwrap();

        assert_eq!(first, uncached, "cache must not change decoded values");
        assert_eq!(second, uncached);
        assert_eq!(cache.misses(), 1, "second decode must hit the memo table");
        assert_eq!(cache.hits(), 1);
        assert!(
            first.attrs.as_path.shares_allocation(&second.attrs.as_path),
            "cache hits must hand out Arc-shared paths"
        );
        assert!(first.attrs.communities.shares_allocation(&second.attrs.communities));
    }

    #[test]
    fn attr_cache_flushes_at_capacity() {
        let mut cache = AttrCache::new();
        for i in 0..(ATTR_CACHE_CAP + 10) {
            let attrs = PathAttributes { med: Some(i as u32), ..Default::default() };
            let raw = encode_attributes(&attrs).freeze();
            assert_eq!(cache.decode(raw).unwrap(), attrs);
        }
        assert!(cache.len() <= ATTR_CACHE_CAP, "cache exceeded its cap");
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn non_update_messages_are_skipped() {
        let mut msg = BytesMut::new();
        msg.put_slice(&[0xFF; 16]);
        msg.put_u16(BGP_HEADER_LEN as u16);
        msg.put_u8(msg_type::KEEPALIVE);
        assert_eq!(decode_update_message(msg.freeze()).unwrap(), None);
    }

    #[test]
    fn bad_marker_rejected() {
        let mut update = BgpUpdate::new(PathAttributes::default());
        update.withdraw_v4("10.0.0.0/8".parse().unwrap());
        let mut encoded = encode_update_message(&update);
        encoded[0] = 0x00;
        assert!(decode_update_message(encoded.freeze()).is_err());
    }

    #[test]
    fn truncated_message_rejected() {
        let mut update = BgpUpdate::new(sample_attrs());
        update.announce_v4("130.149.1.1/32".parse().unwrap());
        let encoded = encode_update_message(&update).freeze();
        for cut in [1, BGP_HEADER_LEN - 1, BGP_HEADER_LEN + 1, encoded.len() - 1] {
            let slice = encoded.slice(..cut);
            assert!(decode_update_message(slice).is_err(), "cut at {cut}");
        }
    }
}
