//! Simulation time.
//!
//! The study spans December 2014 – March 2017 with daily aggregation
//! (Fig. 4) and sub-minute event dynamics (Fig. 8: >70% of ungrouped events
//! last ≤1 minute). [`SimTime`] is a Unix timestamp in seconds with civil
//! date helpers (Howard Hinnant's `civil_from_days` algorithm), so the
//! pipeline never touches the wall clock and stays fully deterministic.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A duration in whole seconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From seconds.
    pub const fn secs(s: u64) -> Self {
        SimDuration(s)
    }

    /// From minutes.
    pub const fn mins(m: u64) -> Self {
        SimDuration(m * 60)
    }

    /// From hours.
    pub const fn hours(h: u64) -> Self {
        SimDuration(h * 3600)
    }

    /// From days.
    pub const fn days(d: u64) -> Self {
        SimDuration(d * 86_400)
    }

    /// Seconds value.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Fractional hours (for duration histograms, Fig. 8(b)).
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3600.0
    }

    /// Fractional minutes.
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 60.0
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (d, rem) = (self.0 / 86_400, self.0 % 86_400);
        let (h, rem) = (rem / 3600, rem % 3600);
        let (m, s) = (rem / 60, rem % 60);
        if d > 0 {
            write!(f, "{d}d{h:02}h{m:02}m{s:02}s")
        } else if h > 0 {
            write!(f, "{h}h{m:02}m{s:02}s")
        } else if m > 0 {
            write!(f, "{m}m{s:02}s")
        } else {
            write!(f, "{s}s")
        }
    }
}

/// A point in simulated time: Unix seconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The epoch (1970-01-01), also the paper's "initial starting time of
    /// zero" for blackholings already present in the first RIB dump.
    pub const ZERO: SimTime = SimTime(0);

    /// From a Unix timestamp in seconds.
    pub const fn from_unix(secs: u64) -> Self {
        SimTime(secs)
    }

    /// Build from a UTC civil date (days are converted with the standard
    /// days-from-civil algorithm; valid for all dates after 1970).
    pub fn from_ymd(year: i64, month: u32, day: u32) -> Self {
        let days = days_from_civil(year, month, day);
        assert!(days >= 0, "SimTime cannot represent pre-1970 dates");
        SimTime(days as u64 * 86_400)
    }

    /// Build from date and time-of-day.
    pub fn from_ymd_hms(year: i64, month: u32, day: u32, h: u64, m: u64, s: u64) -> Self {
        SimTime(Self::from_ymd(year, month, day).0 + h * 3600 + m * 60 + s)
    }

    /// Unix seconds.
    pub const fn unix(self) -> u64 {
        self.0
    }

    /// Day index since the epoch (the Fig. 4 daily-bucketing key).
    pub const fn day_index(self) -> u64 {
        self.0 / 86_400
    }

    /// Midnight of this timestamp's day.
    pub const fn day_start(self) -> SimTime {
        SimTime(self.day_index() * 86_400)
    }

    /// The UTC civil date `(year, month, day)`.
    pub fn ymd(self) -> (i64, u32, u32) {
        civil_from_days(self.day_index() as i64)
    }

    /// Seconds elapsed since `earlier` (saturating).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        let rem = self.0 % 86_400;
        write!(f, "{y:04}-{m:02}-{d:02} {:02}:{:02}:{:02}", rem / 3600, (rem % 3600) / 60, rem % 60)
    }
}

/// Days since 1970-01-01 for a civil date (Hinnant's `days_from_civil`).
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = ((m + 9) % 12) as i64; // [0, 11]
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date from days since 1970-01-01 (Hinnant's `civil_from_days`).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Key dates of the study window, used by the workloads scenario driver.
pub mod study {
    use super::SimTime;

    /// Start of the longitudinal analysis (Fig. 4): December 2014.
    pub fn longitudinal_start() -> SimTime {
        SimTime::from_ymd(2014, 12, 1)
    }

    /// End of the study window: end of March 2017.
    pub fn longitudinal_end() -> SimTime {
        SimTime::from_ymd(2017, 4, 1)
    }

    /// Start of the visibility window (Tables 3/4, Figs. 5–8): August 2016.
    pub fn visibility_start() -> SimTime {
        SimTime::from_ymd(2016, 8, 1)
    }

    /// End of the visibility window: end of March 2017.
    pub fn visibility_end() -> SimTime {
        SimTime::from_ymd(2017, 4, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(SimTime::from_ymd(1970, 1, 1), SimTime::ZERO);
        assert_eq!(SimTime::ZERO.ymd(), (1970, 1, 1));
    }

    #[test]
    fn known_timestamps() {
        // 2014-12-01 00:00:00 UTC == 1417392000.
        assert_eq!(SimTime::from_ymd(2014, 12, 1).unix(), 1_417_392_000);
        // 2017-03-01 00:00:00 UTC == 1488326400.
        assert_eq!(SimTime::from_ymd(2017, 3, 1).unix(), 1_488_326_400);
        // 2016-02-29 exists (leap year).
        assert_eq!(SimTime::from_ymd(2016, 2, 29).unix(), 1_456_704_000);
        assert_eq!(SimTime::from_unix(1_456_704_000).ymd(), (2016, 2, 29));
    }

    #[test]
    fn ymd_round_trip_across_study_window() {
        let mut t = study::longitudinal_start();
        while t <= study::longitudinal_end() {
            let (y, m, d) = t.ymd();
            assert_eq!(SimTime::from_ymd(y, m, d), t);
            t += SimDuration::days(1);
        }
    }

    #[test]
    fn day_bucketing() {
        let t = SimTime::from_ymd_hms(2016, 9, 20, 13, 45, 10);
        assert_eq!(t.day_start(), SimTime::from_ymd(2016, 9, 20));
        assert_eq!(t.day_index(), SimTime::from_ymd(2016, 9, 20).unix() / 86_400);
    }

    #[test]
    fn arithmetic_and_since() {
        let a = SimTime::from_ymd(2016, 8, 1);
        let b = a + SimDuration::mins(5);
        assert_eq!(b.since(a), SimDuration::secs(300));
        assert_eq!(b - a, SimDuration::mins(5));
        // Saturating: never negative.
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn duration_constructors() {
        assert_eq!(SimDuration::days(1).as_secs(), 86_400);
        assert_eq!(SimDuration::hours(2).as_secs(), 7_200);
        assert_eq!(SimDuration::mins(5).as_secs(), 300);
        assert!((SimDuration::hours(16).as_hours_f64() - 16.0).abs() < 1e-9);
        assert!((SimDuration::secs(90).as_mins_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::secs(59).to_string(), "59s");
        assert_eq!(SimDuration::mins(5).to_string(), "5m00s");
        assert_eq!(SimDuration::hours(16).to_string(), "16h00m00s");
        assert_eq!(SimDuration::days(2).to_string(), "2d00h00m00s");
        assert_eq!(
            SimTime::from_ymd_hms(2016, 9, 20, 13, 45, 10).to_string(),
            "2016-09-20 13:45:10"
        );
    }

    #[test]
    fn study_window_ordering() {
        assert!(study::longitudinal_start() < study::visibility_start());
        assert!(study::visibility_start() < study::visibility_end());
        assert_eq!(study::visibility_end(), study::longitudinal_end());
    }
}
