//! # bh-bgp-types — BGP data model for the blackholing study
//!
//! Foundational types shared by every crate in the `bgp-blackholing`
//! workspace, reproducing the data model needed by Giotsas et al.,
//! *"Inferring BGP Blackholing Activity in the Internet"* (IMC 2017):
//!
//! * [`Asn`] — autonomous system numbers (16/32-bit, RFC 6793 aware).
//! * [`Ipv4Prefix`] / [`Ipv6Prefix`] / [`Prefix`] — CIDR prefixes with
//!   containment and specificity predicates (the paper's inference hinges on
//!   "more specific than /24" checks).
//! * [`Community`], [`ExtendedCommunity`], [`LargeCommunity`] — the BGP
//!   community attribute families (RFC 1997, RFC 4360, RFC 8092), including
//!   the RFC 7999 well-known `BLACKHOLE` value `65535:666`.
//! * [`AsPath`] — AS paths with prepending removal, the basis for inferring
//!   the *blackholing user* as the hop before the provider.
//! * [`PathAttributes`] / [`BgpUpdate`] — BGP UPDATE messages with a binary
//!   wire codec (consumed by the `bh-mrt` MRT reader/writer).
//! * [`bogon::BogonFilter`] — Team-Cymru-style bogon cleaning used in §3 of
//!   the paper ("filter out non-routable, private, and bogon prefixes, and
//!   eliminate prefixes less-specific than /8").
//! * [`PrefixTrie`] — longest-prefix-match trie used by the bogon filter and
//!   the inference engine's prefix bookkeeping.
//! * [`SimTime`] — simulation timestamps (Unix seconds) with civil-date
//!   helpers for daily bucketing of the longitudinal analysis (Fig. 4).
//!
//! The crate is deliberately free of I/O and randomness: it is a pure data
//! model with deterministic codecs, in the spirit of an event-driven
//! networking stack (state machines over explicit wire formats, no hidden
//! machinery).

pub mod as_path;
pub mod asn;
pub mod attrs;
pub mod bogon;
pub mod community;
pub mod error;
pub mod hash;
pub mod intern;
pub mod prefix;
pub mod time;
pub mod trie;
pub mod update;
pub mod wire;

pub use as_path::{AsPath, AsPathSegment};
pub use asn::Asn;
pub use attrs::{Origin, PathAttributes};
pub use community::{AnyCommunity, Community, CommunitySet, ExtendedCommunity, LargeCommunity};
pub use error::{CodecError, ParseError};
pub use intern::{CommunitySetId, CommunitySetTable, InternTable, Internable, PathId, PathTable};
pub use prefix::{Ipv4Prefix, Ipv6Prefix, Prefix};
pub use time::{SimDuration, SimTime};
pub use trie::PrefixTrie;
pub use update::BgpUpdate;
