//! AS paths.
//!
//! The inference uses AS paths for three things (§4.2):
//!
//! 1. Resolving *ambiguous* blackhole communities (shared values such as
//!    `0:666`): a candidate provider must appear on the path.
//! 2. Inferring the *blackholing user* as "the AS before the blackholing
//!    provider along the AS path (after removing AS path prepending)".
//! 3. Measuring the *propagation distance* between collector peer and
//!    provider (Fig. 7(c)), where "no path" indicates community bundling.
//!
//! `AsPath` is a cheap handle: the segment storage lives behind an
//! [`Arc`], so cloning a path (which the merge heap, the fleet reader
//! threads, and the per-prefix elem fan-out all do per element) is a
//! reference-count bump instead of a deep copy. Two derived quantities
//! are memoized per allocation — the content hash (making repeated
//! `HashMap` lookups and interning O(1) after the first) and the
//! deprepended path (which `hop_before`/`distance_from_peer`/`hop_len`
//! recompute once instead of per call).

use std::fmt;
use std::hash::{Hash, Hasher};
use std::str::FromStr;
use std::sync::{Arc, OnceLock};

use crate::asn::Asn;
use crate::error::ParseError;

/// One path segment: an ordered `AS_SEQUENCE` or an unordered `AS_SET`
/// (the latter arises from route aggregation).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AsPathSegment {
    /// Ordered sequence of ASNs, nearest first.
    Sequence(Vec<Asn>),
    /// Unordered set of ASNs from aggregation.
    Set(Vec<Asn>),
}

impl AsPathSegment {
    /// The ASNs in the segment, in stored order.
    pub fn asns(&self) -> &[Asn] {
        match self {
            AsPathSegment::Sequence(v) | AsPathSegment::Set(v) => v,
        }
    }

    /// Wire type code (RFC 4271): 1 = AS_SET, 2 = AS_SEQUENCE.
    pub fn type_code(&self) -> u8 {
        match self {
            AsPathSegment::Set(_) => 1,
            AsPathSegment::Sequence(_) => 2,
        }
    }
}

/// Shared path storage plus per-allocation caches. The caches are
/// derived data only — equality and hashing are defined purely over
/// `segments`, so two inners with the same segments are interchangeable
/// regardless of which caches have been populated.
#[derive(Debug, Default)]
struct PathInner {
    segments: Vec<AsPathSegment>,
    /// Memoized content hash (see [`AsPath::content_hash`]).
    hash: OnceLock<u64>,
    /// Memoized deprepended form: `None` means the path is already free
    /// of prepending (so `without_prepending` can return `self` and no
    /// Arc cycle is ever created).
    deprepended: OnceLock<Option<Arc<PathInner>>>,
}

impl PathInner {
    fn from_segments(segments: Vec<AsPathSegment>) -> Self {
        PathInner { segments, hash: OnceLock::new(), deprepended: OnceLock::new() }
    }
}

/// An AS path: the reverse-chronological list of ASes an announcement has
/// traversed. `path.asns()[0]` is the collector-side peer AS; the last
/// element is the origin.
#[derive(Clone)]
pub struct AsPath {
    inner: Arc<PathInner>,
}

fn empty_inner() -> Arc<PathInner> {
    static EMPTY: OnceLock<Arc<PathInner>> = OnceLock::new();
    EMPTY
        .get_or_init(|| {
            let inner = PathInner::from_segments(Vec::new());
            let _ = inner.deprepended.set(None); // trivially prepending-free
            Arc::new(inner)
        })
        .clone()
}

impl Default for AsPath {
    fn default() -> Self {
        AsPath::empty()
    }
}

impl AsPath {
    /// Empty path (as seen on iBGP or at an origin's own table). Shares
    /// one static allocation, so per-withdrawal empty paths are free.
    pub fn empty() -> Self {
        AsPath { inner: empty_inner() }
    }

    /// Build a pure-sequence path from a slice, nearest AS first.
    pub fn from_sequence(asns: impl Into<Vec<Asn>>) -> Self {
        let asns = asns.into();
        if asns.is_empty() {
            AsPath::empty()
        } else {
            AsPath::from_segments(vec![AsPathSegment::Sequence(asns)])
        }
    }

    /// Build from raw segments.
    pub fn from_segments(segments: Vec<AsPathSegment>) -> Self {
        if segments.is_empty() {
            return AsPath::empty();
        }
        AsPath { inner: Arc::new(PathInner::from_segments(segments)) }
    }

    /// The raw segments.
    pub fn segments(&self) -> &[AsPathSegment] {
        &self.inner.segments
    }

    /// Do two handles share one allocation? (True after a `clone`, or
    /// when both came from the same intern-table entry.)
    pub fn shares_allocation(&self, other: &AsPath) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Flattened ASN list in path order (sets contribute their members in
    /// stored order).
    pub fn asns(&self) -> Vec<Asn> {
        self.iter_asns().collect()
    }

    /// Iterate the flattened ASN list without allocating.
    pub fn iter_asns(&self) -> impl Iterator<Item = Asn> + '_ {
        self.inner.segments.iter().flat_map(|s| s.asns().iter().copied())
    }

    /// Is the path empty?
    pub fn is_empty(&self) -> bool {
        self.inner.segments.iter().all(|s| s.asns().is_empty())
    }

    /// Total number of ASNs including duplicates from prepending.
    pub fn raw_len(&self) -> usize {
        self.inner.segments.iter().map(|s| s.asns().len()).sum()
    }

    /// Number of *distinct consecutive* hops, i.e. length after removing
    /// prepending. This is the "AS-level path length" used in Fig. 9(b).
    pub fn hop_len(&self) -> usize {
        self.without_prepending().raw_len()
    }

    /// The first (collector-peer-side) AS.
    pub fn first(&self) -> Option<Asn> {
        self.iter_asns().next()
    }

    /// The origin AS (last on the path), if unambiguous. Returns `None`
    /// for empty paths or when the path ends in a multi-member AS_SET.
    pub fn origin(&self) -> Option<Asn> {
        match self.inner.segments.last() {
            Some(AsPathSegment::Sequence(v)) => v.last().copied(),
            Some(AsPathSegment::Set(v)) if v.len() == 1 => Some(v[0]),
            _ => None,
        }
    }

    /// Does `asn` appear anywhere on the path?
    pub fn contains(&self, asn: Asn) -> bool {
        self.inner.segments.iter().any(|s| s.asns().contains(&asn))
    }

    /// Prepend an AS `count` times at the front (what a router does when
    /// exporting: adds its own ASN, possibly repeated for traffic
    /// engineering). Copy-on-write: other handles to the same path are
    /// unaffected, and this handle's memoized caches are rebuilt lazily.
    pub fn prepend(&mut self, asn: Asn, count: usize) {
        if count == 0 {
            return;
        }
        let mut segments = self.inner.segments.clone();
        match segments.first_mut() {
            Some(AsPathSegment::Sequence(v)) => {
                v.splice(0..0, std::iter::repeat_n(asn, count));
            }
            _ => {
                segments.insert(0, AsPathSegment::Sequence(vec![asn; count]));
            }
        }
        self.inner = Arc::new(PathInner::from_segments(segments));
    }

    /// A copy with consecutive duplicate ASNs collapsed ("after removing
    /// AS path prepending", §4.2). Set segments are preserved as-is.
    ///
    /// Memoized: the collapse runs once per allocation, and paths that
    /// carry no prepending (the common case) return a handle to the
    /// *same* allocation rather than a copy.
    pub fn without_prepending(&self) -> AsPath {
        let cached = self.inner.deprepended.get_or_init(|| {
            let segments = deprepend(&self.inner.segments);
            if segments == self.inner.segments {
                None
            } else {
                let inner = PathInner::from_segments(segments);
                let _ = inner.deprepended.set(None); // collapse is idempotent
                Some(Arc::new(inner))
            }
        });
        match cached {
            None => self.clone(),
            Some(inner) => AsPath { inner: Arc::clone(inner) },
        }
    }

    /// The AS immediately *before* `target` on the path (i.e. one hop
    /// farther from the collector, one hop closer to the origin), after
    /// prepending removal.
    ///
    /// This is exactly the paper's blackholing-user inference: "we infer
    /// the blackholing user as the AS before the blackholing provider along
    /// the AS path (after removing AS path prepending)". Returns `None` if
    /// `target` is absent or is the origin.
    pub fn hop_before(&self, target: Asn) -> Option<Asn> {
        let clean = self.without_prepending();
        let mut iter = clean.iter_asns();
        iter.find(|&a| a == target)?;
        iter.next()
    }

    /// Zero-based position of `asn` on the deprepended path, counted from
    /// the collector-peer end. Fig. 7(c)'s "AS distance" between collector
    /// and provider.
    pub fn distance_from_peer(&self, asn: Asn) -> Option<usize> {
        self.without_prepending().iter_asns().position(|a| a == asn)
    }

    /// Detect whether any prepending is present.
    pub fn has_prepending(&self) -> bool {
        self.raw_len() != self.without_prepending().raw_len()
    }

    /// The memoized content hash: a deterministic hash of the segments,
    /// computed once per allocation. `Hash` forwards to this, so hashing
    /// a long path after the first time costs one `u64` write.
    pub fn content_hash(&self) -> u64 {
        *self.inner.hash.get_or_init(|| {
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            self.inner.segments.hash(&mut hasher);
            hasher.finish()
        })
    }
}

/// Collapse consecutive duplicate ASNs across sequence segments.
fn deprepend(input: &[AsPathSegment]) -> Vec<AsPathSegment> {
    let mut segments = Vec::with_capacity(input.len());
    let mut last: Option<Asn> = None;
    for seg in input {
        match seg {
            AsPathSegment::Sequence(v) => {
                let mut out = Vec::with_capacity(v.len());
                for &asn in v {
                    if last != Some(asn) {
                        out.push(asn);
                        last = Some(asn);
                    }
                }
                if !out.is_empty() {
                    segments.push(AsPathSegment::Sequence(out));
                }
            }
            AsPathSegment::Set(v) => {
                if !v.is_empty() {
                    segments.push(AsPathSegment::Set(v.clone()));
                    last = None;
                }
            }
        }
    }
    segments
}

impl PartialEq for AsPath {
    fn eq(&self, other: &Self) -> bool {
        // Pointer equality short-circuits the common interned case.
        Arc::ptr_eq(&self.inner, &other.inner) || self.inner.segments == other.inner.segments
    }
}

impl Eq for AsPath {}

impl Hash for AsPath {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.content_hash());
    }
}

impl fmt::Debug for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AsPath").field("segments", &self.inner.segments).finish()
    }
}

impl fmt::Display for AsPath {
    /// Renders like a looking glass: `"3356 2914 64500"`, sets in braces
    /// `"{64501,64502}"`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for seg in &self.inner.segments {
            match seg {
                AsPathSegment::Sequence(v) => {
                    for asn in v {
                        if !first {
                            write!(f, " ")?;
                        }
                        write!(f, "{}", asn.value())?;
                        first = false;
                    }
                }
                AsPathSegment::Set(v) => {
                    if !first {
                        write!(f, " ")?;
                    }
                    write!(f, "{{")?;
                    for (i, asn) in v.iter().enumerate() {
                        if i > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "{}", asn.value())?;
                    }
                    write!(f, "}}")?;
                    first = false;
                }
            }
        }
        Ok(())
    }
}

impl FromStr for AsPath {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut segments: Vec<AsPathSegment> = Vec::new();
        let mut seq: Vec<Asn> = Vec::new();
        for token in s.split_whitespace() {
            if let Some(inner) = token.strip_prefix('{') {
                let inner = inner
                    .strip_suffix('}')
                    .ok_or_else(|| ParseError::new(format!("unterminated AS_SET in {s:?}")))?;
                if !seq.is_empty() {
                    segments.push(AsPathSegment::Sequence(std::mem::take(&mut seq)));
                }
                let mut set = Vec::new();
                for part in inner.split(',') {
                    if part.is_empty() {
                        continue;
                    }
                    set.push(part.parse::<Asn>()?);
                }
                segments.push(AsPathSegment::Set(set));
            } else {
                seq.push(token.parse::<Asn>()?);
            }
        }
        if !seq.is_empty() {
            segments.push(AsPathSegment::Sequence(seq));
        }
        Ok(AsPath::from_segments(segments))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(s: &str) -> AsPath {
        s.parse().unwrap()
    }

    fn asn(v: u32) -> Asn {
        Asn::new(v)
    }

    #[test]
    fn build_and_display() {
        let p = AsPath::from_sequence(vec![asn(3356), asn(2914), asn(64500)]);
        assert_eq!(p.to_string(), "3356 2914 64500");
        assert_eq!(p.raw_len(), 3);
        assert_eq!(p.first(), Some(asn(3356)));
        assert_eq!(p.origin(), Some(asn(64500)));
    }

    #[test]
    fn parse_round_trip_with_sets() {
        let p = path("3356 2914 {64501,64502}");
        assert_eq!(p.to_string(), "3356 2914 {64501,64502}");
        assert!(p.contains(asn(64501)));
        // Origin ambiguous with a multi-member trailing set.
        assert_eq!(p.origin(), None);
    }

    #[test]
    fn parse_rejects_unterminated_set() {
        assert!("3356 {64501".parse::<AsPath>().is_err());
    }

    #[test]
    fn prepending_removal() {
        let p = path("3356 3356 3356 2914 64500 64500");
        let clean = p.without_prepending();
        assert_eq!(clean.to_string(), "3356 2914 64500");
        assert!(p.has_prepending());
        assert!(!clean.has_prepending());
        assert_eq!(p.hop_len(), 3);
        assert_eq!(p.raw_len(), 6);
    }

    #[test]
    fn prepending_removal_is_idempotent() {
        let p = path("1 1 2 3 3 3 4");
        assert_eq!(p.without_prepending(), p.without_prepending().without_prepending());
    }

    #[test]
    fn prepending_across_segments_not_collapsed_through_sets() {
        // Sets break the "consecutive" chain.
        let p = AsPath::from_segments(vec![
            AsPathSegment::Sequence(vec![asn(1), asn(1)]),
            AsPathSegment::Set(vec![asn(2)]),
            AsPathSegment::Sequence(vec![asn(1)]),
        ]);
        let clean = p.without_prepending();
        assert_eq!(clean.asns(), vec![asn(1), asn(2), asn(1)]);
    }

    #[test]
    fn hop_before_infers_blackholing_user() {
        // Collector peer -> provider (3356) -> user (64500): the user is the
        // AS *after* the provider when reading from the collector side.
        let p = path("6939 3356 64500");
        assert_eq!(p.hop_before(asn(3356)), Some(asn(64500)));
        // Prepending by the user must not confuse the inference.
        let p = path("6939 3356 64500 64500 64500");
        assert_eq!(p.hop_before(asn(3356)), Some(asn(64500)));
        // Provider at origin: nobody behind it.
        let p = path("6939 3356");
        assert_eq!(p.hop_before(asn(3356)), None);
        // Provider absent.
        assert_eq!(p.hop_before(asn(174)), None);
    }

    #[test]
    fn distance_from_peer_matches_fig7c_semantics() {
        let p = path("6939 1299 3356 64500");
        assert_eq!(p.distance_from_peer(asn(6939)), Some(0)); // direct peering
        assert_eq!(p.distance_from_peer(asn(3356)), Some(2));
        assert_eq!(p.distance_from_peer(asn(174)), None); // "no path" → bundling
                                                          // Prepending shouldn't inflate the distance.
        let p = path("6939 6939 1299 3356");
        assert_eq!(p.distance_from_peer(asn(3356)), Some(2));
    }

    #[test]
    fn prepend_grows_front() {
        let mut p = path("2914 64500");
        p.prepend(asn(3356), 3);
        assert_eq!(p.to_string(), "3356 3356 3356 2914 64500");
        p.prepend(asn(174), 0);
        assert_eq!(p.raw_len(), 5);
    }

    #[test]
    fn prepend_onto_empty_path() {
        let mut p = AsPath::empty();
        assert!(p.is_empty());
        p.prepend(asn(64500), 1);
        assert_eq!(p.to_string(), "64500");
        assert_eq!(p.origin(), Some(asn(64500)));
    }

    #[test]
    fn empty_path_edge_cases() {
        let p = AsPath::empty();
        assert_eq!(p.first(), None);
        assert_eq!(p.origin(), None);
        assert_eq!(p.hop_len(), 0);
        assert_eq!(p.to_string(), "");
        assert_eq!(path("").raw_len(), 0);
    }

    #[test]
    fn clone_is_shared_and_cow_isolates_mutation() {
        let a = path("3356 2914 64500");
        let b = a.clone();
        assert!(a.shares_allocation(&b));
        let mut c = b.clone();
        c.prepend(asn(174), 1);
        assert!(!c.shares_allocation(&a));
        assert_eq!(a.to_string(), "3356 2914 64500", "COW must not leak into siblings");
        assert_eq!(c.to_string(), "174 3356 2914 64500");
    }

    #[test]
    fn equal_paths_hash_equal_regardless_of_provenance() {
        let a = path("3356 2914 {64501,64502}");
        let b = AsPath::from_segments(vec![
            AsPathSegment::Sequence(vec![asn(3356), asn(2914)]),
            AsPathSegment::Set(vec![asn(64501), asn(64502)]),
        ]);
        assert!(!a.shares_allocation(&b));
        assert_eq!(a, b);
        assert_eq!(a.content_hash(), b.content_hash());
        // The lazy hash memo is interior mutability that never affects
        // Eq/Hash, so AsPath is a sound HashSet key despite the lint.
        #[allow(clippy::mutable_key_type)]
        let mut set = std::collections::HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn clean_paths_share_their_deprepended_form() {
        let clean = path("6939 3356 64500");
        assert!(clean.without_prepending().shares_allocation(&clean));
        let prepended = path("6939 6939 3356");
        let collapsed = prepended.without_prepending();
        assert!(!collapsed.shares_allocation(&prepended));
        // Memoized: a second call returns the same allocation.
        assert!(prepended.without_prepending().shares_allocation(&collapsed));
        // Empty/default paths share the static empty allocation.
        assert!(AsPath::empty().shares_allocation(&AsPath::default()));
        assert!(AsPath::from_segments(Vec::new()).shares_allocation(&AsPath::empty()));
    }
}
