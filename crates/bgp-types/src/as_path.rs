//! AS paths.
//!
//! The inference uses AS paths for three things (§4.2):
//!
//! 1. Resolving *ambiguous* blackhole communities (shared values such as
//!    `0:666`): a candidate provider must appear on the path.
//! 2. Inferring the *blackholing user* as "the AS before the blackholing
//!    provider along the AS path (after removing AS path prepending)".
//! 3. Measuring the *propagation distance* between collector peer and
//!    provider (Fig. 7(c)), where "no path" indicates community bundling.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::asn::Asn;
use crate::error::ParseError;

/// One path segment: an ordered `AS_SEQUENCE` or an unordered `AS_SET`
/// (the latter arises from route aggregation).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AsPathSegment {
    /// Ordered sequence of ASNs, nearest first.
    Sequence(Vec<Asn>),
    /// Unordered set of ASNs from aggregation.
    Set(Vec<Asn>),
}

impl AsPathSegment {
    /// The ASNs in the segment, in stored order.
    pub fn asns(&self) -> &[Asn] {
        match self {
            AsPathSegment::Sequence(v) | AsPathSegment::Set(v) => v,
        }
    }

    /// Wire type code (RFC 4271): 1 = AS_SET, 2 = AS_SEQUENCE.
    pub fn type_code(&self) -> u8 {
        match self {
            AsPathSegment::Set(_) => 1,
            AsPathSegment::Sequence(_) => 2,
        }
    }
}

/// An AS path: the reverse-chronological list of ASes an announcement has
/// traversed. `path.asns()[0]` is the collector-side peer AS; the last
/// element is the origin.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AsPath {
    segments: Vec<AsPathSegment>,
}

impl AsPath {
    /// Empty path (as seen on iBGP or at an origin's own table).
    pub fn empty() -> Self {
        AsPath { segments: Vec::new() }
    }

    /// Build a pure-sequence path from a slice, nearest AS first.
    pub fn from_sequence(asns: impl Into<Vec<Asn>>) -> Self {
        let asns = asns.into();
        if asns.is_empty() {
            AsPath::empty()
        } else {
            AsPath { segments: vec![AsPathSegment::Sequence(asns)] }
        }
    }

    /// Build from raw segments.
    pub fn from_segments(segments: Vec<AsPathSegment>) -> Self {
        AsPath { segments }
    }

    /// The raw segments.
    pub fn segments(&self) -> &[AsPathSegment] {
        &self.segments
    }

    /// Flattened ASN list in path order (sets contribute their members in
    /// stored order).
    pub fn asns(&self) -> Vec<Asn> {
        self.segments.iter().flat_map(|s| s.asns().iter().copied()).collect()
    }

    /// Is the path empty?
    pub fn is_empty(&self) -> bool {
        self.segments.iter().all(|s| s.asns().is_empty())
    }

    /// Total number of ASNs including duplicates from prepending.
    pub fn raw_len(&self) -> usize {
        self.segments.iter().map(|s| s.asns().len()).sum()
    }

    /// Number of *distinct consecutive* hops, i.e. length after removing
    /// prepending. This is the "AS-level path length" used in Fig. 9(b).
    pub fn hop_len(&self) -> usize {
        self.without_prepending().raw_len()
    }

    /// The first (collector-peer-side) AS.
    pub fn first(&self) -> Option<Asn> {
        self.segments.iter().flat_map(|s| s.asns().iter()).next().copied()
    }

    /// The origin AS (last on the path), if unambiguous. Returns `None`
    /// for empty paths or when the path ends in a multi-member AS_SET.
    pub fn origin(&self) -> Option<Asn> {
        match self.segments.last() {
            Some(AsPathSegment::Sequence(v)) => v.last().copied(),
            Some(AsPathSegment::Set(v)) if v.len() == 1 => Some(v[0]),
            _ => None,
        }
    }

    /// Does `asn` appear anywhere on the path?
    pub fn contains(&self, asn: Asn) -> bool {
        self.segments.iter().any(|s| s.asns().contains(&asn))
    }

    /// Prepend an AS `count` times at the front (what a router does when
    /// exporting: adds its own ASN, possibly repeated for traffic
    /// engineering).
    pub fn prepend(&mut self, asn: Asn, count: usize) {
        if count == 0 {
            return;
        }
        match self.segments.first_mut() {
            Some(AsPathSegment::Sequence(v)) => {
                for _ in 0..count {
                    v.insert(0, asn);
                }
            }
            _ => {
                self.segments.insert(0, AsPathSegment::Sequence(vec![asn; count]));
            }
        }
    }

    /// A copy with consecutive duplicate ASNs collapsed ("after removing
    /// AS path prepending", §4.2). Set segments are preserved as-is.
    pub fn without_prepending(&self) -> AsPath {
        let mut segments = Vec::with_capacity(self.segments.len());
        let mut last: Option<Asn> = None;
        for seg in &self.segments {
            match seg {
                AsPathSegment::Sequence(v) => {
                    let mut out = Vec::with_capacity(v.len());
                    for &asn in v {
                        if last != Some(asn) {
                            out.push(asn);
                            last = Some(asn);
                        }
                    }
                    if !out.is_empty() {
                        segments.push(AsPathSegment::Sequence(out));
                    }
                }
                AsPathSegment::Set(v) => {
                    if !v.is_empty() {
                        segments.push(AsPathSegment::Set(v.clone()));
                        last = None;
                    }
                }
            }
        }
        AsPath { segments }
    }

    /// The AS immediately *before* `target` on the path (i.e. one hop
    /// farther from the collector, one hop closer to the origin), after
    /// prepending removal.
    ///
    /// This is exactly the paper's blackholing-user inference: "we infer
    /// the blackholing user as the AS before the blackholing provider along
    /// the AS path (after removing AS path prepending)". Returns `None` if
    /// `target` is absent or is the origin.
    pub fn hop_before(&self, target: Asn) -> Option<Asn> {
        let flat = self.without_prepending().asns();
        let pos = flat.iter().position(|&a| a == target)?;
        flat.get(pos + 1).copied()
    }

    /// Zero-based position of `asn` on the deprepended path, counted from
    /// the collector-peer end. Fig. 7(c)'s "AS distance" between collector
    /// and provider.
    pub fn distance_from_peer(&self, asn: Asn) -> Option<usize> {
        self.without_prepending().asns().iter().position(|&a| a == asn)
    }

    /// Detect whether any prepending is present.
    pub fn has_prepending(&self) -> bool {
        self.raw_len() != self.without_prepending().raw_len()
    }
}

impl fmt::Display for AsPath {
    /// Renders like a looking glass: `"3356 2914 64500"`, sets in braces
    /// `"{64501,64502}"`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for seg in &self.segments {
            match seg {
                AsPathSegment::Sequence(v) => {
                    for asn in v {
                        if !first {
                            write!(f, " ")?;
                        }
                        write!(f, "{}", asn.value())?;
                        first = false;
                    }
                }
                AsPathSegment::Set(v) => {
                    if !first {
                        write!(f, " ")?;
                    }
                    write!(f, "{{")?;
                    for (i, asn) in v.iter().enumerate() {
                        if i > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "{}", asn.value())?;
                    }
                    write!(f, "}}")?;
                    first = false;
                }
            }
        }
        Ok(())
    }
}

impl FromStr for AsPath {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut segments: Vec<AsPathSegment> = Vec::new();
        let mut seq: Vec<Asn> = Vec::new();
        for token in s.split_whitespace() {
            if let Some(inner) = token.strip_prefix('{') {
                let inner = inner
                    .strip_suffix('}')
                    .ok_or_else(|| ParseError::new(format!("unterminated AS_SET in {s:?}")))?;
                if !seq.is_empty() {
                    segments.push(AsPathSegment::Sequence(std::mem::take(&mut seq)));
                }
                let mut set = Vec::new();
                for part in inner.split(',') {
                    if part.is_empty() {
                        continue;
                    }
                    set.push(part.parse::<Asn>()?);
                }
                segments.push(AsPathSegment::Set(set));
            } else {
                seq.push(token.parse::<Asn>()?);
            }
        }
        if !seq.is_empty() {
            segments.push(AsPathSegment::Sequence(seq));
        }
        Ok(AsPath { segments })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(s: &str) -> AsPath {
        s.parse().unwrap()
    }

    fn asn(v: u32) -> Asn {
        Asn::new(v)
    }

    #[test]
    fn build_and_display() {
        let p = AsPath::from_sequence(vec![asn(3356), asn(2914), asn(64500)]);
        assert_eq!(p.to_string(), "3356 2914 64500");
        assert_eq!(p.raw_len(), 3);
        assert_eq!(p.first(), Some(asn(3356)));
        assert_eq!(p.origin(), Some(asn(64500)));
    }

    #[test]
    fn parse_round_trip_with_sets() {
        let p = path("3356 2914 {64501,64502}");
        assert_eq!(p.to_string(), "3356 2914 {64501,64502}");
        assert!(p.contains(asn(64501)));
        // Origin ambiguous with a multi-member trailing set.
        assert_eq!(p.origin(), None);
    }

    #[test]
    fn parse_rejects_unterminated_set() {
        assert!("3356 {64501".parse::<AsPath>().is_err());
    }

    #[test]
    fn prepending_removal() {
        let p = path("3356 3356 3356 2914 64500 64500");
        let clean = p.without_prepending();
        assert_eq!(clean.to_string(), "3356 2914 64500");
        assert!(p.has_prepending());
        assert!(!clean.has_prepending());
        assert_eq!(p.hop_len(), 3);
        assert_eq!(p.raw_len(), 6);
    }

    #[test]
    fn prepending_removal_is_idempotent() {
        let p = path("1 1 2 3 3 3 4");
        assert_eq!(p.without_prepending(), p.without_prepending().without_prepending());
    }

    #[test]
    fn prepending_across_segments_not_collapsed_through_sets() {
        // Sets break the "consecutive" chain.
        let p = AsPath::from_segments(vec![
            AsPathSegment::Sequence(vec![asn(1), asn(1)]),
            AsPathSegment::Set(vec![asn(2)]),
            AsPathSegment::Sequence(vec![asn(1)]),
        ]);
        let clean = p.without_prepending();
        assert_eq!(clean.asns(), vec![asn(1), asn(2), asn(1)]);
    }

    #[test]
    fn hop_before_infers_blackholing_user() {
        // Collector peer -> provider (3356) -> user (64500): the user is the
        // AS *after* the provider when reading from the collector side.
        let p = path("6939 3356 64500");
        assert_eq!(p.hop_before(asn(3356)), Some(asn(64500)));
        // Prepending by the user must not confuse the inference.
        let p = path("6939 3356 64500 64500 64500");
        assert_eq!(p.hop_before(asn(3356)), Some(asn(64500)));
        // Provider at origin: nobody behind it.
        let p = path("6939 3356");
        assert_eq!(p.hop_before(asn(3356)), None);
        // Provider absent.
        assert_eq!(p.hop_before(asn(174)), None);
    }

    #[test]
    fn distance_from_peer_matches_fig7c_semantics() {
        let p = path("6939 1299 3356 64500");
        assert_eq!(p.distance_from_peer(asn(6939)), Some(0)); // direct peering
        assert_eq!(p.distance_from_peer(asn(3356)), Some(2));
        assert_eq!(p.distance_from_peer(asn(174)), None); // "no path" → bundling
                                                          // Prepending shouldn't inflate the distance.
        let p = path("6939 6939 1299 3356");
        assert_eq!(p.distance_from_peer(asn(3356)), Some(2));
    }

    #[test]
    fn prepend_grows_front() {
        let mut p = path("2914 64500");
        p.prepend(asn(3356), 3);
        assert_eq!(p.to_string(), "3356 3356 3356 2914 64500");
        p.prepend(asn(174), 0);
        assert_eq!(p.raw_len(), 5);
    }

    #[test]
    fn prepend_onto_empty_path() {
        let mut p = AsPath::empty();
        assert!(p.is_empty());
        p.prepend(asn(64500), 1);
        assert_eq!(p.to_string(), "64500");
        assert_eq!(p.origin(), Some(asn(64500)));
    }

    #[test]
    fn empty_path_edge_cases() {
        let p = AsPath::empty();
        assert_eq!(p.first(), None);
        assert_eq!(p.origin(), None);
        assert_eq!(p.hop_len(), 0);
        assert_eq!(p.to_string(), "");
        assert_eq!(path("").raw_len(), 0);
    }
}
