//! Error types shared across the data model.

use std::fmt;

/// Error produced when parsing a textual representation (ASN, prefix,
/// community, AS path) fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
}

impl ParseError {
    /// Create a new parse error with a human-readable message.
    pub fn new(message: impl Into<String>) -> Self {
        ParseError { message: message.into() }
    }

    /// The error message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

/// Error produced by the binary wire codecs (BGP attributes, UPDATE bodies,
/// MRT records consume these as their payload layer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the structure was complete.
    Truncated {
        /// What was being decoded.
        what: &'static str,
        /// How many bytes were needed.
        needed: usize,
        /// How many bytes were available.
        available: usize,
    },
    /// A length field disagrees with the surrounding structure.
    BadLength {
        /// What was being decoded.
        what: &'static str,
        /// The offending length value.
        value: usize,
    },
    /// A field holds a value the codec cannot interpret.
    BadValue {
        /// What was being decoded.
        what: &'static str,
        /// The offending value.
        value: u64,
    },
    /// An attribute appeared twice in one UPDATE.
    DuplicateAttribute(u8),
}

impl CodecError {
    /// Helper: check `buf` has at least `needed` bytes remaining.
    pub fn ensure(what: &'static str, available: usize, needed: usize) -> Result<(), CodecError> {
        if available < needed {
            Err(CodecError::Truncated { what, needed, available })
        } else {
            Ok(())
        }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { what, needed, available } => {
                write!(f, "truncated {what}: needed {needed} bytes, had {available}")
            }
            CodecError::BadLength { what, value } => {
                write!(f, "bad length for {what}: {value}")
            }
            CodecError::BadValue { what, value } => {
                write!(f, "bad value for {what}: {value}")
            }
            CodecError::DuplicateAttribute(code) => {
                write!(f, "duplicate path attribute with type code {code}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_passes_when_enough() {
        assert!(CodecError::ensure("x", 4, 4).is_ok());
        assert!(CodecError::ensure("x", 5, 4).is_ok());
    }

    #[test]
    fn ensure_fails_when_short() {
        let err = CodecError::ensure("prefix", 1, 4).unwrap_err();
        assert_eq!(err, CodecError::Truncated { what: "prefix", needed: 4, available: 1 });
        assert!(err.to_string().contains("prefix"));
    }

    #[test]
    fn display_messages() {
        assert!(ParseError::new("nope").to_string().contains("nope"));
        assert!(CodecError::BadLength { what: "nlri", value: 99 }.to_string().contains("nlri"));
        assert!(CodecError::BadValue { what: "afi", value: 7 }.to_string().contains("afi"));
        assert!(CodecError::DuplicateAttribute(8).to_string().contains('8'));
    }
}
