//! Binary prefix trie for IPv4 with longest-prefix match.
//!
//! Used by the bogon filter ("is this announcement inside a bogon block?"),
//! the routing simulator's RIB lookups, and the inference engine's
//! covering-prefix queries (e.g. finding the non-blackholed less-specific
//! that contains a blackholed /32, §10's control-target selection).
//!
//! Nodes live in one arena `Vec` with `u32` child indices instead of
//! per-node boxed pointers: a node is 2×4 bytes of links plus the value,
//! allocation is a `Vec` push (amortized, no per-node malloc), removal
//! recycles slots through a free list, and a descent walks one
//! contiguous allocation instead of chasing heap pointers.

use std::net::Ipv4Addr;

use crate::prefix::Ipv4Prefix;

/// Sentinel child index meaning "no child".
const NONE: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node<T> {
    value: Option<T>,
    /// Arena indices of the 0-bit and 1-bit children ([`NONE`] = absent).
    children: [u32; 2],
}

impl<T> Node<T> {
    fn empty() -> Self {
        Node { value: None, children: [NONE, NONE] }
    }
}

/// A map from IPv4 prefixes to values with longest-prefix-match lookup.
#[derive(Debug, Clone)]
pub struct PrefixTrie<T> {
    /// Node arena; index 0 is the root and is never freed.
    nodes: Vec<Node<T>>,
    /// Recycled arena slots, reused before the arena grows.
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for PrefixTrie<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PrefixTrie<T> {
    /// An empty trie.
    pub fn new() -> Self {
        PrefixTrie { nodes: vec![Node::empty()], free: Vec::new(), len: 0 }
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the trie empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Live arena nodes (root included) — a capacity diagnostic: removal
    /// recycles slots, so this does not grow across insert/remove churn.
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    fn bit(network: u32, depth: u8) -> usize {
        ((network >> (31 - depth as u32)) & 1) as usize
    }

    /// Allocate an empty node, recycling freed slots first.
    fn alloc(&mut self) -> u32 {
        if let Some(index) = self.free.pop() {
            debug_assert!(self.nodes[index as usize].value.is_none());
            debug_assert_eq!(self.nodes[index as usize].children, [NONE, NONE]);
            index
        } else {
            let index = u32::try_from(self.nodes.len()).expect("more than u32::MAX trie nodes");
            self.nodes.push(Node::empty());
            index
        }
    }

    /// Insert a prefix→value mapping; returns the previous value if the
    /// prefix was already present.
    pub fn insert(&mut self, prefix: Ipv4Prefix, value: T) -> Option<T> {
        let bits = prefix.network_bits();
        let mut index = 0u32;
        for depth in 0..prefix.length() {
            let b = Self::bit(bits, depth);
            let child = self.nodes[index as usize].children[b];
            index = if child == NONE {
                let fresh = self.alloc();
                self.nodes[index as usize].children[b] = fresh;
                fresh
            } else {
                child
            };
        }
        let old = self.nodes[index as usize].value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Remove a prefix; returns its value if present. Emptied branches
    /// are pruned and their arena slots recycled.
    pub fn remove(&mut self, prefix: &Ipv4Prefix) -> Option<T> {
        let bits = prefix.network_bits();
        // Descent path as (parent index, child slot), for pruning.
        let mut path: Vec<(u32, usize)> = Vec::with_capacity(prefix.length() as usize);
        let mut index = 0u32;
        for depth in 0..prefix.length() {
            let b = Self::bit(bits, depth);
            let child = self.nodes[index as usize].children[b];
            if child == NONE {
                return None;
            }
            path.push((index, b));
            index = child;
        }
        let out = self.nodes[index as usize].value.take()?;
        self.len -= 1;
        let mut current = index;
        while let Some((parent, b)) = path.pop() {
            let node = &self.nodes[current as usize];
            if node.value.is_some() || node.children != [NONE, NONE] {
                break;
            }
            self.nodes[parent as usize].children[b] = NONE;
            self.free.push(current);
            current = parent;
        }
        Some(out)
    }

    /// Exact-match lookup.
    pub fn get(&self, prefix: &Ipv4Prefix) -> Option<&T> {
        let bits = prefix.network_bits();
        let mut index = 0u32;
        for depth in 0..prefix.length() {
            index = self.nodes[index as usize].children[Self::bit(bits, depth)];
            if index == NONE {
                return None;
            }
        }
        self.nodes[index as usize].value.as_ref()
    }

    /// Longest-prefix match for a single address: the most specific stored
    /// prefix containing `addr`, with its value.
    pub fn longest_match(&self, addr: Ipv4Addr) -> Option<(Ipv4Prefix, &T)> {
        self.best_along(u32::from(addr), 32)
    }

    /// The most specific stored prefix that *properly or equally* covers
    /// `prefix` (i.e. contains all of it).
    pub fn covering(&self, prefix: &Ipv4Prefix) -> Option<(Ipv4Prefix, &T)> {
        self.best_along(prefix.network_bits(), prefix.length())
    }

    /// Deepest valued node on the descent of `bits`, at most `max_depth`
    /// levels down.
    fn best_along(&self, bits: u32, max_depth: u8) -> Option<(Ipv4Prefix, &T)> {
        let mut index = 0u32;
        let mut best: Option<(u8, &T)> = None;
        if let Some(v) = self.nodes[0].value.as_ref() {
            best = Some((0, v));
        }
        for depth in 0..max_depth {
            index = self.nodes[index as usize].children[Self::bit(bits, depth)];
            if index == NONE {
                break;
            }
            if let Some(v) = self.nodes[index as usize].value.as_ref() {
                best = Some((depth + 1, v));
            }
        }
        best.map(|(len, v)| (Ipv4Prefix::from_raw(bits, len), v))
    }

    /// Does any stored prefix contain `addr`?
    pub fn matches_addr(&self, addr: Ipv4Addr) -> bool {
        self.longest_match(addr).is_some()
    }

    /// Does any stored prefix cover `prefix` entirely?
    pub fn covers(&self, prefix: &Ipv4Prefix) -> bool {
        self.covering(prefix).is_some()
    }

    /// Iterate all stored `(prefix, value)` pairs in lexicographic
    /// (network, length) order — lazily, with no allocation beyond the
    /// traversal stack (at most one frame per trie level).
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { trie: self, stack: vec![(0, 0, 0)], remaining: self.len }
    }
}

impl<'a, T> IntoIterator for &'a PrefixTrie<T> {
    type Item = (Ipv4Prefix, &'a T);
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

/// Lazy pre-order traversal of a [`PrefixTrie`].
///
/// Pre-order (node value, then the 0-child subtree, then the 1-child
/// subtree) *is* lexicographic `(network, length)` order: a node's
/// prefix sorts before every descendant (same network bits, shorter
/// length), and the 0-subtree's networks all sort below the 1-subtree's.
#[derive(Debug, Clone)]
pub struct Iter<'a, T> {
    trie: &'a PrefixTrie<T>,
    /// Arena indices still to visit, each with the network bits and depth
    /// of its position; the top of the stack is the next node in order.
    stack: Vec<(u32, u32, u8)>,
    remaining: usize,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = (Ipv4Prefix, &'a T);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some((index, bits, depth)) = self.stack.pop() {
            let node = &self.trie.nodes[index as usize];
            // Push the 1-child first so the 0-child pops (and yields)
            // before it.
            if node.children[1] != NONE {
                self.stack.push((node.children[1], bits | (1 << (31 - depth as u32)), depth + 1));
            }
            if node.children[0] != NONE {
                self.stack.push((node.children[0], bits, depth + 1));
            }
            if let Some(v) = node.value.as_ref() {
                self.remaining -= 1;
                return Some((Ipv4Prefix::from_raw(bits, depth), v));
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<T> ExactSizeIterator for Iter<'_, T> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn p4(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn addr(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn insert_get_remove() {
        let mut t = PrefixTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(p4("10.0.0.0/8"), "a"), None);
        assert_eq!(t.insert(p4("10.0.0.0/8"), "b"), Some("a"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&p4("10.0.0.0/8")), Some(&"b"));
        assert_eq!(t.get(&p4("10.0.0.0/9")), None);
        assert_eq!(t.remove(&p4("10.0.0.0/8")), Some("b"));
        assert_eq!(t.remove(&p4("10.0.0.0/8")), None);
        assert!(t.is_empty());
    }

    #[test]
    fn longest_match_prefers_most_specific() {
        let mut t = PrefixTrie::new();
        t.insert(p4("10.0.0.0/8"), 8);
        t.insert(p4("10.1.0.0/16"), 16);
        t.insert(p4("10.1.2.0/24"), 24);
        let (p, v) = t.longest_match(addr("10.1.2.3")).unwrap();
        assert_eq!((p, *v), (p4("10.1.2.0/24"), 24));
        let (p, v) = t.longest_match(addr("10.1.9.9")).unwrap();
        assert_eq!((p, *v), (p4("10.1.0.0/16"), 16));
        let (p, v) = t.longest_match(addr("10.200.0.1")).unwrap();
        assert_eq!((p, *v), (p4("10.0.0.0/8"), 8));
        assert!(t.longest_match(addr("11.0.0.1")).is_none());
    }

    #[test]
    fn default_route_matches_everything() {
        let mut t = PrefixTrie::new();
        t.insert(p4("0.0.0.0/0"), ());
        assert!(t.matches_addr(addr("8.8.8.8")));
        assert!(t.covers(&p4("192.0.2.0/24")));
    }

    #[test]
    fn covering_respects_prefix_extent() {
        let mut t = PrefixTrie::new();
        t.insert(p4("10.1.2.0/24"), ());
        // A /16 is wider than the stored /24: not covered.
        assert!(!t.covers(&p4("10.1.0.0/16")));
        // The /24 itself and anything inside it is covered.
        assert!(t.covers(&p4("10.1.2.0/24")));
        assert!(t.covers(&p4("10.1.2.128/25")));
        assert!(t.covers(&p4("10.1.2.55/32")));
        assert!(!t.covers(&p4("10.1.3.0/24")));
    }

    #[test]
    fn covering_returns_most_specific_cover() {
        let mut t = PrefixTrie::new();
        t.insert(p4("10.0.0.0/8"), 8);
        t.insert(p4("10.1.0.0/16"), 16);
        let (p, v) = t.covering(&p4("10.1.2.0/24")).unwrap();
        assert_eq!((p, *v), (p4("10.1.0.0/16"), 16));
        let (p, v) = t.covering(&p4("10.2.0.0/16")).unwrap();
        assert_eq!((p, *v), (p4("10.0.0.0/8"), 8));
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let mut t = PrefixTrie::new();
        let prefixes = ["192.0.2.0/24", "10.0.0.0/8", "10.1.0.0/16", "0.0.0.0/0"];
        for (i, s) in prefixes.iter().enumerate() {
            t.insert(p4(s), i);
        }
        let mut iter = t.iter();
        assert_eq!(iter.len(), 4);
        assert_eq!(iter.size_hint(), (4, Some(4)));
        assert_eq!(iter.next().map(|(p, _)| p), Some(p4("0.0.0.0/0")));
        assert_eq!(iter.len(), 3, "lazy iterator tracks remaining items");
        let keys: Vec<_> = t.iter().map(|(p, _)| p).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(keys.len(), 4);
        // Values ride along, and `&trie` iterates too.
        let total: usize = (&t).into_iter().map(|(_, v)| *v).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn remove_prunes_empty_branches() {
        let mut t = PrefixTrie::new();
        t.insert(p4("10.1.2.3/32"), ());
        t.remove(&p4("10.1.2.3/32"));
        // Tree fully pruned: nothing matches and iteration is empty.
        assert!(t.longest_match(addr("10.1.2.3")).is_none());
        assert!(t.iter().next().is_none());
        assert_eq!(t.node_count(), 1, "only the root survives");
    }

    #[test]
    fn removing_inner_keeps_outer() {
        let mut t = PrefixTrie::new();
        t.insert(p4("10.0.0.0/8"), 8);
        t.insert(p4("10.1.0.0/16"), 16);
        t.remove(&p4("10.1.0.0/16"));
        let (p, _) = t.longest_match(addr("10.1.0.1")).unwrap();
        assert_eq!(p, p4("10.0.0.0/8"));
    }

    #[test]
    fn arena_recycles_slots_across_churn() {
        let mut t = PrefixTrie::new();
        t.insert(p4("10.1.2.3/32"), 1);
        // Insert/remove churn on a sibling branch must reuse freed slots
        // rather than grow the arena without bound: after the first round
        // has carved out the sibling's slots, the arena length must not
        // move again.
        t.insert(p4("10.1.2.4/32"), 0);
        assert_eq!(t.remove(&p4("10.1.2.4/32")), Some(0));
        let settled = t.nodes.len();
        for round in 1..10 {
            t.insert(p4("10.1.2.4/32"), round);
            assert_eq!(t.remove(&p4("10.1.2.4/32")), Some(round));
        }
        assert_eq!(t.nodes.len(), settled, "arena grew past first-round size");
        assert_eq!(t.get(&p4("10.1.2.3/32")), Some(&1));
    }
}
