//! Bogon filtering (§3 "BGP Data Cleaning").
//!
//! The paper eliminates "non-routable, private, and bogon prefixes
//! (archived weekly snapshots) reported in the Cymru bogon list, and
//! eliminates prefixes less-specific than /8". [`BogonFilter`] reproduces
//! that cleaning stage: a static martian list (the stable core of the
//! Cymru feed) plus the /8 rule, with room for dynamically added
//! unallocated space to emulate the weekly snapshots.

use std::net::Ipv4Addr;

use crate::prefix::{Ipv4Prefix, Prefix};
use crate::trie::PrefixTrie;

/// The reason an announcement was rejected by cleaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BogonReason {
    /// Covered by a martian/bogon block (private, reserved, documentation…).
    Bogon(Ipv4Prefix),
    /// Less specific than /8 (e.g. /7, /0).
    TooCoarse,
}

/// The static martian blocks: RFC 1918, loopback, link-local, TEST-NETs,
/// benchmarking, CGN space, class D/E, and the zero network.
pub const MARTIAN_BLOCKS: &[(&str, &str)] = &[
    ("0.0.0.0/8", "this network (RFC 791)"),
    ("10.0.0.0/8", "private (RFC 1918)"),
    ("100.64.0.0/10", "carrier-grade NAT (RFC 6598)"),
    ("127.0.0.0/8", "loopback (RFC 1122)"),
    ("169.254.0.0/16", "link local (RFC 3927)"),
    ("172.16.0.0/12", "private (RFC 1918)"),
    ("192.0.0.0/24", "IETF protocol assignments (RFC 6890)"),
    ("192.0.2.0/24", "TEST-NET-1 (RFC 5737)"),
    ("192.88.99.0/24", "6to4 relay anycast (deprecated, RFC 7526)"),
    ("192.168.0.0/16", "private (RFC 1918)"),
    ("198.18.0.0/15", "benchmarking (RFC 2544)"),
    ("198.51.100.0/24", "TEST-NET-2 (RFC 5737)"),
    ("203.0.113.0/24", "TEST-NET-3 (RFC 5737)"),
    ("224.0.0.0/4", "multicast (class D)"),
    ("240.0.0.0/4", "reserved (class E)"),
];

/// A Team-Cymru-style bogon filter.
#[derive(Debug, Clone)]
pub struct BogonFilter {
    blocks: PrefixTrie<&'static str>,
    /// The blocks flattened to `(network, mask, prefix)` for the hot
    /// check: one linear pass of word compares instead of a trie walk
    /// plus a full-trie containment scan per announcement. Kept in sync
    /// with `blocks` by every mutator.
    flat: Vec<(u32, u32, Ipv4Prefix)>,
    /// Reject prefixes with length below this (the paper's "/8 rule").
    min_length: u8,
}

/// The network mask of a prefix length (`/0` → empty mask).
fn mask_of(length: u8) -> u32 {
    if length == 0 {
        0
    } else {
        u32::MAX << (32 - u32::from(length.min(32)))
    }
}

impl Default for BogonFilter {
    fn default() -> Self {
        Self::new()
    }
}

impl BogonFilter {
    /// A filter loaded with the static martian list and the /8 rule.
    pub fn new() -> Self {
        let mut filter = BogonFilter { blocks: PrefixTrie::new(), flat: Vec::new(), min_length: 8 };
        for (prefix, why) in MARTIAN_BLOCKS {
            filter.insert_block(prefix.parse().expect("static martian table is valid"), why);
        }
        filter
    }

    /// A permissive filter with no blocks and no /8 rule (for tests that
    /// need to route documentation space).
    pub fn permissive() -> Self {
        BogonFilter { blocks: PrefixTrie::new(), flat: Vec::new(), min_length: 0 }
    }

    /// Add an unallocated ("full bogon") block, emulating the weekly
    /// Cymru snapshot updates.
    pub fn add_unallocated(&mut self, prefix: Ipv4Prefix) {
        self.insert_block(prefix, "unallocated (full bogon snapshot)");
    }

    fn insert_block(&mut self, prefix: Ipv4Prefix, why: &'static str) {
        self.blocks.insert(prefix, why);
        self.flat.push((prefix.network_bits(), mask_of(prefix.length()), prefix));
    }

    /// Number of blocks currently loaded.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Check a prefix; `Err` carries the reason for rejection.
    pub fn check(&self, prefix: &Ipv4Prefix) -> Result<(), BogonReason> {
        if prefix.length() < self.min_length {
            return Err(BogonReason::TooCoarse);
        }
        // One linear pass over the flattened blocks: in prefix space any
        // overlap is containment one way or the other, so two word
        // compares per block decide everything. A block covering the
        // prefix (or equal to it) is the classic bogon case; a prefix
        // *strictly containing* a block would route reserved space, so it
        // is rejected too (a /9 inside 10.0.0.0/8 is the first case; a /7
        // covering it falls to the /8 rule or to this one).
        let net = prefix.network_bits();
        let mask = mask_of(prefix.length());
        for &(block_net, block_mask, block) in &self.flat {
            if net & block_mask == block_net {
                return Err(BogonReason::Bogon(block));
            }
            if block_net & mask == net {
                return Err(BogonReason::Bogon(*prefix));
            }
        }
        Ok(())
    }

    /// Is the prefix clean (routable)?
    pub fn is_routable(&self, prefix: &Ipv4Prefix) -> bool {
        self.check(prefix).is_ok()
    }

    /// Family-generic convenience: IPv6 gets a minimal sanity check
    /// (documentation/link-local ranges), IPv4 the full pipeline.
    pub fn is_routable_any(&self, prefix: &Prefix) -> bool {
        match prefix {
            Prefix::V4(p) => self.is_routable(p),
            Prefix::V6(p) => {
                let net = u128::from(p.network());
                // 2001:db8::/32 documentation, fe80::/10 link-local,
                // fc00::/7 ULA, ff00::/8 multicast.
                let doc = 0x2001_0db8_u128 << 96;
                !(net >> 96 == doc >> 96
                    || (net >> 118) == (0xfe80_u128 << 112) >> 118
                    || (net >> 121) == (0xfc00_u128 << 112) >> 121
                    || (net >> 120) == (0xff00_u128 << 112) >> 120)
            }
        }
    }

    /// Is a single address inside a bogon block?
    pub fn is_bogon_addr(&self, addr: Ipv4Addr) -> bool {
        self.blocks.matches_addr(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p4(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn martians_are_rejected() {
        let f = BogonFilter::new();
        for (block, _) in MARTIAN_BLOCKS {
            assert!(!f.is_routable(&p4(block)), "{block} should be bogon");
        }
    }

    #[test]
    fn more_specifics_of_martians_are_rejected() {
        let f = BogonFilter::new();
        assert!(!f.is_routable(&p4("10.1.2.0/24")));
        assert!(!f.is_routable(&p4("192.168.1.1/32")));
        assert!(!f.is_routable(&p4("203.0.113.5/32")));
    }

    #[test]
    fn coarse_prefixes_rejected_by_slash8_rule() {
        let f = BogonFilter::new();
        assert_eq!(f.check(&p4("8.0.0.0/7")), Err(BogonReason::TooCoarse));
        assert_eq!(f.check(&p4("0.0.0.0/0")), Err(BogonReason::TooCoarse));
        assert!(f.is_routable(&p4("8.0.0.0/8")));
    }

    #[test]
    fn ordinary_space_is_routable() {
        let f = BogonFilter::new();
        for s in ["8.8.8.0/24", "130.149.0.0/16", "130.149.1.1/32", "185.0.0.0/12"] {
            assert!(f.is_routable(&p4(s)), "{s} should be routable");
        }
    }

    #[test]
    fn unallocated_snapshot_blocks_work() {
        let mut f = BogonFilter::new();
        assert!(f.is_routable(&p4("45.0.0.0/12")));
        f.add_unallocated(p4("45.0.0.0/12"));
        assert!(!f.is_routable(&p4("45.0.0.0/12")));
        assert!(!f.is_routable(&p4("45.0.5.5/32")));
        assert!(f.is_routable(&p4("45.16.0.0/12")));
    }

    #[test]
    fn rejection_reasons_identify_block() {
        let f = BogonFilter::new();
        match f.check(&p4("10.1.0.0/16")) {
            Err(BogonReason::Bogon(block)) => assert_eq!(block, p4("10.0.0.0/8")),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn coarse_cover_of_martian_is_bogon() {
        // 192.0.0.0/8 is /8-compliant but contains TEST-NETs entirely.
        let f = BogonFilter::new();
        assert!(!f.is_routable(&p4("192.0.0.0/8")));
    }

    #[test]
    fn permissive_filter_accepts_everything() {
        let f = BogonFilter::permissive();
        assert!(f.is_routable(&p4("10.0.0.0/8")));
        assert!(f.is_routable(&p4("0.0.0.0/0")));
    }

    #[test]
    fn ipv6_sanity() {
        let f = BogonFilter::new();
        assert!(!f.is_routable_any(&"2001:db8::/32".parse().unwrap()));
        assert!(!f.is_routable_any(&"fe80::/10".parse().unwrap()));
        assert!(!f.is_routable_any(&"fc00::/7".parse().unwrap()));
        assert!(!f.is_routable_any(&"ff00::/8".parse().unwrap()));
        assert!(f.is_routable_any(&"2400:cb00::/32".parse().unwrap()));
        assert!(f.is_routable_any(&"130.149.0.0/16".parse().unwrap()));
        assert!(!f.is_routable_any(&"10.0.0.0/8".parse().unwrap()));
    }

    #[test]
    fn bogon_addr_lookup() {
        let f = BogonFilter::new();
        assert!(f.is_bogon_addr("10.0.0.1".parse().unwrap()));
        assert!(!f.is_bogon_addr("8.8.8.8".parse().unwrap()));
    }
}
