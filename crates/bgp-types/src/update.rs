//! BGP UPDATE messages (structured view).
//!
//! A [`BgpUpdate`] bundles announcements (NLRI) and withdrawals with one set
//! of path attributes — the unit on which the whole measurement pipeline
//! operates. Collector metadata (which peer saw it, when) is layered on top
//! by `bh-routing`/`bh-mrt`, mirroring how MRT archives wrap raw messages.

use serde::{Deserialize, Serialize};

use crate::attrs::PathAttributes;
use crate::prefix::{Ipv4Prefix, Ipv6Prefix, Prefix};

/// One BGP UPDATE: zero or more announced prefixes sharing `attrs`, plus
/// zero or more withdrawn prefixes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BgpUpdate {
    /// Path attributes for the announced NLRI.
    pub attrs: PathAttributes,
    announced_v4: Vec<Ipv4Prefix>,
    announced_v6: Vec<Ipv6Prefix>,
    withdrawn_v4: Vec<Ipv4Prefix>,
    withdrawn_v6: Vec<Ipv6Prefix>,
}

impl BgpUpdate {
    /// A new, empty update carrying the given attributes.
    pub fn new(attrs: PathAttributes) -> Self {
        BgpUpdate {
            attrs,
            announced_v4: Vec::new(),
            announced_v6: Vec::new(),
            withdrawn_v4: Vec::new(),
            withdrawn_v6: Vec::new(),
        }
    }

    /// Convenience: an announcement of a single prefix.
    pub fn announce(attrs: PathAttributes, prefix: Prefix) -> Self {
        let mut update = BgpUpdate::new(attrs);
        update.add_announced(prefix);
        update
    }

    /// Convenience: a withdrawal of a single prefix (no attributes).
    pub fn withdraw(prefix: Prefix) -> Self {
        let mut update = BgpUpdate::new(PathAttributes::default());
        update.add_withdrawn(prefix);
        update
    }

    /// Add an announced prefix of either family.
    pub fn add_announced(&mut self, prefix: Prefix) {
        match prefix {
            Prefix::V4(p) => self.announce_v4(p),
            Prefix::V6(p) => self.announce_v6(p),
        }
    }

    /// Add a withdrawn prefix of either family.
    pub fn add_withdrawn(&mut self, prefix: Prefix) {
        match prefix {
            Prefix::V4(p) => self.withdraw_v4(p),
            Prefix::V6(p) => self.withdraw_v6(p),
        }
    }

    /// Announce an IPv4 prefix (deduplicated).
    pub fn announce_v4(&mut self, prefix: Ipv4Prefix) {
        if !self.announced_v4.contains(&prefix) {
            self.announced_v4.push(prefix);
        }
    }

    /// Announce an IPv6 prefix (deduplicated).
    pub fn announce_v6(&mut self, prefix: Ipv6Prefix) {
        if !self.announced_v6.contains(&prefix) {
            self.announced_v6.push(prefix);
        }
    }

    /// Withdraw an IPv4 prefix (deduplicated).
    pub fn withdraw_v4(&mut self, prefix: Ipv4Prefix) {
        if !self.withdrawn_v4.contains(&prefix) {
            self.withdrawn_v4.push(prefix);
        }
    }

    /// Withdraw an IPv6 prefix (deduplicated).
    pub fn withdraw_v6(&mut self, prefix: Ipv6Prefix) {
        if !self.withdrawn_v6.contains(&prefix) {
            self.withdrawn_v6.push(prefix);
        }
    }

    /// Announced IPv4 prefixes.
    pub fn announced_v4(&self) -> impl Iterator<Item = &Ipv4Prefix> {
        self.announced_v4.iter()
    }

    /// Announced IPv6 prefixes.
    pub fn announced_v6(&self) -> impl Iterator<Item = &Ipv6Prefix> {
        self.announced_v6.iter()
    }

    /// Withdrawn IPv4 prefixes.
    pub fn withdrawn_v4(&self) -> impl Iterator<Item = &Ipv4Prefix> {
        self.withdrawn_v4.iter()
    }

    /// Withdrawn IPv6 prefixes.
    pub fn withdrawn_v6(&self) -> impl Iterator<Item = &Ipv6Prefix> {
        self.withdrawn_v6.iter()
    }

    /// Every announced prefix of both families.
    pub fn announced(&self) -> impl Iterator<Item = Prefix> + '_ {
        self.announced_v4
            .iter()
            .copied()
            .map(Prefix::V4)
            .chain(self.announced_v6.iter().copied().map(Prefix::V6))
    }

    /// Every withdrawn prefix of both families.
    pub fn withdrawn(&self) -> impl Iterator<Item = Prefix> + '_ {
        self.withdrawn_v4
            .iter()
            .copied()
            .map(Prefix::V4)
            .chain(self.withdrawn_v6.iter().copied().map(Prefix::V6))
    }

    /// Does this update announce anything?
    pub fn has_announcements(&self) -> bool {
        !self.announced_v4.is_empty() || !self.announced_v6.is_empty()
    }

    /// Does this update withdraw anything?
    pub fn has_withdrawals(&self) -> bool {
        !self.withdrawn_v4.is_empty() || !self.withdrawn_v6.is_empty()
    }

    /// Is this update completely empty (a no-op)?
    pub fn is_empty(&self) -> bool {
        !self.has_announcements() && !self.has_withdrawals()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::as_path::AsPath;
    use crate::asn::Asn;

    fn p4(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn announce_and_withdraw_dedup() {
        let mut u = BgpUpdate::new(PathAttributes::default());
        u.announce_v4(p4("10.0.0.0/8"));
        u.announce_v4(p4("10.0.0.0/8"));
        u.withdraw_v4(p4("192.0.2.0/24"));
        u.withdraw_v4(p4("192.0.2.0/24"));
        assert_eq!(u.announced_v4().count(), 1);
        assert_eq!(u.withdrawn_v4().count(), 1);
        assert!(u.has_announcements());
        assert!(u.has_withdrawals());
        assert!(!u.is_empty());
    }

    #[test]
    fn constructors() {
        let attrs = PathAttributes {
            as_path: AsPath::from_sequence(vec![Asn::new(1)]),
            ..Default::default()
        };
        let a = BgpUpdate::announce(attrs, Prefix::V4(p4("10.0.0.0/8")));
        assert!(a.has_announcements());
        assert!(!a.has_withdrawals());

        let w = BgpUpdate::withdraw(Prefix::V4(p4("10.0.0.0/8")));
        assert!(!w.has_announcements());
        assert!(w.has_withdrawals());
    }

    #[test]
    fn mixed_families() {
        let mut u = BgpUpdate::new(PathAttributes::default());
        u.add_announced("10.0.0.0/8".parse().unwrap());
        u.add_announced("2001:db8::/32".parse().unwrap());
        u.add_withdrawn("2001:db8:1::/48".parse().unwrap());
        assert_eq!(u.announced().count(), 2);
        assert_eq!(u.withdrawn().count(), 1);
        assert_eq!(u.announced_v6().count(), 1);
        assert_eq!(u.withdrawn_v6().count(), 1);
    }

    #[test]
    fn empty_update() {
        let u = BgpUpdate::new(PathAttributes::default());
        assert!(u.is_empty());
    }
}
