//! BGP community attribute families.
//!
//! Communities are the paper's central signal: blackholing is triggered by
//! tagging an announcement with a provider-specific community such as
//! `3356:9999`, an IXP community, or the RFC 7999 well-known `65535:666`.
//! The dictionary work (§4.1) also cares about the *format*: "the most
//! popular community format is 32 bits, where the first 16 bits refer to
//! the ASN"; extended (RFC 4360) and large (RFC 8092) communities exist but
//! "their adoption is limited" (6 of 307 networks, 1 for blackholing).

use std::fmt;
use std::hash::{Hash, Hasher};
use std::str::FromStr;
use std::sync::{Arc, OnceLock};

use serde::{Deserialize, Serialize};

use crate::asn::Asn;
use crate::error::ParseError;

/// A classic RFC 1997 32-bit community, displayed as `high:low`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Community(pub u32);

impl Community {
    /// Well-known `NO_EXPORT` (RFC 1997): do not advertise outside the AS.
    ///
    /// RFC 7999 *requires* blackhole announcements to carry this — the paper
    /// finds many networks do not comply (§5.2, §9).
    pub const NO_EXPORT: Community = Community(0xFFFF_FF01);
    /// Well-known `NO_ADVERTISE` (RFC 1997).
    pub const NO_ADVERTISE: Community = Community(0xFFFF_FF02);
    /// Well-known `NO_EXPORT_SUBCONFED` (RFC 1997).
    pub const NO_EXPORT_SUBCONFED: Community = Community(0xFFFF_FF03);
    /// RFC 7999 `BLACKHOLE` community, `65535:666`. Adopted by 47 of the 49
    /// IXPs in the paper's dictionary.
    pub const BLACKHOLE: Community = Community(0xFFFF_029A);

    /// Build a community from `asn:value` halves.
    pub const fn from_parts(asn: u16, value: u16) -> Self {
        Community(((asn as u32) << 16) | value as u32)
    }

    /// The high 16 bits, conventionally an ASN.
    pub const fn asn_part(self) -> u16 {
        (self.0 >> 16) as u16
    }

    /// The low 16 bits, the operator-defined value.
    pub const fn value_part(self) -> u16 {
        (self.0 & 0xFFFF) as u16
    }

    /// The high 16 bits as an [`Asn`].
    pub const fn asn(self) -> Asn {
        Asn::new(self.asn_part() as u32)
    }

    /// Does the high half name a public ASN? Communities like `65535:666`
    /// or `0:666` fail this test and need provider disambiguation via the
    /// AS path (§4.2).
    pub fn has_public_asn(self) -> bool {
        self.asn().is_public()
    }

    /// Is this one of the four RFC 1997 / RFC 7999 well-known communities?
    pub fn is_well_known(self) -> bool {
        matches!(
            self,
            Community::NO_EXPORT
                | Community::NO_ADVERTISE
                | Community::NO_EXPORT_SUBCONFED
                | Community::BLACKHOLE
        )
    }

    /// Raw 32-bit value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Community {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.asn_part(), self.value_part())
    }
}

impl FromStr for Community {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (hi, lo) = s
            .split_once(':')
            .ok_or_else(|| ParseError::new(format!("missing ':' in community {s:?}")))?;
        let hi: u16 =
            hi.parse().map_err(|_| ParseError::new(format!("bad high half in community {s:?}")))?;
        let lo: u16 =
            lo.parse().map_err(|_| ParseError::new(format!("bad low half in community {s:?}")))?;
        Ok(Community::from_parts(hi, lo))
    }
}

/// An RFC 4360 extended community (8 bytes: type, subtype, 6 value bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ExtendedCommunity {
    /// High-order type byte (IANA transitive/non-transitive etc.).
    pub type_high: u8,
    /// Sub-type byte.
    pub type_low: u8,
    /// Six value bytes.
    pub value: [u8; 6],
}

impl ExtendedCommunity {
    /// Two-octet-AS-specific extended community (type 0x00), the common
    /// shape for operators who moved their tagging to extended communities.
    pub fn two_octet_as(asn: u16, local: u32, subtype: u8) -> Self {
        let mut value = [0u8; 6];
        value[..2].copy_from_slice(&asn.to_be_bytes());
        value[2..].copy_from_slice(&local.to_be_bytes());
        ExtendedCommunity { type_high: 0x00, type_low: subtype, value }
    }

    /// Raw 8-byte encoding.
    pub fn to_bytes(self) -> [u8; 8] {
        let mut out = [0u8; 8];
        out[0] = self.type_high;
        out[1] = self.type_low;
        out[2..].copy_from_slice(&self.value);
        out
    }

    /// Decode from 8 bytes.
    pub fn from_bytes(b: [u8; 8]) -> Self {
        let mut value = [0u8; 6];
        value.copy_from_slice(&b[2..]);
        ExtendedCommunity { type_high: b[0], type_low: b[1], value }
    }
}

impl fmt::Display for ExtendedCommunity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ext:{:02x}{:02x}", self.type_high, self.type_low)?;
        for b in self.value {
            write!(f, ":{b:02x}")?;
        }
        Ok(())
    }
}

/// An RFC 8092 large community: `GlobalAdmin:LocalData1:LocalData2`,
/// each 32 bits — introduced for 32-bit ASNs. One network in the paper's
/// dictionary blackholes with these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LargeCommunity {
    /// Global administrator, conventionally the operator's (32-bit) ASN.
    pub global_admin: u32,
    /// First local data part.
    pub local_1: u32,
    /// Second local data part.
    pub local_2: u32,
}

impl LargeCommunity {
    /// Construct from the three parts.
    pub const fn new(global_admin: u32, local_1: u32, local_2: u32) -> Self {
        LargeCommunity { global_admin, local_1, local_2 }
    }

    /// The global administrator as an ASN.
    pub const fn asn(self) -> Asn {
        Asn::new(self.global_admin)
    }
}

impl fmt::Display for LargeCommunity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.global_admin, self.local_1, self.local_2)
    }
}

impl FromStr for LargeCommunity {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split(':');
        let mut next = |what| {
            parts
                .next()
                .ok_or_else(|| ParseError::new(format!("large community {s:?} missing {what}")))?
                .parse::<u32>()
                .map_err(|_| ParseError::new(format!("bad {what} in large community {s:?}")))
        };
        let ga = next("global admin")?;
        let l1 = next("local data 1")?;
        let l2 = next("local data 2")?;
        if parts.next().is_some() {
            return Err(ParseError::new(format!("too many parts in large community {s:?}")));
        }
        Ok(LargeCommunity::new(ga, l1, l2))
    }
}

/// Any of the three community families on one announcement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AnyCommunity {
    /// Classic RFC 1997.
    Classic(Community),
    /// RFC 4360 extended.
    Extended(ExtendedCommunity),
    /// RFC 8092 large.
    Large(LargeCommunity),
}

impl fmt::Display for AnyCommunity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnyCommunity::Classic(c) => c.fmt(f),
            AnyCommunity::Extended(c) => c.fmt(f),
            AnyCommunity::Large(c) => c.fmt(f),
        }
    }
}

impl From<Community> for AnyCommunity {
    fn from(c: Community) -> Self {
        AnyCommunity::Classic(c)
    }
}

impl From<LargeCommunity> for AnyCommunity {
    fn from(c: LargeCommunity) -> Self {
        AnyCommunity::Large(c)
    }
}

impl From<ExtendedCommunity> for AnyCommunity {
    fn from(c: ExtendedCommunity) -> Self {
        AnyCommunity::Extended(c)
    }
}

/// Shared community storage plus a memoized content hash. Equality and
/// hashing are defined purely over the three sorted vectors, so two
/// inners with equal content are interchangeable.
#[derive(Debug, Default)]
struct SetInner {
    classic: Vec<Community>,
    large: Vec<LargeCommunity>,
    extended: Vec<ExtendedCommunity>,
    hash: OnceLock<u64>,
}

impl SetInner {
    /// Clone the content with a fresh (unpopulated) hash cache.
    fn copy_content(&self) -> SetInner {
        SetInner {
            classic: self.classic.clone(),
            large: self.large.clone(),
            extended: self.extended.clone(),
            hash: OnceLock::new(),
        }
    }
}

fn empty_set_inner() -> Arc<SetInner> {
    static EMPTY: OnceLock<Arc<SetInner>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::new(SetInner::default())).clone()
}

/// The set of communities attached to one announcement.
///
/// Kept as small sorted vectors: announcements carry few communities, and
/// deterministic iteration order keeps the whole pipeline reproducible.
///
/// Like [`crate::AsPath`], the storage lives behind an [`Arc`]: cloning
/// (done per element by the merge heap, fleet reader threads, and the
/// per-prefix fan-out) bumps a reference count, mutation is
/// copy-on-write, and the content hash is memoized per allocation so
/// repeated hashing (census maps, interning) is O(1) after the first.
#[derive(Clone)]
pub struct CommunitySet {
    inner: Arc<SetInner>,
}

impl Default for CommunitySet {
    fn default() -> Self {
        CommunitySet::new()
    }
}

impl CommunitySet {
    /// Empty set. Shares one static allocation, so the per-withdrawal
    /// empty set is free.
    pub fn new() -> Self {
        CommunitySet { inner: empty_set_inner() }
    }

    /// Build from classic communities.
    pub fn from_classic(mut communities: Vec<Community>) -> Self {
        communities.sort_unstable();
        communities.dedup();
        if communities.is_empty() {
            return CommunitySet::new();
        }
        CommunitySet { inner: Arc::new(SetInner { classic: communities, ..SetInner::default() }) }
    }

    /// Copy-on-write access for the mutators: splits off a private copy
    /// if the allocation is shared, and invalidates the memoized hash
    /// either way (the caller is about to change the content).
    fn make_mut(&mut self) -> &mut SetInner {
        if Arc::get_mut(&mut self.inner).is_none() {
            self.inner = Arc::new(self.inner.copy_content());
        }
        let inner = Arc::get_mut(&mut self.inner).expect("just made unique");
        inner.hash = OnceLock::new();
        inner
    }

    /// Do two handles share one allocation? (True after a `clone`, or
    /// when both came from the same intern-table entry.)
    pub fn shares_allocation(&self, other: &CommunitySet) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Insert a classic community (idempotent, keeps sort order).
    pub fn insert(&mut self, c: Community) {
        if self.contains(c) {
            return;
        }
        let inner = self.make_mut();
        if let Err(pos) = inner.classic.binary_search(&c) {
            inner.classic.insert(pos, c);
        }
    }

    /// Insert a large community.
    pub fn insert_large(&mut self, c: LargeCommunity) {
        if self.contains_large(c) {
            return;
        }
        let inner = self.make_mut();
        if let Err(pos) = inner.large.binary_search(&c) {
            inner.large.insert(pos, c);
        }
    }

    /// Insert an extended community.
    pub fn insert_extended(&mut self, c: ExtendedCommunity) {
        if self.inner.extended.binary_search(&c).is_ok() {
            return;
        }
        let inner = self.make_mut();
        if let Err(pos) = inner.extended.binary_search(&c) {
            inner.extended.insert(pos, c);
        }
    }

    /// Remove a classic community; returns whether it was present.
    pub fn remove(&mut self, c: Community) -> bool {
        if !self.contains(c) {
            return false;
        }
        let inner = self.make_mut();
        match inner.classic.binary_search(&c) {
            Ok(pos) => {
                inner.classic.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Does the set contain this classic community?
    pub fn contains(&self, c: Community) -> bool {
        self.inner.classic.binary_search(&c).is_ok()
    }

    /// Does the set contain this large community?
    pub fn contains_large(&self, c: LargeCommunity) -> bool {
        self.inner.large.binary_search(&c).is_ok()
    }

    /// Does the announcement carry `NO_EXPORT`?
    pub fn has_no_export(&self) -> bool {
        self.contains(Community::NO_EXPORT)
    }

    /// Iterate classic communities in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = Community> + '_ {
        self.inner.classic.iter().copied()
    }

    /// Iterate large communities in sorted order.
    pub fn iter_large(&self) -> impl Iterator<Item = LargeCommunity> + '_ {
        self.inner.large.iter().copied()
    }

    /// Iterate extended communities in sorted order.
    pub fn iter_extended(&self) -> impl Iterator<Item = ExtendedCommunity> + '_ {
        self.inner.extended.iter().copied()
    }

    /// Iterate over every community as [`AnyCommunity`].
    pub fn iter_all(&self) -> impl Iterator<Item = AnyCommunity> + '_ {
        self.inner
            .classic
            .iter()
            .copied()
            .map(AnyCommunity::Classic)
            .chain(self.inner.large.iter().copied().map(AnyCommunity::Large))
            .chain(self.inner.extended.iter().copied().map(AnyCommunity::Extended))
    }

    /// Number of classic communities.
    pub fn len(&self) -> usize {
        self.inner.classic.len()
    }

    /// Total number of communities of all families.
    pub fn total_len(&self) -> usize {
        self.inner.classic.len() + self.inner.large.len() + self.inner.extended.len()
    }

    /// Is the set completely empty?
    pub fn is_empty(&self) -> bool {
        self.inner.classic.is_empty()
            && self.inner.large.is_empty()
            && self.inner.extended.is_empty()
    }

    /// Retain only classic communities satisfying the predicate —
    /// the primitive behind provider-side community stripping.
    pub fn retain(&mut self, mut f: impl FnMut(&Community) -> bool) {
        if self.inner.classic.iter().all(&mut f) {
            return; // nothing to strip — keep sharing the allocation
        }
        self.make_mut().classic.retain(f);
    }

    /// Union with another set (classic + large + extended).
    pub fn merge(&mut self, other: &CommunitySet) {
        if self.shares_allocation(other) {
            return;
        }
        if self.is_empty() {
            *self = other.clone();
            return;
        }
        for c in other.iter() {
            self.insert(c);
        }
        for c in other.iter_large() {
            self.insert_large(c);
        }
        for c in other.iter_extended() {
            self.insert_extended(c);
        }
    }

    /// The memoized content hash: a deterministic hash of all three
    /// families, computed once per allocation. `Hash` forwards to this.
    pub fn content_hash(&self) -> u64 {
        *self.inner.hash.get_or_init(|| {
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            self.inner.classic.hash(&mut hasher);
            self.inner.large.hash(&mut hasher);
            self.inner.extended.hash(&mut hasher);
            hasher.finish()
        })
    }
}

impl PartialEq for CommunitySet {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
            || (self.inner.classic == other.inner.classic
                && self.inner.large == other.inner.large
                && self.inner.extended == other.inner.extended)
    }
}

impl Eq for CommunitySet {}

impl Hash for CommunitySet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.content_hash());
    }
}

impl fmt::Debug for CommunitySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CommunitySet")
            .field("classic", &self.inner.classic)
            .field("large", &self.inner.large)
            .field("extended", &self.inner.extended)
            .finish()
    }
}

impl FromIterator<Community> for CommunitySet {
    fn from_iter<T: IntoIterator<Item = Community>>(iter: T) -> Self {
        CommunitySet::from_classic(iter.into_iter().collect())
    }
}

impl fmt::Display for CommunitySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for c in self.iter_all() {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_parts_round_trip() {
        let c = Community::from_parts(3356, 9999);
        assert_eq!(c.asn_part(), 3356);
        assert_eq!(c.value_part(), 9999);
        assert_eq!(c.to_string(), "3356:9999");
        assert_eq!("3356:9999".parse::<Community>().unwrap(), c);
    }

    #[test]
    fn blackhole_constant_is_rfc7999() {
        assert_eq!(Community::BLACKHOLE.to_string(), "65535:666");
        assert_eq!("65535:666".parse::<Community>().unwrap(), Community::BLACKHOLE);
        assert!(Community::BLACKHOLE.is_well_known());
        assert!(!Community::BLACKHOLE.has_public_asn());
    }

    #[test]
    fn no_export_constant() {
        assert_eq!(Community::NO_EXPORT.asn_part(), 65535);
        assert_eq!(Community::NO_EXPORT.value_part(), 0xFF01);
        assert!(Community::NO_EXPORT.is_well_known());
    }

    #[test]
    fn public_asn_detection() {
        assert!(Community::from_parts(3356, 666).has_public_asn());
        assert!(!Community::from_parts(0, 666).has_public_asn());
        assert!(!Community::from_parts(65535, 666).has_public_asn());
        assert!(!Community::from_parts(64512, 666).has_public_asn());
    }

    #[test]
    fn parse_rejects_bad_communities() {
        assert!("3356".parse::<Community>().is_err());
        assert!("foo:666".parse::<Community>().is_err());
        assert!("3356:bar".parse::<Community>().is_err());
        assert!("70000:1".parse::<Community>().is_err()); // >16-bit half
    }

    #[test]
    fn large_community_round_trip() {
        let c = LargeCommunity::new(196_608, 666, 0);
        assert_eq!(c.to_string(), "196608:666:0");
        assert_eq!("196608:666:0".parse::<LargeCommunity>().unwrap(), c);
        assert!("1:2".parse::<LargeCommunity>().is_err());
        assert!("1:2:3:4".parse::<LargeCommunity>().is_err());
    }

    #[test]
    fn extended_community_bytes_round_trip() {
        let c = ExtendedCommunity::two_octet_as(3356, 666, 0x02);
        let bytes = c.to_bytes();
        assert_eq!(ExtendedCommunity::from_bytes(bytes), c);
        assert_eq!(bytes[0], 0x00);
        assert_eq!(bytes[1], 0x02);
        assert_eq!(u16::from_be_bytes([bytes[2], bytes[3]]), 3356);
    }

    #[test]
    fn set_insert_is_sorted_and_deduped() {
        let mut set = CommunitySet::new();
        set.insert(Community::from_parts(20, 1));
        set.insert(Community::from_parts(10, 1));
        set.insert(Community::from_parts(20, 1));
        let v: Vec<_> = set.iter().collect();
        assert_eq!(v, vec![Community::from_parts(10, 1), Community::from_parts(20, 1)]);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn set_contains_and_remove() {
        let mut set: CommunitySet =
            vec![Community::from_parts(1, 1), Community::from_parts(2, 2)].into_iter().collect();
        assert!(set.contains(Community::from_parts(1, 1)));
        assert!(set.remove(Community::from_parts(1, 1)));
        assert!(!set.contains(Community::from_parts(1, 1)));
        assert!(!set.remove(Community::from_parts(1, 1)));
    }

    #[test]
    fn set_merge_unions_families() {
        let mut a = CommunitySet::from_classic(vec![Community::from_parts(1, 1)]);
        let mut b = CommunitySet::from_classic(vec![Community::from_parts(2, 2)]);
        b.insert_large(LargeCommunity::new(1, 2, 3));
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert!(a.contains_large(LargeCommunity::new(1, 2, 3)));
        assert_eq!(a.total_len(), 3);
    }

    #[test]
    fn set_retain_strips() {
        let mut set: CommunitySet = vec![
            Community::from_parts(3356, 666),
            Community::from_parts(3356, 9999),
            Community::BLACKHOLE,
        ]
        .into_iter()
        .collect();
        set.retain(|c| c.value_part() != 9999);
        assert!(!set.contains(Community::from_parts(3356, 9999)));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn display_set() {
        let mut set = CommunitySet::from_classic(vec![
            Community::from_parts(2, 2),
            Community::from_parts(1, 1),
        ]);
        set.insert_large(LargeCommunity::new(9, 9, 9));
        assert_eq!(set.to_string(), "1:1 2:2 9:9:9");
    }

    #[test]
    fn iter_all_covers_every_family() {
        let mut set = CommunitySet::new();
        set.insert(Community::from_parts(1, 1));
        set.insert_large(LargeCommunity::new(2, 2, 2));
        set.insert_extended(ExtendedCommunity::two_octet_as(3, 3, 0));
        assert_eq!(set.iter_all().count(), 3);
        assert!(!set.is_empty());
    }

    #[test]
    fn clone_is_shared_and_cow_isolates_mutation() {
        let a = CommunitySet::from_classic(vec![Community::BLACKHOLE]);
        let b = a.clone();
        assert!(a.shares_allocation(&b));
        let mut c = b.clone();
        c.insert(Community::NO_EXPORT);
        assert!(!c.shares_allocation(&a));
        assert_eq!(a.len(), 1, "COW must not leak into siblings");
        assert_eq!(c.len(), 2);
        // No-op mutations keep sharing the allocation.
        let mut d = a.clone();
        d.insert(Community::BLACKHOLE);
        d.retain(|_| true);
        assert!(!d.remove(Community::NO_ADVERTISE));
        d.merge(&a);
        assert!(d.shares_allocation(&a));
    }

    #[test]
    fn equal_sets_hash_equal_regardless_of_provenance() {
        let a = CommunitySet::from_classic(vec![
            Community::from_parts(2, 2),
            Community::from_parts(1, 1),
        ]);
        let mut b = CommunitySet::new();
        b.insert(Community::from_parts(1, 1));
        b.insert(Community::from_parts(2, 2));
        assert!(!a.shares_allocation(&b));
        assert_eq!(a, b);
        assert_eq!(a.content_hash(), b.content_hash());
        // The lazy hash memo is interior mutability that never affects
        // Eq/Hash, so CommunitySet is a sound HashSet key despite the lint.
        #[allow(clippy::mutable_key_type)]
        let mut seen = std::collections::HashSet::new();
        seen.insert(a);
        assert!(seen.contains(&b));
        // All empty sets share the static allocation.
        assert!(CommunitySet::new().shares_allocation(&CommunitySet::default()));
        assert!(CommunitySet::from_classic(Vec::new()).shares_allocation(&CommunitySet::new()));
    }
}
