//! Property-based tests for the BGP data model invariants.

use std::net::Ipv4Addr;

use proptest::prelude::*;

use bh_bgp_types::as_path::{AsPath, AsPathSegment};
use bh_bgp_types::asn::Asn;
use bh_bgp_types::attrs::{Origin, PathAttributes};
use bh_bgp_types::community::{Community, CommunitySet, LargeCommunity};
use bh_bgp_types::prefix::Ipv4Prefix;
use bh_bgp_types::time::{SimDuration, SimTime};
use bh_bgp_types::trie::PrefixTrie;
use bh_bgp_types::update::BgpUpdate;
use bh_bgp_types::wire;

fn arb_prefix() -> impl Strategy<Value = Ipv4Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(net, len)| Ipv4Prefix::from_raw(net, len))
}

fn arb_community() -> impl Strategy<Value = Community> {
    any::<u32>().prop_map(Community)
}

fn arb_as_path() -> impl Strategy<Value = AsPath> {
    prop::collection::vec((1u32..100_000, 1usize..4), 0..6).prop_map(|hops| {
        let mut asns = Vec::new();
        for (asn, repeat) in hops {
            for _ in 0..repeat {
                asns.push(Asn::new(asn));
            }
        }
        AsPath::from_sequence(asns)
    })
}

fn arb_attrs() -> impl Strategy<Value = PathAttributes> {
    (
        arb_as_path(),
        prop::option::of(any::<u32>()),
        prop::option::of(any::<u32>()),
        prop::collection::vec(arb_community(), 0..8),
        prop::collection::vec((any::<u32>(), any::<u32>(), any::<u32>()), 0..3),
        any::<bool>(),
        0u8..3,
    )
        .prop_map(|(as_path, med, local_pref, classic, large, atomic, origin)| {
            let mut communities = CommunitySet::from_classic(classic);
            for (a, b, c) in large {
                communities.insert_large(LargeCommunity::new(a, b, c));
            }
            PathAttributes {
                origin: Origin::from_code(origin).unwrap(),
                as_path,
                next_hop: Some("203.0.113.66".parse().unwrap()),
                med,
                local_pref,
                atomic_aggregate: atomic,
                aggregator: None,
                communities,
            }
        })
}

proptest! {
    #[test]
    fn prefix_display_parse_round_trip(p in arb_prefix()) {
        let s = p.to_string();
        let back: Ipv4Prefix = s.parse().unwrap();
        prop_assert_eq!(p, back);
    }

    #[test]
    fn prefix_parent_contains_child(p in arb_prefix()) {
        if let Some(parent) = p.parent() {
            prop_assert!(parent.contains(&p));
            prop_assert_eq!(parent.length() + 1, p.length());
        }
    }

    #[test]
    fn prefix_containment_is_transitive(net in any::<u32>(), a in 0u8..=32, b in 0u8..=32, c in 0u8..=32) {
        let mut lens = [a, b, c];
        lens.sort_unstable();
        let big = Ipv4Prefix::from_raw(net, lens[0]);
        let mid = Ipv4Prefix::from_raw(net, lens[1]);
        let small = Ipv4Prefix::from_raw(net, lens[2]);
        prop_assert!(big.contains(&mid));
        prop_assert!(mid.contains(&small));
        prop_assert!(big.contains(&small));
    }

    #[test]
    fn community_display_parse_round_trip(c in arb_community()) {
        let s = c.to_string();
        let back: Community = s.parse().unwrap();
        prop_assert_eq!(c, back);
    }

    #[test]
    fn as_path_display_parse_round_trip(p in arb_as_path()) {
        let s = p.to_string();
        let back: AsPath = s.parse().unwrap();
        prop_assert_eq!(p.asns(), back.asns());
    }

    #[test]
    fn prepending_removal_idempotent_and_shorter(p in arb_as_path()) {
        let once = p.without_prepending();
        let twice = once.without_prepending();
        prop_assert_eq!(&once, &twice);
        prop_assert!(once.raw_len() <= p.raw_len());
        // No consecutive duplicates remain.
        let asns = once.asns();
        for w in asns.windows(2) {
            prop_assert_ne!(w[0], w[1]);
        }
    }

    #[test]
    fn hop_before_is_next_distinct_asn(p in arb_as_path(), probe_idx in 0usize..12) {
        let flat = p.without_prepending().asns();
        if let Some(&target) = flat.get(probe_idx % flat.len().max(1)) {
            let expected = flat
                .iter()
                .position(|&a| a == target)
                .and_then(|i| flat.get(i + 1))
                .copied();
            prop_assert_eq!(p.hop_before(target), expected);
        }
    }

    #[test]
    fn attributes_wire_round_trip(attrs in arb_attrs()) {
        let encoded = wire::encode_attributes(&attrs).freeze();
        let decoded = wire::decode_attributes(encoded).unwrap();
        prop_assert_eq!(attrs, decoded);
    }

    #[test]
    fn update_message_wire_round_trip(
        attrs in arb_attrs(),
        announced in prop::collection::btree_set(arb_prefix(), 1..8),
        withdrawn in prop::collection::btree_set(arb_prefix(), 0..8),
    ) {
        let mut update = BgpUpdate::new(attrs);
        for p in &announced {
            update.announce_v4(*p);
        }
        for p in &withdrawn {
            update.withdraw_v4(*p);
        }
        let encoded = wire::encode_update_message(&update).freeze();
        let decoded = wire::decode_update_message(encoded).unwrap().unwrap();
        prop_assert_eq!(update, decoded);
    }

    #[test]
    fn trie_longest_match_agrees_with_linear_scan(
        entries in prop::collection::btree_set(arb_prefix(), 1..40),
        addr in any::<u32>(),
    ) {
        let mut trie = PrefixTrie::new();
        for (i, p) in entries.iter().enumerate() {
            trie.insert(*p, i);
        }
        let addr = Ipv4Addr::from(addr);
        let expected = entries
            .iter()
            .filter(|p| p.contains_addr(addr))
            .max_by_key(|p| p.length());
        let got = trie.longest_match(addr).map(|(p, _)| p);
        prop_assert_eq!(got, expected.copied());
    }

    #[test]
    fn trie_insert_remove_restores(entries in prop::collection::btree_set(arb_prefix(), 1..20)) {
        let mut trie = PrefixTrie::new();
        for p in &entries {
            trie.insert(*p, ());
        }
        prop_assert_eq!(trie.len(), entries.len());
        for p in &entries {
            prop_assert!(trie.remove(p).is_some());
        }
        prop_assert!(trie.is_empty());
        prop_assert!(trie.iter().next().is_none());
    }

    #[test]
    fn simtime_ymd_round_trip(days in 0u64..40_000) {
        let t = SimTime::from_unix(days * 86_400);
        let (y, m, d) = t.ymd();
        prop_assert_eq!(SimTime::from_ymd(y, m, d), t);
        prop_assert!((1..=12).contains(&m));
        prop_assert!((1..=31).contains(&d));
    }

    #[test]
    fn simtime_since_is_consistent(a in 0u64..1u64 << 40, delta in 0u64..1u64 << 20) {
        let t0 = SimTime::from_unix(a);
        let t1 = t0 + SimDuration::secs(delta);
        prop_assert_eq!(t1.since(t0).as_secs(), delta);
        prop_assert_eq!(t0.since(t1), SimDuration::ZERO);
    }

    #[test]
    fn community_set_is_sorted_and_unique(cs in prop::collection::vec(arb_community(), 0..30)) {
        let set = CommunitySet::from_classic(cs.clone());
        let collected: Vec<_> = set.iter().collect();
        let mut expected = cs;
        expected.sort_unstable();
        expected.dedup();
        prop_assert_eq!(collected, expected);
    }

    #[test]
    fn as_set_segments_survive_wire(seq in prop::collection::vec(1u32..1000, 1..4), set in prop::collection::btree_set(1u32..1000, 1..4)) {
        let path = AsPath::from_segments(vec![
            AsPathSegment::Sequence(seq.iter().map(|&a| Asn::new(a)).collect()),
            AsPathSegment::Set(set.iter().map(|&a| Asn::new(a)).collect()),
        ]);
        let attrs = PathAttributes { as_path: path.clone(), ..Default::default() };
        let decoded = wire::decode_attributes(wire::encode_attributes(&attrs).freeze()).unwrap();
        prop_assert_eq!(decoded.as_path.segments(), path.segments());
    }
}
