//! Shared state between the daemon and its query surface.
//!
//! The daemon owns the write side (a `SharedState` behind an
//! `Arc<RwLock>`); any number of [`QueryRunner`] clones — wire
//! front-ends, monitoring threads, tests — read consistent snapshots
//! without ever touching the inference state itself.

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

use bh_bgp_types::time::{SimDuration, SimTime};
use bh_core::{AnalyticsReport, SequencedEvent};

/// Liveness counters the daemon refreshes every step.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LiveStatus {
    /// Elements ingested since session start (including before a resume).
    pub elems: u64,
    /// Events emitted so far (== the next sequence number).
    pub events_emitted: u64,
    /// Blackholings currently open in the session.
    pub open_events: usize,
    /// The daemon clock's current time.
    pub now: SimTime,
    /// Tailing sources that reached end-of-archive.
    pub sources_ended: usize,
    /// Total tailing sources.
    pub sources_total: usize,
    /// Worst emission latency observed so far (closed events only).
    pub max_latency_seen: SimDuration,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Every archive closed and drained — the stream is complete.
    pub drained: bool,
}

/// The daemon-published state the query surface reads.
#[derive(Debug, Default)]
pub(crate) struct SharedState {
    pub(crate) status: LiveStatus,
    pub(crate) report: Option<AnalyticsReport>,
    /// Recent events keyed by sequence number, trimmed to the
    /// configured capacity (oldest first).
    pub(crate) events: BTreeMap<u64, SequencedEvent>,
}

/// Read-side handle over the daemon's shared state. Cloning is cheap;
/// all clones observe the same live state.
#[derive(Debug, Clone)]
pub struct QueryRunner {
    shared: Arc<RwLock<SharedState>>,
}

impl QueryRunner {
    pub(crate) fn new(shared: Arc<RwLock<SharedState>>) -> Self {
        QueryRunner { shared }
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, SharedState> {
        self.shared.read().expect("live shared state poisoned")
    }

    /// The daemon's current liveness counters.
    pub fn status(&self) -> LiveStatus {
        self.read().status.clone()
    }

    /// The most recent [`AnalyticsReport`] snapshot — published at every
    /// checkpoint and at drain; `None` before the first checkpoint.
    pub fn report(&self) -> Option<AnalyticsReport> {
        self.read().report.clone()
    }

    /// Every retained event with `seq >= since`, ascending. Events older
    /// than the ring capacity are gone — a consumer that falls further
    /// behind than the capacity must re-sync from a report instead.
    pub fn events_since(&self, since: u64) -> Vec<SequencedEvent> {
        self.read().events.range(since..).map(|(_, e)| e.clone()).collect()
    }

    /// The lowest sequence number still retained, if any.
    pub fn oldest_retained(&self) -> Option<u64> {
        self.read().events.keys().next().copied()
    }
}
