//! The `LiveFleet` daemon: incremental inference over tailing archives.
//!
//! One [`step`](LiveFleet::step) = drain everything the watermark-gated
//! merge proves safe, push it through the session, emit newly closed
//! events (sequence-numbered, latency-stamped), and checkpoint when due.
//! The daemon is single-threaded by design: a single
//! [`InferenceSession`] closes events in deterministic stream order,
//! which is what makes sequence numbers stable across a kill/resume —
//! the sharded session cannot drain or checkpoint mid-stream, so the
//! live path trades its parallelism for exactly-once event semantics.

use std::sync::{Arc, RwLock};

use bh_bgp_types::time::{SimDuration, SimTime};
use bh_core::{
    AnalyticsPipeline, AnalyticsReport, BlackholeEvent, EventAccumulator, InferenceSession,
    SequencedEvent, SessionBuilder, SessionCheckpoint, StreamSummary,
};
use bh_routing::elem::DataSource;
use bh_routing::live::{Clock, LiveArchive, LiveMerge, TailingSource};

use crate::query::{LiveStatus, QueryRunner, SharedState};

/// Daemon tunables.
#[derive(Debug, Clone, Copy)]
pub struct LiveFleetConfig {
    /// The emission-latency budget: every closed event should be
    /// published within this much clock time of its closing update.
    /// The daemon meets it by construction when stepped at least once
    /// per `max_latency`; [`LiveStatus::max_latency_seen`] records the
    /// worst case actually observed so deployments can verify.
    pub max_latency: SimDuration,
    /// How long [`LiveFleet::run_until_drained`] sleeps when a step
    /// ingested nothing.
    pub poll_interval: SimDuration,
    /// Checkpoint after this many ingested elements.
    pub checkpoint_every: u64,
    /// How many recent events the query ring retains.
    pub events_capacity: usize,
}

impl Default for LiveFleetConfig {
    fn default() -> Self {
        LiveFleetConfig {
            max_latency: SimDuration::mins(5),
            poll_interval: SimDuration::secs(1),
            checkpoint_every: 8_192,
            events_capacity: 65_536,
        }
    }
}

/// Everything a daemon needs to resume exactly where a predecessor
/// died: the session checkpoint, the analytics folded in so far, the
/// next sequence number, and each archive's delivery position.
#[derive(Clone)]
pub struct LiveCheckpoint {
    pub(crate) session: SessionCheckpoint,
    pub(crate) pipeline: AnalyticsPipeline,
    pub(crate) next_seq: u64,
    pub(crate) delivered: Vec<((DataSource, u16), u64)>,
    pub(crate) total_elems: u64,
    pub(crate) checkpoints: u64,
}

impl LiveCheckpoint {
    /// Elements ingested when the checkpoint was taken.
    pub fn total_elems(&self) -> u64 {
        self.total_elems
    }

    /// The sequence number the next emitted event will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Blackholings open at checkpoint time.
    pub fn open_events(&self) -> usize {
        self.session.open_events()
    }
}

/// The live blackhole-detection daemon. See the [module docs](self).
pub struct LiveFleet {
    merge: LiveMerge,
    session: InferenceSession,
    pipeline: AnalyticsPipeline,
    clock: Arc<dyn Clock>,
    config: LiveFleetConfig,
    shared: Arc<RwLock<SharedState>>,
    next_seq: u64,
    since_checkpoint: u64,
    total_elems: u64,
    checkpoints: u64,
    max_latency_seen: SimDuration,
    last_checkpoint: Option<LiveCheckpoint>,
}

impl LiveFleet {
    /// Boot a fresh daemon over `feeds` (one labelled [`LiveArchive`]
    /// per collector; label order is the merge tie-break order).
    pub fn new(
        builder: SessionBuilder,
        pipeline: AnalyticsPipeline,
        feeds: &[(DataSource, u16, LiveArchive)],
        clock: Arc<dyn Clock>,
        config: LiveFleetConfig,
    ) -> Self {
        let sources =
            feeds.iter().map(|(d, c, a)| TailingSource::new(a.clone(), *d, *c)).collect::<Vec<_>>();
        Self::assemble(builder.build(), pipeline, sources, clock, config, 0, 0, 0)
    }

    /// Resume from a predecessor's [`LiveCheckpoint`]. `feeds` must
    /// describe the same archives in the same order; each source skips
    /// what the checkpoint says was already delivered, the session
    /// resumes its open state, and sequence numbering continues — any
    /// events that closed after the checkpoint but before the crash are
    /// re-emitted under their original numbers, so consumers dedup by
    /// sequence and observe no gap.
    pub fn resume(
        builder: SessionBuilder,
        feeds: &[(DataSource, u16, LiveArchive)],
        clock: Arc<dyn Clock>,
        config: LiveFleetConfig,
        checkpoint: LiveCheckpoint,
    ) -> Self {
        let sources = feeds
            .iter()
            .map(|(d, c, a)| {
                let skip = checkpoint
                    .delivered
                    .iter()
                    .find(|(label, _)| *label == (*d, *c))
                    .map(|(_, n)| *n)
                    .unwrap_or(0);
                TailingSource::with_skip(a.clone(), *d, *c, skip)
            })
            .collect::<Vec<_>>();
        Self::assemble(
            builder.resume(checkpoint.session.clone()),
            checkpoint.pipeline.clone(),
            sources,
            clock,
            config,
            checkpoint.next_seq,
            checkpoint.total_elems,
            checkpoint.checkpoints,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        session: InferenceSession,
        pipeline: AnalyticsPipeline,
        sources: Vec<TailingSource>,
        clock: Arc<dyn Clock>,
        config: LiveFleetConfig,
        next_seq: u64,
        total_elems: u64,
        checkpoints: u64,
    ) -> Self {
        let mut daemon = LiveFleet {
            merge: LiveMerge::new(sources),
            session,
            pipeline,
            clock,
            config: LiveFleetConfig {
                checkpoint_every: config.checkpoint_every.max(1),
                events_capacity: config.events_capacity.max(1),
                ..config
            },
            shared: Arc::new(RwLock::new(SharedState::default())),
            next_seq,
            since_checkpoint: 0,
            total_elems,
            checkpoints,
            max_latency_seen: SimDuration::ZERO,
            last_checkpoint: None,
        };
        daemon.publish_status();
        daemon
    }

    /// A read-side handle for queries; clone freely.
    pub fn query_runner(&self) -> QueryRunner {
        QueryRunner::new(self.shared.clone())
    }

    /// Daemon tunables in effect.
    pub fn config(&self) -> &LiveFleetConfig {
        &self.config
    }

    /// Have all archives closed and drained?
    pub fn drained(&self) -> bool {
        self.merge.all_ended()
    }

    /// The most recent checkpoint, if one has been taken — what a
    /// supervisor persists so a successor can [`LiveFleet::resume`].
    pub fn last_checkpoint(&self) -> Option<LiveCheckpoint> {
        self.last_checkpoint.clone()
    }

    /// Force a checkpoint now (also resets the cadence counter).
    pub fn checkpoint_now(&mut self) -> LiveCheckpoint {
        // Emit first so the session checkpoint carries no pending closed
        // events: everything closed has a sequence number, and the
        // successor's numbering continues from a clean boundary.
        self.emit_closed();
        let checkpoint = LiveCheckpoint {
            session: self.session.checkpoint(),
            pipeline: self.pipeline.clone(),
            next_seq: self.next_seq,
            delivered: self.merge.delivered(),
            total_elems: self.total_elems,
            checkpoints: self.checkpoints + 1,
        };
        self.checkpoints += 1;
        self.since_checkpoint = 0;
        self.last_checkpoint = Some(checkpoint.clone());
        let report = self.pipeline.snapshot();
        {
            let mut shared = self.shared.write().expect("live shared state poisoned");
            shared.report = Some(report);
        }
        self.publish_status();
        checkpoint
    }

    /// One daemon iteration: ingest everything the merge proves safe,
    /// emit newly closed events, checkpoint if the cadence is due.
    /// Returns the number of elements ingested.
    pub fn step(&mut self) -> u64 {
        let mut ingested = 0u64;
        while let Some(elem) = self.merge.next_ready() {
            self.session.push(elem);
            ingested += 1;
        }
        self.total_elems += ingested;
        self.since_checkpoint += ingested;
        self.emit_closed();
        if self.since_checkpoint >= self.config.checkpoint_every {
            self.checkpoint_now();
        } else {
            self.publish_status();
        }
        ingested
    }

    /// Run until the stream drains, sleeping `poll_interval` on idle
    /// steps — the production loop shape (with a wall clock, the sleep
    /// blocks; with a virtual clock it advances time).
    pub fn run_until_drained(&mut self) {
        while !self.drained() {
            if self.step() == 0 && !self.drained() {
                self.clock.sleep(self.config.poll_interval);
            }
        }
    }

    /// Sequence and publish every event the session has closed.
    fn emit_closed(&mut self) {
        let closed = self.session.drain_closed();
        if closed.is_empty() {
            return;
        }
        let now = self.clock.now();
        let shared = Arc::clone(&self.shared);
        let mut shared = shared.write().expect("live shared state poisoned");
        for event in closed {
            self.sequence_into(&mut shared, event, now);
        }
    }

    /// Assign the next sequence number, fold into analytics, retain for
    /// `events-since`. Re-emissions after a resume overwrite their ring
    /// slot with an identical event.
    fn sequence_into(&mut self, shared: &mut SharedState, event: BlackholeEvent, now: SimTime) {
        if let Some(end) = event.end {
            self.max_latency_seen = self.max_latency_seen.max(now.since(end));
        }
        self.pipeline.observe(&event);
        let seq = self.next_seq;
        self.next_seq += 1;
        shared.events.insert(seq, SequencedEvent { seq, emitted_at: now, event });
        while shared.events.len() > self.config.events_capacity {
            shared.events.pop_first();
        }
    }

    fn publish_status(&mut self) {
        let status = LiveStatus {
            elems: self.total_elems,
            events_emitted: self.next_seq,
            open_events: self.session.open_event_count(),
            now: self.clock.now(),
            sources_ended: self.merge.sources_ended(),
            sources_total: self.merge.source_count(),
            max_latency_seen: self.max_latency_seen,
            checkpoints: self.checkpoints,
            drained: self.merge.all_ended(),
        };
        self.shared.write().expect("live shared state poisoned").status = status;
    }

    /// Finish the drained stream: flush remaining closed events, emit
    /// the still-open ones (`end: None`, latency zero by definition),
    /// publish the final report, and return the session summary plus the
    /// final [`AnalyticsReport`] — the pair a batch
    /// `infer_streaming_analytics` run over the same stream produces.
    pub fn finish(mut self) -> (StreamSummary, AnalyticsReport) {
        self.step();
        debug_assert!(self.drained(), "finish() on an undrained daemon emits open events early");
        let now = self.clock.now();
        let mut emitted = Vec::new();
        let summary = {
            let mut tee = SequencingTee {
                pipeline: &mut self.pipeline,
                emitted: &mut emitted,
                next_seq: &mut self.next_seq,
                emitted_at: now,
            };
            self.session.finish_with(&mut tee)
        };
        let report = self.pipeline.snapshot();
        {
            let mut shared = self.shared.write().expect("live shared state poisoned");
            for se in emitted {
                if let Some(end) = se.event.end {
                    self.max_latency_seen = self.max_latency_seen.max(now.since(end));
                }
                shared.events.insert(se.seq, se);
                while shared.events.len() > self.config.events_capacity {
                    shared.events.pop_first();
                }
            }
            shared.report = Some(report.clone());
            shared.status = LiveStatus {
                elems: self.total_elems,
                events_emitted: self.next_seq,
                open_events: 0,
                now,
                sources_ended: self.merge.sources_ended(),
                sources_total: self.merge.source_count(),
                max_latency_seen: self.max_latency_seen,
                checkpoints: self.checkpoints,
                drained: true,
            };
        }
        (summary, report)
    }
}

/// The finish-path adapter: an accumulator that forwards every event to
/// the analytics pipeline while capturing it as a [`SequencedEvent`].
struct SequencingTee<'a> {
    pipeline: &'a mut AnalyticsPipeline,
    emitted: &'a mut Vec<SequencedEvent>,
    next_seq: &'a mut u64,
    emitted_at: SimTime,
}

impl EventAccumulator for SequencingTee<'_> {
    type Output = ();

    fn observe(&mut self, event: &BlackholeEvent) {
        self.pipeline.observe(event);
        let seq = *self.next_seq;
        *self.next_seq += 1;
        self.emitted.push(SequencedEvent {
            seq,
            emitted_at: self.emitted_at,
            event: event.clone(),
        });
    }

    fn observe_visibility(
        &mut self,
        per_dataset: &std::collections::BTreeMap<DataSource, bh_core::DatasetVisibility>,
    ) {
        self.pipeline.observe_visibility(per_dataset);
    }

    fn merge(&mut self, _other: Self) {
        unreachable!("the finish tee never runs sharded");
    }

    fn finalize(self) {}
}
