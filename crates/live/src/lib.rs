//! # bh-live — near-real-time blackhole detection service
//!
//! The paper's inference is a run-to-completion study; this crate turns
//! the same machinery into a long-running daemon with freshness
//! guarantees (the CommunityWatch framing: community-based signals as a
//! *live* anomaly detector):
//!
//! * [`LiveFleet`] ([`daemon`]) tails growing per-collector MRT
//!   archives through `bh_routing::live`, drives one
//!   [`InferenceSession`](bh_core::InferenceSession) incrementally,
//!   assigns every closed [`BlackholeEvent`](bh_core::BlackholeEvent) a
//!   [sequence number](bh_core::SequencedEvent) in deterministic
//!   closure order, and checkpoints periodically so a crashed daemon
//!   resumes without gaps or duplicates.
//! * [`QueryRunner`] ([`query`]) answers `status` / `report` /
//!   `events-since` queries over shared state the daemon publishes —
//!   incremental [`AnalyticsReport`](bh_core::AnalyticsReport)
//!   snapshots between checkpoints, a bounded ring of recent events,
//!   and liveness counters.
//! * [`wire`] is the thin line-protocol front-end over a
//!   [`QueryRunner`] (one command per line, `ok`/`err` replies).
//! * [`LiveNode`] ([`node`]) is the container-style harness that boots
//!   the whole service against a replayed workload on a
//!   [`VirtualClock`](bh_workloads::VirtualClock) — what the e2e tests,
//!   benches and examples drive.
//!
//! ## Latency semantics
//!
//! An event's *emission latency* is `emitted_at − event.end`: the time
//! between the update that closed the event arriving at the collector
//! and the daemon publishing it. A deployment bounds this with
//! [`LiveFleetConfig::max_latency`]; the daemon satisfies the bound
//! whenever it polls at least once per `max_latency` and feeds advance
//! their watermarks with the clock (a due element is delivered on the
//! first poll after its watermark clears — see
//! [`bh_routing::LiveMerge`]).

pub mod daemon;
pub mod node;
pub mod query;
pub mod wire;

pub use daemon::{LiveCheckpoint, LiveFleet, LiveFleetConfig};
pub use node::LiveNode;
pub use query::{LiveStatus, QueryRunner};
pub use wire::{handle_command, serve_connection};
