//! `LiveNode`: the whole service in one box, on a virtual clock.
//!
//! The container-style harness the e2e suite, benches and examples
//! boot: a [`ReplayFeed`] paces a recorded [`CollectorArchive`] fleet, a
//! [`VirtualClock`] drives time in fixed quanta, and a [`LiveFleet`]
//! daemon consumes the growing archives. One [`tick`](LiveNode::tick)
//! is one quantum of simulated wall time; [`kill`](LiveNode::kill) and
//! [`LiveNode::resume`] model a crash and supervised restart.

use std::sync::Arc;

use bh_bgp_types::time::{SimDuration, SimTime};
use bh_core::{AnalyticsPipeline, AnalyticsReport, SessionBuilder, StreamSummary};
use bh_routing::live::Clock;
use bh_workloads::{CollectorArchive, ReplayFeed, VirtualClock};

use crate::daemon::{LiveCheckpoint, LiveFleet, LiveFleetConfig};
use crate::query::QueryRunner;

/// A booted node: feed + clock + daemon. See the [module docs](self).
pub struct LiveNode {
    feed: ReplayFeed,
    daemon: LiveFleet,
    clock: VirtualClock,
    quantum: SimDuration,
}

impl LiveNode {
    /// Boot the full node: build the replay lanes from `archives`, start
    /// the clock at `start`, and bring up a fresh daemon.
    pub fn boot(
        builder: SessionBuilder,
        pipeline: AnalyticsPipeline,
        archives: &[CollectorArchive],
        start: SimTime,
        quantum: SimDuration,
        config: LiveFleetConfig,
    ) -> Self {
        let (feed, handles) = ReplayFeed::new(archives);
        let clock = VirtualClock::new(start);
        let daemon = LiveFleet::new(builder, pipeline, &handles, Arc::new(clock.clone()), config);
        LiveNode { feed, daemon, clock, quantum }
    }

    /// Boot a successor node from a crashed predecessor's checkpoint.
    /// The replay starts over from the same `archives` (a real
    /// supervisor re-opens the same files); the daemon skips everything
    /// the checkpoint says was delivered. The clock starts at `start` —
    /// pass the predecessor's time of death for realistic replays.
    pub fn resume(
        builder: SessionBuilder,
        archives: &[CollectorArchive],
        start: SimTime,
        quantum: SimDuration,
        config: LiveFleetConfig,
        checkpoint: LiveCheckpoint,
    ) -> Self {
        let (feed, handles) = ReplayFeed::new(archives);
        let clock = VirtualClock::new(start);
        let daemon =
            LiveFleet::resume(builder, &handles, Arc::new(clock.clone()), config, checkpoint);
        LiveNode { feed, daemon, clock, quantum }
    }

    /// One quantum: pump every record now due into the archives, step
    /// the daemon, advance the clock. Returns the elements ingested.
    pub fn tick(&mut self) -> u64 {
        self.feed.pump(self.clock.now());
        let ingested = self.daemon.step();
        self.clock.advance(self.quantum);
        ingested
    }

    /// Fully replayed and fully drained?
    pub fn done(&self) -> bool {
        self.feed.finished() && self.daemon.drained()
    }

    /// Run ticks until [`done`](LiveNode::done) (bounded by the replay
    /// length — every tick advances the clock).
    pub fn run_to_completion(&mut self) {
        while !self.done() {
            self.tick();
        }
    }

    /// The node's clock (shared with the daemon).
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Read-side query handle (works across threads).
    pub fn query(&self) -> QueryRunner {
        self.daemon.query_runner()
    }

    /// Crash the node: drop the daemon mid-stream and hand back its most
    /// recent checkpoint (`None` if none was taken yet). The feed and
    /// its archives die with the node, exactly like a host failure.
    pub fn kill(self) -> Option<LiveCheckpoint> {
        self.daemon.last_checkpoint()
    }

    /// Finish the drained stream; see [`LiveFleet::finish`].
    pub fn finish(self) -> (StreamSummary, AnalyticsReport) {
        self.daemon.finish()
    }
}
