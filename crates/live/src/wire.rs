//! Line-protocol front-end over a [`QueryRunner`].
//!
//! One command per line, one `ok`/`err` reply (possibly multi-line,
//! with a count on the first line so framers know how much to read):
//!
//! ```text
//! -> status
//! <- ok status elems=1024 events=3 open=1 now=1472688000 sources=5/6 \
//!        max_latency=17 checkpoints=2 drained=false
//! -> report
//! <- ok report events=3 prefixes=2 providers=2 users=2 periods=2
//! -> events-since 1
//! <- ok events 2
//! <- event seq=1 emitted_at=1472688000 prefix=10.0.0.1/32 start=... end=...
//! <- event seq=2 ...
//! -> quit
//! <- ok bye
//! ```
//!
//! The protocol is transport-agnostic: [`serve_connection`] runs it
//! over any `BufRead`/`Write` pair (a TCP stream, a Unix socket, an
//! in-memory pipe in tests).

use std::fmt::Write as _;
use std::io::{BufRead, Write};

use bh_core::SequencedEvent;

use crate::query::QueryRunner;

/// Render one event line for `events-since`.
fn event_line(se: &SequencedEvent) -> String {
    let end = se.event.end.map_or_else(|| "open".to_owned(), |e| e.unix().to_string());
    format!(
        "event seq={} emitted_at={} prefix={} start={} end={} peers={} providers={} latency={}",
        se.seq,
        se.emitted_at.unix(),
        se.event.prefix,
        se.event.start.unix(),
        end,
        se.event.peer_count,
        se.event.providers.len(),
        se.latency().as_secs(),
    )
}

/// Execute one command line and return the full reply (no trailing
/// newline; multi-line replies embed `\n`).
pub fn handle_command(runner: &QueryRunner, line: &str) -> String {
    let mut parts = line.split_whitespace();
    match parts.next() {
        Some("status") => {
            let s = runner.status();
            format!(
                "ok status elems={} events={} open={} now={} sources={}/{} max_latency={} \
                 checkpoints={} drained={}",
                s.elems,
                s.events_emitted,
                s.open_events,
                s.now.unix(),
                s.sources_ended,
                s.sources_total,
                s.max_latency_seen.as_secs(),
                s.checkpoints,
                s.drained,
            )
        }
        Some("report") => match runner.report() {
            Some(r) => format!(
                "ok report events={} prefixes={} providers={} users={} periods={}",
                r.durations.len(),
                r.blackholed_prefixes.len(),
                r.prefixes_per_provider.len(),
                r.prefixes_per_user.len(),
                r.periods.len(),
            ),
            None => "err no-report-yet".to_owned(),
        },
        Some("events-since") => match parts.next().map(str::parse::<u64>) {
            Some(Ok(since)) => {
                let events = runner.events_since(since);
                let mut reply = format!("ok events {}", events.len());
                for se in &events {
                    write!(reply, "\n{}", event_line(se)).expect("string write");
                }
                reply
            }
            _ => "err usage: events-since <seq>".to_owned(),
        },
        Some(other) => format!("err unknown command: {other}"),
        None => "err empty command".to_owned(),
    }
}

/// Serve commands line by line until EOF or `quit`. Replies are flushed
/// after every command.
pub fn serve_connection<R: BufRead, W: Write>(
    runner: &QueryRunner,
    reader: R,
    mut writer: W,
) -> std::io::Result<()> {
    for line in reader.lines() {
        let line = line?;
        if line.trim() == "quit" {
            writeln!(writer, "ok bye")?;
            writer.flush()?;
            return Ok(());
        }
        writeln!(writer, "{}", handle_command(runner, &line))?;
        writer.flush()?;
    }
    Ok(())
}
