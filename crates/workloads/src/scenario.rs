//! The end-to-end scenario driver: attack calendar → operator reactions →
//! BGP simulation → collector element stream + ground truth.

use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use bh_bgp_types::asn::Asn;
use bh_bgp_types::community::CommunitySet;
use bh_bgp_types::prefix::Ipv4Prefix;
use bh_bgp_types::time::{SimDuration, SimTime};
use bh_routing::{
    AnnounceScope, Announcement, BgpElem, BgpSimulator, CollectorDeployment, EngineMode, RunStats,
};
use bh_topology::{NetworkType, PolicyTable, Tier, Topology};

use crate::attacks::{AttackCalendar, SPIKES};
use crate::reaction::{
    capable_providers, plan_reaction, Action, GroundTruthEvent, ReactionConfig, TimedAction,
};

/// Scenario configuration.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// RNG seed (independent of topology/collector seeds).
    pub seed: u64,
    /// The attack calendar.
    pub calendar: AttackCalendar,
    /// Reaction tunables.
    pub reaction: ReactionConfig,
    /// Fraction of potential users already using blackholing at window
    /// start (the paper's user population grew ×4 → ~0.25).
    pub initial_adoption: f64,
    /// How many base prefixes to announce at start (they carry the
    /// providers' tag communities and anchor the Fig. 2 census).
    pub base_prefix_sample: usize,
    /// Mean attacked hosts per attack.
    pub attack_intensity: f64,
    /// Include the Fig. 4(c) named spikes (incl. the spike-A
    /// misconfiguration).
    pub include_spikes: bool,
}

impl ScenarioConfig {
    /// A short test scenario: `days` days at the start of the study
    /// window, modest rates.
    pub fn short(seed: u64, days: u64, attacks_per_day: f64) -> Self {
        let mut calendar = AttackCalendar::study(attacks_per_day);
        calendar.window_end =
            SimTime::from_unix((calendar.window_start.day_index() + days) * 86_400);
        ScenarioConfig {
            seed,
            calendar,
            reaction: ReactionConfig::default(),
            initial_adoption: 0.6,
            base_prefix_sample: 40,
            attack_intensity: 1.5,
            include_spikes: false,
        }
    }

    /// The full study window (Dec 2014 – Mar 2017) at a configurable
    /// daily attack rate.
    pub fn study(seed: u64, attacks_per_day: f64) -> Self {
        ScenarioConfig {
            seed,
            calendar: AttackCalendar::study(attacks_per_day),
            reaction: ReactionConfig::default(),
            initial_adoption: 0.25,
            base_prefix_sample: 120,
            attack_intensity: 1.5,
            include_spikes: true,
        }
    }

    /// The visibility window (Aug 2016 – Mar 2017): Tables 3/4, Figs 5–8.
    pub fn visibility_window(seed: u64, attacks_per_day: f64) -> Self {
        let mut config = Self::study(seed, attacks_per_day);
        config.calendar.window_start = bh_bgp_types::time::study::visibility_start();
        config.initial_adoption = 0.8; // adoption had mostly happened
        config
    }

    /// The `Massive` tier: a short, low-rate calendar sized for the
    /// CAIDA-scale (~75k-AS) topology, where every announcement floods
    /// the whole graph. Pair with
    /// [`bh_topology::TopologyConfig::massive`] and the phased engine
    /// via [`run_with_engine`].
    pub fn massive(seed: u64) -> Self {
        let mut config = Self::short(seed, 1, 2.0);
        config.base_prefix_sample = 8;
        config
    }
}

/// Scenario output: the collector stream and the ground truth to validate
/// inference against.
#[derive(Debug)]
pub struct ScenarioOutput {
    /// Every element observed at every collector session, time-ordered.
    pub elems: Vec<BgpElem>,
    /// Ground-truth blackholing reactions.
    pub ground_truth: Vec<GroundTruthEvent>,
    /// Days simulated.
    pub days: u64,
    /// Total announcements injected.
    pub announcements: u64,
    /// Per-reason / per-extension rejection accounting from the run.
    pub run_stats: RunStats,
}

impl ScenarioOutput {
    /// The collector stream as an [`bh_routing::ElemSource`] — the
    /// simulator-backed producer for streaming inference sessions.
    pub fn elem_source(&self) -> bh_routing::SliceSource<'_> {
        bh_routing::SliceSource::new(&self.elems)
    }
}

/// Run a scenario on a fresh simulator over `topology`.
pub fn run(
    topology: &Topology,
    deployment: CollectorDeployment,
    config: &ScenarioConfig,
) -> ScenarioOutput {
    run_inner(topology, deployment, config, None, EngineMode::Queue)
}

/// [`run`], with a per-AS [`PolicyTable`] installed on the simulator
/// before any announcement. An empty table installs nothing and is
/// property-tested bit-identical to [`run`].
pub fn run_with_policies(
    topology: &Topology,
    deployment: CollectorDeployment,
    config: &ScenarioConfig,
    policies: &PolicyTable,
) -> ScenarioOutput {
    run_inner(topology, deployment, config, Some(policies), EngineMode::Queue)
}

/// [`run`], selecting the propagation engine (and optionally a policy
/// table). Both engines produce bit-identical output; `Phased` is the
/// fast path at `Massive` scale.
pub fn run_with_engine(
    topology: &Topology,
    deployment: CollectorDeployment,
    config: &ScenarioConfig,
    policies: Option<&PolicyTable>,
    engine: EngineMode,
) -> ScenarioOutput {
    run_inner(topology, deployment, config, policies, engine)
}

fn run_inner(
    topology: &Topology,
    deployment: CollectorDeployment,
    config: &ScenarioConfig,
    policies: Option<&PolicyTable>,
    engine: EngineMode,
) -> ScenarioOutput {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut sim = BgpSimulator::new(topology, deployment, config.seed ^ 0x5151);
    sim.set_engine_mode(engine);
    if let Some(table) = policies {
        sim.install_policies(table);
    }
    let mut truths: Vec<GroundTruthEvent> = Vec::new();
    let mut actions: Vec<TimedAction> = Vec::new();

    // ---- candidate users with adoption dates ---------------------------
    // Content networks are over-represented among blackholing users
    // (18% of users originate 43% of blackholed prefixes).
    let mut users: Vec<(Asn, NetworkType)> = topology
        .ases()
        .filter(|i| i.tier == Tier::Stub || i.tier == Tier::Transit)
        .filter(|i| i.network_type != NetworkType::Ixp)
        .filter(|i| !i.prefixes.is_empty())
        .filter(|i| !capable_providers(topology, i.asn).is_empty())
        .map(|i| (i.asn, i.network_type))
        .collect();
    users.sort_by_key(|(asn, _)| *asn);
    let total_days = config.calendar.days().max(1);
    let adoption_day: std::collections::BTreeMap<Asn, u64> = users
        .iter()
        .map(|(asn, _)| {
            let day = if rng.gen_bool(config.initial_adoption) {
                0
            } else {
                rng.gen_range(0..total_days)
            };
            (*asn, day)
        })
        .collect();
    let weights: Vec<u32> = users
        .iter()
        .map(|(_, ty)| match ty {
            NetworkType::Content => 6,
            NetworkType::TransitAccess => 2,
            NetworkType::Enterprise => 2,
            NetworkType::EducationResearchNfp => 1,
            _ => 1,
        })
        .collect();
    let picker = WeightedIndex::new(&weights).expect("non-empty user pool");

    // ---- base prefixes (census anchoring) --------------------------------
    let mut base: Vec<(Asn, Ipv4Prefix)> =
        topology.ases().flat_map(|i| i.prefixes.iter().map(move |p| (i.asn, *p))).collect();
    base.sort();
    let base_sample: Vec<(Asn, Ipv4Prefix)> = base
        .choose_multiple(&mut rng, config.base_prefix_sample.min(base.len()))
        .copied()
        .collect();
    for (origin, prefix) in &base_sample {
        // The origin's providers tag customer routes; carry a sample of
        // those tags so the census sees "other" communities on coarse
        // prefixes (Fig. 2's red-cross population).
        let mut communities = CommunitySet::new();
        for p in topology.providers_of(*origin) {
            if let Some(info) = topology.as_info(p) {
                for c in info.tag_communities.iter().take(2) {
                    communities.insert(*c);
                }
            }
        }
        actions.push(TimedAction {
            time: config.calendar.window_start,
            action: Action::Announce(Announcement::simple(*origin, *prefix, communities)),
            truth: None,
        });
    }

    // ---- attacks ---------------------------------------------------------
    for day in 0..total_days {
        let n_attacks = config.calendar.sample_attacks(&mut rng, day);
        let day_start = config.calendar.day(day);
        for _ in 0..n_attacks {
            let (user, _) = users[picker.sample(&mut rng)];
            if adoption_day[&user] > day {
                continue; // victim has not adopted blackholing yet
            }
            let start = day_start + SimDuration::secs(rng.gen_range(0..86_000));
            let duration = SimDuration::mins(rng.gen_range(5..240));
            let reaction_actions = plan_reaction(
                &mut rng,
                topology,
                &config.reaction,
                user,
                start,
                duration,
                config.attack_intensity,
                &mut truths,
            );
            actions.extend(reaction_actions);
        }

        // Spike A: the accidental full-table blackholing (<2 minutes).
        if config.include_spikes {
            if let Some(spike) = config.calendar.spike_on(day) {
                if spike.is_misconfiguration
                    && config.calendar.day(day).ymd() == (spike.year, spike.month, spike.day)
                {
                    actions.extend(plan_accident(&mut rng, topology, day_start, &mut truths));
                }
            }
        }
    }

    // ---- execute ----------------------------------------------------------
    actions.sort_by_key(|a| a.time.unix());
    let announcements =
        actions.iter().filter(|a| matches!(a.action, Action::Announce(_))).count() as u64;
    for timed in &actions {
        match &timed.action {
            Action::Announce(a) => {
                let outcome = sim.announce(timed.time, a);
                if let Some(idx) = timed.truth {
                    for asn in outcome.accepted_by {
                        if !truths[idx].accepted.contains(&asn) {
                            truths[idx].accepted.push(asn);
                        }
                    }
                }
            }
            Action::Withdraw { origin, prefix } => {
                sim.withdraw(timed.time, *origin, *prefix);
            }
        }
    }

    ScenarioOutput {
        run_stats: sim.run_stats().clone(),
        elems: sim.drain_elems(),
        ground_truth: truths,
        days: total_days,
        announcements,
    }
}

/// Spike A: a European academic network accidentally blackholes its
/// entire routing table for under two minutes.
fn plan_accident(
    rng: &mut StdRng,
    topology: &Topology,
    day_start: SimTime,
    truths: &mut Vec<GroundTruthEvent>,
) -> Vec<TimedAction> {
    let mut actions = Vec::new();
    // Pick an education network in Europe with capable providers.
    let candidate = topology
        .ases()
        .find(|i| {
            i.network_type == NetworkType::EducationResearchNfp
                && !i.prefixes.is_empty()
                && !capable_providers(topology, i.asn).is_empty()
        })
        .or_else(|| {
            topology
                .ases()
                .find(|i| !i.prefixes.is_empty() && !capable_providers(topology, i.asn).is_empty())
        });
    let Some(info) = candidate else { return actions };
    let providers = capable_providers(topology, info.asn);
    let mut communities = CommunitySet::new();
    for p in &providers {
        for c in &p.communities {
            communities.insert(*c);
        }
    }
    let start = day_start + SimDuration::hours(10);
    let end = start + SimDuration::secs(rng.gen_range(60..115));

    // "Entire routing table": every constituent /24 of its space (capped).
    let mut count = 0;
    for allocation in &info.prefixes {
        let slices = 1u64 << (24u8.saturating_sub(allocation.length()) as u32);
        for k in 0..slices.min(160) {
            let Some(addr) = allocation.nth_addr(k * 256) else { break };
            let Ok(p24) = Ipv4Prefix::new(addr, 24) else { break };
            let truth_index = truths.len();
            truths.push(GroundTruthEvent {
                prefix: p24,
                user: info.asn,
                requested: providers.iter().map(|p| p.provider).collect(),
                accepted: Vec::new(),
                phases: vec![(start, end)],
                bundled: true,
                no_export: false,
                irr_registered: true,
                implicit_withdraw: false,
            });
            actions.push(TimedAction {
                time: start,
                action: Action::Announce(Announcement {
                    origin: info.asn,
                    prefix: p24,
                    communities: communities.clone(),
                    scope: AnnounceScope::AllNeighbors,
                    irr_registered: true,
                    prepend: 1,
                }),
                truth: Some(truth_index),
            });
            actions.push(TimedAction {
                time: end,
                action: Action::Withdraw { origin: info.asn, prefix: p24 },
                truth: Some(truth_index),
            });
            count += 1;
        }
    }
    let _ = count;
    actions
}

/// The named spikes, re-exported for reporting.
pub fn spike_table() -> &'static [crate::attacks::Spike] {
    SPIKES
}

#[cfg(test)]
mod tests {
    use bh_routing::{deploy, CollectorConfig, DataSource, ElemType};
    use bh_topology::{TopologyBuilder, TopologyConfig};

    use super::*;

    fn run_short(seed: u64, days: u64, rate: f64) -> ScenarioOutput {
        let t = TopologyBuilder::new(TopologyConfig::tiny(55)).build();
        let d = deploy(&t, &CollectorConfig::tiny(6));
        run(&t, d, &ScenarioConfig::short(seed, days, rate))
    }

    #[test]
    fn scenario_produces_elems_and_truth() {
        let out = run_short(1, 3, 6.0);
        assert!(out.announcements > 0);
        assert!(!out.ground_truth.is_empty(), "no blackholing events generated");
        assert!(!out.elems.is_empty(), "collectors saw nothing");
        assert_eq!(out.days, 3);
    }

    #[test]
    fn scenario_is_deterministic() {
        let a = run_short(42, 2, 5.0);
        let b = run_short(42, 2, 5.0);
        assert_eq!(a.elems.len(), b.elems.len());
        assert_eq!(a.ground_truth.len(), b.ground_truth.len());
        for (x, y) in a.ground_truth.iter().zip(&b.ground_truth) {
            assert_eq!(x.prefix, y.prefix);
            assert_eq!(x.phases, y.phases);
        }
    }

    #[test]
    fn elems_are_time_ordered_per_execution() {
        let out = run_short(7, 2, 5.0);
        for w in out.elems.windows(2) {
            assert!(w[0].time <= w[1].time, "elems out of order");
        }
    }

    #[test]
    fn some_blackholes_are_accepted() {
        let out = run_short(3, 3, 8.0);
        let accepted = out.ground_truth.iter().filter(|t| !t.accepted.is_empty()).count();
        assert!(
            accepted * 3 > out.ground_truth.len(),
            "too few accepted: {accepted}/{}",
            out.ground_truth.len()
        );
    }

    #[test]
    fn tagged_elems_reach_collectors() {
        let out = run_short(5, 3, 8.0);
        let tagged = out
            .elems
            .iter()
            .filter(|e| e.elem_type == ElemType::Announce && !e.communities.is_empty())
            .count();
        assert!(tagged > 0, "no tagged announcements visible");
        // At least two platforms observe something.
        let datasets: std::collections::BTreeSet<DataSource> =
            out.elems.iter().map(|e| e.dataset).collect();
        assert!(datasets.len() >= 2, "only {datasets:?}");
    }

    #[test]
    fn ground_truth_phases_inside_window() {
        let out = run_short(9, 4, 5.0);
        let window_start = AttackCalendar::study(1.0).window_start;
        for truth in &out.ground_truth {
            assert!(truth.start() >= window_start);
            assert!(truth.end() > truth.start());
        }
    }
}
