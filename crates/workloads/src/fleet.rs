//! Per-collector MRT archive generation — the bridge from a simulated
//! scenario to a realistic multi-collector ingestion workload.
//!
//! Real pipelines do not receive one merged stream: they download one
//! updates archive *per collector* (RIS `rrc00`–`rrc23`, Route Views
//! `route-views2`, …) and merge at read time. This module partitions a
//! [`ScenarioOutput`] the same way: one [`CollectorArchive`] per
//! `(dataset, collector)` pair of the deployment, serialized with
//! [`write_updates`] and named with [`archive_stamp`], so a synthetic
//! RIS + RV + PCH + CDN fleet can be written out and re-ingested end to
//! end through a [`CollectorFleet`].

use std::io::Cursor;

use bh_mrt::MrtError;
use bh_routing::archive::{archive_stamp, split_by_collector, write_updates};
use bh_routing::{BgpElem, CollectorDeployment, CollectorFleet, DataSource, FleetConfig};
use bytes::Bytes;

use crate::scenario::ScenarioOutput;

/// One serialized per-collector updates archive.
#[derive(Debug, Clone)]
pub struct CollectorArchive {
    /// Platform the archive belongs to.
    pub dataset: DataSource,
    /// Collector id within the platform.
    pub collector: u16,
    /// BGPStream-style archive name
    /// (`<platform>.rc<collector>.updates.<stamp>.mrt`).
    pub name: String,
    /// The MRT bytes, refcounted so fleet reader threads share one
    /// allocation per archive instead of copying it.
    pub bytes: Bytes,
    /// Elements serialized into the archive.
    pub elems: u64,
}

impl CollectorArchive {
    /// A fresh reader over the archive bytes, suitable for
    /// [`CollectorFleet::add_archive`]. The clone is a refcount bump,
    /// not a copy; prefer [`CollectorFleet::add_archive_bytes`] with
    /// `bytes.clone()` directly for the zero-copy slicing path.
    pub fn reader(&self) -> Cursor<Bytes> {
        Cursor::new(self.bytes.clone())
    }
}

fn archive_of(
    dataset: DataSource,
    collector: u16,
    elems: &[BgpElem],
) -> Result<CollectorArchive, MrtError> {
    let mut bytes = Vec::new();
    write_updates(&mut bytes, elems)?;
    let stamp = elems.first().map(|e| archive_stamp(e.time)).unwrap_or_else(|| "empty".into());
    Ok(CollectorArchive {
        dataset,
        collector,
        name: format!("{}.rc{collector:02}.updates.{stamp}.mrt", dataset.label().to_lowercase()),
        bytes: Bytes::from(bytes),
        elems: elems.len() as u64,
    })
}

/// Partition an element stream into per-collector archives. Only
/// collectors that observed something appear; see
/// [`fleet_archives_for`] to cover a whole deployment including silent
/// collectors.
pub fn fleet_archives(elems: &[BgpElem]) -> Result<Vec<CollectorArchive>, MrtError> {
    split_by_collector(elems)
        .into_iter()
        .map(|((dataset, collector), bucket)| archive_of(dataset, collector, &bucket))
        .collect()
}

/// Partition an element stream into one archive per `(dataset,
/// collector)` pair of `deployment` — silent collectors yield empty
/// archives, exactly like a real quiet interval. The partition is
/// lossless: elements labelled with a pair the deployment does not
/// know (a stream from an older or foreign deployment) still get their
/// archive rather than being dropped.
pub fn fleet_archives_for(
    deployment: &CollectorDeployment,
    elems: &[BgpElem],
) -> Result<Vec<CollectorArchive>, MrtError> {
    let buckets = split_by_collector(elems);
    let mut ids = deployment.collector_ids();
    ids.extend(buckets.keys().copied());
    ids.into_iter()
        .map(|(dataset, collector)| {
            let bucket = buckets.get(&(dataset, collector)).map(Vec::as_slice).unwrap_or(&[]);
            archive_of(dataset, collector, bucket)
        })
        .collect()
}

/// Assemble a [`CollectorFleet`] over a set of archives (strict
/// decoding, default tunables).
pub fn fleet_of(archives: &[CollectorArchive]) -> CollectorFleet {
    fleet_with_config(archives, FleetConfig::default())
}

/// Assemble a [`CollectorFleet`] over a set of archives with explicit
/// tunables.
pub fn fleet_with_config(archives: &[CollectorArchive], config: FleetConfig) -> CollectorFleet {
    let mut fleet = CollectorFleet::with_config(config);
    for archive in archives {
        fleet.add_archive_bytes(archive.bytes.clone(), archive.dataset, archive.collector);
    }
    fleet
}

impl ScenarioOutput {
    /// The collector stream as per-collector MRT archives — the input
    /// shape of a [`CollectorFleet`] ingestion run.
    pub fn fleet_archives(&self) -> Result<Vec<CollectorArchive>, MrtError> {
        fleet_archives(&self.elems)
    }
}

#[cfg(test)]
mod tests {
    use bh_routing::{collect_source, deploy, merge_streams, CollectorConfig};
    use bh_topology::{TopologyBuilder, TopologyConfig};

    use super::*;
    use crate::scenario::{run, ScenarioConfig};

    fn scenario() -> (CollectorDeployment, ScenarioOutput) {
        let t = TopologyBuilder::new(TopologyConfig::tiny(55)).build();
        let d = deploy(&t, &CollectorConfig::tiny(6));
        let output = run(&t, d.clone(), &ScenarioConfig::short(3, 3, 6.0));
        (d, output)
    }

    #[test]
    fn archives_partition_the_stream_losslessly() {
        let (_, output) = scenario();
        let archives = output.fleet_archives().expect("serialization succeeds");
        assert!(archives.len() >= 2, "expected several collectors");
        let total: u64 = archives.iter().map(|a| a.elems).sum();
        assert_eq!(total, output.elems.len() as u64);
        for archive in &archives {
            assert!(archive.name.contains("updates."));
            assert!(archive.name.starts_with(&archive.dataset.label().to_lowercase()));
            assert_eq!(archive.elems == 0, archive.bytes.is_empty());
        }
    }

    #[test]
    fn deployment_archives_include_silent_collectors() {
        let (deployment, output) = scenario();
        let archives = fleet_archives_for(&deployment, &output.elems).expect("serialize");
        assert_eq!(archives.len(), deployment.collector_ids().len());
        let observed = output.fleet_archives().unwrap();
        assert!(archives.len() >= observed.len());
        let total: u64 = archives.iter().map(|a| a.elems).sum();
        assert_eq!(total, output.elems.len() as u64);
    }

    #[test]
    fn deployment_archives_keep_foreign_collector_elems() {
        // Elements labelled with a pair the deployment never deployed
        // (e.g. a stream recorded under an older deployment) must not
        // be silently dropped.
        let (deployment, output) = scenario();
        let mut elems = output.elems.clone();
        let foreign = 999u16;
        assert!(!deployment.collector_ids().contains(&(DataSource::Ris, foreign)));
        elems[0].dataset = DataSource::Ris;
        elems[0].collector = foreign;
        let archives = fleet_archives_for(&deployment, &elems).expect("serialize");
        let total: u64 = archives.iter().map(|a| a.elems).sum();
        assert_eq!(total, elems.len() as u64, "foreign-labelled elems were dropped");
        assert!(archives
            .iter()
            .any(|a| a.dataset == DataSource::Ris && a.collector == foreign && a.elems == 1));
    }

    #[test]
    fn fleet_reingestion_reproduces_the_merged_stream() {
        let (deployment, output) = scenario();
        let archives = fleet_archives_for(&deployment, &output.elems).expect("serialize");
        let mut stream = fleet_of(&archives).start();
        let streamed = collect_source(&mut stream);
        let report = stream.finish();
        assert!(report.is_clean());
        assert_eq!(report.total_elems(), output.elems.len() as u64);

        let expected =
            merge_streams(split_by_collector(&output.elems).into_values().collect::<Vec<_>>());
        assert_eq!(streamed.len(), expected.len());
        // MRT normalizes the NEXT_HOP (absent → peer address), so compare
        // everything the inference consumes.
        for (got, want) in streamed.iter().zip(&expected) {
            assert_eq!(got.time, want.time);
            assert_eq!(got.dataset, want.dataset);
            assert_eq!(got.collector, want.collector);
            assert_eq!(got.peer_asn, want.peer_asn);
            assert_eq!(got.peer_ip, want.peer_ip);
            assert_eq!(got.elem_type, want.elem_type);
            assert_eq!(got.prefix, want.prefix);
            assert_eq!(got.as_path, want.as_path);
            assert_eq!(got.communities, want.communities);
        }
    }
}
