//! # bh-workloads — scenario drivers
//!
//! Generates the *activity* the paper measures: a DDoS attack calendar
//! spanning December 2014 – March 2017 with the Fig. 4(c) headline spikes
//! ([`attacks`]), an operator reaction model reproducing the §9 practices
//! (ON/OFF probing, multi-provider blackholing, community bundling,
//! NO_EXPORT compliance, misconfigurations — [`reaction`]), and the
//! end-to-end driver that feeds everything through the BGP simulator and
//! returns the collector element stream together with per-event ground
//! truth ([`scenario`]), plus per-collector MRT archive partitioning so
//! a synthetic collector fleet can be written out and re-ingested
//! ([`fleet`]).
//!
//! Ground truth is what the original study never had: every inferred
//! event can be checked against the reaction that actually caused it.

pub mod adversarial;
pub mod attacks;
pub mod fleet;
pub mod live;
pub mod reaction;
pub mod scenario;

pub use adversarial::{run_adversarial, AdversarialConfig, AdversarialOutput};
pub use attacks::{mirai_era_start, poisson, AttackCalendar, Spike, SPIKES};
pub use fleet::{
    fleet_archives, fleet_archives_for, fleet_of, fleet_with_config, CollectorArchive,
};
pub use live::{record_spans, ReplayFeed, ScriptedFeed, VirtualClock};
pub use reaction::{
    capable_providers, plan_reaction, Action, CapableProvider, GroundTruthEvent, ReactionConfig,
    TimedAction,
};
pub use scenario::{
    run, run_with_engine, run_with_policies, spike_table, ScenarioConfig, ScenarioOutput,
};
