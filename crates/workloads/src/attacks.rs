//! The DDoS attack calendar driving blackholing activity.
//!
//! §6 of the paper correlates blackholing spikes with documented attacks;
//! this module reproduces that timeline: a growing Poisson-like background
//! (blackholed prefixes grew ×6 between Dec 2014 and Mar 2017), the
//! headline spikes A–F, and the elevated Mirai era from September 2016.

use rand::Rng;

use bh_bgp_types::time::{SimDuration, SimTime};

/// A named spike in the study window (Fig. 4(c) annotations).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Spike {
    /// Annotation letter in the figure.
    pub label: char,
    /// What happened.
    pub description: &'static str,
    /// Day of the spike.
    pub year: i64,
    /// Month.
    pub month: u32,
    /// Day of month.
    pub day: u32,
    /// Multiplier on the day's background attack count.
    pub intensity: f64,
    /// How many days of elevated activity.
    pub duration_days: u64,
    /// Spike A is a *misconfiguration*, not an attack: a European
    /// academic network blackholed its entire table for <2 minutes.
    pub is_misconfiguration: bool,
}

/// The annotated spikes of Fig. 4(c).
pub const SPIKES: &[Spike] = &[
    Spike {
        label: 'A',
        description: "accidental blackholing of a full routing table (academic network)",
        year: 2016,
        month: 4,
        day: 18,
        intensity: 1.0,
        duration_days: 1,
        is_misconfiguration: true,
    },
    Spike {
        label: 'B',
        description: "amplification attack against NS1 (major DNS provider)",
        year: 2016,
        month: 5,
        day: 16,
        intensity: 4.0,
        duration_days: 1,
        is_misconfiguration: false,
    },
    Spike {
        label: 'C',
        description: "DDoS against news sites during the Turkish coup attempt",
        year: 2016,
        month: 7,
        day: 15,
        intensity: 3.5,
        duration_days: 2,
        is_misconfiguration: false,
    },
    Spike {
        label: 'D',
        description: "540 Gbps attacks on the Rio Olympics",
        year: 2016,
        month: 8,
        day: 22,
        intensity: 4.5,
        duration_days: 2,
        is_misconfiguration: false,
    },
    Spike {
        label: 'E',
        description: "\"Krebs on Security\" record DDoS (Mirai)",
        year: 2016,
        month: 9,
        day: 20,
        intensity: 6.0,
        duration_days: 4,
        is_misconfiguration: false,
    },
    Spike {
        label: 'F',
        description: "attack on Liberia's Internet infrastructure (Mirai)",
        year: 2016,
        month: 10,
        day: 31,
        intensity: 5.0,
        duration_days: 2,
        is_misconfiguration: false,
    },
];

/// Start of the elevated Mirai era ("at the beginning of September 2016
/// we noticed a significant increase … that lasted for months").
pub fn mirai_era_start() -> SimTime {
    SimTime::from_ymd(2016, 9, 1)
}

/// The attack-intensity model.
#[derive(Debug, Clone)]
pub struct AttackCalendar {
    /// Study window start.
    pub window_start: SimTime,
    /// Study window end.
    pub window_end: SimTime,
    /// Mean background attacks per day at window start.
    pub base_rate: f64,
    /// Growth factor across the window (the paper's ×6 for prefixes).
    pub growth: f64,
}

impl AttackCalendar {
    /// The paper's window with a configurable scale (attacks/day at the
    /// start of the window).
    pub fn study(base_rate: f64) -> Self {
        AttackCalendar {
            window_start: bh_bgp_types::time::study::longitudinal_start(),
            window_end: bh_bgp_types::time::study::longitudinal_end(),
            base_rate,
            growth: 6.0,
        }
    }

    /// Number of days in the window.
    pub fn days(&self) -> u64 {
        self.window_end.day_index() - self.window_start.day_index()
    }

    /// The day timestamp for a given day offset.
    pub fn day(&self, offset: u64) -> SimTime {
        SimTime::from_unix((self.window_start.day_index() + offset) * 86_400)
    }

    /// The deterministic mean attack intensity for a day offset —
    /// linear growth, Mirai-era uplift, plus named spike multipliers.
    pub fn mean_for_day(&self, offset: u64) -> f64 {
        let frac = offset as f64 / self.days().max(1) as f64;
        let mut mean = self.base_rate * (1.0 + (self.growth - 1.0) * frac);
        let day_time = self.day(offset);
        if day_time >= mirai_era_start() {
            mean *= 1.5;
        }
        for spike in SPIKES {
            if spike.is_misconfiguration {
                continue;
            }
            let start = SimTime::from_ymd(spike.year, spike.month, spike.day);
            let end = start + SimDuration::days(spike.duration_days);
            if day_time >= start && day_time < end {
                mean *= spike.intensity;
            }
        }
        mean
    }

    /// Sample the number of attacks for a day (Poisson via inversion,
    /// adequate for the small means used here).
    pub fn sample_attacks<R: Rng + ?Sized>(&self, rng: &mut R, offset: u64) -> usize {
        let mean = self.mean_for_day(offset);
        poisson(rng, mean)
    }

    /// The named spike (if any) active on the given day.
    pub fn spike_on(&self, offset: u64) -> Option<&'static Spike> {
        let day_time = self.day(offset);
        SPIKES.iter().find(|spike| {
            let start = SimTime::from_ymd(spike.year, spike.month, spike.day);
            let end = start + SimDuration::days(spike.duration_days);
            day_time >= start && day_time < end
        })
    }
}

/// Knuth's Poisson sampler (fine for means up to a few hundred).
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    if mean > 500.0 {
        // Normal approximation for very large means.
        let normal = (rng.gen::<f64>()
            + rng.gen::<f64>()
            + rng.gen::<f64>()
            + rng.gen::<f64>()
            + rng.gen::<f64>()
            + rng.gen::<f64>()
            - 3.0)
            * (mean).sqrt()
            / 0.707;
        return (mean + normal).max(0.0) as usize;
    }
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    #[test]
    fn spikes_are_inside_the_study_window() {
        let cal = AttackCalendar::study(10.0);
        for spike in SPIKES {
            let t = SimTime::from_ymd(spike.year, spike.month, spike.day);
            assert!(t >= cal.window_start && t < cal.window_end, "{}", spike.label);
        }
    }

    #[test]
    fn intensity_grows_about_sixfold() {
        let cal = AttackCalendar::study(10.0);
        let start = cal.mean_for_day(0);
        // Take a late day without named spikes: end of March 2017.
        let late_offset = cal.days() - 3;
        assert!(cal.spike_on(late_offset).is_none());
        let late = cal.mean_for_day(late_offset);
        // ×6 growth plus ×1.5 Mirai uplift ≈ 9× at the end.
        let factor = late / start;
        assert!(factor > 7.0 && factor < 10.0, "factor {factor}");
    }

    #[test]
    fn spike_days_are_elevated() {
        let cal = AttackCalendar::study(10.0);
        for spike in SPIKES.iter().filter(|s| !s.is_misconfiguration) {
            let t = SimTime::from_ymd(spike.year, spike.month, spike.day);
            let offset = t.day_index() - cal.window_start.day_index();
            let on = cal.mean_for_day(offset);
            let before = cal.mean_for_day(offset - 3);
            assert!(on > before * 2.0, "spike {} not elevated: {on} vs {before}", spike.label);
            assert_eq!(cal.spike_on(offset).map(|s| s.label), Some(spike.label));
        }
    }

    #[test]
    fn misconfiguration_spike_does_not_change_attack_rate() {
        let cal = AttackCalendar::study(10.0);
        let t = SimTime::from_ymd(2016, 4, 18);
        let offset = t.day_index() - cal.window_start.day_index();
        let on = cal.mean_for_day(offset);
        let before = cal.mean_for_day(offset - 2);
        assert!((on / before) < 1.2, "spike A must not raise attack volume");
        assert_eq!(cal.spike_on(offset).map(|s| s.label), Some('A'));
    }

    #[test]
    fn poisson_sampler_mean_is_reasonable() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 3000;
        let mean = 7.0;
        let total: usize = (0..n).map(|_| poisson(&mut rng, mean)).sum();
        let empirical = total as f64 / n as f64;
        assert!((empirical - mean).abs() < 0.3, "empirical {empirical}");
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn sampling_is_deterministic() {
        let cal = AttackCalendar::study(5.0);
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for day in 0..50 {
            assert_eq!(cal.sample_attacks(&mut a, day), cal.sample_attacks(&mut b, day));
        }
    }
}
