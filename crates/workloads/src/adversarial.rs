//! Adversarial workloads with simulator-side ground truth.
//!
//! The cooperative scenario ([`crate::scenario`]) asks "does the
//! inference reproduce the paper's findings?". This module asks the
//! harder question the original study could never answer for lack of
//! ground truth: *what does the detector get wrong under adversarial
//! or policy-perturbed traffic?* Each workload schedules a mix of
//!
//! * **cooperative blackholes** — well-formed RTBH requests the
//!   detector is *expected* to find (labelled
//!   [`LabelKind::Blackhole`], `expect_detection = true`);
//! * **subprefix hijacks** — an unrelated stub announces a /32 inside
//!   the victim's space carrying the victim's provider trigger
//!   communities; any detection is a false positive
//!   ([`LabelKind::Hijack`]);
//! * **prepend reroutes** — the re-routing alternative to blackholing
//!   (§2 of the paper): own-prefix announcements with heavy AS-path
//!   prepending and *no* communities, a negative control that must
//!   never trigger ([`LabelKind::Reroute`]);
//! * **route leaks** — a tagged announcement *coarser* than the
//!   provider's minimum accepted blackhole length: the trigger is
//!   inert ([`bh_routing::RejectReason::LengthRejected`]) but the
//!   tagged route propagates like any customer route, stressing the
//!   leak-vs-blackhole misclassification ([`LabelKind::RouteLeak`]);
//! * **stolen-tag hijacks** — host routes decorated with the victim
//!   providers' harmless location/informational *tag* communities
//!   ([`LabelKind::Tagged`]): bait for a trap-poisoned dictionary, and
//!   the population the classifier's negative controls suppress.
//!
//! Every scheduled event also emits a [`TruthLabel`], so
//! [`bh_core::score_events`] can turn an
//! [`InferenceResult`](bh_core::InferenceResult) into a confusion
//! report with per-kind false-positive attribution.
//!
//! Workloads may additionally install a per-AS [`PolicyTable`] — the
//! ROV sweep ([`AdversarialConfig::rov_sweep`]) deploys strict ROAs
//! plus origin validation at a nested fraction of transit networks,
//! and the route-leak workload turns real transit ASes into `leaker`s
//! that export past the valley-free rule.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use bh_bgp_types::asn::Asn;
use bh_bgp_types::community::CommunitySet;
use bh_bgp_types::prefix::Ipv4Prefix;
use bh_bgp_types::time::{SimDuration, SimTime};
use bh_core::{LabelKind, TruthLabel};
use bh_routing::{
    AnnounceScope, Announcement, BgpElem, BgpSimulator, CollectorDeployment, RunStats,
    SessionBehavior,
};
use bh_topology::{DocumentationChannel, NetworkType, PolicyTable, RoaTable, Tier, Topology};

use crate::attacks::poisson;
use crate::reaction::{capable_providers, Action, CapableProvider, GroundTruthEvent, TimedAction};

/// One adversarial workload: daily Poisson rates per event family plus
/// the policy deployment active during the run.
#[derive(Debug, Clone)]
pub struct AdversarialConfig {
    /// Scenario name, carried into the confusion report.
    pub name: String,
    /// RNG seed (drives scheduling and victim selection).
    pub seed: u64,
    /// Days simulated from the visibility-window start.
    pub days: u64,
    /// Mean cooperative blackhole events per day.
    pub blackholes_per_day: f64,
    /// Mean subprefix-hijack events per day.
    pub hijacks_per_day: f64,
    /// Mean prepend-reroute events per day.
    pub reroutes_per_day: f64,
    /// Mean route-leak events per day.
    pub leaks_per_day: f64,
    /// Mean stolen-tag hijack events per day (host routes decorated
    /// with providers' non-blackhole *tag* communities).
    pub tagged_per_day: f64,
    /// Per-AS policies installed on the simulator before any
    /// announcement (empty table installs nothing).
    pub policy: PolicyTable,
}

impl AdversarialConfig {
    /// Cooperative traffic only — the detector should score perfectly.
    pub fn baseline(seed: u64, days: u64, rate: f64) -> Self {
        AdversarialConfig {
            name: "baseline".into(),
            seed,
            days,
            blackholes_per_day: rate,
            hijacks_per_day: 0.0,
            reroutes_per_day: 0.0,
            leaks_per_day: 0.0,
            tagged_per_day: 0.0,
            policy: PolicyTable::new(),
        }
    }

    /// Cooperative traffic plus stolen-tag hijacks: the attacker
    /// decorates victim host routes with the victim providers'
    /// location/informational tag communities. A dictionary poisoned by
    /// trap phrasing mistakes the tags for triggers; the classifier's
    /// negative controls are scored by how many of these they suppress.
    pub fn stolen_tag_hijack(seed: u64, days: u64, rate: f64) -> Self {
        AdversarialConfig {
            name: "stolen-tag".into(),
            tagged_per_day: rate,
            ..Self::baseline(seed, days, rate)
        }
    }

    /// Cooperative traffic plus subprefix hijacks carrying stolen
    /// trigger communities — precision must degrade.
    pub fn subprefix_hijack(seed: u64, days: u64, rate: f64) -> Self {
        AdversarialConfig {
            name: "subprefix-hijack".into(),
            hijacks_per_day: rate,
            ..Self::baseline(seed, days, rate)
        }
    }

    /// Cooperative traffic under strict ROAs with ROV deployed at
    /// `fraction` of the transit candidates. Strict ROAs pin
    /// `max_length` to the allocation length, so every /32 RTBH route
    /// is RPKI-Invalid at a deploying AS — visibility (and therefore
    /// the detected-event count) shrinks monotonically in `fraction`.
    pub fn rov_sweep(topology: &Topology, seed: u64, days: u64, rate: f64, fraction: f64) -> Self {
        let mut policy = PolicyTable::new();
        policy.set_roas(RoaTable::strict_from_topology(topology));
        policy.deploy_rov_fraction(topology, fraction);
        AdversarialConfig {
            name: format!("rov-{:.2}", fraction),
            policy,
            ..Self::baseline(seed, days, rate)
        }
    }

    /// Cooperative traffic plus prepend-based re-routing (no
    /// communities) — the negative control: zero false positives
    /// expected.
    pub fn prepend_reroute(seed: u64, days: u64, rate: f64) -> Self {
        AdversarialConfig {
            name: "prepend-reroute".into(),
            reroutes_per_day: rate,
            ..Self::baseline(seed, days, rate)
        }
    }

    /// Cooperative traffic plus too-coarse tagged announcements, with
    /// every third transit AS exporting past the valley-free rule
    /// (`leaker`) and every fifth enforcing RFC 9234-style
    /// only-to-customers.
    pub fn route_leak(topology: &Topology, seed: u64, days: u64, rate: f64) -> Self {
        let mut policy = PolicyTable::new();
        let mut transits: Vec<Asn> =
            topology.ases().filter(|i| i.tier == Tier::Transit).map(|i| i.asn).collect();
        transits.sort_unstable();
        for (k, asn) in transits.iter().enumerate() {
            if k % 3 == 0 {
                policy.entry(*asn).leaker = true;
            } else if k % 5 == 0 {
                policy.entry(*asn).only_to_customers = true;
            }
        }
        AdversarialConfig {
            name: "route-leak".into(),
            leaks_per_day: rate,
            policy,
            ..Self::baseline(seed, days, rate)
        }
    }
}

/// Output of an adversarial run: the collector stream, the cooperative
/// ground truth, the full label set for confusion scoring, and the
/// simulator's rejection accounting.
#[derive(Debug)]
pub struct AdversarialOutput {
    /// Every element observed at every collector session, time-ordered.
    pub elems: Vec<BgpElem>,
    /// Ground truth for the *cooperative* blackholing events only.
    pub ground_truth: Vec<GroundTruthEvent>,
    /// Truth labels for every scheduled event (cooperative and
    /// adversarial) — feed to [`bh_core::score_events`].
    pub labels: Vec<TruthLabel>,
    /// Per-reason / per-extension rejection accounting from the run.
    pub run_stats: RunStats,
    /// Days simulated.
    pub days: u64,
    /// Total announcements injected.
    pub announcements: u64,
}

impl AdversarialOutput {
    /// The collector stream as an [`bh_routing::ElemSource`].
    pub fn elem_source(&self) -> bh_routing::SliceSource<'_> {
        bh_routing::SliceSource::new(&self.elems)
    }
}

/// Providers whose detections the dictionary can actually attribute:
/// documented offerings that do not strip the trigger community on
/// propagation. Cooperative events use only these so the baseline is
/// perfectly detectable by construction.
fn clean_providers(topology: &Topology, user: Asn) -> Vec<CapableProvider> {
    capable_providers(topology, user)
        .into_iter()
        .filter(|cp| {
            topology.as_info(cp.provider).and_then(|i| i.blackhole_offering.as_ref()).is_some_and(
                |o| o.documentation != DocumentationChannel::Undocumented && !o.strips_community,
            )
        })
        .collect()
}

/// Users eligible for cooperative events: edge/transit networks with
/// address space and at least one clean provider.
fn cooperative_users(topology: &Topology) -> Vec<Asn> {
    let mut users: Vec<Asn> = topology
        .ases()
        .filter(|i| matches!(i.tier, Tier::Stub | Tier::Transit))
        .filter(|i| i.network_type != NetworkType::Ixp)
        .filter(|i| !i.prefixes.is_empty())
        .filter(|i| !clean_providers(topology, i.asn).is_empty())
        .map(|i| i.asn)
        .collect();
    users.sort_unstable();
    users
}

/// Stub networks usable as hijackers (any upstream will do — the
/// stolen communities are someone else's).
fn attacker_pool(topology: &Topology) -> Vec<Asn> {
    let mut pool: Vec<Asn> = topology
        .ases()
        .filter(|i| i.tier == Tier::Stub && i.network_type != NetworkType::Ixp)
        .filter(|i| !topology.providers_of(i.asn).is_empty())
        .map(|i| i.asn)
        .collect();
    pool.sort_unstable();
    pool
}

/// An unused /32 inside one of `user`'s allocations, so no two events
/// ever share a prefix (exact-prefix label matching stays unambiguous).
fn fresh_host_route(
    rng: &mut StdRng,
    topology: &Topology,
    user: Asn,
    used: &mut BTreeSet<Ipv4Prefix>,
) -> Option<Ipv4Prefix> {
    let info = topology.as_info(user)?;
    let allocation = info.prefixes.choose(rng)?;
    for _ in 0..64 {
        let offset = rng.gen_range(0..allocation.address_count());
        let addr = allocation.nth_addr(offset)?;
        let host = Ipv4Prefix::host(addr);
        if used.insert(host) {
            return Some(host);
        }
    }
    None
}

struct Planner<'a> {
    topology: &'a Topology,
    users: Vec<Asn>,
    attackers: Vec<Asn>,
    used: BTreeSet<Ipv4Prefix>,
    truths: Vec<GroundTruthEvent>,
    labels: Vec<TruthLabel>,
    actions: Vec<TimedAction>,
}

impl Planner<'_> {
    /// A well-formed RTBH event: /32 inside the user's space, triggers
    /// of every clean provider bundled to all neighbors, IRR in order,
    /// no NO_EXPORT, one sustained phase.
    fn blackhole(&mut self, rng: &mut StdRng, day_start: SimTime) {
        let user = *self.users.choose(rng).expect("non-empty user pool");
        let providers = clean_providers(self.topology, user);
        let Some(prefix) = fresh_host_route(rng, self.topology, user, &mut self.used) else {
            return;
        };
        let start = day_start + SimDuration::secs(rng.gen_range(0..80_000));
        let end = start + SimDuration::mins(rng.gen_range(30..=150));
        let mut communities = CommunitySet::new();
        for p in &providers {
            for c in &p.communities {
                communities.insert(*c);
            }
            if let Some(l) = p.large {
                communities.insert_large(l);
            }
        }
        let truth_index = self.truths.len();
        self.truths.push(GroundTruthEvent {
            prefix,
            user,
            requested: providers.iter().map(|p| p.provider).collect(),
            accepted: Vec::new(),
            phases: vec![(start, end)],
            bundled: true,
            no_export: false,
            irr_registered: true,
            implicit_withdraw: false,
        });
        self.labels.push(TruthLabel {
            prefix,
            start,
            end,
            kind: LabelKind::Blackhole,
            expect_detection: true,
        });
        self.actions.push(TimedAction {
            time: start,
            action: Action::Announce(Announcement {
                origin: user,
                prefix,
                communities,
                scope: AnnounceScope::AllNeighbors,
                irr_registered: true,
                prepend: 1,
            }),
            truth: Some(truth_index),
        });
        self.actions.push(TimedAction {
            time: end,
            action: Action::Withdraw { origin: user, prefix },
            truth: Some(truth_index),
        });
    }

    /// A subprefix hijack: an unrelated stub originates a /32 inside
    /// the victim's space, bundling the *victim's* provider triggers.
    /// The trigger fails authentication everywhere (off-allocation
    /// origin), but the tagged host route propagates — bait for the
    /// bundling heuristic.
    fn hijack(&mut self, rng: &mut StdRng, day_start: SimTime) {
        let victim = *self.users.choose(rng).expect("non-empty user pool");
        let Some(&attacker) =
            self.attackers.choose_multiple(rng, self.attackers.len()).find(|&&a| a != victim)
        else {
            return;
        };
        let providers = clean_providers(self.topology, victim);
        let Some(prefix) = fresh_host_route(rng, self.topology, victim, &mut self.used) else {
            return;
        };
        let start = day_start + SimDuration::secs(rng.gen_range(0..80_000));
        let end = start + SimDuration::mins(rng.gen_range(20..=90));
        let mut communities = CommunitySet::new();
        for p in &providers {
            for c in &p.communities {
                communities.insert(*c);
            }
        }
        self.labels.push(TruthLabel {
            prefix,
            start,
            end,
            kind: LabelKind::Hijack,
            expect_detection: false,
        });
        self.actions.push(TimedAction {
            time: start,
            action: Action::Announce(Announcement {
                origin: attacker,
                prefix,
                communities,
                scope: AnnounceScope::AllNeighbors,
                irr_registered: false,
                prepend: 1,
            }),
            truth: None,
        });
        self.actions.push(TimedAction {
            time: end,
            action: Action::Withdraw { origin: attacker, prefix },
            truth: None,
        });
    }

    /// A stolen-tag hijack: like [`Planner::hijack`], but the attacker
    /// steals the victim providers' harmless *tag* communities
    /// (location/informational documentation) instead of the blackhole
    /// triggers. No correct dictionary should ever bite; one poisoned by
    /// weak-`discard` trap phrasing does, and the negative controls are
    /// scored by how many of these they suppress.
    fn stolen_tag(&mut self, rng: &mut StdRng, day_start: SimTime) {
        let victim = *self.users.choose(rng).expect("non-empty user pool");
        let Some(&attacker) =
            self.attackers.choose_multiple(rng, self.attackers.len()).find(|&&a| a != victim)
        else {
            return;
        };
        let mut communities = CommunitySet::new();
        for p in clean_providers(self.topology, victim) {
            if let Some(info) = self.topology.as_info(p.provider) {
                for &tag in info.tag_communities.iter().take(2) {
                    communities.insert(tag);
                }
            }
        }
        if communities.is_empty() {
            return; // no provider documents classic tags: nothing to steal
        }
        let Some(prefix) = fresh_host_route(rng, self.topology, victim, &mut self.used) else {
            return;
        };
        let start = day_start + SimDuration::secs(rng.gen_range(0..80_000));
        let end = start + SimDuration::mins(rng.gen_range(20..=90));
        self.labels.push(TruthLabel {
            prefix,
            start,
            end,
            kind: LabelKind::Tagged,
            expect_detection: false,
        });
        self.actions.push(TimedAction {
            time: start,
            action: Action::Announce(Announcement {
                origin: attacker,
                prefix,
                communities,
                scope: AnnounceScope::AllNeighbors,
                irr_registered: false,
                prepend: 1,
            }),
            truth: None,
        });
        self.actions.push(TimedAction {
            time: end,
            action: Action::Withdraw { origin: attacker, prefix },
            truth: None,
        });
    }

    /// Prepend-based re-routing: the victim re-announces its own /24
    /// with heavy prepending and no communities at all. The negative
    /// control — nothing here should ever look like blackholing.
    fn reroute(&mut self, rng: &mut StdRng, day_start: SimTime) {
        let user = *self.users.choose(rng).expect("non-empty user pool");
        let Some(info) = self.topology.as_info(user) else { return };
        let Some(allocation) = info.prefixes.iter().find(|p| p.length() <= 24) else {
            return;
        };
        let Some(base) = allocation.nth_addr(0) else { return };
        let Ok(prefix) = Ipv4Prefix::new(base, 24) else { return };
        let start = day_start + SimDuration::secs(rng.gen_range(0..80_000));
        let end = start + SimDuration::mins(rng.gen_range(60..=300));
        self.labels.push(TruthLabel {
            prefix,
            start,
            end,
            kind: LabelKind::Reroute,
            expect_detection: false,
        });
        self.actions.push(TimedAction {
            time: start,
            action: Action::Announce(Announcement {
                origin: user,
                prefix,
                communities: CommunitySet::new(),
                scope: AnnounceScope::AllNeighbors,
                irr_registered: true,
                prepend: rng.gen_range(3..=5),
            }),
            truth: None,
        });
        self.actions.push(TimedAction {
            time: end,
            action: Action::Withdraw { origin: user, prefix },
            truth: None,
        });
    }

    /// A leak-shaped tagged route: the user announces an allocation
    /// *coarser* than the provider's minimum accepted blackhole length
    /// with the trigger attached. The trigger is inert
    /// (`LengthRejected`) yet the tagged route propagates with the
    /// provider on-path — exactly what a blackhole detection looks
    /// like from a collector.
    fn leak(&mut self, rng: &mut StdRng, day_start: SimTime) {
        let user = *self.users.choose(rng).expect("non-empty user pool");
        let Some(info) = self.topology.as_info(user) else { return };
        let providers = clean_providers(self.topology, user);
        let pair = info.prefixes.iter().find_map(|alloc| {
            providers
                .iter()
                .find(|cp| {
                    self.topology
                        .as_info(cp.provider)
                        .and_then(|i| i.blackhole_offering.as_ref())
                        .is_some_and(|o| alloc.length() < o.min_accepted_length)
                })
                .map(|cp| (*alloc, cp))
        });
        let Some((prefix, provider)) = pair else { return };
        let start = day_start + SimDuration::secs(rng.gen_range(0..80_000));
        let end = start + SimDuration::mins(rng.gen_range(60..=240));
        let mut communities = CommunitySet::new();
        for c in &provider.communities {
            communities.insert(*c);
        }
        self.labels.push(TruthLabel {
            prefix,
            start,
            end,
            kind: LabelKind::RouteLeak,
            expect_detection: false,
        });
        self.actions.push(TimedAction {
            time: start,
            action: Action::Announce(Announcement {
                origin: user,
                prefix,
                communities,
                scope: AnnounceScope::AllNeighbors,
                irr_registered: true,
                prepend: 1,
            }),
            truth: None,
        });
        self.actions.push(TimedAction {
            time: end,
            action: Action::Withdraw { origin: user, prefix },
            truth: None,
        });
    }
}

/// Run an adversarial workload over `topology`, returning the collector
/// stream plus the labels to score the inference against.
///
/// Session behaviors are pinned to accept host routes on every session
/// type: the workloads measure what *policies and adversaries* do to
/// the detector, so per-AS behavioral noise is deliberately removed.
pub fn run_adversarial(
    topology: &Topology,
    deployment: CollectorDeployment,
    config: &AdversarialConfig,
) -> AdversarialOutput {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut sim = BgpSimulator::new(topology, deployment, config.seed ^ 0xADBE);
    if !config.policy.is_empty() {
        sim.install_policies(&config.policy);
    }
    for info in topology.ases() {
        sim.set_behavior(
            info.asn,
            SessionBehavior { host_routes_from_customers: true, host_routes_from_peers: true },
        );
    }

    let window_start = bh_bgp_types::time::study::visibility_start();
    let mut planner = Planner {
        topology,
        users: cooperative_users(topology),
        attackers: attacker_pool(topology),
        used: BTreeSet::new(),
        truths: Vec::new(),
        labels: Vec::new(),
        actions: Vec::new(),
    };
    assert!(!planner.users.is_empty(), "topology has no cooperative blackholing users");

    let total_days = config.days.max(1);
    for d in 0..total_days {
        let day_start = SimTime::from_unix((window_start.day_index() + d) * 86_400);
        // At least one event of each enabled family on day 0, so short
        // runs exercise every labelled population deterministically.
        let floor = |rate: f64| usize::from(d == 0 && rate > 0.0);
        for _ in
            0..poisson(&mut rng, config.blackholes_per_day).max(floor(config.blackholes_per_day))
        {
            planner.blackhole(&mut rng, day_start);
        }
        for _ in 0..poisson(&mut rng, config.hijacks_per_day).max(floor(config.hijacks_per_day)) {
            planner.hijack(&mut rng, day_start);
        }
        for _ in 0..poisson(&mut rng, config.reroutes_per_day).max(floor(config.reroutes_per_day)) {
            planner.reroute(&mut rng, day_start);
        }
        for _ in 0..poisson(&mut rng, config.leaks_per_day).max(floor(config.leaks_per_day)) {
            planner.leak(&mut rng, day_start);
        }
        for _ in 0..poisson(&mut rng, config.tagged_per_day).max(floor(config.tagged_per_day)) {
            planner.stolen_tag(&mut rng, day_start);
        }
    }

    let Planner { mut truths, labels, mut actions, .. } = planner;
    actions.sort_by_key(|a| a.time.unix());
    let announcements =
        actions.iter().filter(|a| matches!(a.action, Action::Announce(_))).count() as u64;
    for timed in &actions {
        match &timed.action {
            Action::Announce(a) => {
                let outcome = sim.announce(timed.time, a);
                if let Some(idx) = timed.truth {
                    for asn in outcome.accepted_by {
                        if !truths[idx].accepted.contains(&asn) {
                            truths[idx].accepted.push(asn);
                        }
                    }
                }
            }
            Action::Withdraw { origin, prefix } => {
                sim.withdraw(timed.time, *origin, *prefix);
            }
        }
    }

    AdversarialOutput {
        run_stats: sim.run_stats().clone(),
        elems: sim.drain_elems(),
        ground_truth: truths,
        labels,
        days: total_days,
        announcements,
    }
}

#[cfg(test)]
mod tests {
    use bh_routing::{deploy, CollectorConfig};
    use bh_topology::{TopologyBuilder, TopologyConfig};

    use super::*;

    fn run_tiny(config: &AdversarialConfig) -> AdversarialOutput {
        let t = TopologyBuilder::new(TopologyConfig::tiny(55)).build();
        let d = deploy(&t, &CollectorConfig::tiny(6));
        run_adversarial(&t, d, config)
    }

    #[test]
    fn baseline_emits_only_expected_blackhole_labels() {
        let out = run_tiny(&AdversarialConfig::baseline(1, 3, 4.0));
        assert!(!out.labels.is_empty());
        assert!(out.labels.iter().all(|l| l.kind == LabelKind::Blackhole && l.expect_detection));
        assert_eq!(out.labels.len(), out.ground_truth.len());
        assert!(!out.elems.is_empty(), "collectors saw nothing");
    }

    #[test]
    fn hijack_workload_emits_unexpected_hijack_labels() {
        let out = run_tiny(&AdversarialConfig::subprefix_hijack(2, 3, 4.0));
        let hijacks = out.labels.iter().filter(|l| l.kind == LabelKind::Hijack).count();
        assert!(hijacks > 0, "no hijacks scheduled");
        assert!(out
            .labels
            .iter()
            .filter(|l| l.kind == LabelKind::Hijack)
            .all(|l| !l.expect_detection));
        // Hijack prefixes never collide with cooperative ones.
        let mut seen = BTreeSet::new();
        for l in out.labels.iter().filter(|l| l.prefix.is_host_route()) {
            assert!(seen.insert(l.prefix), "duplicate /32 label {}", l.prefix);
        }
    }

    #[test]
    fn leak_workload_schedules_coarse_tagged_routes_and_forces_exports() {
        let t = TopologyBuilder::new(TopologyConfig::tiny(55)).build();
        let d = deploy(&t, &CollectorConfig::tiny(6));
        let config = AdversarialConfig::route_leak(&t, 3, 3, 4.0);
        assert!(config.policy.deployed_count() > 0, "no leakers deployed");
        let out = run_adversarial(&t, d, &config);
        let leaks: Vec<_> = out.labels.iter().filter(|l| l.kind == LabelKind::RouteLeak).collect();
        assert!(!leaks.is_empty(), "no leak labels");
        assert!(leaks.iter().all(|l| !l.prefix.is_host_route()), "leaks must be coarse");
        assert!(out.run_stats.exports_forced > 0, "leakers never forced an export");
    }

    #[test]
    fn stolen_tag_workload_emits_tagged_labels_that_reach_collectors() {
        let out = run_tiny(&AdversarialConfig::stolen_tag_hijack(4, 3, 4.0));
        let tagged: Vec<_> = out.labels.iter().filter(|l| l.kind == LabelKind::Tagged).collect();
        assert!(!tagged.is_empty(), "no stolen-tag events scheduled");
        assert!(tagged.iter().all(|l| !l.expect_detection && l.prefix.is_host_route()));
        // The stolen tags survive propagation: collectors see at least
        // one of these host routes still carrying communities.
        let prefixes: BTreeSet<_> = tagged.iter().map(|l| l.prefix).collect();
        assert!(
            out.elems.iter().any(|e| prefixes.contains(&e.prefix) && !e.communities.is_empty()),
            "stolen tags were stripped before reaching any collector"
        );
    }

    #[test]
    fn rov_sweep_deployments_are_nested_and_monotonic() {
        let t = TopologyBuilder::new(TopologyConfig::tiny(55)).build();
        let mut last = 0;
        for f in [0.0, 0.25, 0.5, 1.0] {
            let config = AdversarialConfig::rov_sweep(&t, 9, 2, 3.0, f);
            let count = config.policy.deployed_count();
            assert!(count >= last, "deployment shrank at fraction {f}");
            last = count;
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_tiny(&AdversarialConfig::subprefix_hijack(7, 2, 4.0));
        let b = run_tiny(&AdversarialConfig::subprefix_hijack(7, 2, 4.0));
        assert_eq!(a.elems.len(), b.elems.len());
        assert_eq!(a.labels.len(), b.labels.len());
        for (x, y) in a.labels.iter().zip(&b.labels) {
            assert_eq!(x.prefix, y.prefix);
            assert_eq!((x.start, x.end, x.kind), (y.start, y.end, y.kind));
        }
    }
}
