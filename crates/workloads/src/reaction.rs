//! Operator reaction model: how a victim network uses blackholing.
//!
//! Reproduces the practices §9 uncovered:
//!
//! * mostly /32 host routes (98 % of blackholed IPv4 prefixes),
//! * multi-provider blackholing (28 % of events involve several
//!   providers, up to 20),
//! * community *bundling* to all neighbors vs. *targeted* announcements
//!   (bundling accounts for ~half of all detections),
//! * the ON/OFF probing pattern (>70 % of ungrouped events last ≤1
//!   minute; 5-minute grouping collapses them),
//! * long-lived and very-long-lived regimes (weeks/months: reputation
//!   blocking, forgotten entries),
//! * RFC 7999 NO_EXPORT compliance by a minority of users,
//! * misconfigurations: missing IRR registration (route servers refuse to
//!   redistribute) and wrong communities.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use bh_bgp_types::asn::Asn;
use bh_bgp_types::community::{Community, CommunitySet};
use bh_bgp_types::prefix::Ipv4Prefix;
use bh_bgp_types::time::{SimDuration, SimTime};
use bh_routing::{AnnounceScope, Announcement};
use bh_topology::Topology;

/// One scheduled routing action.
#[derive(Debug, Clone)]
pub enum Action {
    /// Inject an announcement.
    Announce(Announcement),
    /// Withdraw an origin's prefix.
    Withdraw {
        /// The withdrawing origin.
        origin: Asn,
        /// The prefix.
        prefix: Ipv4Prefix,
    },
}

/// A timed action, linked to its ground-truth record.
#[derive(Debug, Clone)]
pub struct TimedAction {
    /// When the action fires.
    pub time: SimTime,
    /// What happens.
    pub action: Action,
    /// Index into the scenario's ground-truth vector, when this action
    /// belongs to a blackholing reaction.
    pub truth: Option<usize>,
}

/// Ground truth for one blackholing reaction (one prefix).
#[derive(Debug, Clone)]
pub struct GroundTruthEvent {
    /// The blackholed prefix.
    pub prefix: Ipv4Prefix,
    /// The blackholing user.
    pub user: Asn,
    /// Providers the user asked (ASNs; route servers for IXPs).
    pub requested: Vec<Asn>,
    /// Providers that actually accepted (filled during execution).
    pub accepted: Vec<Asn>,
    /// ON phases: (start, end) of each blackhole pulse.
    pub phases: Vec<(SimTime, SimTime)>,
    /// Whether communities were bundled to all neighbors.
    pub bundled: bool,
    /// Whether NO_EXPORT was attached.
    pub no_export: bool,
    /// Whether the user's IRR registration is in order.
    pub irr_registered: bool,
    /// Whether the withdrawal is implicit (re-announce without tags).
    pub implicit_withdraw: bool,
}

impl GroundTruthEvent {
    /// Overall start (first phase).
    pub fn start(&self) -> SimTime {
        self.phases.first().map(|(s, _)| *s).unwrap_or(SimTime::ZERO)
    }

    /// Overall end (last phase).
    pub fn end(&self) -> SimTime {
        self.phases.last().map(|(_, e)| *e).unwrap_or(SimTime::ZERO)
    }
}

/// A provider available to a user, with the communities that trigger it.
#[derive(Debug, Clone)]
pub struct CapableProvider {
    /// Who to announce to (the provider itself, or the IXP route server).
    pub announce_to: Asn,
    /// The provider's ASN as recorded in ground truth (RS ASN for IXPs).
    pub provider: Asn,
    /// Trigger communities.
    pub communities: Vec<Community>,
    /// Large-community trigger, if the provider uses one.
    pub large: Option<bh_bgp_types::community::LargeCommunity>,
}

/// Find the blackholing-capable providers of a user: direct providers
/// with an offering plus route servers of IXPs the user is a member of.
pub fn capable_providers(topology: &Topology, user: Asn) -> Vec<CapableProvider> {
    let mut out = Vec::new();
    for &p in &topology.providers_of(user) {
        if let Some(info) = topology.as_info(p) {
            if let Some(o) = &info.blackhole_offering {
                out.push(CapableProvider {
                    announce_to: p,
                    provider: p,
                    communities: o.communities.clone(),
                    large: o.large_community,
                });
            }
        }
    }
    for ixp in topology.ixps() {
        if !ixp.has_member(user) {
            continue;
        }
        if let Some(info) = topology.as_info(ixp.route_server_asn) {
            if let Some(o) = &info.blackhole_offering {
                out.push(CapableProvider {
                    announce_to: ixp.route_server_asn,
                    provider: ixp.route_server_asn,
                    communities: o.communities.clone(),
                    large: o.large_community,
                });
            }
        }
    }
    out
}

/// Reaction-model tunables (defaults follow the paper's findings).
#[derive(Debug, Clone)]
pub struct ReactionConfig {
    /// Probability an event uses the ON/OFF probing pattern.
    pub probing_probability: f64,
    /// Probability a reaction bundles communities to all neighbors.
    pub bundling_probability: f64,
    /// Probability the user attaches NO_EXPORT (RFC 7999 compliance).
    pub no_export_probability: f64,
    /// Probability the user's IRR registration is missing (§10
    /// misconfiguration).
    pub unregistered_probability: f64,
    /// Probability of a long-lived (multi-day) blackhole.
    pub long_lived_probability: f64,
    /// Probability a /24 is blackholed instead of /32s ("blackhole the
    /// whole prefix" strategy).
    pub whole_prefix_probability: f64,
    /// Probability a withdrawal is implicit (re-announce without tags).
    pub implicit_withdraw_probability: f64,
}

impl Default for ReactionConfig {
    fn default() -> Self {
        ReactionConfig {
            probing_probability: 0.7,
            bundling_probability: 0.5,
            no_export_probability: 0.2,
            unregistered_probability: 0.12,
            long_lived_probability: 0.04,
            whole_prefix_probability: 0.02,
            implicit_withdraw_probability: 0.3,
        }
    }
}

/// Plan the reaction of `user` to an attack starting at `start` and
/// lasting `attack_duration`; `intensity` scales the number of attacked
/// hosts. Appends ground truth to `truths` and returns the actions.
#[allow(clippy::too_many_arguments)]
pub fn plan_reaction(
    rng: &mut StdRng,
    topology: &Topology,
    config: &ReactionConfig,
    user: Asn,
    start: SimTime,
    attack_duration: SimDuration,
    intensity: f64,
    truths: &mut Vec<GroundTruthEvent>,
) -> Vec<TimedAction> {
    let mut actions = Vec::new();
    let providers = capable_providers(topology, user);
    if providers.is_empty() {
        return actions;
    }
    let Some(info) = topology.as_info(user) else {
        return actions;
    };
    if info.prefixes.is_empty() {
        return actions;
    }
    let allocation = info.prefixes[rng.gen_range(0..info.prefixes.len())];

    // Victim prefixes: usually 1..k /32s, rarely a whole /24.
    let mut victim_prefixes: Vec<Ipv4Prefix> = Vec::new();
    if rng.gen_bool(config.whole_prefix_probability) && allocation.length() <= 24 {
        let base = allocation.nth_addr(0).expect("allocation non-empty");
        victim_prefixes.push(Ipv4Prefix::new(base, 24).expect("/24 inside allocation"));
    } else {
        let host_count = 1 + crate::attacks::poisson(rng, intensity.clamp(0.0, 12.0));
        for _ in 0..host_count {
            let offset = rng.gen_range(0..allocation.address_count());
            if let Some(addr) = allocation.nth_addr(offset) {
                let host = Ipv4Prefix::host(addr);
                if !victim_prefixes.contains(&host) {
                    victim_prefixes.push(host);
                }
            }
        }
    }

    // Provider selection: 72% single, multi otherwise (heavy tail).
    let selected: Vec<&CapableProvider> = {
        let count = if providers.len() == 1 || rng.gen_bool(0.72) {
            1
        } else {
            let max = providers.len().min(8);
            2 + crate::attacks::poisson(rng, 0.8).min(max - 2)
        };
        let mut picked: Vec<&CapableProvider> = providers.choose_multiple(rng, count).collect();
        picked.sort_by_key(|p| p.provider);
        picked
    };

    let bundled = rng.gen_bool(config.bundling_probability);
    let no_export = rng.gen_bool(config.no_export_probability);
    let irr_registered = !rng.gen_bool(config.unregistered_probability);
    let implicit_withdraw = rng.gen_bool(config.implicit_withdraw_probability);

    // Trigger communities for the announcement.
    let mut communities = CommunitySet::new();
    for p in &selected {
        for c in &p.communities {
            communities.insert(*c);
        }
        if let Some(l) = p.large {
            communities.insert_large(l);
        }
    }
    if no_export {
        communities.insert(Community::NO_EXPORT);
    }
    let scope = if bundled {
        AnnounceScope::AllNeighbors
    } else {
        AnnounceScope::Neighbors(selected.iter().map(|p| p.announce_to).collect())
    };

    // Phase plan.
    let phases: Vec<(SimTime, SimTime)> = if rng.gen_bool(config.long_lived_probability) {
        // Long-lived regime: days to ~2 months, single phase.
        let days = rng.gen_range(2..=60);
        vec![(start, start + SimDuration::days(days))]
    } else if rng.gen_bool(config.probing_probability) {
        // ON/OFF probing until the attack ends.
        let mut phases = Vec::new();
        let mut t = start;
        let deadline = start + attack_duration;
        while t < deadline && phases.len() < 50 {
            let on = SimDuration::secs(rng.gen_range(20..=100));
            let end = t + on;
            phases.push((t, end));
            let off = SimDuration::secs(rng.gen_range(20..=120));
            t = end + off;
        }
        phases
    } else {
        // Single sustained blackhole for the attack duration (minutes to
        // hours).
        vec![(start, start + attack_duration)]
    };

    for prefix in victim_prefixes {
        let truth_index = truths.len();
        truths.push(GroundTruthEvent {
            prefix,
            user,
            requested: selected.iter().map(|p| p.provider).collect(),
            accepted: Vec::new(),
            phases: phases.clone(),
            bundled,
            no_export,
            irr_registered,
            implicit_withdraw,
        });
        for &(on, off) in &phases {
            actions.push(TimedAction {
                time: on,
                action: Action::Announce(Announcement {
                    origin: user,
                    prefix,
                    communities: communities.clone(),
                    scope: scope.clone(),
                    irr_registered,
                    prepend: if rng.gen_bool(0.1) { rng.gen_range(2..=4) } else { 1 },
                }),
                truth: Some(truth_index),
            });
            let withdraw_action = if implicit_withdraw {
                // Implicit: re-announce without the blackhole tags.
                Action::Announce(Announcement {
                    origin: user,
                    prefix,
                    communities: CommunitySet::new(),
                    scope: scope.clone(),
                    irr_registered,
                    prepend: 1,
                })
            } else {
                Action::Withdraw { origin: user, prefix }
            };
            actions.push(TimedAction {
                time: off,
                action: withdraw_action,
                truth: Some(truth_index),
            });
        }
    }
    actions
}

#[cfg(test)]
mod tests {
    use bh_topology::{TopologyBuilder, TopologyConfig};
    use rand::SeedableRng;

    use super::*;

    fn topology() -> Topology {
        TopologyBuilder::new(TopologyConfig::tiny(77)).build()
    }

    fn a_user(t: &Topology) -> Asn {
        t.ases()
            .find(|i| {
                !i.prefixes.is_empty()
                    && i.tier == bh_topology::Tier::Stub
                    && !capable_providers(t, i.asn).is_empty()
            })
            .expect("capable user exists")
            .asn
    }

    #[test]
    fn capable_providers_cover_transit_and_ixp() {
        let t = topology();
        let mut transit_capable = 0;
        let mut ixp_capable = 0;
        for info in t.ases() {
            for cp in capable_providers(&t, info.asn) {
                if t.ixp_by_route_server(cp.provider).is_some() {
                    ixp_capable += 1;
                } else {
                    transit_capable += 1;
                }
            }
        }
        assert!(transit_capable > 0);
        assert!(ixp_capable > 0);
    }

    #[test]
    fn reaction_produces_matched_announce_withdraw_pairs() {
        let t = topology();
        let user = a_user(&t);
        let mut rng = StdRng::seed_from_u64(3);
        let mut truths = Vec::new();
        let actions = plan_reaction(
            &mut rng,
            &t,
            &ReactionConfig::default(),
            user,
            SimTime::from_unix(1000),
            SimDuration::mins(30),
            2.0,
            &mut truths,
        );
        assert!(!actions.is_empty());
        assert!(!truths.is_empty());
        // Every action is linked to a truth record; counts per truth are
        // even (announce/withdraw pairs).
        let mut per_truth: std::collections::BTreeMap<usize, usize> = Default::default();
        for a in &actions {
            *per_truth.entry(a.truth.expect("linked")).or_default() += 1;
        }
        for (truth_idx, count) in per_truth {
            assert_eq!(count % 2, 0, "odd action count for truth {truth_idx}");
            assert_eq!(count / 2, truths[truth_idx].phases.len());
        }
    }

    #[test]
    fn phases_are_ordered_and_disjoint() {
        let t = topology();
        let user = a_user(&t);
        let mut truths = Vec::new();
        for seed in 0..30 {
            let mut rng = StdRng::seed_from_u64(seed);
            plan_reaction(
                &mut rng,
                &t,
                &ReactionConfig::default(),
                user,
                SimTime::from_unix(5000),
                SimDuration::mins(20),
                1.0,
                &mut truths,
            );
        }
        for truth in &truths {
            for w in truth.phases.windows(2) {
                assert!(w[0].1 < w[1].0, "phases overlap: {:?}", truth.phases);
            }
            for (on, off) in &truth.phases {
                assert!(on < off);
            }
            assert!(truth.start() <= truth.end());
        }
    }

    #[test]
    fn probing_dominates_with_default_config() {
        let t = topology();
        let user = a_user(&t);
        let mut truths = Vec::new();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..60 {
            plan_reaction(
                &mut rng,
                &t,
                &ReactionConfig::default(),
                user,
                SimTime::from_unix(5000),
                SimDuration::mins(30),
                1.0,
                &mut truths,
            );
        }
        let multi_phase = truths.iter().filter(|t| t.phases.len() > 1).count();
        assert!(
            multi_phase * 2 > truths.len(),
            "probing should dominate: {multi_phase}/{}",
            truths.len()
        );
        // Host routes dominate (98% in the paper).
        let host = truths.iter().filter(|t| t.prefix.is_host_route()).count();
        assert!(host * 10 >= truths.len() * 9);
    }

    #[test]
    fn victim_prefixes_are_inside_the_users_allocation() {
        let t = topology();
        let user = a_user(&t);
        let alloc = &t.as_info(user).unwrap().prefixes;
        let mut truths = Vec::new();
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..20 {
            plan_reaction(
                &mut rng,
                &t,
                &ReactionConfig::default(),
                user,
                SimTime::from_unix(5000),
                SimDuration::mins(10),
                3.0,
                &mut truths,
            );
        }
        for truth in &truths {
            assert!(
                alloc.iter().any(|a| a.contains(&truth.prefix)),
                "{} outside allocation",
                truth.prefix
            );
            assert_eq!(truth.user, user);
            assert!(!truth.requested.is_empty());
        }
    }

    #[test]
    fn users_without_capable_providers_do_nothing() {
        let t = topology();
        // A route-server ASN has no providers.
        let rs = t.ixps()[0].route_server_asn;
        let mut truths = Vec::new();
        let mut rng = StdRng::seed_from_u64(1);
        let actions = plan_reaction(
            &mut rng,
            &t,
            &ReactionConfig::default(),
            rs,
            SimTime::from_unix(0),
            SimDuration::mins(5),
            1.0,
            &mut truths,
        );
        assert!(actions.is_empty());
        assert!(truths.is_empty());
    }
}
