//! Deterministic live-feed drivers: replay recorded workloads against a
//! virtual clock.
//!
//! Live tests must never sleep on wall time. [`VirtualClock`] is a
//! shared, manually advanced [`Clock`] whose `sleep` *advances* instead
//! of blocking, and the two feeds turn a recorded
//! [`CollectorArchive`] set into growing [`LiveArchive`]s:
//!
//! * [`ReplayFeed`] paces whole records by their MRT timestamps — each
//!   [`pump`](ReplayFeed::pump) appends every record due by `now` and
//!   advances the watermark, so a `LiveMerge` downstream sees exactly
//!   the arrival pattern a real collector fleet would produce.
//! * [`ScriptedFeed`] appends raw *byte counts* regardless of record
//!   boundaries — the adversarial writer that tears records mid-body,
//!   for exercising the partial-tail retry path. It never advances
//!   watermarks, so use it single-source (a merge's safety gate is
//!   vacuous with one source).

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bh_bgp_types::time::{SimDuration, SimTime};
use bh_routing::elem::DataSource;
use bh_routing::live::{Clock, LiveArchive};
use bytes::Bytes;

use crate::fleet::CollectorArchive;

/// A shared, manually driven clock for deterministic live tests.
///
/// Clones share the same instant. `sleep` advances the clock instead of
/// blocking, so a daemon's poll loop runs at CPU speed while its pacing
/// logic behaves exactly as it would against [`bh_routing::WallClock`].
#[derive(Debug, Clone)]
pub struct VirtualClock {
    now: Arc<AtomicU64>,
}

impl VirtualClock {
    /// A clock frozen at `start` until advanced.
    pub fn new(start: SimTime) -> Self {
        VirtualClock { now: Arc::new(AtomicU64::new(start.unix())) }
    }

    /// Jump to `to` (monotonic: earlier instants are ignored).
    pub fn set(&self, to: SimTime) {
        self.now.fetch_max(to.unix(), Ordering::SeqCst);
    }

    /// Advance by `d`.
    pub fn advance(&self, d: SimDuration) {
        self.now.fetch_add(d.as_secs(), Ordering::SeqCst);
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> SimTime {
        SimTime::from_unix(self.now.load(Ordering::SeqCst))
    }

    fn sleep(&self, d: SimDuration) {
        self.advance(d);
    }
}

/// Frame an MRT byte buffer into `(timestamp, byte range)` spans, one
/// per record, without decoding payloads (12-byte header scan). Panics
/// on a torn buffer — replay inputs are workspace-written archives.
pub fn record_spans(bytes: &[u8]) -> Vec<(SimTime, Range<usize>)> {
    let mut spans = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        assert!(pos + 12 <= bytes.len(), "torn MRT header in replay archive");
        let ts = u32::from_be_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
        let len =
            u32::from_be_bytes(bytes[pos + 8..pos + 12].try_into().expect("4 bytes")) as usize;
        let end = pos + 12 + len;
        assert!(end <= bytes.len(), "torn MRT body in replay archive");
        spans.push((SimTime::from_unix(ts as u64), pos..end));
        pos = end;
    }
    spans
}

/// One collector's replay lane.
struct Lane {
    archive: LiveArchive,
    bytes: Bytes,
    spans: Vec<(SimTime, Range<usize>)>,
    next: usize,
    closed: bool,
}

/// Replays a recorded [`CollectorArchive`] fleet as growing
/// [`LiveArchive`]s, pacing records by their MRT timestamps.
///
/// Records are appended in archive order; a record is due once its
/// timestamp is `≤ now`. After each pump an open lane's watermark is
/// `now` — the promise that everything due has been appended and future
/// appends are strictly later — and a fully replayed lane is closed.
pub struct ReplayFeed {
    lanes: Vec<Lane>,
}

impl ReplayFeed {
    /// Build one lane per archive. Returns the feed plus the labelled
    /// [`LiveArchive`] handles to hand to the daemon's tailing sources
    /// (same order as `archives`).
    pub fn new(archives: &[CollectorArchive]) -> (Self, Vec<(DataSource, u16, LiveArchive)>) {
        let mut lanes = Vec::with_capacity(archives.len());
        let mut handles = Vec::with_capacity(archives.len());
        for a in archives {
            let archive = LiveArchive::new();
            handles.push((a.dataset, a.collector, archive.clone()));
            lanes.push(Lane {
                archive,
                bytes: a.bytes.clone(),
                spans: record_spans(&a.bytes),
                next: 0,
                closed: false,
            });
        }
        (ReplayFeed { lanes }, handles)
    }

    /// Append every record due by `now`, advance open-lane watermarks to
    /// `now`, and close lanes that are fully replayed. Returns the
    /// number of records appended.
    pub fn pump(&mut self, now: SimTime) -> usize {
        let mut appended = 0;
        for lane in &mut self.lanes {
            if lane.closed {
                continue;
            }
            let start = lane.next;
            while lane.next < lane.spans.len() && lane.spans[lane.next].0 <= now {
                lane.next += 1;
            }
            if lane.next > start {
                // Spans are contiguous, so one append covers the run.
                let from = lane.spans[start].1.start;
                let to = lane.spans[lane.next - 1].1.end;
                lane.archive.append(&lane.bytes[from..to]);
                appended += lane.next - start;
            }
            if lane.next == lane.spans.len() {
                lane.archive.close();
                lane.closed = true;
            } else {
                lane.archive.advance_watermark(now);
            }
        }
        appended
    }

    /// Have all lanes been fully replayed and closed?
    pub fn finished(&self) -> bool {
        self.lanes.iter().all(|l| l.closed)
    }

    /// The earliest timestamp of any not-yet-appended record — what a
    /// pacer would fast-forward the clock to when idle.
    pub fn next_due(&self) -> Option<SimTime> {
        self.lanes
            .iter()
            .filter(|l| !l.closed)
            .filter_map(|l| l.spans.get(l.next).map(|(t, _)| *t))
            .min()
    }

    /// Total records across all lanes.
    pub fn total_records(&self) -> usize {
        self.lanes.iter().map(|l| l.spans.len()).sum()
    }
}

/// Appends one archive's bytes in caller-chosen chunk sizes, ignoring
/// record boundaries — the torn-write generator.
///
/// No watermarks are advanced: pair it with a single-source consumer
/// (the merge safety gate does not apply) or drive watermarks by hand.
pub struct ScriptedFeed {
    archive: LiveArchive,
    bytes: Bytes,
    pos: usize,
}

impl ScriptedFeed {
    /// Wrap `bytes`; returns the feed and the archive handle to tail.
    pub fn new(bytes: impl Into<Bytes>) -> (Self, LiveArchive) {
        let archive = LiveArchive::new();
        (ScriptedFeed { archive: archive.clone(), bytes: bytes.into(), pos: 0 }, archive)
    }

    /// Append the next `n` bytes (clamped to what remains). Returns how
    /// many were actually appended.
    pub fn append_bytes(&mut self, n: usize) -> usize {
        let end = (self.pos + n).min(self.bytes.len());
        let appended = end - self.pos;
        if appended > 0 {
            self.archive.append(&self.bytes[self.pos..end]);
            self.pos = end;
        }
        appended
    }

    /// Bytes not yet appended.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Close the archive (with or without having appended everything —
    /// closing short fabricates a torn-tail archive).
    pub fn close(&self) {
        self.archive.close();
    }
}

#[cfg(test)]
mod tests {
    use bh_routing::live::{LiveMerge, LivePoll, TailingSource};
    use bh_routing::source::ElemSource;
    use bh_routing::{deploy, merge_streams, CollectorConfig};
    use bh_topology::{TopologyBuilder, TopologyConfig};

    use super::*;
    use crate::scenario::{run, ScenarioConfig};

    fn small_world() -> (Vec<CollectorArchive>, Vec<bh_routing::BgpElem>) {
        let t = TopologyBuilder::new(TopologyConfig::tiny(55)).build();
        let d = deploy(&t, &CollectorConfig::tiny(6));
        let output = run(&t, d, &ScenarioConfig::short(3, 3, 6.0));
        let archives = output.fleet_archives().expect("serialization succeeds");
        (archives, output.elems)
    }

    #[test]
    fn virtual_clock_is_shared_and_sleep_advances() {
        let clock = VirtualClock::new(SimTime::from_unix(1_000));
        let other = clock.clone();
        clock.advance(SimDuration::secs(5));
        assert_eq!(other.now().unix(), 1_005);
        other.sleep(SimDuration::mins(1));
        assert_eq!(clock.now().unix(), 1_065);
        clock.set(SimTime::from_unix(1_000)); // stale: ignored
        assert_eq!(clock.now().unix(), 1_065);
    }

    #[test]
    fn record_spans_tile_the_archive() {
        let (archives, _) = small_world();
        let a = archives.iter().find(|a| a.elems > 0).expect("an active collector");
        let spans = record_spans(&a.bytes);
        assert!(!spans.is_empty());
        assert_eq!(spans.first().expect("nonempty").1.start, 0);
        assert_eq!(spans.last().expect("nonempty").1.end, a.bytes.len());
        for w in spans.windows(2) {
            assert_eq!(w[0].1.end, w[1].1.start, "spans are contiguous");
            assert!(w[0].0 <= w[1].0, "archive records are time-ordered");
        }
    }

    #[test]
    fn replayed_fleet_drains_to_the_batch_merge_order() {
        let (archives, elems) = small_world();
        let (mut feed, handles) = ReplayFeed::new(&archives);
        let sources =
            handles.into_iter().map(|(d, c, a)| TailingSource::new(a, d, c)).collect::<Vec<_>>();
        let mut merge = LiveMerge::new(sources);

        let start = elems.first().expect("nonempty workload").time;
        let clock = VirtualClock::new(start);
        let quantum = SimDuration::mins(10);
        let mut got = Vec::new();
        let mut pumps = 0;
        while !(feed.finished() && merge.all_ended()) {
            feed.pump(clock.now());
            while let Some(e) = merge.next_ready() {
                // Watermark guarantee: nothing already due is held back
                // past the pump that made it safe.
                assert!(e.time <= clock.now());
                got.push(e.clone());
            }
            clock.advance(quantum);
            pumps += 1;
            assert!(pumps < 100_000, "replay must terminate");
        }
        assert!(pumps > 10, "a multi-day workload takes many quanta");
        // The batch reference reads the same archives back (the MRT
        // round trip normalizes absent next-hops, so comparing against
        // the pre-serialization elems would be the wrong spec).
        let streams: Vec<Vec<bh_routing::BgpElem>> = archives
            .iter()
            .map(|a| {
                bh_routing::read_updates(&a.bytes[..], a.dataset, a.collector)
                    .expect("archives are intact")
            })
            .collect();
        let expected = merge_streams(streams);
        assert_eq!(got.len(), elems.len(), "no element lost or duplicated");
        assert_eq!(got, expected, "live replay reproduces the batch merge exactly");
        assert!(merge.first_error().is_none());
    }

    #[test]
    fn scripted_feed_tears_records_and_the_tail_survives() {
        let (archives, _) = small_world();
        let a = archives.iter().find(|a| a.elems > 2).expect("an active collector");
        let (mut feed, archive) = ScriptedFeed::new(a.bytes.clone());
        let mut src = TailingSource::new(archive, a.dataset, a.collector);

        // Append in a prime-sized drip so nearly every record is torn
        // across appends; count what streams out.
        let mut n = 0u64;
        while feed.remaining() > 0 {
            feed.append_bytes(13);
            loop {
                match src.poll() {
                    LivePoll::Elem(_) => n += 1,
                    LivePoll::Pending(_) => break,
                    LivePoll::End => panic!("open archive cannot end"),
                }
            }
        }
        feed.close();
        loop {
            match src.poll() {
                LivePoll::Elem(_) => n += 1,
                LivePoll::Pending(_) => panic!("closed archive cannot pend"),
                LivePoll::End => break,
            }
        }
        assert!(src.error().is_none(), "torn appends are not corruption");
        assert_eq!(n, a.elems, "every element survives the drip-feed");

        // Cross-check against the batch reader.
        let mut batch =
            bh_routing::MrtElemSource::from_bytes(a.bytes.clone(), a.dataset, a.collector);
        let mut m = 0u64;
        while batch.next_elem().is_some() {
            m += 1;
        }
        assert_eq!(n, m);
    }
}
