//! Blackholing events: the engine's output, and the 5-minute grouping of
//! §9 ("BGP Blackholing Duration Patterns").

use std::collections::BTreeSet;

use bh_bgp_types::asn::Asn;
use bh_bgp_types::prefix::Ipv4Prefix;
use bh_bgp_types::time::{SimDuration, SimTime};
use bh_routing::DataSource;
use bh_topology::IxpId;

/// A blackholing provider as inferred: either an AS (transit, content…)
/// or an IXP (detected via route server / peering LAN).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProviderId {
    /// A network identified by ASN.
    As(Asn),
    /// An IXP identified by PeeringDB id.
    Ixp(IxpId),
}

impl ProviderId {
    /// The ASN, when the provider is a plain network.
    pub fn as_asn(&self) -> Option<Asn> {
        match self {
            ProviderId::As(asn) => Some(*asn),
            ProviderId::Ixp(_) => None,
        }
    }
}

/// AS-distance between a collector peer and the blackholing provider at
/// detection time (Fig. 7(c)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DetectionDistance {
    /// Provider absent from the AS path — detected thanks to community
    /// bundling ("No-path", about 50% of detections in the paper).
    NoPath,
    /// Hops between collector peer and provider; 0 means the collector
    /// sits at the blackholing IXP itself, 1 means the collector peers
    /// directly with the provider.
    Hops(u8),
}

/// One inferred blackholing event for one prefix (correlated across all
/// observing collector peers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlackholeEvent {
    /// The blackholed prefix.
    pub prefix: Ipv4Prefix,
    /// All providers inferred during the event.
    pub providers: BTreeSet<ProviderId>,
    /// All inferred blackholing users.
    pub users: BTreeSet<Asn>,
    /// Event start: first observation (or [`SimTime::ZERO`] when the
    /// blackholing was already present in the initial RIB dump).
    pub start: SimTime,
    /// Event end: all peers saw a withdrawal (explicit or implicit);
    /// `None` while still active at the end of the window.
    pub end: Option<SimTime>,
    /// Distinct collector peers that observed the event.
    pub peer_count: usize,
    /// Platforms that observed the event.
    pub datasets: BTreeSet<DataSource>,
    /// Distances at which the providers were detected.
    pub distances: BTreeSet<DetectionDistance>,
    /// Whether any detection relied on bundling (no provider on path).
    pub bundled_detection: bool,
}

impl BlackholeEvent {
    /// The event duration, measured to `now` when still open.
    pub fn duration(&self, now: SimTime) -> SimDuration {
        self.end.unwrap_or(now).since(self.start)
    }

    /// Was the event active at any point during `[from, to)`?
    pub fn active_during(&self, from: SimTime, to: SimTime) -> bool {
        self.start < to && self.end.is_none_or(|e| e > from)
    }
}

/// A [`BlackholeEvent`] as emitted by a *live* pipeline: tagged with a
/// session-scoped sequence number and the emission timestamp.
///
/// Sequence numbers are assigned in emission order, which for a single
/// `InferenceSession` is the deterministic stream-closure order — so a
/// daemon resumed from a checkpoint re-assigns the *same* numbers to the
/// same events, letting consumers deduplicate a kill/resume overlap and
/// detect gaps (`events-since` in the `bh-live` query protocol).
/// `emitted_at - event.end` is the emission latency a live deployment
/// bounds with its `max_latency` budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequencedEvent {
    /// Session-scoped emission sequence number, starting at 0.
    pub seq: u64,
    /// Clock time when the daemon emitted the event.
    pub emitted_at: SimTime,
    /// The event itself.
    pub event: BlackholeEvent,
}

impl SequencedEvent {
    /// Emission latency relative to the event's close (zero for events
    /// emitted open, e.g. at end-of-stream flush).
    pub fn latency(&self) -> SimDuration {
        match self.event.end {
            Some(end) => self.emitted_at.since(end),
            None => SimDuration::ZERO,
        }
    }
}

/// A grouped blackholing *period*: consecutive events for the same prefix
/// whose gaps are at most the grouping timeout (the paper uses 5 minutes
/// to collapse the operators' ON/OFF probing pattern).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlackholePeriod {
    /// The prefix.
    pub prefix: Ipv4Prefix,
    /// Start of the first constituent event.
    pub start: SimTime,
    /// End of the last constituent event (`None` if the last is open).
    pub end: Option<SimTime>,
    /// Number of constituent events.
    pub event_count: usize,
    /// Union of providers across constituents.
    pub providers: BTreeSet<ProviderId>,
    /// Union of users across constituents.
    pub users: BTreeSet<Asn>,
}

impl BlackholePeriod {
    /// Period duration, measured to `now` when still open.
    pub fn duration(&self, now: SimTime) -> SimDuration {
        self.end.unwrap_or(now).since(self.start)
    }
}

/// Group events into periods with the given timeout. Events must belong
/// to one run of the engine; grouping is per prefix. Thin wrapper over
/// [`PeriodAccumulator`], the incremental form.
pub fn group_events(events: &[BlackholeEvent], timeout: SimDuration) -> Vec<BlackholePeriod> {
    let mut acc = PeriodAccumulator::new(timeout);
    for event in events {
        use crate::accumulate::EventAccumulator;
        acc.observe(event);
    }
    crate::accumulate::EventAccumulator::finalize(acc)
}

/// The §9 grouping as a mergeable accumulator: per prefix it maintains a
/// set of disjoint periods (pairwise separated by more than the
/// timeout), coalescing each incoming event interval with every period
/// it overlaps or comes within the timeout of. Gap-tolerant interval
/// coalescing is associative and commutative, so events may arrive in
/// any order — including split across shards and merged — and the
/// finalized periods equal the sorted-sweep batch grouping exactly.
#[derive(Debug, Clone)]
pub struct PeriodAccumulator {
    timeout: SimDuration,
    by_prefix: std::collections::BTreeMap<Ipv4Prefix, Vec<BlackholePeriod>>,
}

impl PeriodAccumulator {
    /// An empty accumulator with the given grouping timeout.
    pub fn new(timeout: SimDuration) -> Self {
        PeriodAccumulator { timeout, by_prefix: std::collections::BTreeMap::new() }
    }

    /// Can two periods of one prefix be coalesced? True when the gap
    /// between their closest edges is at most the timeout (an open
    /// period reaches everything after it).
    fn mergeable(a: &BlackholePeriod, b: &BlackholePeriod, timeout: SimDuration) -> bool {
        let a_reaches_b = match a.end {
            None => true,
            Some(end) => b.start.since(end) <= timeout,
        };
        let b_reaches_a = match b.end {
            None => true,
            Some(end) => a.start.since(end) <= timeout,
        };
        a_reaches_b && b_reaches_a
    }

    fn coalesce(mut a: BlackholePeriod, b: BlackholePeriod) -> BlackholePeriod {
        a.start = a.start.min(b.start);
        a.end = match (a.end, b.end) {
            (Some(x), Some(y)) => Some(x.max(y)),
            _ => None,
        };
        a.event_count += b.event_count;
        a.providers.extend(b.providers);
        a.users.extend(b.users);
        a
    }

    fn insert(&mut self, period: BlackholePeriod) {
        let runs = self.by_prefix.entry(period.prefix).or_default();
        let mut merged = period;
        let mut keep = Vec::with_capacity(runs.len() + 1);
        for run in runs.drain(..) {
            if Self::mergeable(&run, &merged, self.timeout) {
                merged = Self::coalesce(merged, run);
            } else {
                keep.push(run);
            }
        }
        keep.push(merged);
        keep.sort_by_key(|p| p.start);
        *runs = keep;
    }

    /// Periods accumulated so far.
    pub fn period_count(&self) -> usize {
        self.by_prefix.values().map(Vec::len).sum()
    }
}

impl crate::accumulate::EventAccumulator for PeriodAccumulator {
    type Output = Vec<BlackholePeriod>;

    fn observe(&mut self, event: &BlackholeEvent) {
        self.insert(BlackholePeriod {
            prefix: event.prefix,
            start: event.start,
            end: event.end,
            event_count: 1,
            providers: event.providers.clone(),
            users: event.users.clone(),
        });
    }

    fn observe_owned(&mut self, event: BlackholeEvent) {
        self.insert(BlackholePeriod {
            prefix: event.prefix,
            start: event.start,
            end: event.end,
            event_count: 1,
            providers: event.providers,
            users: event.users,
        });
    }

    fn merge(&mut self, other: Self) {
        assert_eq!(self.timeout, other.timeout, "period accumulators must share one timeout");
        for (_, periods) in other.by_prefix {
            for period in periods {
                self.insert(period);
            }
        }
    }

    /// All periods, ordered by `(prefix, start)` — identical to the
    /// batch sweep over sorted events.
    fn finalize(self) -> Vec<BlackholePeriod> {
        self.by_prefix.into_values().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(prefix: &str, start: u64, end: Option<u64>) -> BlackholeEvent {
        BlackholeEvent {
            prefix: prefix.parse().unwrap(),
            providers: BTreeSet::from([ProviderId::As(Asn::new(1))]),
            users: BTreeSet::from([Asn::new(2)]),
            start: SimTime::from_unix(start),
            end: end.map(SimTime::from_unix),
            peer_count: 1,
            datasets: BTreeSet::new(),
            distances: BTreeSet::new(),
            bundled_detection: false,
        }
    }

    #[test]
    fn duration_handles_open_events() {
        let e = event("1.2.3.4/32", 100, Some(160));
        assert_eq!(e.duration(SimTime::from_unix(1000)).as_secs(), 60);
        let open = event("1.2.3.4/32", 100, None);
        assert_eq!(open.duration(SimTime::from_unix(1000)).as_secs(), 900);
    }

    #[test]
    fn active_during_window_logic() {
        let e = event("1.2.3.4/32", 100, Some(200));
        assert!(e.active_during(SimTime::from_unix(50), SimTime::from_unix(150)));
        assert!(e.active_during(SimTime::from_unix(150), SimTime::from_unix(300)));
        assert!(!e.active_during(SimTime::from_unix(200), SimTime::from_unix(300)));
        assert!(!e.active_during(SimTime::from_unix(0), SimTime::from_unix(100)));
        let open = event("1.2.3.4/32", 100, None);
        assert!(open.active_during(SimTime::from_unix(5000), SimTime::from_unix(6000)));
    }

    #[test]
    fn grouping_collapses_on_off_pattern() {
        // Three 1-minute ON pulses with 2-minute gaps: one period with a
        // 5-minute timeout, three with a 30-second timeout.
        let events = vec![
            event("1.2.3.4/32", 0, Some(60)),
            event("1.2.3.4/32", 180, Some(240)),
            event("1.2.3.4/32", 360, Some(420)),
        ];
        let grouped = group_events(&events, SimDuration::mins(5));
        assert_eq!(grouped.len(), 1);
        assert_eq!(grouped[0].event_count, 3);
        assert_eq!(grouped[0].start, SimTime::from_unix(0));
        assert_eq!(grouped[0].end, Some(SimTime::from_unix(420)));
        assert_eq!(grouped[0].duration(SimTime::ZERO).as_secs(), 420);

        let tight = group_events(&events, SimDuration::secs(30));
        assert_eq!(tight.len(), 3);
        assert!(tight.iter().all(|p| p.event_count == 1));
    }

    #[test]
    fn grouping_is_per_prefix() {
        let events = vec![event("1.2.3.4/32", 0, Some(60)), event("5.6.7.8/32", 30, Some(90))];
        let grouped = group_events(&events, SimDuration::mins(5));
        assert_eq!(grouped.len(), 2);
    }

    #[test]
    fn open_events_keep_period_open() {
        let events = vec![event("1.2.3.4/32", 0, Some(60)), event("1.2.3.4/32", 120, None)];
        let grouped = group_events(&events, SimDuration::mins(5));
        assert_eq!(grouped.len(), 1);
        assert_eq!(grouped[0].end, None);
        // A later event for the same prefix joins the open period.
        let events =
            vec![event("1.2.3.4/32", 0, None), event("1.2.3.4/32", 100_000, Some(100_060))];
        let grouped = group_events(&events, SimDuration::mins(5));
        assert_eq!(grouped.len(), 1);
        assert_eq!(grouped[0].event_count, 2);
    }

    #[test]
    fn period_accumulator_is_order_insensitive_and_mergeable() {
        use crate::accumulate::EventAccumulator;
        let events = vec![
            event("1.2.3.4/32", 0, Some(60)),
            event("1.2.3.4/32", 180, Some(240)),
            event("1.2.3.4/32", 360, Some(420)),
            event("5.6.7.8/32", 30, None),
            event("5.6.7.8/32", 100_000, Some(100_060)),
        ];
        let batch = group_events(&events, SimDuration::mins(5));

        // Reversed observation order.
        let mut reversed = PeriodAccumulator::new(SimDuration::mins(5));
        for e in events.iter().rev() {
            reversed.observe(e);
        }
        assert_eq!(EventAccumulator::finalize(reversed), batch);

        // Split across two accumulators and merged (both merge orders).
        for flip in [false, true] {
            let mut a = PeriodAccumulator::new(SimDuration::mins(5));
            let mut b = PeriodAccumulator::new(SimDuration::mins(5));
            for (k, e) in events.iter().enumerate() {
                if (k % 2 == 0) != flip {
                    a.observe(e);
                } else {
                    b.observe(e);
                }
            }
            a.merge(b);
            assert_eq!(EventAccumulator::finalize(a), batch);
        }
    }

    #[test]
    fn grouping_merges_providers_and_users() {
        let mut a = event("1.2.3.4/32", 0, Some(60));
        let mut b = event("1.2.3.4/32", 120, Some(180));
        a.providers = BTreeSet::from([ProviderId::As(Asn::new(1))]);
        b.providers = BTreeSet::from([ProviderId::Ixp(IxpId(7))]);
        b.users = BTreeSet::from([Asn::new(9)]);
        let grouped = group_events(&[a, b], SimDuration::mins(5));
        assert_eq!(grouped[0].providers.len(), 2);
        assert_eq!(grouped[0].users.len(), 2);
    }
}
